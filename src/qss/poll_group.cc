#include "qss/poll_group.h"

#include <algorithm>

#include "lorel/lorel.h"
#include "obs/clock.h"
#include "obs/log.h"

namespace doem {
namespace qss {

namespace {

// Fixed identifiers for the canonical wrapper nodes, far above any id a
// source will produce. Keeping them stable across polls is what makes
// keyed diffs of successive results well-defined.
constexpr NodeId kQssRoot = NodeId{1} << 62;
constexpr NodeId kQssContainer = kQssRoot + 1;

// Instrument-update helpers: every instrument pointer is null when no
// MetricsRegistry is configured.
void Count(obs::Counter* c, uint64_t by = 1) {
  if (c != nullptr && by > 0) c->Increment(by);
}

void SetGauge(obs::Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}

void AddGauge(obs::Gauge* g, int64_t delta) {
  if (g != nullptr) g->Add(delta);
}

void Observe(obs::Histogram* h, int64_t v) {
  if (h != nullptr) h->Observe(v);
}

}  // namespace

std::string PollGroup::JoinedEntries() const {
  std::string out;
  for (const auto& [name, refs] : entries) {
    if (!out.empty()) out += ",";
    out += name;
  }
  return out;
}

PollGroupManager::PollGroupManager(InformationSource* source, Timestamp start,
                                   QssOptions options)
    : source_(source),
      now_(start),
      options_(std::move(options)),
      diff_mode_(source->PreservesIds() ? DiffMode::kKeyed
                                        : DiffMode::kStructural) {
  obs::MetricsRegistry* m = options_.observability.metrics;
  if (m == nullptr) return;
  ins_.polls_attempted = m->GetCounter(
      "qss.polls_attempted", "scheduled polls that ran (not quarantine skips)");
  ins_.polls_ok = m->GetCounter("qss.polls_ok", "polls that committed");
  ins_.polls_failed =
      m->GetCounter("qss.polls_failed", "polls that failed after retries");
  ins_.polls_missed = m->GetCounter(
      "qss.polls_missed", "scheduled polls skipped inside quarantine windows");
  ins_.retries = m->GetCounter(
      "qss.retries", "extra source attempts beyond the first, across polls");
  ins_.quarantine_trips = m->GetCounter(
      "qss.quarantine_trips", "circuit-breaker trips into the Open state");
  ins_.missed_log_dropped = m->GetCounter(
      "qss.missed_log_dropped",
      "missed-poll log entries evicted by QssOptions::max_missed_log");
  ins_.groups = m->GetGauge("qss.groups", "distinct poll groups maintained");
  ins_.group_count = m->GetGauge(
      "qss.group.count",
      "distinct poll groups — one DOEM history and Chorel engine each");
  ins_.group_entries = m->GetGauge(
      "qss.group.entries", "distinct filter entry names across all groups");
  ins_.circuits_open =
      m->GetGauge("qss.circuits_open", "poll groups currently quarantined");
  ins_.circuits_half_open = m->GetGauge(
      "qss.circuits_half_open", "poll groups currently probing (half-open)");
  ins_.fetch_ns = m->GetHistogram(
      "qss.fetch_ns", obs::LatencyBucketsNs(),
      "per-poll source fetch wall time (incl. retries), ns");
  ins_.diff_ns = m->GetHistogram("qss.diff_ns", obs::LatencyBucketsNs(),
                                 "per-poll OEMdiff wall time, ns");
  ins_.apply_ns = m->GetHistogram(
      "qss.apply_ns", obs::LatencyBucketsNs(),
      "per-poll DOEM apply + cache maintenance wall time, ns");
}

std::string PollGroupManager::GroupKey(
    const std::string& polling_query, const FrequencySpec& frequency,
    const std::string& subscriber_name) const {
  if (!options_.merge_similar_polls) return "sub:" + subscriber_name;
  return polling_query + "\x1f" + std::to_string(frequency.interval_ticks);
}

void PollGroupManager::PublishGroupGauges() {
  SetGauge(ins_.groups, static_cast<int64_t>(groups_.size()));
  SetGauge(ins_.group_count, static_cast<int64_t>(groups_.size()));
  if (ins_.group_entries != nullptr) {
    int64_t entries = 0;
    for (const auto& [key, group] : groups_) {
      entries += static_cast<int64_t>(group->entries.size());
    }
    ins_.group_entries->Set(entries);
  }
}

PollGroup* PollGroupManager::Find(const std::string& polling_query,
                                  const FrequencySpec& frequency,
                                  const std::string& subscriber_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = groups_.find(GroupKey(polling_query, frequency, subscriber_name));
  if (it == groups_.end() || it->second->retired) return nullptr;
  return it->second.get();
}

Result<PollGroup*> PollGroupManager::Acquire(
    const std::string& polling_query, const FrequencySpec& frequency,
    const std::string& entry_name, const std::string& subscriber_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string key = GroupKey(polling_query, frequency, subscriber_name);
  auto it = groups_.find(key);
  if (it != groups_.end() && !it->second->retired) {
    PollGroup* group = it->second.get();
    ++group->subscriber_count;
    auto eit = std::find_if(
        group->entries.begin(), group->entries.end(),
        [&](const auto& e) { return e.first == entry_name; });
    if (eit != group->entries.end()) {
      ++eit->second;
    } else {
      group->entries.emplace_back(entry_name, 1);
    }
    PublishGroupGauges();
    return group;
  }
  auto group = std::make_unique<PollGroup>();
  group->key = key;
  group->polling_query = polling_query;
  group->frequency = frequency;
  group->next_poll = frequency.FirstPoll(now_);
  group->entries.emplace_back(entry_name, 1);
  group->subscriber_count = 1;
  if (options_.durability.store != nullptr) {
    auto opened = options_.durability.store->OpenStore(key);
    if (!opened.ok()) {
      return Status(opened.status().code(),
                    "durable store for group '" + key +
                        "': " + opened.status().message());
    }
    group->store = std::move(opened).value();
  }
  if (group->store != nullptr && group->store->has_state()) {
    // Resume from the committed history instead of starting over. The
    // next poll keeps the group's cadence: the tick after the last
    // committed poll, even if that is already in the past (AdvanceTo
    // then runs the catch-up waves at their scheduled times).
    group->polls = group->store->recovered_times();
    group->doem = group->store->TakeRecoveredDb();
    if (!group->polls.empty()) {
      group->next_poll = frequency.NextPoll(group->polls.back());
    }
  } else {
    // R_0: the canonical wrapper with an empty container (the "empty OEM
    // database" of Section 6, anchored so reachability-deletion works).
    OemDatabase base;
    DOEM_RETURN_IF_ERROR(base.CreNode(kQssRoot, Value::Complex()));
    DOEM_RETURN_IF_ERROR(base.CreNode(kQssContainer, Value::Complex()));
    DOEM_RETURN_IF_ERROR(base.SetRoot(kQssRoot));
    DOEM_RETURN_IF_ERROR(base.AddArc(kQssRoot, entry_name, kQssContainer));
    auto doem = DoemDatabase::FromSnapshot(std::move(base));
    if (!doem.ok()) return doem.status();
    group->doem = std::move(doem).value();
    if (group->store != nullptr) {
      DOEM_RETURN_IF_ERROR(group->store->Start(group->doem));
    }
  }
  chorel::ChorelEngineOptions eopts;
  eopts.incremental = options_.acceleration.incremental_filter;
  eopts.seed_from_index = options_.acceleration.seed_filter_from_index;
  eopts.verify_incremental = options_.acceleration.verify_incremental_filter;
  eopts.use_vm = options_.acceleration.vm_filter;
  eopts.verify_vm = options_.acceleration.verify_vm_filter;
  eopts.metrics = options_.observability.metrics;
  group->engine = std::make_unique<chorel::ChorelEngine>(group->doem, eopts);
  PollGroup* out = group.get();
  groups_[key] = std::move(group);
  PublishGroupGauges();
  DOEM_LOG_EVENT(options_.observability.events, obs::EventType::kGroupCreated,
                 obs::EventSeverity::kInfo, now_, out->key,
                 "entries=" + out->JoinedEntries());
  return out;
}

void PollGroupManager::Release(PollGroup* group,
                               const std::string& entry_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (group == nullptr || group->retired) return;
  auto eit = std::find_if(group->entries.begin(), group->entries.end(),
                          [&](const auto& e) { return e.first == entry_name; });
  if (eit != group->entries.end() && --eit->second == 0) {
    group->entries.erase(eit);
  }
  if (group->subscriber_count > 0) --group->subscriber_count;
  if (group->subscriber_count == 0) {
    // Retire the group's contribution to the circuit gauges with it.
    CircuitState state = group->health.state;
    if (state == CircuitState::kOpen) AddGauge(ins_.circuits_open, -1);
    if (state == CircuitState::kHalfOpen) AddGauge(ins_.circuits_half_open, -1);
    if (in_tick_ > 0) {
      // A wave may still hold a PreparedPoll for this group; keep the
      // object alive and out of scheduling until the tick unwinds.
      group->retired = true;
      retired_keys_.push_back(group->key);
    } else {
      EraseGroup(group->key);
    }
  }
  PublishGroupGauges();
}

void PollGroupManager::EraseGroup(const std::string& key) {
  auto it = groups_.find(key);
  if (it != groups_.end()) {
    // `key` may alias the erased group's own key member (callers pass
    // group->key), so copy it out before the erase destroys the group.
    std::string retired = it->first;
    groups_.erase(it);
    DOEM_LOG_EVENT(options_.observability.events,
                   obs::EventType::kGroupRetired, obs::EventSeverity::kInfo,
                   now_, retired, "");
  }
  PublishGroupGauges();
}

void PollGroupManager::EraseRetired() {
  for (const std::string& key : retired_keys_) {
    EraseGroup(key);
  }
  retired_keys_.clear();
}

Result<OemDatabase> PollGroupManager::CanonicalWrap(
    const OemDatabase& answer, const PollGroup& group) const {
  if (answer.HasNode(kQssRoot) || answer.HasNode(kQssContainer)) {
    return Status::Internal("source id space collides with QSS wrapper ids");
  }
  OemDatabase out;
  DOEM_RETURN_IF_ERROR(out.CreNode(kQssRoot, Value::Complex()));
  DOEM_RETURN_IF_ERROR(out.CreNode(kQssContainer, Value::Complex()));
  DOEM_RETURN_IF_ERROR(out.SetRoot(kQssRoot));
  for (const auto& [entry, refs] : group.entries) {
    DOEM_RETURN_IF_ERROR(out.AddArc(kQssRoot, entry, kQssContainer));
  }
  // Copy the answer's nodes (ids preserved) and re-source the answer
  // root's arcs onto the container.
  NodeId ans_root = answer.root();
  for (NodeId n : answer.NodeIds()) {
    if (n == ans_root) continue;
    DOEM_RETURN_IF_ERROR(out.CreNode(n, *answer.GetValue(n)));
  }
  for (const Arc& a : answer.AllArcs()) {
    NodeId p = a.parent == ans_root ? kQssContainer : a.parent;
    DOEM_RETURN_IF_ERROR(out.AddArc(p, a.label, a.child));
  }
  return out;
}

Result<OemDatabase> PollGroupManager::AttemptPoll(PollGroup* group,
                                                  Timestamp t,
                                                  int max_attempts,
                                                  PreparedPoll* pending) {
  PollHealth& health = group->health;
  const RetryPolicy& retry = options_.fault_tolerance.retry;
  if (max_attempts < 1) max_attempts = 1;
  Status attempt_status;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Deterministic exponential backoff, accounted in simulated ticks.
      // It is sub-tick bookkeeping: the poll timestamp stays t, so the
      // history and the schedule are unaffected (see health.h).
      ++health.retries;
      ++pending->retries;
      health.backoff_ticks += retry.backoff_base_ticks << (attempt - 2);
    }
    int64_t took = 0;
    auto answer = [&] {
      // The source need not be thread-safe (see source.h): the poll and
      // its duration read from one critical section, so concurrent
      // groups cannot interleave inside a call or misattribute the
      // duration of someone else's poll.
      std::lock_guard<std::mutex> lock(source_mu_);
      auto polled = source_->PollForGroup(group->key, group->polling_query, t);
      took = source_->LastPollDurationTicks();
      return polled;
    }();
    attempt_status = answer.ok() ? Status::OK() : answer.status();
    if (attempt_status.ok() && retry.poll_deadline_ticks > 0 &&
        took > retry.poll_deadline_ticks) {
      attempt_status = Status::DeadlineExceeded(
          "poll took " + std::to_string(took) + " ticks, deadline " +
          std::to_string(retry.poll_deadline_ticks));
    }
    if (attempt_status.ok()) {
      // A snapshot from an autonomous wrapper can arrive truncated or
      // malformed; treat it as a failed attempt, not as source data.
      Status valid = answer->Validate();
      if (!valid.ok()) {
        attempt_status = Status::Unavailable(
            "source returned malformed snapshot: " + valid.message());
      }
    }
    if (attempt_status.ok()) return answer;
    health.last_error = attempt_status;
  }
  return attempt_status;
}

PollGroupManager::PreparedPoll PollGroupManager::PreparePoll(PollGroup* group,
                                                             Timestamp t) {
  obs::TraceSpan span(options_.observability.trace, "qss.prepare", "qss", t,
                      group->JoinedEntries());
  PreparedPoll pending;
  pending.group = group;
  pending.time = t;
  pending.start_ns = obs::NowNs();
  PollHealth& health = group->health;

  // Quarantined: sit out the cool-down, then probe (half-open).
  if (health.state == CircuitState::kOpen) {
    if (t < health.quarantined_until) {
      pending.quarantined = true;
      pending.missed_reason = "quarantined until " +
                              health.quarantined_until.ToString() + " after " +
                              health.last_error.ToString();
      return pending;
    }
    health.state = CircuitState::kHalfOpen;
    AddGauge(ins_.circuits_open, -1);
    AddGauge(ins_.circuits_half_open, 1);
    DOEM_LOG_EVENT(options_.observability.events,
                   obs::EventType::kQuarantineProbe,
                   obs::EventSeverity::kInfo, t, group->key,
                   "cool-down elapsed; next poll is a half-open probe");
  }

  ++health.polls_attempted;

  // 1. Query manager: send Q_l to the wrapper, get R_k — retrying per
  // policy, except that a half-open probe gets a single attempt.
  int max_attempts =
      health.state == CircuitState::kHalfOpen
          ? 1
          : std::max(1, options_.fault_tolerance.retry.max_attempts);
  auto answer = [&] {
    obs::TraceSpan fetch_span(options_.observability.trace, "qss.fetch", "qss",
                              t);
    int64_t fetch_start = obs::NowNs();
    auto polled = AttemptPoll(group, t, max_attempts, &pending);
    pending.fetch_ns = obs::ElapsedNs(fetch_start);
    return polled;
  }();
  if (!answer.ok()) {
    pending.failure = answer.status();
    return pending;
  }

  auto wrapped = CanonicalWrap(*answer, *group);
  if (!wrapped.ok()) {
    pending.failure = wrapped.status();
    return pending;
  }

  // 2. R_{k-1} is the current snapshot of the DOEM database. Safe off
  // the commit thread: nothing else touches this group during its wave.
  // 3. OEMdiff.
  obs::TraceSpan diff_span(options_.observability.trace, "qss.diff", "qss", t);
  int64_t diff_start = obs::NowNs();
  OemDatabase previous = group->doem.CurrentSnapshot();
  auto delta = DiffSnapshots(previous, *wrapped, diff_mode_);
  pending.diff_ns = obs::ElapsedNs(diff_start);
  if (!delta.ok()) {
    pending.failure = delta.status();
    return pending;
  }
  pending.delta = std::move(delta).value();
  return pending;
}

void PollGroupManager::CommitPoll(PreparedPoll* pending, PollReport* report) {
  PollGroup* group = pending->group;
  PollHealth& health = group->health;
  const Timestamp t = pending->time;
  const ErrorCallback& on_error = options_.fault_tolerance.on_error;
  obs::TraceSpan span(options_.observability.trace, "qss.commit", "qss", t,
                      group->JoinedEntries());

  if (pending->quarantined) {
    MissedPoll missed;
    missed.time = t;
    missed.reason = std::move(pending->missed_reason);
    health.missed.push_back(std::move(missed));
    size_t max_missed = options_.fault_tolerance.max_missed_log;
    if (max_missed > 0 && health.missed.size() > max_missed) {
      size_t drop = health.missed.size() - max_missed;
      health.missed.erase(health.missed.begin(), health.missed.begin() + drop);
      health.missed_dropped += drop;
      Count(ins_.missed_log_dropped, drop);
    }
    ++report->polls_missed;
    Count(ins_.polls_missed);
    DOEM_LOG_EVENT(options_.observability.events, obs::EventType::kPollMissed,
                   obs::EventSeverity::kWarning, t, group->key,
                   health.missed.back().reason);
    return;
  }

  ++report->polls_attempted;
  report->retries += pending->retries;
  report->fetch_ns += pending->fetch_ns;
  report->diff_ns += pending->diff_ns;
  Count(ins_.polls_attempted);
  Count(ins_.retries, pending->retries);
  Observe(ins_.fetch_ns, pending->fetch_ns);
  Observe(ins_.diff_ns, pending->diff_ns);
  // Reset the per-poll phase attribution: fetch and diff were measured
  // while preparing; apply lands below and the fan-out half
  // (filter/fanout/wire/e2e) is filled in by SubscriberRegistry::FanOut
  // and the server, measuring from `last_prepare_start_ns`.
  health.last_poll = PollPhaseLatency{};
  health.last_poll.fetch_ns = pending->fetch_ns;
  health.last_poll.diff_ns = pending->diff_ns;
  group->last_prepare_start_ns = pending->start_ns;

  Status failure = pending->failure;
  Status maintain;  // engine-cache maintenance outcome (see below)
  if (failure.ok()) {
    // 4. DOEM manager: incorporate (t, U_k). Build the new state off to
    // the side and commit only on success, so a failed incorporation
    // never costs history (kTwoSnapshots used to drop it before
    // applying). On success, bring the group engine's caches along:
    // patched in O(delta) under kFull, dropped under kTwoSnapshots (the
    // rebase replaced the history wholesale, so a patch of the old
    // encoding would describe the wrong database). A failed apply leaves
    // both the history and the caches untouched and consistent.
    obs::TraceSpan apply_span(options_.observability.trace, "qss.apply", "qss",
                              t);
    int64_t apply_start = obs::NowNs();
    if (options_.retention == HistoryRetention::kTwoSnapshots) {
      auto rebased = DoemDatabase::FromSnapshot(group->doem.CurrentSnapshot());
      if (rebased.ok()) {
        failure = rebased->ApplyChangeSet(t, pending->delta);
        if (failure.ok()) {
          group->doem = std::move(rebased).value();
          group->engine->Invalidate();
        }
      } else {
        failure = rebased.status();
      }
    } else {
      failure = group->doem.ApplyChangeSet(t, pending->delta);
      if (failure.ok()) {
        maintain = group->engine->ApplyDelta(t, pending->delta);
      }
    }
    int64_t apply_ns = obs::ElapsedNs(apply_start);
    report->apply_ns += apply_ns;
    Observe(ins_.apply_ns, apply_ns);
    health.last_poll.apply_ns = apply_ns;
  }

  if (!failure.ok()) {
    ++health.polls_failed;
    ++health.consecutive_failures;
    health.last_error = failure;
    ++report->polls_failed;
    Count(ins_.polls_failed);
    PollError error;
    error.kind = PollError::Kind::kPoll;
    error.subject = group->JoinedEntries();
    error.time = t;
    error.status = failure;
    report->errors.push_back(error);
    if (on_error) on_error(error);
    DOEM_LOG_EVENT(options_.observability.events, obs::EventType::kPollFailed,
                   obs::EventSeverity::kError, t, group->key,
                   failure.ToString());
    // A failed probe re-opens immediately; otherwise the breaker trips
    // after `quarantine_after` consecutive failed polls.
    int quarantine_after = options_.fault_tolerance.quarantine_after;
    if (health.state == CircuitState::kHalfOpen ||
        (quarantine_after > 0 &&
         health.consecutive_failures >= quarantine_after)) {
      if (health.state == CircuitState::kHalfOpen) {
        AddGauge(ins_.circuits_half_open, -1);
      }
      health.state = CircuitState::kOpen;
      health.quarantined_until = Timestamp(
          t.ticks + options_.fault_tolerance.quarantine_cooldown_ticks);
      AddGauge(ins_.circuits_open, 1);
      Count(ins_.quarantine_trips);
      DOEM_LOG_EVENT(options_.observability.events,
                     obs::EventType::kQuarantineOpened,
                     obs::EventSeverity::kWarning, t, group->key,
                     "quarantined until " +
                         health.quarantined_until.ToString() + " after " +
                         std::to_string(health.consecutive_failures) +
                         " consecutive failures");
    }
    return;
  }
  group->polls.push_back(t);
  ++health.polls_succeeded;
  ++report->polls_ok;
  Count(ins_.polls_ok);
  health.consecutive_failures = 0;
  if (health.state == CircuitState::kHalfOpen) {
    AddGauge(ins_.circuits_half_open, -1);  // probe succeeded: close
    DOEM_LOG_EVENT(options_.observability.events,
                   obs::EventType::kQuarantineClosed,
                   obs::EventSeverity::kInfo, t, group->key,
                   "half-open probe succeeded");
  }
  health.state = CircuitState::kClosed;

  if (group->store != nullptr) {
    // Persist the committed poll. The in-memory commit above stands
    // either way (availability over durability); a failure here means
    // polls from now on are not durable until the store is reopened.
    Status stored =
        options_.retention == HistoryRetention::kTwoSnapshots
            ? group->store->CommitCheckpoint(t, group->doem)
            : group->store->Append(t, pending->delta, group->doem);
    if (!stored.ok()) {
      PollError error;
      error.kind = PollError::Kind::kStore;
      error.subject = group->JoinedEntries();
      error.time = t;
      error.status =
          Status(stored.code(), "durable store commit: " + stored.message());
      report->errors.push_back(error);
      if (on_error) on_error(error);
      DOEM_LOG_EVENT(options_.observability.events,
                     obs::EventType::kStoreError, obs::EventSeverity::kError,
                     t, group->key, error.status.ToString());
    }
  }

  if (!maintain.ok()) {
    // The cache patch (or its verify cross-check) failed. The engine has
    // already dropped the affected caches, so the next filter run
    // rebuilds from the (correct) history — surface the event without
    // failing the poll.
    PollError error;
    error.kind = PollError::Kind::kFilter;
    error.subject = group->JoinedEntries();
    error.time = t;
    error.status = Status(maintain.code(),
                          "filter cache maintenance: " + maintain.message());
    report->errors.push_back(error);
    if (on_error) on_error(error);
    DOEM_LOG_EVENT(options_.observability.events,
                   obs::EventType::kFilterError, obs::EventSeverity::kWarning,
                   t, group->key, error.status.ToString());
  }

  // 5–6. Chorel engine + notifications: the subscriber layer's half of
  // the pipeline.
  if (fanout_ != nullptr) fanout_->FanOut(group, t, report);
}

void PollGroupManager::RunWave(const std::vector<PollGroup*>& wave,
                               Timestamp t, PollReport* report) {
  std::vector<PreparedPoll> prepared(wave.size());
  if (options_.executor != nullptr && wave.size() > 1) {
    options_.executor->ParallelFor(wave.size(), [&](size_t i) {
      prepared[i] = PreparePoll(wave[i], t);
    });
  } else {
    for (size_t i = 0; i < wave.size(); ++i) {
      prepared[i] = PreparePoll(wave[i], t);
    }
  }
  // Deterministic merge: `wave` is in group-key order, so error and
  // notification order, report counters, and the histories are
  // byte-identical to a serial run no matter how the prepare stage was
  // scheduled. The service mutex is already held by the polling entry
  // point; callbacks fire on this thread and may re-enter registration
  // (fan-out iterates a snapshot, retirement is deferred past the tick).
  for (PreparedPoll& pending : prepared) {
    CommitPoll(&pending, report);
  }
}

Status PollGroupManager::SettleReport(const PollReport& report,
                                      size_t first_new_error,
                                      bool caller_has_report) const {
  if (caller_has_report || options_.fault_tolerance.on_error) {
    return Status::OK();
  }
  if (report.errors.size() <= first_new_error) return Status::OK();
  return report.errors[first_new_error].status;
}

Status PollGroupManager::AdvanceTo(Timestamp t, PollReport* report) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (t < now_) {
    return Status::InvalidArgument("clock cannot run backwards");
  }
  obs::TraceSpan span(options_.observability.trace, "qss.advance", "qss", t);
  int64_t call_start = obs::NowNs();
  PollReport local;
  PollReport* r = report != nullptr ? report : &local;
  size_t first_new_error = r->errors.size();
  ++in_tick_;
  // Execute all due polls across groups in time order, wave by wave: a
  // wave is every group due at the earliest outstanding poll time (tie
  // order = group-key order, as before). A failing group no longer
  // aborts the tick: its schedule still advances (the failure is
  // recorded, feeding the circuit breaker), the other groups still
  // poll, and the clock always reaches t.
  while (true) {
    Timestamp wave_time;
    bool any_due = false;
    for (auto& [key, group] : groups_) {
      if (group->retired) continue;
      if (group->next_poll <= t && (!any_due || group->next_poll < wave_time)) {
        wave_time = group->next_poll;
        any_due = true;
      }
    }
    if (!any_due) break;
    std::vector<PollGroup*> wave;
    for (auto& [key, group] : groups_) {
      if (group->retired) continue;
      if (group->next_poll == wave_time) {
        wave.push_back(group.get());
        group->next_poll = group->frequency.NextPoll(wave_time);
      }
    }
    RunWave(wave, wave_time, r);
  }
  now_ = t;
  if (--in_tick_ == 0) EraseRetired();
  r->elapsed_ns += obs::ElapsedNs(call_start);
  return SettleReport(*r, first_new_error, report != nullptr);
}

Status PollGroupManager::PollGroupNow(PollGroup* group, PollReport* report) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (group == nullptr || group->retired) {
    return Status::NotFound("no such poll group");
  }
  if (!group->polls.empty() && group->polls.back() >= now_) {
    return Status::InvalidArgument("already polled at tick " +
                                   now_.ToString() +
                                   "; advance the clock first");
  }
  obs::TraceSpan span(options_.observability.trace, "qss.poll_now", "qss",
                      now_, group->JoinedEntries());
  int64_t call_start = obs::NowNs();
  PollReport local;
  PollReport* r = report != nullptr ? report : &local;
  size_t first_new_error = r->errors.size();
  ++in_tick_;
  RunWave({group}, now_, r);
  if (--in_tick_ == 0) EraseRetired();
  r->elapsed_ns += obs::ElapsedNs(call_start);
  return SettleReport(*r, first_new_error, report != nullptr);
}

Status PollGroupManager::NotifySourceChanged(PollReport* report) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::TraceSpan span(options_.observability.trace, "qss.source_changed",
                      "qss", now_);
  int64_t call_start = obs::NowNs();
  PollReport local;
  PollReport* r = report != nullptr ? report : &local;
  size_t first_new_error = r->errors.size();
  // Every group not already covered at this tick polls now — one wave.
  std::vector<PollGroup*> wave;
  for (auto& [key, group] : groups_) {
    if (group->retired) continue;
    if (!group->polls.empty() && group->polls.back() >= now_) {
      continue;  // this tick is already covered
    }
    wave.push_back(group.get());
  }
  ++in_tick_;
  RunWave(wave, now_, r);
  if (--in_tick_ == 0) EraseRetired();
  r->elapsed_ns += obs::ElapsedNs(call_start);
  return SettleReport(*r, first_new_error, report != nullptr);
}

Timestamp PollGroupManager::now() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return now_;
}

size_t PollGroupManager::GroupCount() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, group] : groups_) {
    if (!group->retired) ++n;
  }
  return n;
}

PollHealth PollGroupManager::GroupHealth(const PollGroup* group) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (group == nullptr) return PollHealth{};
  return group->health;
}

std::vector<Timestamp> PollGroupManager::GroupPollingTimes(
    const PollGroup* group) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (group == nullptr) return {};
  return group->polls;
}

std::vector<PollGroupManager::GroupStatus> PollGroupManager::GroupStatuses()
    const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<GroupStatus> out;
  out.reserve(groups_.size());
  for (const auto& [key, group] : groups_) {
    if (group->retired) continue;
    GroupStatus status;
    status.key = key;
    status.entries = group->JoinedEntries();
    status.subscribers = group->subscriber_count;
    status.polls_committed = group->polls.size();
    status.next_poll = group->next_poll;
    status.health = group->health;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace qss
}  // namespace doem
