#ifndef DOEM_QSS_OPTIONS_H_
#define DOEM_QSS_OPTIONS_H_

#include <cstdint>

#include "chorel/chorel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/executor.h"
#include "qss/health.h"
#include "store/store.h"

namespace doem {
namespace qss {

/// How much history each poll group's DOEM database retains — the
/// space-saving spectrum of Section 6.1.
enum class HistoryRetention {
  /// The full DOEM history since subscription time.
  kFull,
  /// Only the previous snapshot plus the latest delta, like the paper's
  /// first prototype ("supports only two snapshots ... per subscription").
  /// Filter queries can then only see the most recent changes.
  kTwoSnapshots,
};

/// Configuration shared by the layered QSS API (PollGroupManager +
/// SubscriberRegistry) and the QuerySubscriptionService facade. The
/// fifteen-odd knobs are grouped by concern; the old flat field names
/// remain as deprecated reference aliases for one release so existing
/// call sites keep compiling (they bind to the nested storage, so either
/// spelling reads and writes the same value).
struct QssOptions {
  /// Evaluation strategy for filter queries.
  chorel::Strategy strategy = chorel::Strategy::kDirect;
  HistoryRetention retention = HistoryRetention::kFull;
  /// Merge subscriptions with identical polling query and frequency into
  /// one shared DOEM database (Section 6.1, proposal (1)). When false,
  /// every subscriber gets a private poll group.
  bool merge_similar_polls = true;
  /// Deliver notifications with empty results too (default: only
  /// non-empty, as in Example 6.1 where the unchanged poll at t2
  /// notifies nobody).
  bool notify_empty = false;

  /// Query acceleration (DESIGN.md §6c, §6f).
  struct Acceleration {
    /// Maintain each group's Chorel engine caches (the Section 5.1 OEM
    /// encoding and the annotation index) incrementally with each poll's
    /// delta — O(delta) per poll instead of a from-scratch rebuild over
    /// the whole accumulated history. false = ablation baseline. Either
    /// setting yields byte-identical histories, rows, and notifications.
    bool incremental_filter = true;
    /// Seed direct-strategy annotation expressions whose time variables
    /// are range-bounded by the where clause (the QSS shape: T > t[-1])
    /// from the annotation index, instead of scanning every child per
    /// step.
    bool seed_filter_from_index = true;
    /// Debug cross-check: after every poll, verify the incrementally
    /// maintained caches against from-scratch rebuilds; divergence
    /// surfaces as a filter PollError. Slow — for tests.
    bool verify_incremental_filter = false;
    /// Run filter queries on the bytecode VM (DESIGN.md §6f) when they
    /// compile, with tree-walker fallback. Byte-identical histories,
    /// rows, and notifications either way.
    bool vm_filter = true;
    /// Debug cross-check: verify every VM filter evaluation against the
    /// tree walker; divergence surfaces as a filter PollError. Slow —
    /// for tests.
    bool verify_vm_filter = false;
  };

  /// Fault tolerance (the source is autonomous and may fail;
  /// DESIGN.md §6a).
  struct FaultTolerance {
    /// Retry/backoff/deadline policy applied to every scheduled poll.
    RetryPolicy retry;
    /// Quarantine a poll group after this many consecutive failed polls
    /// (circuit breaker). 0 disables quarantine: failed polls keep being
    /// attempted on schedule forever.
    int quarantine_after = 3;
    /// How long a quarantined group sits out before a half-open probe,
    /// in clock ticks. Scheduled polls inside the window are recorded as
    /// MissedPoll; the DOEM history is untouched.
    int64_t quarantine_cooldown_ticks = 2;
    /// Invoked synchronously for every poll, filter-query, store, or
    /// Subscribe failure. When set (or when a PollReport is passed), the
    /// polling entry points return OK on poll failures — the tick always
    /// completes and errors flow through these channels instead.
    ErrorCallback on_error;
    /// Bound on PollHealth::missed: only the most recent N quarantine
    /// skips are kept, older entries are evicted (and tallied in
    /// PollHealth::missed_dropped and the qss.missed_log_dropped
    /// counter). 0 keeps the log unbounded.
    size_t max_missed_log = 64;
  };

  /// Durability (DESIGN.md §6e).
  struct Durability {
    /// Optional durable store (not owned; must outlive the service).
    /// When set, each poll group persists its DOEM history to the
    /// manager's store for the group key: the first Subscribe opens (and
    /// recovers) the store, adopting any committed history — the group
    /// resumes polling at the cadence-preserving next tick after the
    /// last committed poll instead of starting over — and every
    /// committed poll appends one durable record before the tick
    /// returns. A store commit failure does not fail the poll
    /// (availability over durability): it surfaces as a
    /// PollError::Kind::kStore and the store stays broken until
    /// reopened. Histories, rows, and notifications are byte-identical
    /// with or without a store, and across a crash + reopen at any byte
    /// offset.
    store::StoreManager* store = nullptr;
  };

  /// Observability (DESIGN.md §6d).
  struct Observability {
    /// Optional metrics sink (not owned; must outlive the service).
    /// Feeds the qss.*, qss.group.*, and qss.server.* families and is
    /// handed to each group's Chorel engine for the
    /// chorel.*/encoding.*/index.* families. Purely observational:
    /// histories, rows, and notifications are byte-identical with or
    /// without it.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional span recorder (not owned; must outlive the service).
    /// Records qss.advance/poll_now/source_changed top-level spans with
    /// nested per-group prepare (fetch, diff) and commit (apply, filter)
    /// spans, exportable as Chrome trace JSON. Same determinism
    /// guarantee as `metrics`.
    obs::TraceRecorder* trace = nullptr;
    /// Optional structured event log (not owned; must outlive the
    /// service). Poll failures, quarantine transitions, store errors,
    /// subscriber churn, and group lifecycle land here as typed events
    /// (src/obs/log.h), exportable as JSON lines and over the wire via
    /// the server's admin frames. Same determinism guarantee as
    /// `metrics`.
    obs::EventLog* events = nullptr;
  };

  Acceleration acceleration;
  FaultTolerance fault_tolerance;
  Durability durability;
  Observability observability;

  // ---- Concurrency (DESIGN.md §6b) ------------------------------------

  /// Runs the parallelizable stage of every wave of due polls: each
  /// group's fetch (serialized on the source mutex), retry/backoff, and
  /// OEMdiff. Null runs the stage inline on the calling thread. The
  /// commit stage — DOEM apply, filter evaluation, notification fan-out,
  /// and report/health merging — always executes on the calling thread
  /// in group-key order, so any executor yields byte-identical
  /// histories, reports, and notification order to a serial run. Not
  /// owned; must outlive the service. Callbacks (notifications,
  /// on_error) keep firing on the thread that called the polling entry
  /// point.
  Executor* executor = nullptr;

  // ---- Deprecated flat aliases (one release) --------------------------
  // Bound to the nested storage above; reading or writing an alias is
  // exactly reading or writing the grouped field.

  [[deprecated("use acceleration.incremental_filter")]]
  bool& incremental_filter = acceleration.incremental_filter;
  [[deprecated("use acceleration.seed_filter_from_index")]]
  bool& seed_filter_from_index = acceleration.seed_filter_from_index;
  [[deprecated("use acceleration.verify_incremental_filter")]]
  bool& verify_incremental_filter = acceleration.verify_incremental_filter;
  [[deprecated("use acceleration.vm_filter")]]
  bool& vm_filter = acceleration.vm_filter;
  [[deprecated("use acceleration.verify_vm_filter")]]
  bool& verify_vm_filter = acceleration.verify_vm_filter;
  [[deprecated("use fault_tolerance.retry")]]
  RetryPolicy& retry = fault_tolerance.retry;
  [[deprecated("use fault_tolerance.quarantine_after")]]
  int& quarantine_after = fault_tolerance.quarantine_after;
  [[deprecated("use fault_tolerance.quarantine_cooldown_ticks")]]
  int64_t& quarantine_cooldown_ticks = fault_tolerance.quarantine_cooldown_ticks;
  [[deprecated("use fault_tolerance.on_error")]]
  ErrorCallback& on_error = fault_tolerance.on_error;
  [[deprecated("use fault_tolerance.max_missed_log")]]
  size_t& max_missed_log = fault_tolerance.max_missed_log;
  [[deprecated("use durability.store")]]
  store::StoreManager*& store = durability.store;
  [[deprecated("use observability.metrics")]]
  obs::MetricsRegistry*& metrics = observability.metrics;
  [[deprecated("use observability.trace")]]
  obs::TraceRecorder*& trace = observability.trace;

  // The reference aliases would otherwise delete copying (and a
  // defaulted copy would re-bind them to the *source's* subobjects);
  // these copy the nested storage and let the aliases re-bind to the new
  // object's own members via their default initializers. Constructing an
  // alias is not a *use* of the deprecated name, so silence the
  // self-inflicted warnings the initializers would emit.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  QssOptions() = default;
  QssOptions(const QssOptions& o)
      : strategy(o.strategy),
        retention(o.retention),
        merge_similar_polls(o.merge_similar_polls),
        notify_empty(o.notify_empty),
        acceleration(o.acceleration),
        fault_tolerance(o.fault_tolerance),
        durability(o.durability),
        observability(o.observability),
        executor(o.executor) {}
  QssOptions& operator=(const QssOptions& o) {
    strategy = o.strategy;
    retention = o.retention;
    merge_similar_polls = o.merge_similar_polls;
    notify_empty = o.notify_empty;
    acceleration = o.acceleration;
    fault_tolerance = o.fault_tolerance;
    durability = o.durability;
    observability = o.observability;
    executor = o.executor;
    return *this;
  }
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_OPTIONS_H_
