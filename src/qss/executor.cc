#include "qss/executor.h"

namespace doem {
namespace qss {

void SerialExecutor::ParallelFor(size_t n,
                                 const std::function<void(size_t)>& task) {
  for (size_t i = 0; i < n; ++i) task(i);
}

ThreadPoolExecutor::ThreadPoolExecutor(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPoolExecutor::Help(std::unique_lock<std::mutex>& lock) {
  while (batch_.next < batch_.total) {
    size_t index = batch_.next++;
    lock.unlock();
    (*batch_.task)(index);
    lock.lock();
    if (++batch_.completed == batch_.total) done_cv_.notify_all();
  }
}

void ThreadPoolExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stop_ || batch_.next < batch_.total;
    });
    if (stop_) return;
    Help(lock);
  }
}

void ThreadPoolExecutor::ParallelFor(size_t n,
                                     const std::function<void(size_t)>& task) {
  if (n == 0) return;
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  batch_.task = &task;
  batch_.next = 0;
  batch_.total = n;
  batch_.completed = 0;
  work_cv_.notify_all();
  // The caller is a lane too: claim indices alongside the workers, then
  // wait for stragglers still executing theirs.
  Help(lock);
  done_cv_.wait(lock, [this] { return batch_.completed == batch_.total; });
  batch_.task = nullptr;
  batch_.total = 0;
}

}  // namespace qss
}  // namespace doem
