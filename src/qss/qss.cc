#include "qss/qss.h"

namespace doem {
namespace qss {

QuerySubscriptionService::QuerySubscriptionService(InformationSource* source,
                                                   Timestamp start,
                                                   QssOptions options)
    : manager_(source, start, std::move(options)), registry_(&manager_) {}

Status QuerySubscriptionService::Subscribe(const Subscription& sub,
                                           NotificationCallback callback) {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  if (by_name_.contains(sub.name)) {
    Status taken =
        Status::AlreadyExists("subscription '" + sub.name + "' exists");
    const ErrorCallback& on_error =
        manager_.options().fault_tolerance.on_error;
    if (on_error) {
      PollError error;
      error.kind = PollError::Kind::kDuplicateSubscription;
      error.subject = sub.name;
      error.time = manager_.now();
      error.status = taken;
      on_error(error);
    }
    return taken;
  }
  auto handle = registry_.Subscribe(sub, std::move(callback));
  if (!handle.ok()) return handle.status();
  by_name_.emplace(sub.name, *handle);
  return Status::OK();
}

Status QuerySubscriptionService::Unsubscribe(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no subscription '" + name + "'");
  }
  SubscriptionHandle handle = it->second;
  by_name_.erase(it);
  return registry_.Unsubscribe(handle);
}

Status QuerySubscriptionService::AdvanceTo(Timestamp t, PollReport* report) {
  return manager_.AdvanceTo(t, report);
}

Status QuerySubscriptionService::PollNow(const std::string& name,
                                         PollReport* report) {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no subscription '" + name + "'");
  }
  return manager_.PollGroupNow(registry_.GroupOf(it->second), report);
}

Status QuerySubscriptionService::NotifySourceChanged(PollReport* report) {
  return manager_.NotifySourceChanged(report);
}

PollHealth QuerySubscriptionService::Health(const std::string& name) const {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return PollHealth{};
  return manager_.GroupHealth(registry_.GroupOf(it->second));
}

const DoemDatabase* QuerySubscriptionService::History(
    const std::string& name) const {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  PollGroup* group = registry_.GroupOf(it->second);
  return group == nullptr ? nullptr : &group->doem;
}

std::vector<Timestamp> QuerySubscriptionService::PollingTimes(
    const std::string& name) const {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return {};
  return manager_.GroupPollingTimes(registry_.GroupOf(it->second));
}

SubscriptionHandle QuerySubscriptionService::Handle(
    const std::string& name) const {
  std::lock_guard<std::recursive_mutex> lock(manager_.service_mutex());
  auto it = by_name_.find(name);
  return it == by_name_.end() ? SubscriptionHandle{} : it->second;
}

}  // namespace qss
}  // namespace doem
