#ifndef DOEM_QSS_POLL_GROUP_H_
#define DOEM_QSS_POLL_GROUP_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "chorel/chorel.h"
#include "common/result.h"
#include "diff/diff.h"
#include "doem/doem.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/executor.h"
#include "qss/frequency.h"
#include "qss/health.h"
#include "qss/options.h"
#include "qss/source.h"
#include "store/store.h"

namespace doem {
namespace qss {

/// One poll group (Section 6.1, proposal (1)): every subscriber whose
/// polling query and frequency agree shares one DOEM history, one
/// incremental Chorel engine, one optional durable store, and one
/// fetch→diff→apply pipeline. Groups are owned by the PollGroupManager;
/// pointers stay valid from Acquire until the tick after the last
/// subscriber released them (retirement is deferred past any in-flight
/// wave).
struct PollGroup {
  std::string key;
  std::string polling_query;
  FrequencySpec frequency;
  DoemDatabase doem;
  std::vector<Timestamp> polls;
  Timestamp next_poll;
  /// Distinct filter entry names in first-subscribe order, refcounted:
  /// the canonical wrapper carries one root arc per entry, NOT one per
  /// subscriber, so a million-subscriber cohort sharing an entry costs
  /// the history a single arc.
  std::vector<std::pair<std::string, size_t>> entries;
  /// Subscribers attached (across all entries).
  size_t subscriber_count = 0;
  /// Set when the last subscriber left while a wave was in flight; the
  /// group is skipped by scheduling and erased at the end of the tick.
  bool retired = false;
  PollHealth health;
  /// Persistent per-group Chorel engine: its encoding / index caches
  /// survive across polls and are patched with each poll's delta
  /// (QssOptions::Acceleration). References `doem`, whose address is
  /// stable (groups are heap-allocated; the two-snapshot rebase
  /// move-assigns in place).
  std::unique_ptr<chorel::ChorelEngine> engine;
  /// Per-group compiled-filter pool: subscribers sharing one filter text
  /// against this group's engine share one compiled query (and one
  /// evaluation per poll — see SubscriberRegistry::FanOut).
  chorel::CompiledQueryPool filters;
  /// Durable backing store (null when QssOptions::Durability is unset).
  /// Appended from the serial commit phase only.
  std::unique_ptr<store::Store> store;
  /// obs::NowNs at the PreparePoll entry of the poll currently being
  /// committed — the stamp the end-to-end latency attribution
  /// (qss.notify.e2e_ns) measures from. Set by CommitPoll just before
  /// fan-out; only meaningful during the fan-out of that poll.
  int64_t last_prepare_start_ns = 0;

  /// Comma-joined entry names — the `subject` of group-scoped PollErrors.
  std::string JoinedEntries() const;
};

/// Receives the committed polls: evaluates member filters and delivers
/// notifications. Implemented by SubscriberRegistry; the split keeps the
/// manager ignorant of who is listening (what gets polled vs. who gets
/// notified).
class GroupFanout {
 public:
  virtual ~GroupFanout() = default;

  /// Called from the serial commit phase, once per committed poll of
  /// `group` at `t` (after the DOEM apply and the durable-store commit).
  /// Failures fold into `report` (never null) and the on_error callback;
  /// they must not fail the poll.
  virtual void FanOut(PollGroup* group, Timestamp t, PollReport* report) = 0;
};

/// Owner of the "what gets polled" half of QSS: the poll groups, their
/// schedules, the fetch→diff→apply pipeline (Figure 6 steps 1–4), fault
/// tolerance, and durability. Knows nothing about subscribers beyond the
/// refcounted entry names — notification fan-out is delegated to the
/// GroupFanout (Figure 6 steps 5–6).
///
/// Thread model: one recursive service mutex serializes every public
/// entry point (including the registry's and the facade's, which share
/// it via service_mutex()); the parallelism lives inside a wave, where
/// the executor runs the prepare stage for distinct groups concurrently.
/// Notification callbacks fire on the polling thread with the mutex
/// held, so they may re-enter Subscribe/Unsubscribe; a cross-thread
/// Unsubscribe blocks until the tick completes and never observes a
/// half-polled group.
class PollGroupManager {
 public:
  PollGroupManager(InformationSource* source, Timestamp start,
                   QssOptions options = {});

  /// Wires the fan-out sink (normally the SubscriberRegistry). Polls
  /// committed with no fanout set still advance the histories; nobody is
  /// notified.
  void set_fanout(GroupFanout* fanout) { fanout_ = fanout; }

  /// Finds or creates the group for (polling_query, frequency) — or a
  /// private group when merge_similar_polls is off, keyed by
  /// `subscriber_name` — and attaches one subscriber under `entry_name`.
  /// Opening (and recovering) the durable store happens here, on first
  /// acquisition.
  Result<PollGroup*> Acquire(const std::string& polling_query,
                             const FrequencySpec& frequency,
                             const std::string& entry_name,
                             const std::string& subscriber_name);

  /// The existing (non-retired) group for (polling_query, frequency) —
  /// null when none. Does not attach anything: a peek, so callers can
  /// validate against a group's state (e.g. its compiled-filter pool)
  /// before committing to an Acquire with side effects.
  PollGroup* Find(const std::string& polling_query,
                  const FrequencySpec& frequency,
                  const std::string& subscriber_name);

  /// Detaches one subscriber under `entry_name`. The last release
  /// retires the group (immediately, or at the end of the in-flight
  /// tick).
  void Release(PollGroup* group, const std::string& entry_name);

  /// Advances the simulated clock, executing every poll that falls due,
  /// in time order, fan-out delivered synchronously. Groups due at the
  /// same time form a wave whose fetch→diff stage runs on
  /// QssOptions::executor; results commit in group-key order, so the
  /// outcome is independent of the executor (DESIGN.md §6b).
  Status AdvanceTo(Timestamp t, PollReport* report = nullptr);

  /// Explicit-request mode (Section 6): polls one group now, regardless
  /// of its schedule.
  Status PollGroupNow(PollGroup* group, PollReport* report = nullptr);

  /// Source-trigger mode (Section 6): every group that has not already
  /// polled at the current tick polls immediately.
  Status NotifySourceChanged(PollReport* report = nullptr);

  Timestamp now() const;
  size_t GroupCount() const;
  /// Copy of the group's health (the group mutates during ticks).
  PollHealth GroupHealth(const PollGroup* group) const;
  std::vector<Timestamp> GroupPollingTimes(const PollGroup* group) const;

  /// A self-contained status copy of one live group — what the server's
  /// HealthReply serializes per group.
  struct GroupStatus {
    std::string key;
    /// Comma-joined entry names (PollGroup::JoinedEntries).
    std::string entries;
    size_t subscribers = 0;
    /// Committed polls in the group's history.
    size_t polls_committed = 0;
    Timestamp next_poll;
    PollHealth health;
  };
  /// Every non-retired group, in group-key order.
  std::vector<GroupStatus> GroupStatuses() const;

  const QssOptions& options() const { return options_; }

  /// The one lock serializing the whole service surface. Recursive so
  /// notification callbacks can re-enter registration calls on the
  /// polling thread. The registry and the facade lock it for their own
  /// maps, which keeps every cross-layer path on a single-lock order.
  std::recursive_mutex& service_mutex() const { return mu_; }

 private:
  /// The parallelizable half of one scheduled poll, plus everything the
  /// serial commit phase needs to finish it. Produced by PreparePoll
  /// (possibly on an executor thread), consumed by CommitPoll on the
  /// calling thread. Only group-local state (the group's PollHealth) is
  /// touched while preparing; shared state (PollReport, fan-out, the
  /// DOEM database visible through accessors) is only touched at commit.
  struct PreparedPoll {
    PollGroup* group = nullptr;
    Timestamp time;
    /// Skipped inside a quarantine window: commit records a MissedPoll.
    bool quarantined = false;
    std::string missed_reason;
    /// Non-OK: fetch (after retries) or diff failed; commit runs the
    /// failure path (health counters, circuit breaker, PollError).
    Status failure;
    /// U_k, valid when !quarantined && failure.ok().
    ChangeSet delta;
    /// Retries consumed, merged into PollReport::retries at commit
    /// (PollHealth::retries is updated in place while preparing).
    size_t retries = 0;
    int64_t fetch_ns = 0;
    int64_t diff_ns = 0;
    /// obs::NowNs at PreparePoll entry — the origin of the end-to-end
    /// notify-latency attribution.
    int64_t start_ns = 0;
  };

  std::string GroupKey(const std::string& polling_query,
                       const FrequencySpec& frequency,
                       const std::string& subscriber_name) const;

  /// Runs one wave — a set of distinct groups all due at time t, in
  /// group-key order — through PreparePoll (on the executor, when one is
  /// configured and the wave has >1 group) and then CommitPoll for every
  /// group, in wave order. Never fails the caller: errors become
  /// PollReport entries / on_error calls.
  void RunWave(const std::vector<PollGroup*>& wave, Timestamp t,
               PollReport* report);

  /// Stage 1–3 of the pipeline for one group: circuit-breaker check,
  /// fetch with retries/backoff/deadline/validation, canonical wrap, and
  /// OEMdiff against the group's current snapshot. Safe to run
  /// concurrently for *distinct* groups: it mutates only the group's own
  /// state and serializes source access on source_mu_.
  PreparedPoll PreparePoll(PollGroup* group, Timestamp t);

  /// Attempts the source poll itself (with retries, deadline, and
  /// snapshot validation) per the retry policy. Each attempt's Poll and
  /// duration read from one critical section on source_mu_.
  Result<OemDatabase> AttemptPoll(PollGroup* group, Timestamp t,
                                  int max_attempts, PreparedPoll* pending);

  /// Stage 4 on the calling thread: apply (t, U_k) to the DOEM database,
  /// commit to the durable store, then hand the poll to the fan-out.
  void CommitPoll(PreparedPoll* pending, PollReport* report);

  /// Maps accumulated failures to the legacy Status surface: OK when the
  /// caller supplied a report or an on_error callback is configured,
  /// otherwise the first new error of this call.
  Status SettleReport(const PollReport& report, size_t first_new_error,
                      bool caller_has_report) const;

  /// Wraps a polled answer database into canonical form: a fixed root
  /// with one arc per distinct entry name to a fixed container whose
  /// arcs are the answer's. Fixed ids make keyed diffs stable across
  /// polls.
  Result<OemDatabase> CanonicalWrap(const OemDatabase& answer,
                                    const PollGroup& group) const;

  /// Erases groups whose retirement was deferred by an in-flight tick.
  void EraseRetired();
  void EraseGroup(const std::string& key);
  void PublishGroupGauges();

  InformationSource* source_;
  Timestamp now_;
  QssOptions options_;
  DiffMode diff_mode_;
  GroupFanout* fanout_ = nullptr;
  std::map<std::string, std::unique_ptr<PollGroup>> groups_;
  /// Depth of nested polling entry points on the service mutex; group
  /// retirement is deferred while > 0.
  int in_tick_ = 0;
  std::vector<std::string> retired_keys_;

  mutable std::recursive_mutex mu_;

  /// Serializes source access: the InformationSource is shared mutable
  /// state with no thread-safety obligation (see source.h), so each
  /// Poll() plus its LastPollDurationTicks() read is one critical
  /// section. Executor threads contend here only for the fetch itself;
  /// diffing runs outside the lock.
  std::mutex source_mu_;

  /// Instrument handles resolved once at construction (all null without
  /// a registry — every update is guarded). Counters and histograms are
  /// bumped from the serial commit phase; the circuit gauges also from
  /// PreparePoll on executor threads (instrument updates are atomic).
  struct Instruments {
    obs::Counter* polls_attempted = nullptr;
    obs::Counter* polls_ok = nullptr;
    obs::Counter* polls_failed = nullptr;
    obs::Counter* polls_missed = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* quarantine_trips = nullptr;
    obs::Counter* missed_log_dropped = nullptr;
    obs::Gauge* groups = nullptr;
    obs::Gauge* group_count = nullptr;
    obs::Gauge* group_entries = nullptr;
    obs::Gauge* circuits_open = nullptr;
    obs::Gauge* circuits_half_open = nullptr;
    obs::Histogram* fetch_ns = nullptr;
    obs::Histogram* diff_ns = nullptr;
    obs::Histogram* apply_ns = nullptr;
  };
  Instruments ins_;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_POLL_GROUP_H_
