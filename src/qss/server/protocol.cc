#include "qss/server/protocol.h"

#include "store/format.h"

namespace doem {
namespace qss {
namespace server {

namespace {

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFu), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Cursor over a payload; every read checks bounds, so a hostile payload
/// yields a ParseError instead of an out-of-range read.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    if (bytes_.size() - pos_ < 1) return Truncated("u8");
    uint8_t v = static_cast<unsigned char>(bytes_[pos_]);
    pos_ += 1;
    return v;
  }

  Result<uint32_t> U32() {
    if (bytes_.size() - pos_ < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) |
          static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]));
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    DOEM_ASSIGN_OR_RETURN(uint32_t lo, U32());
    DOEM_ASSIGN_OR_RETURN(uint32_t hi, U32());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  Result<int64_t> I64() {
    DOEM_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }

  Result<std::string> String() {
    DOEM_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (bytes_.size() - pos_ < len) return Truncated("string body");
    std::string out(bytes_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  Status Done() const {
    if (pos_ != bytes_.size()) {
      return Status::ParseError("wire payload: " +
                                std::to_string(bytes_.size() - pos_) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) {
    return Status::ParseError(std::string("wire payload: truncated ") + what);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string Frame(MsgType type, std::string_view payload) {
  return store::EncodeFrame(static_cast<uint8_t>(type), payload);
}

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kSubscribe) &&
         type <= static_cast<uint8_t>(MsgType::kTraceDumpReply);
}

}  // namespace

std::string EncodeSubscribe(const SubscribeMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutString(msg.entry, &payload);
  PutU64(static_cast<uint64_t>(msg.interval_ticks), &payload);
  PutString(msg.polling_query, &payload);
  PutString(msg.filter_query, &payload);
  return Frame(MsgType::kSubscribe, payload);
}

std::string EncodeUnsubscribe(const UnsubscribeMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  return Frame(MsgType::kUnsubscribe, payload);
}

std::string EncodeSubscribed(const SubscribedMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutU64(msg.handle, &payload);
  return Frame(MsgType::kSubscribed, payload);
}

std::string EncodeUnsubscribed(const UnsubscribedMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  return Frame(MsgType::kUnsubscribed, payload);
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutString(msg.kind, &payload);
  PutString(msg.message, &payload);
  return Frame(MsgType::kError, payload);
}

std::string EncodeNotification(const NotificationMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutU64(static_cast<uint64_t>(msg.poll_time.ticks), &payload);
  PutU64(msg.poll_index, &payload);
  PutString(msg.rows, &payload);
  return Frame(MsgType::kNotification, payload);
}

std::string EncodeStatsRequest(const StatsRequestMsg& msg) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.format), &payload);
  return Frame(MsgType::kStatsRequest, payload);
}

std::string EncodeStatsReply(const StatsReplyMsg& msg) {
  std::string payload;
  PutU8(static_cast<uint8_t>(msg.format), &payload);
  PutString(msg.body, &payload);
  PutU64(static_cast<uint64_t>(msg.interval_ns), &payload);
  PutString(msg.rates_json, &payload);
  return Frame(MsgType::kStatsReply, payload);
}

std::string EncodeHealthRequest(const HealthRequestMsg&) {
  return Frame(MsgType::kHealthRequest, {});
}

namespace {

void PutGroupHealth(const GroupHealthMsg& g, std::string* payload) {
  PutString(g.key, payload);
  PutString(g.entries, payload);
  PutU64(g.subscribers, payload);
  PutU64(g.polls_committed, payload);
  PutU64(static_cast<uint64_t>(g.next_poll.ticks), payload);
  PutU8(static_cast<uint8_t>(g.circuit), payload);
  PutU64(g.consecutive_failures, payload);
  PutString(g.last_error, payload);
  PutU64(g.polls_attempted, payload);
  PutU64(g.polls_succeeded, payload);
  PutU64(g.polls_failed, payload);
  PutU64(g.retries, payload);
  PutU64(static_cast<uint64_t>(g.backoff_ticks), payload);
  PutU64(static_cast<uint64_t>(g.quarantined_until.ticks), payload);
  PutU32(static_cast<uint32_t>(g.missed.size()), payload);
  for (const MissedPoll& m : g.missed) {
    PutU64(static_cast<uint64_t>(m.time.ticks), payload);
    PutString(m.reason, payload);
  }
  PutU64(g.missed_dropped, payload);
  PutU64(static_cast<uint64_t>(g.last_poll.fetch_ns), payload);
  PutU64(static_cast<uint64_t>(g.last_poll.diff_ns), payload);
  PutU64(static_cast<uint64_t>(g.last_poll.apply_ns), payload);
  PutU64(static_cast<uint64_t>(g.last_poll.filter_ns), payload);
  PutU64(static_cast<uint64_t>(g.last_poll.fanout_ns), payload);
  PutU64(static_cast<uint64_t>(g.last_poll.wire_ns), payload);
  PutU64(static_cast<uint64_t>(g.last_poll.e2e_ns), payload);
}

Result<GroupHealthMsg> ReadGroupHealth(Reader* r) {
  GroupHealthMsg g;
  DOEM_ASSIGN_OR_RETURN(g.key, r->String());
  DOEM_ASSIGN_OR_RETURN(g.entries, r->String());
  DOEM_ASSIGN_OR_RETURN(g.subscribers, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.polls_committed, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.next_poll.ticks, r->I64());
  DOEM_ASSIGN_OR_RETURN(uint8_t circuit, r->U8());
  if (circuit > static_cast<uint8_t>(CircuitState::kHalfOpen)) {
    return Status::ParseError("wire payload: bad circuit state " +
                              std::to_string(circuit));
  }
  g.circuit = static_cast<CircuitState>(circuit);
  DOEM_ASSIGN_OR_RETURN(g.consecutive_failures, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.last_error, r->String());
  DOEM_ASSIGN_OR_RETURN(g.polls_attempted, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.polls_succeeded, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.polls_failed, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.retries, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.backoff_ticks, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.quarantined_until.ticks, r->I64());
  DOEM_ASSIGN_OR_RETURN(uint32_t missed_count, r->U32());
  g.missed.reserve(missed_count);
  for (uint32_t i = 0; i < missed_count; ++i) {
    MissedPoll m;
    DOEM_ASSIGN_OR_RETURN(m.time.ticks, r->I64());
    DOEM_ASSIGN_OR_RETURN(m.reason, r->String());
    g.missed.push_back(std::move(m));
  }
  DOEM_ASSIGN_OR_RETURN(g.missed_dropped, r->U64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.fetch_ns, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.diff_ns, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.apply_ns, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.filter_ns, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.fanout_ns, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.wire_ns, r->I64());
  DOEM_ASSIGN_OR_RETURN(g.last_poll.e2e_ns, r->I64());
  return g;
}

}  // namespace

std::string EncodeHealthReply(const HealthReplyMsg& msg) {
  std::string payload;
  PutU64(static_cast<uint64_t>(msg.now.ticks), &payload);
  PutU32(static_cast<uint32_t>(msg.groups.size()), &payload);
  for (const GroupHealthMsg& g : msg.groups) PutGroupHealth(g, &payload);
  return Frame(MsgType::kHealthReply, payload);
}

std::string EncodeTraceDumpRequest(const TraceDumpRequestMsg&) {
  return Frame(MsgType::kTraceDumpRequest, {});
}

std::string EncodeTraceDumpReply(const TraceDumpReplyMsg& msg) {
  std::string payload;
  PutU64(msg.events, &payload);
  PutU64(msg.dropped, &payload);
  PutString(msg.chrome_json, &payload);
  return Frame(MsgType::kTraceDumpReply, payload);
}

Result<SubscribeMsg> DecodeSubscribe(std::string_view payload) {
  Reader r(payload);
  SubscribeMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.entry, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.interval_ticks, r.I64());
  DOEM_ASSIGN_OR_RETURN(msg.polling_query, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.filter_query, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<UnsubscribeMsg> DecodeUnsubscribe(std::string_view payload) {
  Reader r(payload);
  UnsubscribeMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<SubscribedMsg> DecodeSubscribed(std::string_view payload) {
  Reader r(payload);
  SubscribedMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.handle, r.U64());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<UnsubscribedMsg> DecodeUnsubscribed(std::string_view payload) {
  Reader r(payload);
  UnsubscribedMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  Reader r(payload);
  ErrorMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.kind, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.message, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<NotificationMsg> DecodeNotification(std::string_view payload) {
  Reader r(payload);
  NotificationMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.poll_time.ticks, r.I64());
  DOEM_ASSIGN_OR_RETURN(msg.poll_index, r.U64());
  DOEM_ASSIGN_OR_RETURN(msg.rows, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<StatsRequestMsg> DecodeStatsRequest(std::string_view payload) {
  Reader r(payload);
  StatsRequestMsg msg;
  DOEM_ASSIGN_OR_RETURN(uint8_t format, r.U8());
  if (format > static_cast<uint8_t>(StatsFormat::kJson)) {
    return Status::ParseError("wire payload: bad stats format " +
                              std::to_string(format));
  }
  msg.format = static_cast<StatsFormat>(format);
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<StatsReplyMsg> DecodeStatsReply(std::string_view payload) {
  Reader r(payload);
  StatsReplyMsg msg;
  DOEM_ASSIGN_OR_RETURN(uint8_t format, r.U8());
  if (format > static_cast<uint8_t>(StatsFormat::kJson)) {
    return Status::ParseError("wire payload: bad stats format " +
                              std::to_string(format));
  }
  msg.format = static_cast<StatsFormat>(format);
  DOEM_ASSIGN_OR_RETURN(msg.body, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.interval_ns, r.I64());
  DOEM_ASSIGN_OR_RETURN(msg.rates_json, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<HealthRequestMsg> DecodeHealthRequest(std::string_view payload) {
  Reader r(payload);
  DOEM_RETURN_IF_ERROR(r.Done());
  return HealthRequestMsg{};
}

Result<HealthReplyMsg> DecodeHealthReply(std::string_view payload) {
  Reader r(payload);
  HealthReplyMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.now.ticks, r.I64());
  DOEM_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  msg.groups.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DOEM_ASSIGN_OR_RETURN(GroupHealthMsg g, ReadGroupHealth(&r));
    msg.groups.push_back(std::move(g));
  }
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<TraceDumpRequestMsg> DecodeTraceDumpRequest(std::string_view payload) {
  Reader r(payload);
  DOEM_RETURN_IF_ERROR(r.Done());
  return TraceDumpRequestMsg{};
}

Result<TraceDumpReplyMsg> DecodeTraceDumpReply(std::string_view payload) {
  Reader r(payload);
  TraceDumpReplyMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.events, r.U64());
  DOEM_ASSIGN_OR_RETURN(msg.dropped, r.U64());
  DOEM_ASSIGN_OR_RETURN(msg.chrome_json, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Status FrameBuffer::Feed(std::string_view bytes) {
  DOEM_RETURN_IF_ERROR(error_);
  buffer_.append(bytes);
  while (true) {
    store::DecodedFrame frame;
    std::string reason;
    store::DecodeOutcome outcome = store::DecodeFrameAt(
        buffer_, offset_, kMaxWireFrameLength, &frame, &reason);
    if (outcome == store::DecodeOutcome::kTorn) break;
    if (outcome == store::DecodeOutcome::kCorrupt ||
        !KnownType(frame.type)) {
      error_ = Status::ParseError(
          "corrupt wire frame: " +
          (outcome == store::DecodeOutcome::kCorrupt
               ? reason
               : "unknown message type " + std::to_string(frame.type)));
      return error_;
    }
    WireFrame out;
    out.type = static_cast<MsgType>(frame.type);
    out.payload = std::string(frame.payload);
    ready_.push_back(std::move(out));
    offset_ = frame.end;
  }
  // Compact consumed bytes so a long-lived connection's buffer stays
  // bounded by one torn tail.
  if (offset_ > 0) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  return Status::OK();
}

bool FrameBuffer::Next(WireFrame* out) {
  if (next_ready_ >= ready_.size()) {
    ready_.clear();
    next_ready_ = 0;
    return false;
  }
  *out = std::move(ready_[next_ready_++]);
  if (next_ready_ >= ready_.size()) {
    ready_.clear();
    next_ready_ = 0;
  }
  return true;
}

}  // namespace server
}  // namespace qss
}  // namespace doem
