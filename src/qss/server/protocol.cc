#include "qss/server/protocol.h"

#include "store/format.h"

namespace doem {
namespace qss {
namespace server {

namespace {

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(uint64_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFu), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Cursor over a payload; every read checks bounds, so a hostile payload
/// yields a ParseError instead of an out-of-range read.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint32_t> U32() {
    if (bytes_.size() - pos_ < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) |
          static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]));
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    DOEM_ASSIGN_OR_RETURN(uint32_t lo, U32());
    DOEM_ASSIGN_OR_RETURN(uint32_t hi, U32());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  Result<int64_t> I64() {
    DOEM_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }

  Result<std::string> String() {
    DOEM_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (bytes_.size() - pos_ < len) return Truncated("string body");
    std::string out(bytes_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  Status Done() const {
    if (pos_ != bytes_.size()) {
      return Status::ParseError("wire payload: " +
                                std::to_string(bytes_.size() - pos_) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) {
    return Status::ParseError(std::string("wire payload: truncated ") + what);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string Frame(MsgType type, std::string_view payload) {
  return store::EncodeFrame(static_cast<uint8_t>(type), payload);
}

bool KnownType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kSubscribe) &&
         type <= static_cast<uint8_t>(MsgType::kNotification);
}

}  // namespace

std::string EncodeSubscribe(const SubscribeMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutString(msg.entry, &payload);
  PutU64(static_cast<uint64_t>(msg.interval_ticks), &payload);
  PutString(msg.polling_query, &payload);
  PutString(msg.filter_query, &payload);
  return Frame(MsgType::kSubscribe, payload);
}

std::string EncodeUnsubscribe(const UnsubscribeMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  return Frame(MsgType::kUnsubscribe, payload);
}

std::string EncodeSubscribed(const SubscribedMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutU64(msg.handle, &payload);
  return Frame(MsgType::kSubscribed, payload);
}

std::string EncodeUnsubscribed(const UnsubscribedMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  return Frame(MsgType::kUnsubscribed, payload);
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutString(msg.kind, &payload);
  PutString(msg.message, &payload);
  return Frame(MsgType::kError, payload);
}

std::string EncodeNotification(const NotificationMsg& msg) {
  std::string payload;
  PutString(msg.name, &payload);
  PutU64(static_cast<uint64_t>(msg.poll_time.ticks), &payload);
  PutU64(msg.poll_index, &payload);
  PutString(msg.rows, &payload);
  return Frame(MsgType::kNotification, payload);
}

Result<SubscribeMsg> DecodeSubscribe(std::string_view payload) {
  Reader r(payload);
  SubscribeMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.entry, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.interval_ticks, r.I64());
  DOEM_ASSIGN_OR_RETURN(msg.polling_query, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.filter_query, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<UnsubscribeMsg> DecodeUnsubscribe(std::string_view payload) {
  Reader r(payload);
  UnsubscribeMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<SubscribedMsg> DecodeSubscribed(std::string_view payload) {
  Reader r(payload);
  SubscribedMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.handle, r.U64());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<UnsubscribedMsg> DecodeUnsubscribed(std::string_view payload) {
  Reader r(payload);
  UnsubscribedMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  Reader r(payload);
  ErrorMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.kind, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.message, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Result<NotificationMsg> DecodeNotification(std::string_view payload) {
  Reader r(payload);
  NotificationMsg msg;
  DOEM_ASSIGN_OR_RETURN(msg.name, r.String());
  DOEM_ASSIGN_OR_RETURN(msg.poll_time.ticks, r.I64());
  DOEM_ASSIGN_OR_RETURN(msg.poll_index, r.U64());
  DOEM_ASSIGN_OR_RETURN(msg.rows, r.String());
  DOEM_RETURN_IF_ERROR(r.Done());
  return msg;
}

Status FrameBuffer::Feed(std::string_view bytes) {
  DOEM_RETURN_IF_ERROR(error_);
  buffer_.append(bytes);
  while (true) {
    store::DecodedFrame frame;
    std::string reason;
    store::DecodeOutcome outcome = store::DecodeFrameAt(
        buffer_, offset_, kMaxWireFrameLength, &frame, &reason);
    if (outcome == store::DecodeOutcome::kTorn) break;
    if (outcome == store::DecodeOutcome::kCorrupt ||
        !KnownType(frame.type)) {
      error_ = Status::ParseError(
          "corrupt wire frame: " +
          (outcome == store::DecodeOutcome::kCorrupt
               ? reason
               : "unknown message type " + std::to_string(frame.type)));
      return error_;
    }
    WireFrame out;
    out.type = static_cast<MsgType>(frame.type);
    out.payload = std::string(frame.payload);
    ready_.push_back(std::move(out));
    offset_ = frame.end;
  }
  // Compact consumed bytes so a long-lived connection's buffer stays
  // bounded by one torn tail.
  if (offset_ > 0) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  return Status::OK();
}

bool FrameBuffer::Next(WireFrame* out) {
  if (next_ready_ >= ready_.size()) {
    ready_.clear();
    next_ready_ = 0;
    return false;
  }
  *out = std::move(ready_[next_ready_++]);
  if (next_ready_ >= ready_.size()) {
    ready_.clear();
    next_ready_ = 0;
  }
  return true;
}

}  // namespace server
}  // namespace qss
}  // namespace doem
