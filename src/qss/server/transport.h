#ifndef DOEM_QSS_SERVER_TRANSPORT_H_
#define DOEM_QSS_SERVER_TRANSPORT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace doem {
namespace qss {
namespace server {

/// Receives raw bytes from a transport. Implemented by the server (per
/// connection) and by the client.
using ByteSink = std::function<void(std::string_view)>;

/// An in-process, deterministic stand-in for one client⇔server socket:
/// two directional byte queues with *explicit* delivery. Nothing moves
/// until a Pump call, and Pump's `max_bytes` chops the stream at any
/// byte offset — so tests exercise exactly the fragmentation and
/// coalescing a real TCP stream produces, without sockets, threads, or
/// timing. A real transport would replace this class and nothing else:
/// the server and client only ever see ByteSink callbacks and send
/// functions.
class LoopbackPipe {
 public:
  void set_server_sink(ByteSink sink) { to_server_sink_ = std::move(sink); }
  void set_client_sink(ByteSink sink) { to_client_sink_ = std::move(sink); }

  /// Queues bytes in the client→server direction.
  void ClientSend(std::string_view bytes) { to_server_.append(bytes); }
  /// Queues bytes in the server→client direction.
  void ServerSend(std::string_view bytes) { to_client_.append(bytes); }

  /// Delivers up to `max_bytes` queued client→server bytes to the server
  /// sink (0 = everything). Returns bytes delivered.
  size_t PumpToServer(size_t max_bytes = 0);
  /// Delivers up to `max_bytes` queued server→client bytes to the client
  /// sink (0 = everything). Returns bytes delivered.
  size_t PumpToClient(size_t max_bytes = 0);

  /// Pumps both directions until no bytes remain queued — the settled
  /// state after a request/response exchange. Returns total bytes moved.
  size_t PumpAll();

  size_t pending_to_server() const { return to_server_.size(); }
  size_t pending_to_client() const { return to_client_.size(); }

 private:
  static size_t Pump(std::string* queue, const ByteSink& sink,
                     size_t max_bytes);

  std::string to_server_;
  std::string to_client_;
  ByteSink to_server_sink_;
  ByteSink to_client_sink_;
};

}  // namespace server
}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_SERVER_TRANSPORT_H_
