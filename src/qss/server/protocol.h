#ifndef DOEM_QSS_SERVER_PROTOCOL_H_
#define DOEM_QSS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "oem/timestamp.h"
#include "qss/health.h"

namespace doem {
namespace qss {
namespace server {

/// The QSS wire protocol (DESIGN.md §6g): a long-lived byte stream per
/// client carrying length-prefixed, CRC32-checksummed frames — the same
/// frame shape as the durable store's log records
/// (store::EncodeFrame/DecodeFrameAt), because a torn TCP read and a
/// torn file tail are the same condition:
///
///   | length u32 | crc32 u32 | msg type byte | payload |
///
/// Fixed-width payload fields are little-endian; strings are u32-length-
/// prefixed bytes. Clients send kSubscribe/kUnsubscribe; the server
/// replies kSubscribed/kUnsubscribed/kError and pushes kNotification
/// frames as polls commit. Names are scoped per connection.
///
/// Any connection may also send the admin requests (DESIGN.md §6h):
/// kStatsRequest (a metrics snapshot + interval rates), kHealthRequest
/// (per-poll-group PollHealth incl. last-poll phase timings), and
/// kTraceDumpRequest (drains the Chrome-trace buffer). When the
/// corresponding sink is not configured the server answers kError with
/// kind "unavailable"; the connection stays up.

/// Upper bound on one frame's declared length: a hostile peer's length
/// field must not make the receiver buffer unbounded memory. Generous
/// enough for any notification the repo's sources produce.
inline constexpr uint32_t kMaxWireFrameLength = 1u << 24;

enum class MsgType : uint8_t {
  /// client → server: register a subscription.
  kSubscribe = 1,
  /// client → server: remove a subscription by name.
  kUnsubscribe = 2,
  /// server → client: subscription accepted; carries the registry handle.
  kSubscribed = 3,
  /// server → client: unsubscribed.
  kUnsubscribed = 4,
  /// server → client: a request failed; carries the PollError kind name
  /// and the status message. The connection stays up.
  kError = 5,
  /// server → client: a filter fired at a poll.
  kNotification = 6,
  /// client → server: ask for a metrics snapshot (+ interval rates).
  kStatsRequest = 7,
  /// server → client: the snapshot.
  kStatsReply = 8,
  /// client → server: ask for per-poll-group health.
  kHealthRequest = 9,
  /// server → client: the health report.
  kHealthReply = 10,
  /// client → server: drain the trace buffer.
  kTraceDumpRequest = 11,
  /// server → client: the Chrome-trace JSON drained.
  kTraceDumpReply = 12,
};

struct SubscribeMsg {
  std::string name;
  /// Filter entry label; empty = name (see qss::Subscription::entry).
  std::string entry;
  int64_t interval_ticks = 0;
  std::string polling_query;
  std::string filter_query;
};

struct UnsubscribeMsg {
  std::string name;
};

struct SubscribedMsg {
  std::string name;
  uint64_t handle = 0;
};

struct UnsubscribedMsg {
  std::string name;
};

struct ErrorMsg {
  /// The subscription name the request was about (may be empty for
  /// connection-level errors).
  std::string name;
  /// PollErrorKindToString of the failure class, e.g.
  /// "duplicate-subscription", "bad-filter-query".
  std::string kind;
  std::string message;
};

struct NotificationMsg {
  std::string name;
  Timestamp poll_time;
  uint64_t poll_index = 0;
  /// lorel::QueryResult::RowsToString() of the filter result — the same
  /// bytes an in-process subscriber would render, so twin runs can
  /// compare the two transports byte for byte.
  std::string rows;
};

enum class StatsFormat : uint8_t {
  /// Prometheus text exposition (MetricsRegistry::ExportPrometheus).
  kPrometheus = 0,
  /// JSON (MetricsRegistry::ExportJson).
  kJson = 1,
};

struct StatsRequestMsg {
  StatsFormat format = StatsFormat::kPrometheus;
};

struct StatsReplyMsg {
  /// Echo of the requested format; `body` is in it.
  StatsFormat format = StatsFormat::kPrometheus;
  /// Full registry exposition (cumulative values).
  std::string body;
  /// Wall nanoseconds since the previous stats request from any client
  /// (or since the server started) — the span `rates_json` covers.
  int64_t interval_ns = 0;
  /// MetricsSnapshotter::Interval::ToJson(): counter and histogram-count
  /// deltas over the interval, plus gauge levels.
  std::string rates_json;
};

struct HealthRequestMsg {};

/// One poll group's health on the wire — PollGroupManager::GroupStatus
/// flattened, with PollPhaseLatency carried field by field.
struct GroupHealthMsg {
  std::string key;
  /// Comma-joined entry names.
  std::string entries;
  uint64_t subscribers = 0;
  uint64_t polls_committed = 0;
  Timestamp next_poll;
  CircuitState circuit = CircuitState::kClosed;
  uint64_t consecutive_failures = 0;
  std::string last_error;
  uint64_t polls_attempted = 0;
  uint64_t polls_succeeded = 0;
  uint64_t polls_failed = 0;
  uint64_t retries = 0;
  int64_t backoff_ticks = 0;
  Timestamp quarantined_until;
  std::vector<MissedPoll> missed;
  uint64_t missed_dropped = 0;
  /// Phase timings of the group's most recent poll.
  PollPhaseLatency last_poll;
};

struct HealthReplyMsg {
  /// The service clock (simulated) at reply time.
  Timestamp now;
  /// Every live group, in group-key order.
  std::vector<GroupHealthMsg> groups;
};

struct TraceDumpRequestMsg {};

struct TraceDumpReplyMsg {
  /// Spans in `chrome_json` / dropped by the recorder's bound before
  /// this dump. The recorder is cleared by the dump: each reply carries
  /// only spans since the previous one.
  uint64_t events = 0;
  uint64_t dropped = 0;
  std::string chrome_json;
};

// ---- Encoding (always succeeds) --------------------------------------------

std::string EncodeSubscribe(const SubscribeMsg& msg);
std::string EncodeUnsubscribe(const UnsubscribeMsg& msg);
std::string EncodeSubscribed(const SubscribedMsg& msg);
std::string EncodeUnsubscribed(const UnsubscribedMsg& msg);
std::string EncodeError(const ErrorMsg& msg);
std::string EncodeNotification(const NotificationMsg& msg);
std::string EncodeStatsRequest(const StatsRequestMsg& msg);
std::string EncodeStatsReply(const StatsReplyMsg& msg);
std::string EncodeHealthRequest(const HealthRequestMsg& msg);
std::string EncodeHealthReply(const HealthReplyMsg& msg);
std::string EncodeTraceDumpRequest(const TraceDumpRequestMsg& msg);
std::string EncodeTraceDumpReply(const TraceDumpReplyMsg& msg);

// ---- Decoding (payload only; the frame is already verified) ----------------

Result<SubscribeMsg> DecodeSubscribe(std::string_view payload);
Result<UnsubscribeMsg> DecodeUnsubscribe(std::string_view payload);
Result<SubscribedMsg> DecodeSubscribed(std::string_view payload);
Result<UnsubscribedMsg> DecodeUnsubscribed(std::string_view payload);
Result<ErrorMsg> DecodeError(std::string_view payload);
Result<NotificationMsg> DecodeNotification(std::string_view payload);
Result<StatsRequestMsg> DecodeStatsRequest(std::string_view payload);
Result<StatsReplyMsg> DecodeStatsReply(std::string_view payload);
Result<HealthRequestMsg> DecodeHealthRequest(std::string_view payload);
Result<HealthReplyMsg> DecodeHealthReply(std::string_view payload);
Result<TraceDumpRequestMsg> DecodeTraceDumpRequest(std::string_view payload);
Result<TraceDumpReplyMsg> DecodeTraceDumpReply(std::string_view payload);

/// One verified frame off the wire.
struct WireFrame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Reassembles frames from an arbitrarily fragmented byte stream: feed
/// every received chunk to Feed(), pop complete frames with Next(). A
/// torn frame waits for more bytes; a corrupt frame (bad checksum,
/// oversized or zero length, unknown type byte) poisons the buffer — the
/// stream cannot be resynchronized, so the connection must be dropped.
class FrameBuffer {
 public:
  /// Appends received bytes. Returns non-OK (and poisons the buffer) on
  /// a corrupt frame.
  Status Feed(std::string_view bytes);

  /// Pops the next complete frame into `*out`; false when only a torn
  /// tail (or nothing) remains.
  bool Next(WireFrame* out);

  bool poisoned() const { return !error_.ok(); }
  const Status& error() const { return error_; }

 private:
  std::string buffer_;
  uint64_t offset_ = 0;
  std::vector<WireFrame> ready_;
  size_t next_ready_ = 0;
  Status error_;
};

}  // namespace server
}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_SERVER_PROTOCOL_H_
