#include "qss/server/transport.h"

#include <algorithm>
#include <utility>

namespace doem {
namespace qss {
namespace server {

size_t LoopbackPipe::Pump(std::string* queue, const ByteSink& sink,
                          size_t max_bytes) {
  if (queue->empty() || !sink) return 0;
  size_t n = max_bytes == 0 ? queue->size() : std::min(max_bytes,
                                                       queue->size());
  // Detach the chunk before delivering: the sink may send a reply, which
  // appends to the *other* queue, but re-entrant sends to this queue
  // (server pushing during its own receive) must land after the bytes in
  // flight.
  std::string chunk = queue->substr(0, n);
  queue->erase(0, n);
  sink(chunk);
  return n;
}

size_t LoopbackPipe::PumpToServer(size_t max_bytes) {
  return Pump(&to_server_, to_server_sink_, max_bytes);
}

size_t LoopbackPipe::PumpToClient(size_t max_bytes) {
  return Pump(&to_client_, to_client_sink_, max_bytes);
}

size_t LoopbackPipe::PumpAll() {
  size_t total = 0;
  while (true) {
    size_t moved = PumpToServer() + PumpToClient();
    if (moved == 0) break;
    total += moved;
  }
  return total;
}

}  // namespace server
}  // namespace qss
}  // namespace doem
