#include "qss/server/server.h"

#include <utility>

#include "obs/clock.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace doem {
namespace qss {
namespace server {

namespace {

void Count(obs::Counter* c, uint64_t by = 1) {
  if (c != nullptr && by > 0) c->Increment(by);
}

void SetGauge(obs::Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}

void Observe(obs::Histogram* h, int64_t v) {
  if (h != nullptr) h->Observe(v);
}

obs::EventLog* Events(SubscriberRegistry* registry) {
  return registry->manager()->options().observability.events;
}

// Maps a Subscribe failure back to its PollError kind name for the
// error frame. The registry formats these statuses with fixed prefixes
// (the same strings the legacy API returned), so the prefix *is* the
// classification.
std::string ClassifySubscribeError(const std::string& message) {
  if (message.rfind("polling query", 0) == 0) {
    return PollErrorKindToString(PollError::Kind::kBadPollingQuery);
  }
  if (message.rfind("filter query", 0) == 0) {
    return PollErrorKindToString(PollError::Kind::kBadFilterQuery);
  }
  if (message.rfind("durable store", 0) == 0) {
    return PollErrorKindToString(PollError::Kind::kStore);
  }
  return PollErrorKindToString(PollError::Kind::kPoll);
}

}  // namespace

QssServer::QssServer(SubscriberRegistry* registry) : registry_(registry) {
  obs::MetricsRegistry* m =
      registry_->manager()->options().observability.metrics;
  if (m == nullptr) return;
  ins_.connections =
      m->GetGauge("qss.server.connections", "client connections attached");
  ins_.frames_in = m->GetCounter("qss.server.frames_in",
                                 "wire frames received from clients");
  ins_.frames_out =
      m->GetCounter("qss.server.frames_out", "wire frames sent to clients");
  ins_.subscribes_ok = m->GetCounter("qss.server.subscribes_ok",
                                     "subscribe requests accepted");
  ins_.subscribes_rejected = m->GetCounter(
      "qss.server.subscribes_rejected",
      "subscribe requests rejected (duplicate name or bad query)");
  ins_.unsubscribes =
      m->GetCounter("qss.server.unsubscribes", "unsubscribe requests honored");
  ins_.notifications = m->GetCounter(
      "qss.server.notifications", "notification frames pushed to clients");
  ins_.protocol_errors = m->GetCounter(
      "qss.server.protocol_errors",
      "connections dropped for unrecoverable wire-protocol errors");
  ins_.stats_requests =
      m->GetCounter("qss.server.stats_requests", "stats requests served");
  ins_.health_requests =
      m->GetCounter("qss.server.health_requests", "health requests served");
  ins_.trace_dumps =
      m->GetCounter("qss.server.trace_dumps", "trace-dump requests served");
  ins_.wire_ns = m->GetHistogram(
      "qss.server.wire_ns", obs::LatencyBucketsNs(),
      "Per-notification wire framing + transport hand-off latency");
  snapshotter_.emplace(m);
}

QssServer::~QssServer() {
  while (!connections_.empty()) {
    Detach(connections_.begin()->first);
  }
}

QssServer::ConnectionId QssServer::Attach(ByteSink send) {
  ConnectionId id = next_id_++;
  Connection& conn = connections_[id];
  conn.send = std::move(send);
  SetGauge(ins_.connections, static_cast<int64_t>(connections_.size()));
  DOEM_LOG_EVENT(Events(registry_), obs::EventType::kConnectionOpened,
                 obs::EventSeverity::kInfo, registry_->manager()->now(),
                 "conn#" + std::to_string(id), "");
  return id;
}

void QssServer::Send(Connection* conn, std::string bytes) {
  if (conn->send) conn->send(bytes);
  Count(ins_.frames_out);
}

void QssServer::SendError(Connection* conn, const std::string& name,
                          const std::string& kind,
                          const std::string& message) {
  ErrorMsg msg;
  msg.name = name;
  msg.kind = kind;
  msg.message = message;
  Send(conn, EncodeError(msg));
}

void QssServer::Close(ConnectionId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  // Release in registration order; each Unsubscribe may retire a group.
  for (const auto& [name, handle] : it->second.subs) {
    (void)registry_->Unsubscribe(handle);
  }
  size_t released = it->second.subs.size();
  connections_.erase(it);
  SetGauge(ins_.connections, static_cast<int64_t>(connections_.size()));
  DOEM_LOG_EVENT(Events(registry_), obs::EventType::kConnectionClosed,
                 obs::EventSeverity::kInfo, registry_->manager()->now(),
                 "conn#" + std::to_string(id),
                 "released " + std::to_string(released) + " subscription(s)");
}

void QssServer::Fail(ConnectionId id, Connection* conn, const Status& error) {
  Count(ins_.protocol_errors);
  DOEM_LOG_EVENT(Events(registry_), obs::EventType::kFramePoisoned,
                 obs::EventSeverity::kError, registry_->manager()->now(),
                 "conn#" + std::to_string(id), error.message());
  SendError(conn, "", "protocol", error.message());
  Close(id);
}

void QssServer::Detach(ConnectionId id) { Close(id); }

bool QssServer::Connected(ConnectionId id) const {
  return connections_.contains(id);
}

size_t QssServer::ConnectionCount() const { return connections_.size(); }

size_t QssServer::SubscriptionCount(ConnectionId id) const {
  auto it = connections_.find(id);
  return it == connections_.end() ? 0 : it->second.subs.size();
}

void QssServer::HandleSubscribe(ConnectionId id, Connection* conn,
                                const SubscribeMsg& msg) {
  if (conn->subs.contains(msg.name)) {
    Count(ins_.subscribes_rejected);
    SendError(conn, msg.name,
              PollErrorKindToString(PollError::Kind::kDuplicateSubscription),
              "subscription '" + msg.name + "' exists");
    return;
  }
  Subscription sub;
  sub.name = msg.name;
  sub.entry = msg.entry;
  sub.frequency.interval_ticks = msg.interval_ticks < 1 ? 1
                                                        : msg.interval_ticks;
  sub.polling_query = msg.polling_query;
  sub.filter_query = msg.filter_query;
  std::string name = msg.name;
  // The callback fires inside polling entry points, under the service
  // mutex; the connection may have closed by then (Detach unsubscribes,
  // so normally it cannot), hence the liveness lookup.
  auto handle = registry_->Subscribe(
      sub, [this, id, name](const Notification& n) {
        auto cit = connections_.find(id);
        if (cit == connections_.end()) return;
        // The wire segment of the e2e decomposition: framing + handing
        // the bytes to the transport, measured here because it runs
        // inside the registry's callback (so qss.notify.e2e_ns, observed
        // after the callback returns, includes it).
        int64_t wire_start = obs::NowNs();
        NotificationMsg push;
        push.name = name;
        push.poll_time = n.poll_time;
        push.poll_index = n.poll_index;
        push.rows = n.result.RowsToString();
        Send(&cit->second, EncodeNotification(push));
        Count(ins_.notifications);
        int64_t wire_ns = obs::ElapsedNs(wire_start);
        Observe(ins_.wire_ns, wire_ns);
        // Safe under the (recursive) service mutex the callback runs in.
        if (PollGroup* group = registry_->GroupOf(n.handle)) {
          group->health.last_poll.wire_ns += wire_ns;
        }
      });
  if (!handle.ok()) {
    Count(ins_.subscribes_rejected);
    SendError(conn, msg.name, ClassifySubscribeError(handle.status().message()),
              handle.status().message());
    return;
  }
  conn->subs.emplace(msg.name, *handle);
  Count(ins_.subscribes_ok);
  SubscribedMsg ok;
  ok.name = msg.name;
  ok.handle = handle->id;
  Send(conn, EncodeSubscribed(ok));
}

void QssServer::HandleUnsubscribe(ConnectionId /*id*/, Connection* conn,
                                  const UnsubscribeMsg& msg) {
  auto it = conn->subs.find(msg.name);
  if (it == conn->subs.end()) {
    SendError(conn, msg.name, "not-found",
              "no subscription '" + msg.name + "'");
    return;
  }
  (void)registry_->Unsubscribe(it->second);
  conn->subs.erase(it);
  Count(ins_.unsubscribes);
  UnsubscribedMsg ok;
  ok.name = msg.name;
  Send(conn, EncodeUnsubscribed(ok));
}

void QssServer::HandleStats(Connection* conn, const StatsRequestMsg& msg) {
  Count(ins_.stats_requests);
  obs::MetricsRegistry* m =
      registry_->manager()->options().observability.metrics;
  if (m == nullptr || !snapshotter_.has_value()) {
    SendError(conn, "", "unavailable", "no metrics registry configured");
    return;
  }
  StatsReplyMsg reply;
  reply.format = msg.format;
  reply.body = msg.format == StatsFormat::kJson ? m->ExportJson()
                                                : m->ExportPrometheus();
  obs::MetricsSnapshotter::Interval interval = snapshotter_->Capture();
  reply.interval_ns = interval.interval_ns;
  reply.rates_json = interval.ToJson();
  Send(conn, EncodeStatsReply(reply));
}

void QssServer::HandleHealth(Connection* conn) {
  Count(ins_.health_requests);
  PollGroupManager* manager = registry_->manager();
  HealthReplyMsg reply;
  reply.now = manager->now();
  for (PollGroupManager::GroupStatus& s : manager->GroupStatuses()) {
    GroupHealthMsg g;
    g.key = std::move(s.key);
    g.entries = std::move(s.entries);
    g.subscribers = s.subscribers;
    g.polls_committed = s.polls_committed;
    g.next_poll = s.next_poll;
    g.circuit = s.health.state;
    g.consecutive_failures =
        static_cast<uint64_t>(s.health.consecutive_failures);
    g.last_error = s.health.last_error.ok() ? std::string()
                                            : s.health.last_error.ToString();
    g.polls_attempted = s.health.polls_attempted;
    g.polls_succeeded = s.health.polls_succeeded;
    g.polls_failed = s.health.polls_failed;
    g.retries = s.health.retries;
    g.backoff_ticks = s.health.backoff_ticks;
    g.quarantined_until = s.health.quarantined_until;
    g.missed = std::move(s.health.missed);
    g.missed_dropped = s.health.missed_dropped;
    g.last_poll = s.health.last_poll;
    reply.groups.push_back(std::move(g));
  }
  Send(conn, EncodeHealthReply(reply));
}

void QssServer::HandleTraceDump(Connection* conn) {
  Count(ins_.trace_dumps);
  obs::TraceRecorder* t = registry_->manager()->options().observability.trace;
  if (t == nullptr) {
    SendError(conn, "", "unavailable", "no trace recorder configured");
    return;
  }
  TraceDumpReplyMsg reply;
  reply.events = t->Events().size();
  reply.dropped = t->dropped();
  reply.chrome_json = t->ExportChromeTrace();
  t->Clear();
  Send(conn, EncodeTraceDumpReply(reply));
}

void QssServer::Dispatch(ConnectionId id, Connection* conn,
                         const WireFrame& frame) {
  switch (frame.type) {
    case MsgType::kSubscribe: {
      auto msg = DecodeSubscribe(frame.payload);
      if (!msg.ok()) return Fail(id, conn, msg.status());
      return HandleSubscribe(id, conn, *msg);
    }
    case MsgType::kUnsubscribe: {
      auto msg = DecodeUnsubscribe(frame.payload);
      if (!msg.ok()) return Fail(id, conn, msg.status());
      return HandleUnsubscribe(id, conn, *msg);
    }
    case MsgType::kStatsRequest: {
      auto msg = DecodeStatsRequest(frame.payload);
      if (!msg.ok()) return Fail(id, conn, msg.status());
      return HandleStats(conn, *msg);
    }
    case MsgType::kHealthRequest: {
      auto msg = DecodeHealthRequest(frame.payload);
      if (!msg.ok()) return Fail(id, conn, msg.status());
      return HandleHealth(conn);
    }
    case MsgType::kTraceDumpRequest: {
      auto msg = DecodeTraceDumpRequest(frame.payload);
      if (!msg.ok()) return Fail(id, conn, msg.status());
      return HandleTraceDump(conn);
    }
    case MsgType::kSubscribed:
    case MsgType::kUnsubscribed:
    case MsgType::kError:
    case MsgType::kNotification:
    case MsgType::kStatsReply:
    case MsgType::kHealthReply:
    case MsgType::kTraceDumpReply:
      return Fail(id, conn,
                  Status::InvalidArgument(
                      "server-to-client message type " +
                      std::to_string(static_cast<int>(frame.type)) +
                      " received from a client"));
  }
}

void QssServer::OnBytes(ConnectionId id, std::string_view bytes) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = &it->second;
  Status fed = conn->frames.Feed(bytes);
  if (!fed.ok()) {
    Fail(id, conn, fed);
    return;
  }
  WireFrame frame;
  while (connections_.contains(id) && conn->frames.Next(&frame)) {
    Count(ins_.frames_in);
    Dispatch(id, conn, frame);
  }
}

// ---- Client ----------------------------------------------------------------

void QssClient::OnBytes(std::string_view bytes) {
  if (!error_.ok()) return;
  Status fed = frames_.Feed(bytes);
  if (!fed.ok()) {
    error_ = fed;
    return;
  }
  WireFrame frame;
  while (frames_.Next(&frame)) {
    Event event;
    event.type = frame.type;
    switch (frame.type) {
      case MsgType::kSubscribed: {
        auto msg = DecodeSubscribed(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.subscribed = std::move(msg).value();
        break;
      }
      case MsgType::kUnsubscribed: {
        auto msg = DecodeUnsubscribed(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.unsubscribed = std::move(msg).value();
        break;
      }
      case MsgType::kError: {
        auto msg = DecodeError(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.error = std::move(msg).value();
        break;
      }
      case MsgType::kNotification: {
        auto msg = DecodeNotification(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.notification = std::move(msg).value();
        break;
      }
      case MsgType::kStatsReply: {
        auto msg = DecodeStatsReply(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.stats = std::move(msg).value();
        break;
      }
      case MsgType::kHealthReply: {
        auto msg = DecodeHealthReply(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.health = std::move(msg).value();
        break;
      }
      case MsgType::kTraceDumpReply: {
        auto msg = DecodeTraceDumpReply(frame.payload);
        if (!msg.ok()) { error_ = msg.status(); return; }
        event.trace_dump = std::move(msg).value();
        break;
      }
      case MsgType::kSubscribe:
      case MsgType::kUnsubscribe:
      case MsgType::kStatsRequest:
      case MsgType::kHealthRequest:
      case MsgType::kTraceDumpRequest:
        error_ = Status::InvalidArgument(
            "client-to-server message type received from the server");
        return;
    }
    events_.push_back(std::move(event));
  }
}

std::vector<QssClient::Event> QssClient::TakeEvents() {
  std::vector<Event> out;
  out.swap(events_);
  return out;
}

}  // namespace server
}  // namespace qss
}  // namespace doem
