#ifndef DOEM_QSS_SERVER_SERVER_H_
#define DOEM_QSS_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "qss/registry.h"
#include "qss/server/protocol.h"
#include "qss/server/transport.h"

namespace doem {
namespace qss {
namespace server {

/// Multiplexing front-end over one SubscriberRegistry (DESIGN.md §6g):
/// many long-lived client connections, each carrying any number of
/// subscriptions, all fanned out from the registry's single poll loop.
/// The server is transport-agnostic — a connection is an attached send
/// function plus the bytes handed to OnBytes; LoopbackPipe provides a
/// deterministic in-process transport for tests.
///
/// Per connection, subscription names are a private namespace (two
/// clients can both own "restaurants"); a duplicate within one
/// connection is rejected with a kError frame of kind
/// "duplicate-subscription". Notifications are pushed as polls commit:
/// the registry invokes the server's callback inside the tick (under the
/// service mutex), the server frames the notification and writes it to
/// the connection's send function — with a LoopbackPipe the bytes then
/// sit queued until the pipe is pumped, like a socket buffer.
///
/// A corrupt frame (bad checksum, oversized length, unknown type) cannot
/// be resynchronized: the server sends a final kError frame of kind
/// "protocol" and closes the connection, releasing its subscriptions.
///
/// Introspection (DESIGN.md §6h): any connection may send
/// kStatsRequest / kHealthRequest / kTraceDumpRequest and gets the
/// corresponding reply — a metrics snapshot with interval rates,
/// per-poll-group health including last-poll phase timings, or a drain
/// of the Chrome-trace buffer. A request whose sink is not configured
/// (no metrics registry, no trace recorder) is answered with a kError
/// frame of kind "unavailable"; the connection stays up.
class QssServer {
 public:
  using ConnectionId = uint64_t;

  /// `registry` must outlive the server. Metrics (qss.server.*) come
  /// from the registry's manager options.
  explicit QssServer(SubscriberRegistry* registry);
  ~QssServer();

  QssServer(const QssServer&) = delete;
  QssServer& operator=(const QssServer&) = delete;

  /// Opens a connection whose outbound bytes go to `send`. The send
  /// function may be invoked from inside polling entry points (under the
  /// service mutex) when notifications are pushed.
  ConnectionId Attach(ByteSink send);

  /// Bytes received from the connection's peer — any fragmentation.
  /// Complete frames are dispatched in order; a protocol error closes
  /// the connection (subsequent OnBytes calls are no-ops).
  void OnBytes(ConnectionId id, std::string_view bytes);

  /// Closes a connection, unsubscribing everything it registered.
  /// Closing an unknown (or already-closed) id is a no-op.
  void Detach(ConnectionId id);

  bool Connected(ConnectionId id) const;
  size_t ConnectionCount() const;
  /// Subscriptions registered by one connection (0 if unknown).
  size_t SubscriptionCount(ConnectionId id) const;

 private:
  struct Connection {
    ByteSink send;
    FrameBuffer frames;
    /// This connection's name → registry handle namespace, in
    /// registration order for deterministic teardown.
    std::map<std::string, SubscriptionHandle> subs;
  };

  void Dispatch(ConnectionId id, Connection* conn, const WireFrame& frame);
  void HandleSubscribe(ConnectionId id, Connection* conn,
                       const SubscribeMsg& msg);
  void HandleUnsubscribe(ConnectionId id, Connection* conn,
                         const UnsubscribeMsg& msg);
  void HandleStats(Connection* conn, const StatsRequestMsg& msg);
  void HandleHealth(Connection* conn);
  void HandleTraceDump(Connection* conn);
  void Send(Connection* conn, std::string bytes);
  void SendError(Connection* conn, const std::string& name,
                 const std::string& kind, const std::string& message);
  /// Sends a final "protocol" error and closes the connection.
  void Fail(ConnectionId id, Connection* conn, const Status& error);
  void Close(ConnectionId id);

  SubscriberRegistry* registry_;
  ConnectionId next_id_ = 1;
  std::map<ConnectionId, Connection> connections_;

  /// Interval-rate tracker behind StatsReply (present iff the manager
  /// has a metrics registry). All connections share it: each stats
  /// request reports the deltas since the previous one, from any client.
  std::optional<obs::MetricsSnapshotter> snapshotter_;

  struct Instruments {
    obs::Gauge* connections = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* subscribes_ok = nullptr;
    obs::Counter* subscribes_rejected = nullptr;
    obs::Counter* unsubscribes = nullptr;
    obs::Counter* notifications = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* stats_requests = nullptr;
    obs::Counter* health_requests = nullptr;
    obs::Counter* trace_dumps = nullptr;
    /// Time spent framing + handing one notification to the connection's
    /// byte sink — the wire segment of the e2e decomposition.
    obs::Histogram* wire_ns = nullptr;
  };
  Instruments ins_;
};

/// Client-side protocol driver: frames outgoing requests, reassembles
/// and decodes the incoming stream into an ordered event queue. Pair it
/// with a LoopbackPipe (client sink = OnBytes) or any byte transport.
class QssClient {
 public:
  /// One decoded server→client message, in arrival order. `type` says
  /// which member is meaningful.
  struct Event {
    MsgType type = MsgType::kError;
    SubscribedMsg subscribed;
    UnsubscribedMsg unsubscribed;
    ErrorMsg error;
    NotificationMsg notification;
    StatsReplyMsg stats;
    HealthReplyMsg health;
    TraceDumpReplyMsg trace_dump;
  };

  explicit QssClient(ByteSink send) : send_(std::move(send)) {}

  void Subscribe(const SubscribeMsg& msg) { send_(EncodeSubscribe(msg)); }
  void Unsubscribe(const std::string& name) {
    send_(EncodeUnsubscribe(UnsubscribeMsg{name}));
  }
  void RequestStats(StatsFormat format = StatsFormat::kPrometheus) {
    send_(EncodeStatsRequest(StatsRequestMsg{format}));
  }
  void RequestHealth() { send_(EncodeHealthRequest(HealthRequestMsg{})); }
  void RequestTraceDump() {
    send_(EncodeTraceDumpRequest(TraceDumpRequestMsg{}));
  }

  /// Bytes received from the server — any fragmentation.
  void OnBytes(std::string_view bytes);

  /// Drains the decoded events accumulated so far.
  std::vector<Event> TakeEvents();

  /// Non-OK when the incoming stream was corrupt (or a payload failed to
  /// decode); the stream is dead from that point on.
  const Status& error() const { return error_; }

 private:
  ByteSink send_;
  FrameBuffer frames_;
  std::vector<Event> events_;
  Status error_;
};

}  // namespace server
}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_SERVER_SERVER_H_
