#include "qss/registry.h"

#include <algorithm>
#include <unordered_map>

#include "lorel/lorel.h"
#include "obs/clock.h"
#include "obs/log.h"

namespace doem {
namespace qss {

namespace {

// A polling query must be plain Lorel: it runs against the autonomous
// source, which has no annotations.
Status ValidatePollingQuery(const std::string& text) {
  auto nq = lorel::ParseAndNormalize(text);
  if (!nq.ok()) {
    return Status(nq.status().code(),
                  "polling query: " + nq.status().message());
  }
  for (const lorel::RangeDef& def : nq->defs) {
    if (def.step.arc_annot || def.step.node_annot) {
      return Status::InvalidArgument(
          "polling query must be plain Lorel; annotation expressions "
          "belong in the filter query");
    }
  }
  return Status::OK();
}

void Count(obs::Counter* c, uint64_t by = 1) {
  if (c != nullptr && by > 0) c->Increment(by);
}

void SetGauge(obs::Gauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}

void Observe(obs::Histogram* h, int64_t v) {
  if (h != nullptr) h->Observe(v);
}

}  // namespace

SubscriberRegistry::SubscriberRegistry(PollGroupManager* manager)
    : manager_(manager) {
  manager_->set_fanout(this);
  obs::MetricsRegistry* m = manager_->options().observability.metrics;
  if (m == nullptr) return;
  ins_.notifications =
      m->GetCounter("qss.notifications", "notifications delivered to clients");
  ins_.filter_evals = m->GetCounter(
      "qss.group.filter_evals",
      "distinct compiled-filter evaluations across polls (one per cohort)");
  ins_.filter_shared = m->GetCounter(
      "qss.group.filter_shared",
      "subscriber deliveries served from a cohort-shared filter evaluation");
  ins_.subscribers = m->GetGauge(
      "qss.group.subscribers", "subscribers registered across all poll groups");
  ins_.filter_ns = m->GetHistogram(
      "qss.filter_ns", obs::LatencyBucketsNs(),
      "per-member filter evaluation wall time, ns");
  ins_.fanout_ns = m->GetHistogram(
      "qss.group.fanout_ns", obs::LatencyBucketsNs(),
      "per-poll fan-out wall time: filter evaluations + notifications, ns");
  ins_.notify_e2e_ns = m->GetHistogram(
      "qss.notify.e2e_ns", obs::LatencyBucketsNs(),
      "per-notification end-to-end latency, PreparePoll entry to callback "
      "return (incl. wire framing for server subscribers), ns");
  ins_.notify_fetch_ns = m->GetHistogram(
      "qss.notify.fetch_ns", obs::LatencyBucketsNs(),
      "e2e segment: the notifying poll's source fetch (incl. retries), ns");
  ins_.notify_diff_ns = m->GetHistogram(
      "qss.notify.diff_ns", obs::LatencyBucketsNs(),
      "e2e segment: the notifying poll's OEMdiff, ns");
  ins_.notify_apply_ns = m->GetHistogram(
      "qss.notify.apply_ns", obs::LatencyBucketsNs(),
      "e2e segment: the notifying poll's DOEM apply + cache maintenance, ns");
  ins_.notify_filter_ns = m->GetHistogram(
      "qss.notify.filter_ns", obs::LatencyBucketsNs(),
      "e2e segment: this member's filter evaluation (near zero when served "
      "from a cohort-shared evaluation), ns");
  ins_.notify_fanout_ns = m->GetHistogram(
      "qss.notify.fanout_ns", obs::LatencyBucketsNs(),
      "e2e segment: fan-out start to this notification's delivery, ns");
}

SubscriberRegistry::~SubscriberRegistry() { manager_->set_fanout(nullptr); }

void SubscriberRegistry::EmitSubscribeError(PollError::Kind kind,
                                            const std::string& subject,
                                            const Status& status) const {
  DOEM_LOG_EVENT(manager_->options().observability.events,
                 obs::EventType::kSubscribeRejected,
                 obs::EventSeverity::kWarning, manager_->now(), subject,
                 std::string(PollErrorKindToString(kind)) + ": " +
                     status.ToString());
  const ErrorCallback& on_error =
      manager_->options().fault_tolerance.on_error;
  if (!on_error) return;
  PollError error;
  error.kind = kind;
  error.subject = subject;
  error.time = manager_->now();
  error.status = status;
  on_error(error);
}

Result<SubscriptionHandle> SubscriberRegistry::Subscribe(
    const Subscription& sub, NotificationCallback callback) {
  std::lock_guard<std::recursive_mutex> lock(manager_->service_mutex());
  Status polling = ValidatePollingQuery(sub.polling_query);
  if (!polling.ok()) {
    EmitSubscribeError(PollError::Kind::kBadPollingQuery, sub.name, polling);
    return polling;
  }
  // Compile (or share) the filter before acquiring the group, so a bad
  // filter never creates a group — or opens a durable store — as a side
  // effect. An existing group answers from its pool (one compile per
  // cohort); only the group-creating subscriber pays a standalone parse.
  std::shared_ptr<chorel::CompiledQuery> filter;
  chorel::CompiledQuery compiled;
  PollGroup* existing =
      manager_->Find(sub.polling_query, sub.frequency, sub.name);
  if (existing != nullptr) {
    auto pooled = existing->filters.Get(sub.filter_query);
    if (!pooled.ok()) {
      Status bad(pooled.status().code(),
                 "filter query: " + pooled.status().message());
      EmitSubscribeError(PollError::Kind::kBadFilterQuery, sub.name, bad);
      return bad;
    }
    filter = std::move(pooled).value();
  } else {
    auto fresh = chorel::CompileChorel(sub.filter_query);
    if (!fresh.ok()) {
      Status bad(fresh.status().code(),
                 "filter query: " + fresh.status().message());
      EmitSubscribeError(PollError::Kind::kBadFilterQuery, sub.name, bad);
      return bad;
    }
    compiled = std::move(fresh).value();
  }
  auto group = manager_->Acquire(sub.polling_query, sub.frequency,
                                 sub.entry_name(), sub.name);
  if (!group.ok()) {
    EmitSubscribeError(PollError::Kind::kStore, sub.name, group.status());
    return group.status();
  }
  if (filter == nullptr) {
    filter = (*group)->filters.Intern(sub.filter_query, std::move(compiled));
  }
  SubscriptionHandle handle{next_id_++};
  SubEntry entry;
  entry.sub = sub;
  entry.callback = std::move(callback);
  entry.group = *group;
  entry.filter = std::move(filter);
  members_[(*group)->key].push_back(handle.id);
  subs_.emplace(handle.id, std::move(entry));
  SetGauge(ins_.subscribers, static_cast<int64_t>(subs_.size()));
  DOEM_LOG_EVENT(manager_->options().observability.events,
                 obs::EventType::kSubscribed, obs::EventSeverity::kInfo,
                 manager_->now(), sub.name, "group=" + (*group)->key);
  return handle;
}

Status SubscriberRegistry::Unsubscribe(SubscriptionHandle handle) {
  std::lock_guard<std::recursive_mutex> lock(manager_->service_mutex());
  auto it = subs_.find(handle.id);
  if (it == subs_.end()) {
    return Status::NotFound("no subscription with handle " +
                            std::to_string(handle.id));
  }
  PollGroup* group = it->second.group;
  auto mit = members_.find(group->key);
  if (mit != members_.end()) {
    auto& ids = mit->second;
    ids.erase(std::find(ids.begin(), ids.end(), handle.id));
    if (ids.empty()) members_.erase(mit);
  }
  std::string entry_name = it->second.sub.entry_name();
  std::string sub_name = it->second.sub.name;
  subs_.erase(it);
  manager_->Release(group, entry_name);
  SetGauge(ins_.subscribers, static_cast<int64_t>(subs_.size()));
  DOEM_LOG_EVENT(manager_->options().observability.events,
                 obs::EventType::kUnsubscribed, obs::EventSeverity::kInfo,
                 manager_->now(), sub_name, "");
  return Status::OK();
}

const Subscription* SubscriberRegistry::Find(SubscriptionHandle handle) const {
  std::lock_guard<std::recursive_mutex> lock(manager_->service_mutex());
  auto it = subs_.find(handle.id);
  return it == subs_.end() ? nullptr : &it->second.sub;
}

PollGroup* SubscriberRegistry::GroupOf(SubscriptionHandle handle) const {
  std::lock_guard<std::recursive_mutex> lock(manager_->service_mutex());
  auto it = subs_.find(handle.id);
  return it == subs_.end() ? nullptr : it->second.group;
}

size_t SubscriberRegistry::SubscriberCount() const {
  std::lock_guard<std::recursive_mutex> lock(manager_->service_mutex());
  return subs_.size();
}

void SubscriberRegistry::FanOut(PollGroup* group, Timestamp t,
                                PollReport* report) {
  const QssOptions& options = manager_->options();
  int64_t fanout_start = obs::NowNs();
  // Snapshot the cohort: callbacks may re-enter Subscribe/Unsubscribe
  // (the service mutex is recursive). Members subscribed during this
  // fan-out first hear about the *next* poll; members unsubscribed
  // mid-flight are skipped by the liveness check below.
  auto mit = members_.find(group->key);
  if (mit == members_.end()) return;
  std::vector<uint64_t> cohort = mit->second;
  // 5. Chorel engine: evaluate each *distinct* compiled filter once per
  // poll on the group's persistent engine; every subscriber sharing it
  // gets a copy of that result. Evaluation is deterministic, so the
  // notifications are byte-identical to evaluating per subscriber. One
  // cohort's failure must not starve the rest: collect the error, keep
  // going.
  std::unordered_map<const chorel::CompiledQuery*,
                     Result<lorel::QueryResult>>
      evaluated;
  for (uint64_t id : cohort) {
    auto it = subs_.find(id);
    if (it == subs_.end()) continue;  // unsubscribed by an earlier callback
    SubEntry& state = it->second;
    const std::string& member = state.sub.name;
    int64_t filter_start = obs::NowNs();
    auto cached = evaluated.find(state.filter.get());
    bool shared = cached != evaluated.end();
    if (!shared) {
      lorel::EvalOptions opts;
      opts.polling_times = &group->polls;
      auto result = [&] {
        obs::TraceSpan filter_span(options.observability.trace, "qss.filter",
                                   "qss", t, member);
        return group->engine->RunCompiled(state.filter.get(),
                                          options.strategy, opts);
      }();
      cached = evaluated.emplace(state.filter.get(), std::move(result)).first;
      Count(ins_.filter_evals);
    } else {
      Count(ins_.filter_shared);
    }
    int64_t filter_ns = obs::ElapsedNs(filter_start);
    report->filter_ns += filter_ns;
    group->health.last_poll.filter_ns += filter_ns;
    Observe(ins_.filter_ns, filter_ns);
    const Result<lorel::QueryResult>& result = cached->second;
    if (!result.ok()) {
      PollError error;
      error.kind = PollError::Kind::kFilter;
      error.subject = member;
      error.time = t;
      error.status = Status(result.status().code(),
                            "filter query of '" + member +
                                "': " + result.status().message());
      report->errors.push_back(error);
      if (options.fault_tolerance.on_error) {
        options.fault_tolerance.on_error(error);
      }
      DOEM_LOG_EVENT(options.observability.events,
                     obs::EventType::kFilterError,
                     obs::EventSeverity::kWarning, t, member,
                     error.status.ToString());
      continue;
    }
    // 6. Notify. Invoke a copy of the callback: the callback may
    // unsubscribe its own subscription, which erases `state` and would
    // otherwise destroy the std::function while it is executing.
    if (!result->rows.empty() || options.notify_empty) {
      if (state.callback) {
        Notification n;
        n.handle = SubscriptionHandle{id};
        n.subscription = member;
        n.poll_time = t;
        n.poll_index = group->polls.size();
        n.result = *result;
        NotificationCallback callback = state.callback;
        callback(n);
        ++report->notifications;
        Count(ins_.notifications);
        // End-to-end attribution: measured *after* the callback returns,
        // so a server callback's wire framing + send is inside the
        // figure. The segments (fetch/diff/apply from the committed
        // poll, this member's filter, fan-out-so-far, and the wire
        // segment the server adds to last_poll) decompose it.
        int64_t delivered_ns = obs::NowNs();
        int64_t e2e_ns = delivered_ns - group->last_prepare_start_ns;
        group->health.last_poll.e2e_ns = e2e_ns;
        Observe(ins_.notify_e2e_ns, e2e_ns);
        Observe(ins_.notify_fetch_ns, group->health.last_poll.fetch_ns);
        Observe(ins_.notify_diff_ns, group->health.last_poll.diff_ns);
        Observe(ins_.notify_apply_ns, group->health.last_poll.apply_ns);
        Observe(ins_.notify_filter_ns, filter_ns);
        Observe(ins_.notify_fanout_ns, delivered_ns - fanout_start);
      }
    }
  }
  int64_t fanout_ns = obs::ElapsedNs(fanout_start);
  group->health.last_poll.fanout_ns = fanout_ns;
  Observe(ins_.fanout_ns, fanout_ns);
}

}  // namespace qss
}  // namespace doem
