#ifndef DOEM_QSS_SOURCE_H_
#define DOEM_QSS_SOURCE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "oem/history.h"
#include "oem/oem.h"

namespace doem {
namespace qss {

/// An autonomous information source behind a Tsimmis-style wrapper
/// (paper Section 6, Figure 7): QSS can only send it a Lorel polling
/// query and get back a snapshot of the result, packaged as an OEM
/// database whose root's arcs carry the select labels and which
/// recursively includes all subobjects. No triggers, no history — exactly
/// the paper's legacy-source assumption.
///
/// Thread-safety contract: implementations need NOT be thread-safe. Even
/// with a parallel executor, QuerySubscriptionService serializes every
/// Poll() together with the following LastPollDurationTicks() read under
/// one source mutex (DESIGN.md §6b), so a source only ever sees one call
/// at a time, in a deterministic per-group order.
class InformationSource {
 public:
  virtual ~InformationSource() = default;

  /// Evaluates the polling query against the source state at time `now`.
  virtual Result<OemDatabase> Poll(const std::string& lorel_query,
                                   Timestamp now) = 0;

  /// As Poll, on behalf of one QSS poll group. `group_key` is a stable
  /// opaque identifier for the calling group; stateful sources that
  /// simulate non-persistent ids (ScriptedSource with preserve_ids
  /// false) key their per-caller counters by it, so two groups that
  /// happen to share a polling query (e.g. same query at different
  /// frequencies) cannot perturb each other's id sequences. The default
  /// ignores the key.
  virtual Result<OemDatabase> PollForGroup(const std::string& group_key,
                                           const std::string& lorel_query,
                                           Timestamp now) {
    (void)group_key;
    return Poll(lorel_query, now);
  }

  /// Whether object identifiers are stable across polls (a wrapper that
  /// exports persistent OIDs) — selects keyed vs. structural differencing
  /// in QSS.
  virtual bool PreservesIds() const = 0;

  /// Simulated duration of the most recent Poll(), in clock ticks. The
  /// time domain is simulated (Section 2.2), so sources that model
  /// latency report it here; QSS compares it against
  /// RetryPolicy::poll_deadline_ticks. The default (0) never exceeds a
  /// deadline.
  virtual int64_t LastPollDurationTicks() const { return 0; }
};

/// A deterministic source for tests, examples, and benchmarks: an OEM
/// database plus a scripted history. Polling at time t first applies all
/// script steps with timestamp <= t, then evaluates the query.
///
/// With `preserve_ids` false, each poll re-packages the result with fresh
/// identifiers (shifted id space), simulating a wrapper without
/// persistent OIDs. The shift counter is kept per poll group (the
/// PollForGroup key; plain Poll calls use the query text as their own
/// key), so the ids a poll group observes depend only on that group's
/// own poll sequence — not on how polls of *other* groups interleave
/// with it — which keeps structural-mode DOEM histories byte-identical
/// between serial and parallel QSS runs, including when two groups share
/// one polling query at different frequencies.
///
/// A malformed script (steps out of time order, or a step whose change
/// set is invalid for the source state) makes Poll return a clean
/// error — sticky and deterministic across retries — with the source
/// state left exactly as of the last good step, never partially applied.
class ScriptedSource : public InformationSource {
 public:
  ScriptedSource(OemDatabase initial, OemHistory script,
                 bool preserve_ids = true)
      : db_(std::move(initial)),
        script_(std::move(script)),
        preserve_ids_(preserve_ids) {}

  Result<OemDatabase> Poll(const std::string& lorel_query,
                           Timestamp now) override;
  Result<OemDatabase> PollForGroup(const std::string& group_key,
                                   const std::string& lorel_query,
                                   Timestamp now) override;
  bool PreservesIds() const override { return preserve_ids_; }

  /// The source's current state (for tests).
  const OemDatabase& db() const { return db_; }

 private:
  Status AdvanceTo(Timestamp now);

  OemDatabase db_;
  OemHistory script_;
  size_t next_step_ = 0;
  bool preserve_ids_;
  std::map<std::string, NodeId> fresh_offsets_;
  // Set once a script defect is detected; every later Poll returns it.
  Status script_error_;
  bool script_checked_ = false;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_SOURCE_H_
