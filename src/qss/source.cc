#include "qss/source.h"

#include "lorel/lorel.h"
#include "oem/subgraph.h"

namespace doem {
namespace qss {

Status ScriptedSource::AdvanceTo(Timestamp now) {
  while (next_step_ < script_.size() &&
         script_.steps()[next_step_].time <= now) {
    DOEM_RETURN_IF_ERROR(
        ApplyChangeSet(&db_, script_.steps()[next_step_].changes));
    ++next_step_;
  }
  return Status::OK();
}

Result<OemDatabase> ScriptedSource::Poll(const std::string& lorel_query,
                                         Timestamp now) {
  DOEM_RETURN_IF_ERROR(AdvanceTo(now));
  lorel::OemView view(db_);
  auto result = lorel::RunQuery(lorel_query, view);
  if (!result.ok()) return result.status();
  if (preserve_ids_) {
    return std::move(result->answer);
  }
  // Re-package with fresh identifiers: every poll shifts the id space, so
  // no id is comparable across polls.
  const OemDatabase& ans = result->answer;
  OemDatabase remapped;
  fresh_offset_ += ans.PeekNextId() + 1;
  remapped.ReserveIdsBelow(fresh_offset_);
  auto map = CopyReachable(ans, {ans.root()}, &remapped,
                           /*preserve_ids=*/false);
  if (!map.ok()) return map.status();
  DOEM_RETURN_IF_ERROR(remapped.SetRoot(map->at(ans.root())));
  return remapped;
}

}  // namespace qss
}  // namespace doem
