#include "qss/source.h"

#include "lorel/lorel.h"
#include "oem/subgraph.h"

namespace doem {
namespace qss {

Status ScriptedSource::AdvanceTo(Timestamp now) {
  if (!script_checked_) {
    script_checked_ = true;
    // The OemHistory vector constructor does not enforce Definition 2.2's
    // strictly increasing timestamps; applying an out-of-order script
    // would interleave change sets in the wrong order. Reject it up
    // front, before any step is applied.
    const auto& steps = script_.steps();
    for (size_t i = 1; i < steps.size(); ++i) {
      if (steps[i].time <= steps[i - 1].time) {
        script_error_ = Status::InvalidChange(
            "script steps out of order: step " + std::to_string(i) + " at " +
            steps[i].time.ToString() + " does not follow " +
            steps[i - 1].time.ToString());
        break;
      }
    }
  }
  // A defective script is a sticky, clean error: retries see the same
  // Status and the source state stays as of the last good step
  // (ApplyChangeSet is transactional, and next_step_ is not advanced
  // past a failing step).
  DOEM_RETURN_IF_ERROR(script_error_);
  while (next_step_ < script_.size() &&
         script_.steps()[next_step_].time <= now) {
    Status applied =
        ApplyChangeSet(&db_, script_.steps()[next_step_].changes);
    if (!applied.ok()) {
      script_error_ = Status(
          applied.code(), "script step " + std::to_string(next_step_) +
                              " (at " +
                              script_.steps()[next_step_].time.ToString() +
                              ") is not applicable: " + applied.message());
      return script_error_;
    }
    ++next_step_;
  }
  return Status::OK();
}

Result<OemDatabase> ScriptedSource::Poll(const std::string& lorel_query,
                                         Timestamp now) {
  // Direct callers act as their own group; poll groups proper go through
  // PollForGroup so deduped groups sharing one query text cannot collide
  // on the fresh-id counter.
  return PollForGroup(lorel_query, lorel_query, now);
}

Result<OemDatabase> ScriptedSource::PollForGroup(
    const std::string& group_key, const std::string& lorel_query,
    Timestamp now) {
  DOEM_RETURN_IF_ERROR(AdvanceTo(now));
  lorel::OemView view(db_);
  auto result = lorel::RunQuery(lorel_query, view);
  if (!result.ok()) return result.status();
  if (preserve_ids_) {
    return std::move(result->answer);
  }
  // Re-package with fresh identifiers: every poll shifts the id space, so
  // no id is comparable across polls. The counter is per poll group (see
  // the class comment), so concurrent QSS poll groups cannot perturb
  // each other's id sequences.
  const OemDatabase& ans = result->answer;
  OemDatabase remapped;
  NodeId& fresh_offset = fresh_offsets_[group_key];
  fresh_offset += ans.PeekNextId() + 1;
  remapped.ReserveIdsBelow(fresh_offset);
  auto map = CopyReachable(ans, {ans.root()}, &remapped,
                           /*preserve_ids=*/false);
  if (!map.ok()) return map.status();
  DOEM_RETURN_IF_ERROR(remapped.SetRoot(map->at(ans.root())));
  return remapped;
}

}  // namespace qss
}  // namespace doem
