#ifndef DOEM_QSS_HEALTH_H_
#define DOEM_QSS_HEALTH_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "oem/timestamp.h"

namespace doem {
namespace qss {

/// How QSS deals with a poll of an autonomous source that fails. The
/// paper's legacy sources (Section 6, Figure 7) are outside our control:
/// a wrapper may time out, return garbage, or be down for days. All
/// delays are expressed in simulated clock ticks, so every schedule is
/// deterministic and testable.
struct RetryPolicy {
  /// Total attempts per scheduled poll (1 = no retry).
  int max_attempts = 1;
  /// Simulated backoff before retry k (k >= 2): base << (k - 2) ticks.
  /// Backoff is sub-tick bookkeeping — it never moves the service clock
  /// or the poll timestamp, it is accounted in PollHealth::backoff_ticks.
  int64_t backoff_base_ticks = 0;
  /// A successful poll whose source reports a simulated duration above
  /// this is discarded as DeadlineExceeded. 0 disables the deadline.
  int64_t poll_deadline_ticks = 0;
};

/// Circuit-breaker state of one poll group.
enum class CircuitState {
  /// Healthy: polls run on schedule.
  kClosed,
  /// Quarantined: polls are skipped (recorded as MissedPoll) until the
  /// cool-down elapses.
  kOpen,
  /// Cool-down elapsed: the next due poll is a single probe attempt.
  kHalfOpen,
};

inline const char* CircuitStateToString(CircuitState s) {
  switch (s) {
    case CircuitState::kClosed:
      return "Closed";
    case CircuitState::kOpen:
      return "Open";
    case CircuitState::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

/// A scheduled poll that was skipped because its group was quarantined.
/// The DOEM history is untouched: the next successful poll diffs against
/// the last good snapshot, so no change is lost — only its detection is
/// delayed to the recovery poll's timestamp.
struct MissedPoll {
  Timestamp time;
  std::string reason;
};

/// Wall-clock phase breakdown of one committed poll, from the
/// PreparePoll stamp to the last notification delivered (DESIGN.md §6h).
/// All fields are measured nanoseconds — like PollReport's *_ns fields
/// they differ run to run and are excluded from determinism comparisons.
struct PollPhaseLatency {
  /// Source fetch including retries.
  int64_t fetch_ns = 0;
  /// OEMdiff of R_{k-1} vs R_k.
  int64_t diff_ns = 0;
  /// DOEM apply + incremental cache maintenance + store commit.
  int64_t apply_ns = 0;
  /// Filter evaluations summed across the cohort.
  int64_t filter_ns = 0;
  /// The whole fan-out (filters + notification callbacks).
  int64_t fanout_ns = 0;
  /// Wire framing + transport send, summed across server-delivered
  /// notifications (0 for in-process subscribers).
  int64_t wire_ns = 0;
  /// PreparePoll entry to the return of the last notification callback —
  /// the end-to-end figure qss.notify.e2e_ns aggregates.
  int64_t e2e_ns = 0;
};

/// Health of one poll group, exposed per subscription via
/// QuerySubscriptionService::Health().
struct PollHealth {
  CircuitState state = CircuitState::kClosed;
  /// Consecutive scheduled polls that failed (reset on success).
  int consecutive_failures = 0;
  /// The most recent attempt failure (diagnostic; not cleared on
  /// recovery).
  Status last_error;
  /// When state == kOpen: first tick at which a probe may run.
  Timestamp quarantined_until;
  /// Scheduled polls that ran (successes + failures; not retries, not
  /// quarantine skips).
  size_t polls_attempted = 0;
  size_t polls_succeeded = 0;
  size_t polls_failed = 0;
  /// Extra source attempts beyond the first, across all polls.
  size_t retries = 0;
  /// Total simulated backoff spent (RetryPolicy::backoff_base_ticks).
  int64_t backoff_ticks = 0;
  /// The most recent quarantine skips, in time order, bounded to
  /// QssOptions::max_missed_log entries — older entries are evicted from
  /// the front and counted in missed_dropped.
  std::vector<MissedPoll> missed;
  /// Quarantine skips evicted from `missed` by the bound. Total skips
  /// ever = missed.size() + missed_dropped.
  size_t missed_dropped = 0;
  /// Phase timings of the most recent poll that ran (attempted, not
  /// quarantine-skipped). Measured wall clock — excluded from
  /// determinism comparisons.
  PollPhaseLatency last_poll;
};

/// One failure surfaced during a tick or a registration call: a poll of
/// a group failed (after exhausting retries), one member's filter query
/// failed, the group's durable store could not commit the poll, or a
/// Subscribe was rejected.
struct PollError {
  enum class Kind {
    /// The poll pipeline failed; `subject` is the comma-joined entry
    /// list of the group.
    kPoll,
    /// A filter query failed at poll time (`subject` is the member
    /// subscription), or the group's filter-cache maintenance failed its
    /// patch or verify cross-check (`subject` is the comma-joined entry
    /// list; the poll itself still succeeds — the caches rebuild on the
    /// next filter run).
    kFilter,
    /// The durable store failed to commit a poll's record (`subject` is
    /// the comma-joined entry list). Availability over durability: the
    /// poll itself stands — history, rows, and notifications are
    /// unaffected — but the store is broken until the group's store is
    /// reopened, and a crash now loses polls since the failure.
    kStore,
    /// Subscribe rejected: the subscription name is already registered
    /// (`subject` is the name). Only the name-keyed facade and the
    /// server's per-connection namespace enforce uniqueness; the
    /// handle-keyed registry accepts duplicates by design.
    kDuplicateSubscription,
    /// Subscribe rejected: the Lorel polling query did not validate
    /// (parse error, or annotation expressions outside the filter).
    kBadPollingQuery,
    /// Subscribe rejected: the Chorel filter query did not compile.
    kBadFilterQuery,
  };
  Kind kind = Kind::kPoll;
  std::string subject;
  Timestamp time;
  Status status;
};

inline const char* PollErrorKindToString(PollError::Kind k) {
  switch (k) {
    case PollError::Kind::kPoll:
      return "poll";
    case PollError::Kind::kFilter:
      return "filter";
    case PollError::Kind::kStore:
      return "store";
    case PollError::Kind::kDuplicateSubscription:
      return "duplicate-subscription";
    case PollError::Kind::kBadPollingQuery:
      return "bad-polling-query";
    case PollError::Kind::kBadFilterQuery:
      return "bad-filter-query";
  }
  return "unknown";
}

/// Invoked synchronously for every PollError as it happens.
using ErrorCallback = std::function<void(const PollError&)>;

/// Aggregated outcome of AdvanceTo / PollNow / NotifySourceChanged.
/// Counters accumulate if the same report object is reused across calls.
struct PollReport {
  size_t polls_attempted = 0;
  size_t polls_ok = 0;
  size_t polls_failed = 0;
  /// Scheduled polls skipped because their group was quarantined.
  size_t polls_missed = 0;
  size_t retries = 0;
  size_t notifications = 0;
  /// Wall-clock nanoseconds spent in each pipeline phase, summed across
  /// poll groups: fetch covers source polls including retries, diff the
  /// OEMdiff of R_{k-1} vs R_k, apply the DOEM incorporation plus the
  /// incremental engine-cache maintenance, filter the evaluation of every
  /// member's filter query. With a parallel executor the per-phase sums
  /// can exceed the elapsed time of the call (phases overlap across
  /// groups). Unlike every other field, these are measured, not
  /// simulated: they differ run to run and are excluded from determinism
  /// comparisons.
  int64_t fetch_ns = 0;
  int64_t diff_ns = 0;
  int64_t apply_ns = 0;
  int64_t filter_ns = 0;
  /// Whole-call wall-clock nanoseconds of each AdvanceTo / PollNow /
  /// NotifySourceChanged call, summed if the report is reused. Covers
  /// scheduling overhead the per-phase timers miss. Measured, not
  /// simulated — excluded from determinism comparisons like the per-phase
  /// timers above.
  int64_t elapsed_ns = 0;
  std::vector<PollError> errors;

  bool all_ok() const { return errors.empty(); }
  Status FirstError() const {
    return errors.empty() ? Status::OK() : errors.front().status;
  }
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_HEALTH_H_
