#ifndef DOEM_QSS_SUBSCRIPTION_H_
#define DOEM_QSS_SUBSCRIPTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "lorel/eval.h"
#include "oem/timestamp.h"
#include "qss/frequency.h"

namespace doem {
namespace qss {

/// A subscription S = <f, Q_l, Q_c> (paper Section 6): a frequency
/// specification, a Lorel polling query, and a Chorel filter query. The
/// name identifies the subscription; the filter query's paths start with
/// the *entry* label — the name of the DOEM database the filter sees
/// (LyttonRestaurants.restaurant<cre at T> ...). When `entry` is empty it
/// defaults to `name`, the paper's one-name-per-subscription shape; a
/// subscriber cohort that shares one filter text sets a common entry so
/// their compiled filters (and per-poll evaluations) are shared.
struct Subscription {
  std::string name;
  /// Filter entry label; empty means `name`.
  std::string entry;
  FrequencySpec frequency;
  std::string polling_query;
  std::string filter_query;

  const std::string& entry_name() const { return entry.empty() ? name : entry; }
};

/// An opaque ticket identifying one registered subscriber. Returned by
/// SubscriberRegistry::Subscribe and accepted everywhere the legacy API
/// took a name string; ids are never reused within one registry.
struct SubscriptionHandle {
  uint64_t id = 0;

  explicit operator bool() const { return id != 0; }
  bool operator==(const SubscriptionHandle&) const = default;
  bool operator<(const SubscriptionHandle& o) const { return id < o.id; }
};

/// What a Query Subscription Client receives when a filter query produces
/// results at a polling time.
struct Notification {
  /// The subscriber's registration handle (0 on legacy facade paths that
  /// predate handles — never in practice, since the facade is now a thin
  /// layer over the registry).
  SubscriptionHandle handle;
  std::string subscription;
  Timestamp poll_time;
  size_t poll_index = 0;  // 1-based k of t_k
  lorel::QueryResult result;
};

using NotificationCallback = std::function<void(const Notification&)>;

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_SUBSCRIPTION_H_
