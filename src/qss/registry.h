#ifndef DOEM_QSS_REGISTRY_H_
#define DOEM_QSS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "common/result.h"
#include "qss/poll_group.h"
#include "qss/subscription.h"

namespace doem {
namespace qss {

/// Owner of the "who gets notified" half of QSS: the subscriber
/// registrations and the fan-out of committed polls to their filters and
/// callbacks (Figure 6 steps 5–6). Registrations are keyed by opaque
/// SubscriptionHandle — the registry itself accepts duplicate names by
/// design; only the name-keyed QuerySubscriptionService facade and the
/// server's per-connection namespace enforce name uniqueness.
///
/// Subscribers sharing one poll group *and* one filter text share a
/// single compiled query (the group's CompiledQueryPool), and each poll
/// evaluates that filter once for the whole cohort — the notifications
/// then fan out per subscriber, in registration order, byte-identical to
/// evaluating per subscriber.
///
/// Thread model: every entry point locks the manager's service mutex
/// (see PollGroupManager), so registration calls, polling entry points,
/// and fan-out callbacks are mutually serialized; callbacks run with the
/// (recursive) mutex held and may re-enter Subscribe/Unsubscribe.
class SubscriberRegistry : public GroupFanout {
 public:
  /// Wires itself as `manager`'s fan-out sink. The manager must outlive
  /// the registry.
  explicit SubscriberRegistry(PollGroupManager* manager);
  ~SubscriberRegistry() override;

  SubscriberRegistry(const SubscriberRegistry&) = delete;
  SubscriberRegistry& operator=(const SubscriberRegistry&) = delete;

  /// Registers a subscriber: validates the polling query, attaches it to
  /// its poll group (creating the group — and opening its durable store —
  /// on first acquisition), and compiles (or shares) the filter query.
  /// Never returns a zero handle on success. Failures surface as the
  /// returned status and as a PollError (kBadPollingQuery /
  /// kBadFilterQuery / kStore) through the on_error callback; a bad
  /// filter never creates the group.
  Result<SubscriptionHandle> Subscribe(const Subscription& sub,
                                       NotificationCallback callback);

  /// Removes a registration. The last subscriber of a group retires it
  /// (deferred past any in-flight tick).
  Status Unsubscribe(SubscriptionHandle handle);

  /// The registration behind a handle (null if unknown). The pointer is
  /// valid until the subscriber is unsubscribed.
  const Subscription* Find(SubscriptionHandle handle) const;

  /// The poll group a handle is attached to (null if unknown). Valid
  /// under the service mutex until the subscriber is unsubscribed.
  PollGroup* GroupOf(SubscriptionHandle handle) const;

  /// Registered subscribers, across all groups.
  size_t SubscriberCount() const;

  PollGroupManager* manager() const { return manager_; }

  /// GroupFanout: evaluates each distinct compiled filter of `group`
  /// once, then notifies every subscriber in registration order. Called
  /// by the manager from the serial commit phase.
  void FanOut(PollGroup* group, Timestamp t, PollReport* report) override;

 private:
  struct SubEntry {
    Subscription sub;
    NotificationCallback callback;
    PollGroup* group = nullptr;
    /// Shared with every cohort member holding the same filter text on
    /// the same group (the group's pool holds one more reference).
    std::shared_ptr<chorel::CompiledQuery> filter;
  };

  void EmitSubscribeError(PollError::Kind kind, const std::string& subject,
                          const Status& status) const;

  PollGroupManager* manager_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, SubEntry> subs_;
  /// Per-group subscriber handles in registration order — the fan-out
  /// (and so notification) order, matching the legacy member order.
  std::map<std::string, std::vector<uint64_t>> members_;

  /// Instruments (all null without a registry). The notification-side
  /// half of the legacy qss.* family lives here, next to the code that
  /// bumps it; the new qss.group.* family tracks the sharing win.
  struct Instruments {
    obs::Counter* notifications = nullptr;
    obs::Counter* filter_evals = nullptr;
    obs::Counter* filter_shared = nullptr;
    obs::Gauge* subscribers = nullptr;
    obs::Histogram* filter_ns = nullptr;
    obs::Histogram* fanout_ns = nullptr;
    /// Per-notification end-to-end latency attribution (DESIGN.md §6h):
    /// the committed poll's phase timings observed once per delivered
    /// notification, so the e2e histogram decomposes into the segments a
    /// notification actually waited on.
    obs::Histogram* notify_e2e_ns = nullptr;
    obs::Histogram* notify_fetch_ns = nullptr;
    obs::Histogram* notify_diff_ns = nullptr;
    obs::Histogram* notify_apply_ns = nullptr;
    obs::Histogram* notify_filter_ns = nullptr;
    obs::Histogram* notify_fanout_ns = nullptr;
  };
  Instruments ins_;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_REGISTRY_H_
