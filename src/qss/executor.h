#ifndef DOEM_QSS_EXECUTOR_H_
#define DOEM_QSS_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace doem {
namespace qss {

/// Where QSS runs the parallelizable stage of a wave of due polls (the
/// per-group fetch → retry/backoff → OEMdiff chain; see DESIGN.md §6b).
/// An executor only decides *on which threads* tasks run — the service
/// keeps its outputs deterministic by committing results in group-name
/// order afterwards, so every executor produces byte-identical DOEM
/// histories.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs task(0) .. task(n-1), returning once all of them have
  /// completed. Tasks must not throw (the codebase reports failures via
  /// Status); distinct indices may run concurrently and in any order.
  virtual void ParallelFor(size_t n,
                           const std::function<void(size_t)>& task) = 0;

  /// How many tasks can make progress simultaneously (>= 1).
  virtual int concurrency() const = 0;
};

/// Deterministic executor for tests and baselines: runs every task
/// inline on the calling thread, in index order. Behaviorally identical
/// to passing no executor at all.
class SerialExecutor : public Executor {
 public:
  void ParallelFor(size_t n, const std::function<void(size_t)>& task) override;
  int concurrency() const override { return 1; }
};

/// A fixed-size pool of std::threads fed from one task queue. The pool
/// is reusable across ParallelFor calls (workers persist) and the
/// calling thread helps drain the queue, so a pool of T threads gives
/// T + 1 lanes and never deadlocks even with T == 0.
class ThreadPoolExecutor : public Executor {
 public:
  /// `threads` < 1 is clamped to 1.
  explicit ThreadPoolExecutor(int threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void ParallelFor(size_t n, const std::function<void(size_t)>& task) override;
  int concurrency() const override { return static_cast<int>(workers_.size()); }

 private:
  // One ParallelFor in flight: the queue holds its pending indices and
  // `batch_` tracks completion. ParallelFor is not reentrant (QSS never
  // nests waves) and is serialized by submit_mu_ for safety.
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t next = 0;       // next index to hand out
    size_t total = 0;      // indices in this batch
    size_t completed = 0;  // indices finished
  };

  void WorkerLoop();
  /// Runs queued indices until the batch is drained; returns when no
  /// index is left to claim (running tasks may still be in flight).
  void Help(std::unique_lock<std::mutex>& lock);

  std::mutex submit_mu_;  // serializes ParallelFor callers
  std::mutex mu_;         // guards batch_ and stop_
  std::condition_variable work_cv_;  // workers: new indices or shutdown
  std::condition_variable done_cv_;  // caller: batch completed
  Batch batch_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_EXECUTOR_H_
