#ifndef DOEM_QSS_QSS_H_
#define DOEM_QSS_QSS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "qss/options.h"
#include "qss/poll_group.h"
#include "qss/registry.h"
#include "qss/subscription.h"

namespace doem {
namespace qss {

/// The QSS server (Figure 7): subscription manager, query manager,
/// OEMdiff, DOEM manager, and Chorel engine, wired over one information
/// source and a simulated clock.
///
/// The polling pipeline per subscription and polling time t_k
/// (Figure 6):
///   1. send Q_l to the source, receive the snapshot R_k;
///   2. take R_{k-1} as the current snapshot of the DOEM database;
///   3. U_k = OEMdiff(R_{k-1}, R_k)  (keyed or structural, by source);
///   4. apply (t_k, U_k) to the DOEM database;
///   5. evaluate Q_c with t[0] = t_k, t[-1] = t_{k-1}, ... ;
///   6. notify the client if the result is non-empty.
///
/// Since the poll-group/subscriber split (DESIGN.md §6g) this class is a
/// thin, name-keyed facade over the two layers that own the pipeline:
///   - PollGroupManager — "what gets polled": poll groups, schedules,
///     fetch→diff→apply, fault tolerance, durability (steps 1–4);
///   - SubscriberRegistry — "who gets notified": handle-keyed
///     registrations, compiled-filter sharing, fan-out (steps 5–6).
/// The facade adds exactly one thing: a unique-name namespace mapped to
/// registry handles (duplicate names fail with
/// PollError::Kind::kDuplicateSubscription). Everything it does is
/// byte-identical — histories, rows, notification bytes and order — to
/// driving the layers directly.
class QuerySubscriptionService {
 public:
  QuerySubscriptionService(InformationSource* source, Timestamp start,
                           QssOptions options = {});

  /// Registers a subscription; its first poll is due at the current
  /// clock. Validates both queries. Fails if the name is taken.
  Status Subscribe(const Subscription& sub, NotificationCallback callback);

  /// Removes a subscription.
  Status Unsubscribe(const std::string& name);

  /// Advances the simulated clock, executing every poll that falls due,
  /// in time order, delivering notifications synchronously. Groups due
  /// at the same time form a wave whose fetch→diff stage runs on
  /// QssOptions::executor; results commit in group-key order, so the
  /// outcome is independent of the executor (DESIGN.md §6b).
  ///
  /// A failing source does not abort the tick: other groups still poll,
  /// other members still get their notifications, and the clock always
  /// reaches `t`. Failures accumulate into `*report` (if non-null) and
  /// fire the on_error callback. When neither channel is provided, the
  /// first failure is returned as the Status — after the whole tick has
  /// run.
  Status AdvanceTo(Timestamp t, PollReport* report = nullptr);

  /// Explicit-request mode (Section 6): polls one subscription now,
  /// regardless of its schedule.
  Status PollNow(const std::string& name, PollReport* report = nullptr);

  /// Source-trigger mode (Section 6): the source signals that it changed,
  /// e.g. from a database trigger it does support. Every poll group that
  /// has not already polled at the current tick polls immediately.
  Status NotifySourceChanged(PollReport* report = nullptr);

  Timestamp now() const { return manager_.now(); }

  /// Poll health of the group backing a subscription: circuit state,
  /// consecutive failures, last error, attempted/retried/missed counts.
  /// Default-constructed (healthy, all zero) if the name is unknown.
  PollHealth Health(const std::string& name) const;

  /// The DOEM database backing a subscription (null if unknown).
  const DoemDatabase* History(const std::string& name) const;
  /// The polling times t_1..t_k so far.
  std::vector<Timestamp> PollingTimes(const std::string& name) const;
  /// Number of distinct DOEM databases maintained (see
  /// QssOptions::merge_similar_polls).
  size_t GroupCount() const { return manager_.GroupCount(); }

  /// The registry handle behind a name (zero if unknown) — the bridge
  /// for callers migrating from the name-keyed facade to the layered
  /// API.
  SubscriptionHandle Handle(const std::string& name) const;

  /// The underlying layers, for callers that need the handle-keyed API
  /// (or per-group state) alongside the facade's name namespace.
  PollGroupManager& manager() { return manager_; }
  SubscriberRegistry& registry() { return registry_; }

 private:
  PollGroupManager manager_;
  SubscriberRegistry registry_;
  std::map<std::string, SubscriptionHandle> by_name_;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_QSS_H_
