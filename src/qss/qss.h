#ifndef DOEM_QSS_QSS_H_
#define DOEM_QSS_QSS_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "common/result.h"
#include "diff/diff.h"
#include "doem/doem.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qss/executor.h"
#include "qss/frequency.h"
#include "qss/health.h"
#include "qss/source.h"
#include "store/store.h"

namespace doem {
namespace qss {

/// A subscription S = <f, Q_l, Q_c> (paper Section 6): a frequency
/// specification, a Lorel polling query, and a Chorel filter query. The
/// name identifies the subscription and doubles as the name of its DOEM
/// database — the filter query's paths start with it
/// (LyttonRestaurants.restaurant<cre at T> ...).
struct Subscription {
  std::string name;
  FrequencySpec frequency;
  std::string polling_query;
  std::string filter_query;
};

/// What a Query Subscription Client receives when a filter query produces
/// results at a polling time.
struct Notification {
  std::string subscription;
  Timestamp poll_time;
  size_t poll_index = 0;  // 1-based k of t_k
  lorel::QueryResult result;
};

using NotificationCallback = std::function<void(const Notification&)>;

/// How much history each subscription's DOEM database retains — the
/// space-saving spectrum of Section 6.1.
enum class HistoryRetention {
  /// The full DOEM history since subscription time.
  kFull,
  /// Only the previous snapshot plus the latest delta, like the paper's
  /// first prototype ("supports only two snapshots ... per subscription").
  /// Filter queries can then only see the most recent changes.
  kTwoSnapshots,
};

struct QssOptions {
  /// Evaluation strategy for filter queries.
  chorel::Strategy strategy = chorel::Strategy::kDirect;
  HistoryRetention retention = HistoryRetention::kFull;
  /// Merge subscriptions with identical polling query and frequency into
  /// one shared DOEM database (Section 6.1, proposal (1)).
  bool merge_similar_polls = true;
  /// Deliver notifications with empty results too (default: only
  /// non-empty, as in Example 6.1 where the unchanged poll at t2
  /// notifies nobody).
  bool notify_empty = false;

  // ---- Query acceleration (DESIGN.md §6c) -----------------------------

  /// Maintain each group's Chorel engine caches (the Section 5.1 OEM
  /// encoding and the annotation index) incrementally with each poll's
  /// delta — O(delta) per poll instead of a from-scratch rebuild over the
  /// whole accumulated history. false = ablation baseline: drop the
  /// caches every poll and rebuild on the next filter evaluation. Either
  /// setting yields byte-identical histories, rows, and notifications.
  bool incremental_filter = true;
  /// Seed direct-strategy annotation expressions whose time variables are
  /// range-bounded by the where clause (the QSS shape: T > t[-1]) from
  /// the annotation index, instead of scanning every child per step.
  bool seed_filter_from_index = true;
  /// Debug cross-check: after every poll, verify the incrementally
  /// maintained caches against from-scratch rebuilds; divergence surfaces
  /// as a filter PollError. Slow — for tests.
  bool verify_incremental_filter = false;
  /// Run filter queries on the bytecode VM (DESIGN.md §6f) when they
  /// compile, with tree-walker fallback. Byte-identical histories, rows,
  /// and notifications either way.
  bool vm_filter = true;
  /// Debug cross-check: verify every VM filter evaluation against the
  /// tree walker; divergence surfaces as a filter PollError. Slow — for
  /// tests.
  bool verify_vm_filter = false;

  // ---- Fault tolerance (the source is autonomous and may fail) --------

  /// Retry/backoff/deadline policy applied to every scheduled poll.
  RetryPolicy retry;
  /// Quarantine a poll group after this many consecutive failed polls
  /// (circuit breaker). 0 disables quarantine: failed polls keep being
  /// attempted on schedule forever.
  int quarantine_after = 3;
  /// How long a quarantined group sits out before a half-open probe, in
  /// clock ticks. Scheduled polls inside the window are recorded as
  /// MissedPoll; the DOEM history is untouched.
  int64_t quarantine_cooldown_ticks = 2;
  /// Invoked synchronously for every poll or filter-query failure. When
  /// set (or when a PollReport is passed), AdvanceTo/PollNow/
  /// NotifySourceChanged return OK on poll failures — the tick always
  /// completes and errors flow through these channels instead.
  ErrorCallback on_error;
  /// Bound on PollHealth::missed: only the most recent N quarantine
  /// skips are kept, older entries are evicted (and tallied in
  /// PollHealth::missed_dropped and the qss.missed_log_dropped counter).
  /// 0 keeps the log unbounded.
  size_t max_missed_log = 64;

  // ---- Durability (DESIGN.md §6e) -------------------------------------

  /// Optional durable store (not owned; must outlive the service). When
  /// set, each poll group persists its DOEM history to the manager's
  /// store for the group key: Subscribe opens (and recovers) the store,
  /// adopting any committed history — the group resumes polling at the
  /// cadence-preserving next tick after the last committed poll instead
  /// of starting over — and every committed poll appends one durable
  /// record before the tick returns. A store commit failure does not
  /// fail the poll (availability over durability): it surfaces as a
  /// PollError::Kind::kStore and the store stays broken until reopened.
  /// Histories, rows, and notifications are byte-identical with or
  /// without a store, and across a crash + reopen at any byte offset.
  store::StoreManager* store = nullptr;

  // ---- Observability (DESIGN.md §6d) ----------------------------------

  /// Optional metrics sink (not owned; must outlive the service). Feeds
  /// the qss.* counters/gauges/histograms and is handed to each group's
  /// Chorel engine for the chorel.*/encoding.*/index.* families. Purely
  /// observational: histories, rows, and notifications are byte-identical
  /// with or without it.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional span recorder (not owned; must outlive the service).
  /// Records qss.advance/poll_now/source_changed top-level spans with
  /// nested per-group prepare (fetch, diff) and commit (apply, filter)
  /// spans, exportable as Chrome trace JSON. Same determinism guarantee
  /// as `metrics`.
  obs::TraceRecorder* trace = nullptr;

  // ---- Concurrency (DESIGN.md §6b) ------------------------------------

  /// Runs the parallelizable stage of every wave of due polls: each
  /// group's fetch (serialized on the source mutex), retry/backoff, and
  /// OEMdiff. Null runs the stage inline on the calling thread. The
  /// commit stage — DOEM apply, filter evaluation, notification, and
  /// report/health merging — always executes on the calling thread in
  /// group-key order, so any executor yields byte-identical histories,
  /// reports, and notification order to a serial run. Not owned; must
  /// outlive the service. Callbacks (notifications, on_error) keep
  /// firing on the thread that called AdvanceTo/PollNow.
  Executor* executor = nullptr;
};

/// The QSS server (Figure 7): subscription manager, query manager,
/// OEMdiff, DOEM manager, and Chorel engine, wired over one information
/// source and a simulated clock.
///
/// The polling pipeline per subscription and polling time t_k
/// (Figure 6):
///   1. send Q_l to the source, receive the snapshot R_k;
///   2. take R_{k-1} as the current snapshot of the DOEM database;
///   3. U_k = OEMdiff(R_{k-1}, R_k)  (keyed or structural, by source);
///   4. apply (t_k, U_k) to the DOEM database;
///   5. evaluate Q_c with t[0] = t_k, t[-1] = t_{k-1}, ... ;
///   6. notify the client if the result is non-empty.
class QuerySubscriptionService {
 public:
  QuerySubscriptionService(InformationSource* source, Timestamp start,
                           QssOptions options = {});

  /// Registers a subscription; its first poll is due at the current
  /// clock. Validates both queries. Fails if the name is taken.
  Status Subscribe(const Subscription& sub, NotificationCallback callback);

  /// Removes a subscription.
  Status Unsubscribe(const std::string& name);

  /// Advances the simulated clock, executing every poll that falls due,
  /// in time order, delivering notifications synchronously. Groups due
  /// at the same time form a wave whose fetch→diff stage runs on
  /// QssOptions::executor; results commit in group-key order, so the
  /// outcome is independent of the executor (DESIGN.md §6b).
  ///
  /// A failing source no longer aborts the tick: other groups still
  /// poll, other members still get their notifications, and the clock
  /// always reaches `t`. Failures accumulate into `*report` (if
  /// non-null) and fire QssOptions::on_error. When neither channel is
  /// provided, the first failure is returned as the Status — after the
  /// whole tick has run.
  Status AdvanceTo(Timestamp t, PollReport* report = nullptr);

  /// Explicit-request mode (Section 6): polls one subscription now,
  /// regardless of its schedule.
  Status PollNow(const std::string& name, PollReport* report = nullptr);

  /// Source-trigger mode (Section 6): the source signals that it changed,
  /// e.g. from a database trigger it does support. Every poll group that
  /// has not already polled at the current tick polls immediately.
  Status NotifySourceChanged(PollReport* report = nullptr);

  Timestamp now() const { return now_; }

  /// Poll health of the group backing a subscription: circuit state,
  /// consecutive failures, last error, attempted/retried/missed counts.
  /// Default-constructed (healthy, all zero) if the name is unknown.
  PollHealth Health(const std::string& name) const;

  /// The DOEM database backing a subscription (null if unknown).
  const DoemDatabase* History(const std::string& name) const;
  /// The polling times t_1..t_k so far.
  std::vector<Timestamp> PollingTimes(const std::string& name) const;
  /// Number of distinct DOEM databases maintained (see
  /// QssOptions::merge_similar_polls).
  size_t GroupCount() const { return groups_.size(); }

 private:
  // Subscriptions sharing a polling query + frequency share one poll
  // group: one DOEM database, one diff pipeline (Section 6.1).
  struct PollGroup {
    std::string polling_query;
    FrequencySpec frequency;
    DoemDatabase doem;
    std::vector<Timestamp> polls;
    Timestamp next_poll;
    std::vector<std::string> members;
    PollHealth health;
    /// Persistent per-group Chorel engine: its encoding / index caches
    /// survive across polls and are patched with each poll's delta
    /// (QssOptions::incremental_filter). References `doem`, whose address
    /// is stable (groups are heap-allocated; the two-snapshot rebase
    /// move-assigns in place).
    std::unique_ptr<chorel::ChorelEngine> engine;
    /// Durable backing store (null when QssOptions::store is unset).
    /// Appended from the serial commit phase only.
    std::unique_ptr<store::Store> store;
  };
  struct SubState {
    Subscription sub;
    NotificationCallback callback;
    std::string group_key;
    /// The filter query, parsed and normalized once at Subscribe time
    /// (the translated strategy caches its Section 5.2 translation here
    /// after the first poll).
    chorel::CompiledQuery filter;
  };

  /// The parallelizable half of one scheduled poll, plus everything the
  /// serial commit phase needs to finish it. Produced by PreparePoll
  /// (possibly on an executor thread), consumed by CommitPoll on the
  /// calling thread. Only group-local state (the group's PollHealth) is
  /// touched while preparing; shared state (PollReport, callbacks, the
  /// DOEM database visible through History()) is only touched at commit.
  struct PreparedPoll {
    PollGroup* group = nullptr;
    Timestamp time;
    /// Skipped inside a quarantine window: commit records a MissedPoll.
    bool quarantined = false;
    std::string missed_reason;
    /// Non-OK: fetch (after retries) or diff failed; commit runs the
    /// failure path (health counters, circuit breaker, PollError).
    Status failure;
    /// U_k, valid when !quarantined && failure.ok().
    ChangeSet delta;
    /// Retries consumed, merged into PollReport::retries at commit
    /// (PollHealth::retries is updated in place while preparing).
    size_t retries = 0;
    int64_t fetch_ns = 0;
    int64_t diff_ns = 0;
  };

  std::string GroupKey(const Subscription& sub) const;
  Result<PollGroup*> GroupFor(const Subscription& sub);

  /// Runs one wave — a set of distinct groups all due at time t, in
  /// group-key order — through PreparePoll (on the executor, when one is
  /// configured and the wave has >1 group) and then CommitPoll for every
  /// group under commit_mu_, in wave order. Never fails the caller:
  /// errors become PollReport entries / on_error calls.
  void RunWave(const std::vector<PollGroup*>& wave, Timestamp t,
               PollReport* report);

  /// Stage 1-3 of the pipeline for one group: circuit-breaker check,
  /// fetch with retries/backoff/deadline/validation, canonical wrap, and
  /// OEMdiff against the group's current snapshot. Safe to run
  /// concurrently for *distinct* groups: it mutates only the group's own
  /// state and serializes source access on source_mu_.
  PreparedPoll PreparePoll(PollGroup* group, Timestamp t);

  /// Attempts the source poll itself (with retries, deadline, and
  /// snapshot validation) per the retry policy. Each attempt's Poll and
  /// duration read from one critical section on source_mu_.
  Result<OemDatabase> AttemptPoll(PollGroup* group, Timestamp t,
                                  int max_attempts, PreparedPoll* pending);

  /// Stage 4-6 on the calling thread: apply (t, U_k) to the DOEM
  /// database, evaluate every member's filter, notify, and fold the
  /// outcome into the group's health and `*report` (never null). A
  /// member's filter failure is recorded and does not starve the
  /// remaining members; an apply failure leaves the DOEM database
  /// untouched and counts as a failed poll.
  void CommitPoll(PreparedPoll* pending, PollReport* report);

  /// Maps accumulated failures to the legacy Status surface: OK when the
  /// caller supplied a report or an on_error callback is configured,
  /// otherwise the first new error of this call.
  Status SettleReport(const PollReport& report, size_t first_new_error,
                      bool caller_has_report) const;

  /// Wraps a polled answer database into canonical form: a fixed root
  /// with one arc per group entry name to a fixed container whose arcs
  /// are the answer's. Fixed ids make keyed diffs stable across polls.
  Result<OemDatabase> CanonicalWrap(const OemDatabase& answer,
                                    const PollGroup& group) const;

  InformationSource* source_;
  Timestamp now_;
  QssOptions options_;
  DiffMode diff_mode_;
  std::map<std::string, SubState> subs_;
  std::map<std::string, std::unique_ptr<PollGroup>> groups_;

  /// Serializes source access: the InformationSource is shared mutable
  /// state with no thread-safety obligation (see source.h), so each
  /// Poll() plus its LastPollDurationTicks() read is one critical
  /// section. Executor threads contend here only for the fetch itself;
  /// diffing runs outside the lock.
  std::mutex source_mu_;
  /// Held for the whole commit phase of a wave: guards the merge of
  /// PreparedPolls into the DOEM histories, PollHealth, and the caller's
  /// PollReport, and keeps callback delivery single-threaded.
  std::mutex commit_mu_;

  /// Instrument handles resolved once at construction (all null without
  /// a registry — every update is guarded). Counters and histograms are
  /// bumped from the serial commit phase; the circuit gauges also from
  /// PreparePoll on executor threads (instrument updates are atomic).
  struct Instruments {
    obs::Counter* polls_attempted = nullptr;
    obs::Counter* polls_ok = nullptr;
    obs::Counter* polls_failed = nullptr;
    obs::Counter* polls_missed = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* notifications = nullptr;
    obs::Counter* quarantine_trips = nullptr;
    obs::Counter* missed_log_dropped = nullptr;
    obs::Gauge* groups = nullptr;
    obs::Gauge* circuits_open = nullptr;
    obs::Gauge* circuits_half_open = nullptr;
    obs::Histogram* fetch_ns = nullptr;
    obs::Histogram* diff_ns = nullptr;
    obs::Histogram* apply_ns = nullptr;
    obs::Histogram* filter_ns = nullptr;
  };
  Instruments ins_;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_QSS_H_
