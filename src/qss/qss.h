#ifndef DOEM_QSS_QSS_H_
#define DOEM_QSS_QSS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "common/result.h"
#include "diff/diff.h"
#include "doem/doem.h"
#include "qss/frequency.h"
#include "qss/source.h"

namespace doem {
namespace qss {

/// A subscription S = <f, Q_l, Q_c> (paper Section 6): a frequency
/// specification, a Lorel polling query, and a Chorel filter query. The
/// name identifies the subscription and doubles as the name of its DOEM
/// database — the filter query's paths start with it
/// (LyttonRestaurants.restaurant<cre at T> ...).
struct Subscription {
  std::string name;
  FrequencySpec frequency;
  std::string polling_query;
  std::string filter_query;
};

/// What a Query Subscription Client receives when a filter query produces
/// results at a polling time.
struct Notification {
  std::string subscription;
  Timestamp poll_time;
  size_t poll_index = 0;  // 1-based k of t_k
  lorel::QueryResult result;
};

using NotificationCallback = std::function<void(const Notification&)>;

/// How much history each subscription's DOEM database retains — the
/// space-saving spectrum of Section 6.1.
enum class HistoryRetention {
  /// The full DOEM history since subscription time.
  kFull,
  /// Only the previous snapshot plus the latest delta, like the paper's
  /// first prototype ("supports only two snapshots ... per subscription").
  /// Filter queries can then only see the most recent changes.
  kTwoSnapshots,
};

struct QssOptions {
  /// Evaluation strategy for filter queries.
  chorel::Strategy strategy = chorel::Strategy::kDirect;
  HistoryRetention retention = HistoryRetention::kFull;
  /// Merge subscriptions with identical polling query and frequency into
  /// one shared DOEM database (Section 6.1, proposal (1)).
  bool merge_similar_polls = true;
  /// Deliver notifications with empty results too (default: only
  /// non-empty, as in Example 6.1 where the unchanged poll at t2
  /// notifies nobody).
  bool notify_empty = false;
};

/// The QSS server (Figure 7): subscription manager, query manager,
/// OEMdiff, DOEM manager, and Chorel engine, wired over one information
/// source and a simulated clock.
///
/// The polling pipeline per subscription and polling time t_k
/// (Figure 6):
///   1. send Q_l to the source, receive the snapshot R_k;
///   2. take R_{k-1} as the current snapshot of the DOEM database;
///   3. U_k = OEMdiff(R_{k-1}, R_k)  (keyed or structural, by source);
///   4. apply (t_k, U_k) to the DOEM database;
///   5. evaluate Q_c with t[0] = t_k, t[-1] = t_{k-1}, ... ;
///   6. notify the client if the result is non-empty.
class QuerySubscriptionService {
 public:
  QuerySubscriptionService(InformationSource* source, Timestamp start,
                           QssOptions options = {});

  /// Registers a subscription; its first poll is due at the current
  /// clock. Validates both queries. Fails if the name is taken.
  Status Subscribe(const Subscription& sub, NotificationCallback callback);

  /// Removes a subscription.
  Status Unsubscribe(const std::string& name);

  /// Advances the simulated clock, executing every poll that falls due,
  /// in time order, delivering notifications synchronously.
  Status AdvanceTo(Timestamp t);

  /// Explicit-request mode (Section 6): polls one subscription now,
  /// regardless of its schedule.
  Status PollNow(const std::string& name);

  /// Source-trigger mode (Section 6): the source signals that it changed,
  /// e.g. from a database trigger it does support. Every poll group that
  /// has not already polled at the current tick polls immediately.
  Status NotifySourceChanged();

  Timestamp now() const { return now_; }

  /// The DOEM database backing a subscription (null if unknown).
  const DoemDatabase* History(const std::string& name) const;
  /// The polling times t_1..t_k so far.
  std::vector<Timestamp> PollingTimes(const std::string& name) const;
  /// Number of distinct DOEM databases maintained (see
  /// QssOptions::merge_similar_polls).
  size_t GroupCount() const { return groups_.size(); }

 private:
  // Subscriptions sharing a polling query + frequency share one poll
  // group: one DOEM database, one diff pipeline (Section 6.1).
  struct PollGroup {
    std::string polling_query;
    FrequencySpec frequency;
    DoemDatabase doem;
    std::vector<Timestamp> polls;
    Timestamp next_poll;
    std::vector<std::string> members;
  };
  struct SubState {
    Subscription sub;
    NotificationCallback callback;
    std::string group_key;
  };

  std::string GroupKey(const Subscription& sub) const;
  Result<PollGroup*> GroupFor(const Subscription& sub);
  Status PollGroupAt(PollGroup* group, Timestamp t);

  /// Wraps a polled answer database into canonical form: a fixed root
  /// with one arc per group entry name to a fixed container whose arcs
  /// are the answer's. Fixed ids make keyed diffs stable across polls.
  Result<OemDatabase> CanonicalWrap(const OemDatabase& answer,
                                    const PollGroup& group) const;

  InformationSource* source_;
  Timestamp now_;
  QssOptions options_;
  DiffMode diff_mode_;
  std::map<std::string, SubState> subs_;
  std::map<std::string, std::unique_ptr<PollGroup>> groups_;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_QSS_H_
