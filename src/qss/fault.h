#ifndef DOEM_QSS_FAULT_H_
#define DOEM_QSS_FAULT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "qss/source.h"

namespace doem {
namespace qss {

/// What a scripted fault does to a matching Poll() call.
enum class FaultKind {
  /// Return the spec's error Status instead of polling.
  kError,
  /// Poll normally but report `duration_ticks` as the simulated poll
  /// duration, so a QSS deadline (RetryPolicy::poll_deadline_ticks)
  /// discards the result.
  kSlowPoll,
  /// Return a truncated snapshot (nodes but no root) instead of the real
  /// answer — a wrapper that died mid-transfer.
  kGarbage,
};

/// One entry of a deterministic fault schedule, matched against the
/// sequence of Poll() calls (each retry is its own call). Every spec
/// keeps its own match counter: it lets `skip` matching calls through,
/// then fires on the next `count` of them (0 = forever).
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  size_t skip = 0;
  size_t count = 1;
  /// For kError; must be non-OK (substituted with Unavailable if OK).
  Status error = Status::Unavailable("injected fault");
  /// For kSlowPoll.
  int64_t duration_ticks = 0;
  /// Only polls whose query contains this substring match (empty = all).
  /// Distinguishes poll groups sharing one source in multi-group tests.
  std::string query_contains;
};

/// Decorator that wraps any InformationSource with a scripted fault
/// schedule plus call-count bookkeeping, for deterministic
/// fault-injection tests and benchmarks. The first spec that fires on a
/// call wins; unmatched calls are forwarded to the inner source.
///
/// Determinism under a parallel executor: QSS serializes Poll() calls,
/// and each poll group's own calls arrive in a fixed order — but calls
/// of *different* groups within one wave interleave in thread-scheduling
/// order. A spec with an empty `query_contains` counts calls across all
/// groups and may therefore fire on a different group from run to run;
/// give every spec a `query_contains` that pins it to one group's
/// polling query when a test asserts serial/parallel equality.
class FaultInjectingSource : public InformationSource {
 public:
  explicit FaultInjectingSource(InformationSource* inner) : inner_(inner) {}

  void AddFault(FaultSpec spec) { faults_.push_back({std::move(spec), 0}); }

  /// Shorthands for the common schedules.
  void FailPolls(size_t skip, size_t count,
                 Status error = Status::Unavailable("injected fault"),
                 std::string query_contains = "");
  void SlowPolls(size_t skip, size_t count, int64_t duration_ticks,
                 std::string query_contains = "");
  void GarbagePolls(size_t skip, size_t count,
                    std::string query_contains = "");

  Result<OemDatabase> Poll(const std::string& lorel_query,
                           Timestamp now) override;
  /// Fault matching stays on the query text (`query_contains`); the
  /// group key is forwarded to the inner source untouched.
  Result<OemDatabase> PollForGroup(const std::string& group_key,
                                   const std::string& lorel_query,
                                   Timestamp now) override;
  bool PreservesIds() const override { return inner_->PreservesIds(); }
  int64_t LastPollDurationTicks() const override { return last_duration_; }

  // ---- Bookkeeping for assertions -------------------------------------

  /// Total Poll() calls observed (including injected ones).
  size_t calls() const { return calls_; }
  /// Calls that reached the inner source.
  size_t forwarded() const { return forwarded_; }
  size_t injected_errors() const { return injected_errors_; }
  size_t injected_garbage() const { return injected_garbage_; }
  size_t injected_slow() const { return injected_slow_; }

 private:
  struct ActiveSpec {
    FaultSpec spec;
    size_t matched = 0;
  };

  InformationSource* inner_;
  std::vector<ActiveSpec> faults_;
  int64_t last_duration_ = 0;
  size_t calls_ = 0;
  size_t forwarded_ = 0;
  size_t injected_errors_ = 0;
  size_t injected_garbage_ = 0;
  size_t injected_slow_ = 0;
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_FAULT_H_
