#include "qss/fault.h"

#include <utility>

namespace doem {
namespace qss {

namespace {

// A wrapper that died mid-transfer: content arrived but the root
// designation (the "envelope") did not, so the snapshot fails every
// integrity check without being empty.
OemDatabase TruncatedSnapshot() {
  OemDatabase garbage;
  NodeId junk = garbage.NewComplex();
  garbage.NewString("truncated");
  (void)junk;
  return garbage;
}

}  // namespace

void FaultInjectingSource::FailPolls(size_t skip, size_t count, Status error,
                                     std::string query_contains) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.skip = skip;
  spec.count = count;
  spec.error = error.ok() ? Status::Unavailable("injected fault")
                          : std::move(error);
  spec.query_contains = std::move(query_contains);
  AddFault(std::move(spec));
}

void FaultInjectingSource::SlowPolls(size_t skip, size_t count,
                                     int64_t duration_ticks,
                                     std::string query_contains) {
  FaultSpec spec;
  spec.kind = FaultKind::kSlowPoll;
  spec.skip = skip;
  spec.count = count;
  spec.duration_ticks = duration_ticks;
  spec.query_contains = std::move(query_contains);
  AddFault(std::move(spec));
}

void FaultInjectingSource::GarbagePolls(size_t skip, size_t count,
                                        std::string query_contains) {
  FaultSpec spec;
  spec.kind = FaultKind::kGarbage;
  spec.skip = skip;
  spec.count = count;
  spec.query_contains = std::move(query_contains);
  AddFault(std::move(spec));
}

Result<OemDatabase> FaultInjectingSource::Poll(const std::string& lorel_query,
                                               Timestamp now) {
  return PollForGroup(lorel_query, lorel_query, now);
}

Result<OemDatabase> FaultInjectingSource::PollForGroup(
    const std::string& group_key, const std::string& lorel_query,
    Timestamp now) {
  ++calls_;
  last_duration_ = 0;
  for (ActiveSpec& active : faults_) {
    const FaultSpec& spec = active.spec;
    if (!spec.query_contains.empty() &&
        lorel_query.find(spec.query_contains) == std::string::npos) {
      continue;
    }
    ++active.matched;
    if (active.matched <= spec.skip) continue;
    if (spec.count != 0 && active.matched > spec.skip + spec.count) continue;
    switch (spec.kind) {
      case FaultKind::kError: {
        ++injected_errors_;
        Status error = spec.error;
        if (error.ok()) error = Status::Unavailable("injected fault");
        return error;
      }
      case FaultKind::kGarbage:
        ++injected_garbage_;
        return TruncatedSnapshot();
      case FaultKind::kSlowPoll:
        ++injected_slow_;
        last_duration_ = spec.duration_ticks;
        break;  // still forwards; QSS's deadline discards the answer
    }
    break;  // the first spec that fires wins
  }
  ++forwarded_;
  return inner_->PollForGroup(group_key, lorel_query, now);
}

}  // namespace qss
}  // namespace doem
