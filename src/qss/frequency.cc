#include "qss/frequency.h"

#include <charconv>
#include <vector>

#include "common/strings.h"

namespace doem {
namespace qss {

namespace {

// Ticks per unit word, per tick granularity. -1 = not representable.
int64_t UnitTicks(const std::string& word, TickUnit unit) {
  auto is = [&word](const char* singular, const char* plural) {
    return word == singular || word == plural;
  };
  if (is("tick", "ticks")) return 1;
  if (unit == TickUnit::kMinute) {
    if (is("minute", "minutes")) return 1;
    if (is("hour", "hours")) return 60;
    if (is("day", "days") || is("night", "nights")) return 24 * 60;
    if (is("week", "weeks")) return 7 * 24 * 60;
  } else {
    if (is("day", "days") || is("night", "nights")) return 1;
    if (is("week", "weeks")) return 7;
    if (is("minute", "minutes") || is("hour", "hours")) return -1;
  }
  return 0;  // unknown word
}

}  // namespace

Result<FrequencySpec> FrequencySpec::Parse(const std::string& text,
                                           TickUnit unit) {
  FrequencySpec spec;
  spec.display = std::string(StripWhitespace(text));
  std::string lower = ToLower(spec.display);
  std::vector<std::string> words;
  for (const std::string& w : Split(lower, ' ')) {
    if (!w.empty()) words.push_back(w);
  }
  size_t i = 0;
  if (i >= words.size() || words[i] != "every") {
    return Status::ParseError("frequency specification must start with "
                              "'every': '" +
                              text + "'");
  }
  ++i;
  int64_t count = 1;
  if (i < words.size()) {
    int64_t parsed;
    auto [p, ec] = std::from_chars(
        words[i].data(), words[i].data() + words[i].size(), parsed);
    if (ec == std::errc() && p == words[i].data() + words[i].size()) {
      if (parsed <= 0) {
        return Status::ParseError("frequency count must be positive");
      }
      count = parsed;
      ++i;
    }
  }
  int64_t per_unit = 1;
  if (i < words.size() && words[i] != "at") {
    per_unit = UnitTicks(words[i], unit);
    if (per_unit == 0) {
      return Status::ParseError("unknown frequency unit '" + words[i] + "'");
    }
    if (per_unit < 0) {
      return Status::ParseError(
          "unit '" + words[i] +
          "' is finer than the source's day-tick granularity");
    }
    ++i;
  }
  // Optional "at hh:mm[am|pm]" clause: display-only under day ticks.
  if (i < words.size()) {
    if (words[i] != "at") {
      return Status::ParseError("unexpected word '" + words[i] +
                                "' in frequency specification");
    }
    if (i + 1 >= words.size()) {
      return Status::ParseError("'at' needs a time of day");
    }
  }
  spec.interval_ticks = count * per_unit;
  return spec;
}

}  // namespace qss
}  // namespace doem
