#ifndef DOEM_QSS_FREQUENCY_H_
#define DOEM_QSS_FREQUENCY_H_

#include <string>

#include "common/result.h"
#include "oem/timestamp.h"

namespace doem {
namespace qss {

/// The tick granularity a frequency specification is interpreted against.
/// The paper's time domain is abstract ("discrete and totally ordered",
/// Section 2.2); sources that poll daily use day ticks (dates parse
/// directly into them), high-frequency sources use minute ticks.
enum class TickUnit { kMinute, kDay };

/// A subscription's frequency specification f (Section 6): how often QSS
/// polls the source. Parsed from natural phrasings like the paper's
/// examples:
///
///   "every 10 minutes"            (minute ticks)
///   "every day", "every night at 11:30pm", "every 2 weeks"  (day ticks)
///   "every 5 ticks"               (unit-agnostic)
///
/// A trailing "at ..." clause selects the time of day; with day ticks it
/// does not change tick arithmetic and is kept for display only.
struct FrequencySpec {
  int64_t interval_ticks = 1;
  std::string display;  // original text

  static Result<FrequencySpec> Parse(const std::string& text,
                                     TickUnit unit = TickUnit::kDay);

  /// The polling times are t_1 = start, t_{k+1} = t_k + interval.
  Timestamp FirstPoll(Timestamp start) const { return start; }
  Timestamp NextPoll(Timestamp previous) const {
    return Timestamp(previous.ticks + interval_ticks);
  }
};

}  // namespace qss
}  // namespace doem

#endif  // DOEM_QSS_FREQUENCY_H_
