#include "lorel/eval.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "lorel/coerce.h"

namespace doem {
namespace lorel {

namespace {

using Env = std::unordered_map<std::string, RtVal>;
using Bindings = std::vector<std::pair<std::string, RtVal>>;

class Evaluator {
 public:
  Evaluator(const NormQuery& q, const GraphView& view,
            const EvalOptions& opts)
      : q_(q), view_(view), opts_(opts) {}

  Result<QueryResult> Run() {
    QueryResult result;
    result.labels = q_.labels;
    PrepareSeeding();
    Env env;
    Status s = EnumDefs(0, &env, &result);
    if (s.ok() && opts_.package_results) {
      s = PackageResult(view_, q_.select.size(), &result);
    }
    FlushStats();
    if (!s.ok()) return s;
    return result;
  }

 private:
  // ---- definition enumeration -----------------------------------------

  Status EnumDefs(size_t idx, Env* env, QueryResult* result) {
    if (idx == q_.defs.size()) return TestAndEmit(*env, result);
    const RangeDef& def = q_.defs[idx];
    auto matches =
        MatchStep(*env, def.source_var, def.step, def.var,
                  /*allow_seeding=*/true);
    if (!matches.ok()) return matches.status();
    for (Bindings& b : *matches) {
      if (def.bind_value) {
        for (auto& [name, val] : b) {
          if (name == def.var && val.kind == RtVal::Kind::kNode) {
            val = RtVal::Val(view_.value(val.node));
          }
        }
      }
      for (auto& [name, val] : b) (*env)[name] = val;
      DOEM_RETURN_IF_ERROR(EnumDefs(idx + 1, env, result));
      for (auto& [name, val] : b) env->erase(name);
    }
    return Status::OK();
  }

  /// Enumerates one step from the source variable's binding, producing
  /// for each match the variable bindings it introduces (the endpoint
  /// node variable plus any annotation variables). `allow_seeding` is set
  /// only for top-level range definitions, whose annotation variables are
  /// the ones the where clause's top-level conjuncts constrain; lazy
  /// paths (inside exists / comparisons) bind variables with their own
  /// scopes and always scan.
  Result<std::vector<Bindings>> MatchStep(const Env& env,
                                          const std::string& source_var,
                                          const PathStep& step,
                                          const std::string& end_var,
                                          bool allow_seeding = false) {
    std::vector<Bindings> out;
    NodeId source;
    if (source_var.empty()) {
      source = view_.root();
      if (source == kInvalidNode) return out;
    } else {
      auto it = env.find(source_var);
      if (it == env.end() || it->second.kind != RtVal::Kind::kNode) {
        // Paths cannot continue from plain values; Lorel-style, this is
        // simply no match rather than an error.
        return out;
      }
      source = it->second.node;
    }

    // 1. Candidate children (and arc-annotation bindings).
    // `seeded_step` feeds the EvalStats seeded-vs-scanned tally for
    // annotation steps.
    bool seeded_step = false;
    std::vector<std::pair<NodeId, Bindings>> candidates;
    if (!step.arc_annot) {
      if (step.wildcard) {
        for (NodeId n : WildcardClosure(source)) candidates.push_back({n, {}});
      } else if (step.wildcard_one) {
        // '%': one arc with any label.
        bool skip_amp = view_.SkipEncodingLabelsInWildcard();
        for (const OutArc& a : view_.LiveOutArcs(source)) {
          ++stats_.arcs_expanded;
          if (skip_amp && !a.label.empty() && a.label[0] == '&') continue;
          candidates.push_back({a.child, {}});
        }
      } else if (auto seeded = SeedNodeCandidates(allow_seeding, source, step)) {
        seeded_step = true;
        for (NodeId c : *seeded) candidates.push_back({c, {}});
      } else {
        for (NodeId c : view_.Children(source, step.label)) {
          ++stats_.arcs_expanded;
          candidates.push_back({c, {}});
        }
      }
    } else {
      const AnnotExpr& a = *step.arc_annot;
      if (a.kind == AnnotKind::kAt) {
        if (!view_.SupportsTimeTravel()) {
          return Status::Unsupported(
              "virtual <at T> annotations require direct evaluation over a "
              "DOEM database");
        }
        auto t = EvalTime(env, a.at_time);
        if (!t.ok()) return t.status();
        std::vector<NodeId> kids =
            step.wildcard_one ? view_.ChildrenAtAny(source, *t)
                              : view_.ChildrenAt(source, step.label, *t);
        stats_.arcs_expanded += kids.size();
        for (NodeId c : kids) candidates.push_back({c, {}});
      } else {
        if (!view_.SupportsAnnotations()) {
          return Status::Unsupported(
              "annotation expressions require a DOEM database (Chorel); "
              "this view has no annotations");
        }
        std::vector<std::pair<Timestamp, NodeId>> pairs;
        if (auto seeded = SeedArcPairs(allow_seeding, source, step, a)) {
          seeded_step = true;
          pairs = std::move(*seeded);
        } else if (step.wildcard_one) {
          pairs = a.kind == AnnotKind::kAdd ? view_.AddAnnotatedAny(source)
                                            : view_.RemAnnotatedAny(source);
        } else {
          pairs = a.kind == AnnotKind::kAdd
                      ? view_.AddAnnotated(source, step.label)
                      : view_.RemAnnotated(source, step.label);
        }
        if (!seeded_step) stats_.arcs_expanded += pairs.size();
        for (auto& [t, c] : pairs) {
          Bindings b;
          if (!a.time_var.empty()) {
            b.emplace_back(a.time_var, RtVal::Val(Value::Time(t)));
          }
          candidates.push_back({c, std::move(b)});
        }
      }
    }

    // EvalStats: endpoint candidates considered, and whether an
    // annotation step came from the index or a scan (<at T> time travel
    // has no index; it always counts as scanned).
    stats_.nodes_visited += candidates.size();
    bool annot_step = step.arc_annot.has_value() || step.node_annot.has_value();
    if (annot_step) {
      if (seeded_step) {
        ++stats_.steps_index_seeded;
      } else {
        ++stats_.steps_scanned;
      }
    }

    // 2. Node-annotation filtering/extension on each candidate.
    for (auto& [child, arc_bindings] : candidates) {
      if (!step.node_annot) {
        Bindings b = arc_bindings;
        b.emplace_back(end_var, RtVal::Node(child));
        out.push_back(std::move(b));
        continue;
      }
      const AnnotExpr& a = *step.node_annot;
      switch (a.kind) {
        case AnnotKind::kCre: {
          if (!view_.SupportsAnnotations()) {
            return Status::Unsupported(
                "annotation expressions require a DOEM database");
          }
          auto t = view_.CreTime(child);
          if (!t) break;  // no cre annotation: no match
          Bindings b = arc_bindings;
          if (!a.time_var.empty()) {
            b.emplace_back(a.time_var, RtVal::Val(Value::Time(*t)));
          }
          b.emplace_back(end_var, RtVal::Node(child));
          out.push_back(std::move(b));
          break;
        }
        case AnnotKind::kUpd: {
          if (!view_.SupportsAnnotations()) {
            return Status::Unsupported(
                "annotation expressions require a DOEM database");
          }
          for (const UpdEntry& u : view_.UpdEntries(child)) {
            Bindings b = arc_bindings;
            if (!a.time_var.empty()) {
              b.emplace_back(a.time_var, RtVal::Val(Value::Time(u.time)));
            }
            if (!a.from_var.empty()) {
              b.emplace_back(a.from_var, RtVal::Val(u.old_value));
            }
            if (!a.to_var.empty()) {
              b.emplace_back(a.to_var, RtVal::Val(u.new_value));
            }
            b.emplace_back(end_var, RtVal::Node(child));
            out.push_back(std::move(b));
          }
          break;
        }
        case AnnotKind::kAt: {
          if (!view_.SupportsTimeTravel()) {
            return Status::Unsupported(
                "virtual <at T> annotations require direct evaluation over "
                "a DOEM database");
          }
          auto t = EvalTime(env, a.at_time);
          if (!t.ok()) return t.status();
          Bindings b = arc_bindings;
          b.emplace_back(end_var, RtVal::NodeAt(child, *t));
          out.push_back(std::move(b));
          break;
        }
        default:
          return Status::Internal("arc annotation in node position");
      }
    }
    return out;
  }

  /// '#': every node reachable from `source` by a path of length >= 0.
  std::vector<NodeId> WildcardClosure(NodeId source) {
    std::vector<NodeId> order{source};
    std::unordered_set<NodeId> seen{source};
    std::deque<NodeId> queue{source};
    bool skip_amp = view_.SkipEncodingLabelsInWildcard();
    while (!queue.empty()) {
      NodeId n = queue.front();
      queue.pop_front();
      for (const OutArc& a : view_.LiveOutArcs(n)) {
        ++stats_.arcs_expanded;
        if (skip_amp && !a.label.empty() && a.label[0] == '&') continue;
        if (seen.insert(a.child).second) {
          order.push_back(a.child);
          queue.push_back(a.child);
        }
      }
    }
    return order;
  }

  // ---- annotation-index seeding ----------------------------------------
  //
  // When the where clause range-bounds an annotation time variable via
  // top-level AND conjuncts (T > t[-1], T <= 1997-03-01, ...), candidates
  // for the step that binds T can be enumerated annotation-first from the
  // view's index postings instead of scanning every child: any candidate
  // whose annotation time falls outside the bounds would bind a T that
  // fails the conjunct, so restricting to the bounded range is sound.
  // Seeding is attempted only for plain-label steps of top-level defs,
  // only for variables bound by exactly one def step (a reused name would
  // be rebound later, making the pruned binding unobservable by the where
  // clause), and falls back to scanning whenever the view has no index.

  void PrepareSeeding() {
    // A variable qualifies only if bound by exactly one top-level def —
    // def vars count double so any collision disqualifies.
    std::unordered_map<std::string, int> counts;
    for (const RangeDef& def : q_.defs) {
      counts[def.var] += 2;
      for (const AnnotExpr* annot :
           {def.step.arc_annot ? &*def.step.arc_annot : nullptr,
            def.step.node_annot ? &*def.step.node_annot : nullptr}) {
        if (annot == nullptr) continue;
        for (const std::string* v :
             {&annot->time_var, &annot->from_var, &annot->to_var}) {
          if (!v->empty()) counts[*v] += 1;
        }
      }
    }
    for (const auto& [name, n] : counts) {
      if (n == 1) seedable_vars_.insert(name);
    }
    if (q_.where) CollectConjunctBounds(q_.where);
  }

  void CollectConjunctBounds(const ExprPtr& e) {
    if (e->kind != Expr::Kind::kBinary) return;
    if (e->op == BinOp::kAnd) {
      CollectConjunctBounds(e->lhs);
      CollectConjunctBounds(e->rhs);
      return;
    }
    // Orient as Var op Bound.
    BinOp op = e->op;
    const Expr* var = nullptr;
    const Expr* bound = nullptr;
    if (e->lhs->kind == Expr::Kind::kVar) {
      var = e->lhs.get();
      bound = e->rhs.get();
    } else if (e->rhs->kind == Expr::Kind::kVar) {
      var = e->rhs.get();
      bound = e->lhs.get();
      switch (op) {
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    } else {
      return;
    }
    // The bound must be a constant with timestamp meaning. Int and
    // parseable-string literals qualify: the bounded variable is only
    // ever an annotation time variable (timestamp-valued), and comparing
    // a timestamp against those coerces them exactly this way
    // (CompareValues's timestamp context).
    Timestamp t;
    if (bound->kind == Expr::Kind::kTimeRef) {
      auto r = ResolveTimeRef(bound->time_ref);
      if (!r.ok()) return;  // no polling times: no bound from this conjunct
      t = *r;
    } else if (bound->kind == Expr::Kind::kLiteral) {
      switch (bound->literal.kind()) {
        case Value::Kind::kTimestamp:
          t = bound->literal.AsTime();
          break;
        case Value::Kind::kInt:
          t = Timestamp(bound->literal.AsInt());
          break;
        case Value::Kind::kString:
          if (!Timestamp::Parse(bound->literal.AsString(), &t)) return;
          break;
        default:
          return;
      }
    } else {
      return;
    }
    constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
    constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
    auto it = time_bounds_.find(var->var);
    if (it == time_bounds_.end()) {
      it = time_bounds_
               .emplace(var->var, std::make_pair(Timestamp(kMin),
                                                 Timestamp(kMax)))
               .first;
    }
    auto& [lo, hi] = it->second;
    switch (op) {
      case BinOp::kGt:
        // Strict bounds saturate at the tick limits, which only ever
        // widens the range — still a sound over-approximation.
        lo = std::max(lo, Timestamp(t.ticks == kMax ? kMax : t.ticks + 1));
        break;
      case BinOp::kGe:
        lo = std::max(lo, t);
        break;
      case BinOp::kLt:
        hi = std::min(hi, Timestamp(t.ticks == kMin ? kMin : t.ticks - 1));
        break;
      case BinOp::kLe:
        hi = std::min(hi, t);
        break;
      case BinOp::kEq:
        lo = std::max(lo, t);
        hi = std::min(hi, t);
        break;
      default:
        // kNe / kLike constrain nothing rangewise; drop the entry if this
        // conjunct was the only mention.
        if (it->second ==
            std::make_pair(Timestamp(kMin), Timestamp(kMax))) {
          time_bounds_.erase(it);
        }
        break;
    }
  }

  /// The [lo, hi] range for a seedable, range-bounded variable, or null.
  const std::pair<Timestamp, Timestamp>* BoundsFor(
      const std::string& var) const {
    if (var.empty() || !seedable_vars_.contains(var)) return nullptr;
    auto it = time_bounds_.find(var);
    return it == time_bounds_.end() ? nullptr : &it->second;
  }

  /// Candidates for a plain-label step with a time-bounded <cre at T> /
  /// <upd ...> node annotation: nodes the index reports in range,
  /// restricted to live label-children of the source. nullopt = seeding
  /// not applicable; scan.
  std::optional<std::vector<NodeId>> SeedNodeCandidates(
      bool allow_seeding, NodeId source, const PathStep& step) {
    if (!allow_seeding || !step.node_annot) return std::nullopt;
    const AnnotExpr& a = *step.node_annot;
    const auto* bounds = BoundsFor(a.time_var);
    if (bounds == nullptr) return std::nullopt;
    std::optional<std::vector<NodeId>> in_range;
    if (a.kind == AnnotKind::kCre) {
      in_range = view_.CreatedInRange(bounds->first, bounds->second);
    } else if (a.kind == AnnotKind::kUpd) {
      in_range = view_.UpdatedInRange(bounds->first, bounds->second);
    }
    if (!in_range) return std::nullopt;
    stats_.postings_scanned += in_range->size();
    std::vector<NodeId> out;
    for (NodeId c : *in_range) {
      if (view_.HasLiveArc(source, step.label, c)) out.push_back(c);
    }
    return out;
  }

  /// (time, child) pairs for a time-bounded <add at T> / <rem at T> arc
  /// annotation, from the index's in-range arc postings filtered to the
  /// source (and label, unless the step is the '%' wildcard). nullopt =
  /// seeding not applicable; scan.
  std::optional<std::vector<std::pair<Timestamp, NodeId>>> SeedArcPairs(
      bool allow_seeding, NodeId source, const PathStep& step,
      const AnnotExpr& a) {
    if (!allow_seeding) return std::nullopt;
    const auto* bounds = BoundsFor(a.time_var);
    if (bounds == nullptr) return std::nullopt;
    auto in_range = a.kind == AnnotKind::kAdd
                        ? view_.AddedInRange(bounds->first, bounds->second)
                        : view_.RemovedInRange(bounds->first, bounds->second);
    if (!in_range) return std::nullopt;
    stats_.postings_scanned += in_range->size();
    std::vector<std::pair<Timestamp, NodeId>> out;
    for (const auto& [t, arc] : *in_range) {
      if (arc.parent != source) continue;
      if (!step.wildcard_one && arc.label != step.label) continue;
      out.emplace_back(t, arc.child);
    }
    return out;
  }

  // ---- where-clause evaluation ------------------------------------------

  Result<bool> EvalBool(const Env& env, const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        if (e->literal.kind() == Value::Kind::kBool) {
          return e->literal.AsBool();
        }
        return Status::Unsupported("non-boolean literal as a condition");
      case Expr::Kind::kBinary: {
        if (e->op == BinOp::kAnd || e->op == BinOp::kOr) {
          auto l = EvalBool(env, e->lhs);
          if (!l.ok()) return l;
          if (e->op == BinOp::kAnd && !*l) return false;
          if (e->op == BinOp::kOr && *l) return true;
          return EvalBool(env, e->rhs);
        }
        auto lv = OperandValues(env, e->lhs);
        if (!lv.ok()) return lv.status();
        auto rv = OperandValues(env, e->rhs);
        if (!rv.ok()) return rv.status();
        for (const Value& l : *lv) {
          for (const Value& r : *rv) {
            if (CompareValues(l, e->op, r)) return true;
          }
        }
        return false;
      }
      case Expr::Kind::kNot: {
        auto c = EvalBool(env, e->child);
        if (!c.ok()) return c;
        return !*c;
      }
      case Expr::Kind::kExists: {
        auto matches = EnumLazyPath(env, e->exists_path);
        if (!matches.ok()) return matches.status();
        for (const Bindings& extra : *matches) {
          Env env2 = env;
          // The path endpoint binds the exists variable; annotation
          // variables keep their own names.
          for (const auto& [name, val] : extra) {
            env2[name == "$end" ? e->exists_var : name] = val;
          }
          auto p = EvalBool(env2, e->exists_pred);
          if (!p.ok()) return p;
          if (*p) return true;
        }
        return false;
      }
      default:
        return Status::Unsupported("expression '" + e->ToString() +
                                   "' is not a condition");
    }
  }

  /// The candidate comparison values of an operand. Paths yield one value
  /// per match (existential semantics at the enclosing comparison).
  Result<std::vector<Value>> OperandValues(const Env& env,
                                           const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        return std::vector<Value>{e->literal};
      case Expr::Kind::kTimeRef: {
        auto t = ResolveTimeRef(e->time_ref);
        if (!t.ok()) return t.status();
        return std::vector<Value>{Value::Time(*t)};
      }
      case Expr::Kind::kVar: {
        auto it = env.find(e->var);
        if (it == env.end()) {
          return Status::Internal("unbound variable '" + e->var + "'");
        }
        return std::vector<Value>{RtValue(it->second)};
      }
      case Expr::Kind::kPath: {
        auto matches = EnumLazyPath(env, e->path);
        if (!matches.ok()) return matches.status();
        std::vector<Value> out;
        for (const Bindings& b : *matches) {
          for (const auto& [name, val] : b) {
            if (name == "$end") out.push_back(RtValue(val));
          }
        }
        return out;
      }
      default:
        return Status::Unsupported("expression '" + e->ToString() +
                                   "' cannot be used as a value");
    }
  }

  /// The comparable value of a runtime binding: plain values as-is; nodes
  /// contribute their (possibly time-traveled) atomic value.
  Value RtValue(const RtVal& v) {
    if (v.kind == RtVal::Kind::kValue) return v.value;
    if (v.as_of) return view_.ValueAt(v.node, *v.as_of);
    return view_.value(v.node);
  }

  Result<Timestamp> EvalTime(const Env& env, const ExprPtr& e) {
    auto vals = OperandValues(env, e);
    if (!vals.ok()) return vals.status();
    for (const Value& v : *vals) {
      switch (v.kind()) {
        case Value::Kind::kTimestamp:
          return v.AsTime();
        case Value::Kind::kInt:
          return Timestamp(v.AsInt());
        case Value::Kind::kString: {
          Timestamp t;
          if (Timestamp::Parse(v.AsString(), &t)) return t;
          break;
        }
        default:
          break;
      }
    }
    return Status::InvalidArgument("'" + e->ToString() +
                                   "' does not evaluate to a timestamp");
  }

  Result<Timestamp> ResolveTimeRef(int i) {
    if (opts_.polling_times == nullptr) {
      return Status::Unsupported(
          "t[i] is only available in QSS filter queries");
    }
    const auto& times = *opts_.polling_times;
    // t[0] = t_k, t[-i] = t_{k-i}; negative infinity when out of range
    // (Section 6).
    int64_t idx = static_cast<int64_t>(times.size()) - 1 + i;
    if (idx < 0 || times.empty()) return Timestamp::NegativeInfinity();
    return times[static_cast<size_t>(idx)];
  }

  /// Enumerates a lazily evaluated path (inside exists). Each match's
  /// bindings contain annotation variables by name and the endpoint under
  /// the reserved name "$end".
  Result<std::vector<Bindings>> EnumLazyPath(const Env& env,
                                             const PathExpr& path) {
    std::vector<std::pair<Env, bool>> frontier;  // env + initialized flag
    std::vector<Bindings> partial{{}};
    std::string source_var;
    size_t first = 0;
    if (path.head_is_var) {
      source_var = path.steps[0].label;
      first = 1;
      if (path.steps.size() == 1) {
        // A bare variable as a range: single match, the variable itself.
        auto it = env.find(source_var);
        if (it == env.end()) return std::vector<Bindings>{};
        return std::vector<Bindings>{{{"$end", it->second}}};
      }
    }
    // Iteratively extend partial bindings step by step.
    for (size_t i = first; i < path.steps.size(); ++i) {
      const PathStep& step = path.steps[i];
      bool is_last = i + 1 == path.steps.size();
      std::string end_name = is_last ? "$end" : "$mid" + std::to_string(i);
      std::vector<Bindings> next;
      for (const Bindings& b : partial) {
        Env env2 = env;
        for (const auto& [name, val] : b) env2[name] = val;
        std::string src;
        if (i == first) {
          src = source_var;  // empty = root
        } else {
          src = "$mid" + std::to_string(i - 1);
        }
        auto matches = MatchStep(env2, src, step, end_name);
        if (!matches.ok()) return matches.status();
        for (Bindings& m : *matches) {
          Bindings merged = b;
          merged.insert(merged.end(), m.begin(), m.end());
          next.push_back(std::move(merged));
        }
      }
      partial = std::move(next);
      if (partial.empty()) break;
    }
    // Strip $mid bindings.
    for (Bindings& b : partial) {
      Bindings cleaned;
      for (auto& kv : b) {
        if (kv.first.rfind("$mid", 0) != 0) cleaned.push_back(kv);
      }
      b = std::move(cleaned);
    }
    return partial;
  }

  // ---- row emission & packaging ---------------------------------------------

  Status TestAndEmit(const Env& env, QueryResult* result) {
    if (q_.where) {
      auto ok = EvalBool(env, q_.where);
      if (!ok.ok()) return ok.status();
      if (!*ok) return Status::OK();
    }
    std::vector<RtVal> row;
    for (const SelectItem& item : q_.select) {
      RtVal v;
      switch (item.expr->kind) {
        case Expr::Kind::kVar: {
          auto it = env.find(item.expr->var);
          if (it == env.end()) {
            return Status::Internal("unbound select variable '" +
                                    item.expr->var + "'");
          }
          v = it->second;
          break;
        }
        case Expr::Kind::kLiteral:
          v = RtVal::Val(item.expr->literal);
          break;
        case Expr::Kind::kTimeRef: {
          auto t = ResolveTimeRef(item.expr->time_ref);
          if (!t.ok()) return t.status();
          v = RtVal::Val(Value::Time(*t));
          break;
        }
        default:
          return Status::Unsupported("select item '" +
                                     item.expr->ToString() +
                                     "' is not supported");
      }
      row.push_back(std::move(v));
    }
    if (!seen_rows_.insert(RowDedupKey(row)).second) return Status::OK();
    result->rows.push_back(std::move(row));
    if (opts_.max_rows != 0 && result->rows.size() > opts_.max_rows) {
      return Status::InvalidArgument("query exceeded max_rows limit");
    }
    return Status::OK();
  }

  void FlushStats() {
    if (opts_.stats == nullptr) return;
    opts_.stats->nodes_visited += stats_.nodes_visited;
    opts_.stats->arcs_expanded += stats_.arcs_expanded;
    opts_.stats->steps_index_seeded += stats_.steps_index_seeded;
    opts_.stats->steps_scanned += stats_.steps_scanned;
    opts_.stats->postings_scanned += stats_.postings_scanned;
  }

  const NormQuery& q_;
  const GraphView& view_;
  const EvalOptions& opts_;
  // Profiling tallies, folded into opts_.stats by FlushStats. Kept local
  // so the hot path costs one unconditional increment, not a branch.
  EvalStats stats_;
  // Annotation variables eligible for index seeding and their where-derived
  // time bounds (PrepareSeeding).
  std::unordered_set<std::string> seedable_vars_;
  std::unordered_map<std::string, std::pair<Timestamp, Timestamp>>
      time_bounds_;
  std::unordered_set<std::string> seen_rows_;
};

/// Copies result subgraphs into the answer database, preserving node ids
/// and reusing already-copied nodes across rows.
class ResultPackager {
 public:
  explicit ResultPackager(const GraphView& view) : view_(view) {}

  /// Copies the subgraph below `n` (live arcs, current values) into the
  /// answer database, preserving node ids, reusing already-copied nodes.
  Result<NodeId> CopyIntoAnswer(NodeId n, OemDatabase* answer) {
    auto done = copied_.find(n);
    if (done != copied_.end()) return done->second;
    // Discover.
    std::vector<NodeId> order;
    std::deque<NodeId> queue{n};
    std::unordered_set<NodeId> seen{n};
    while (!queue.empty()) {
      NodeId cur = queue.front();
      queue.pop_front();
      if (copied_.contains(cur)) continue;
      order.push_back(cur);
      for (const OutArc& a : view_.LiveOutArcs(cur)) {
        if (seen.insert(a.child).second) queue.push_back(a.child);
      }
    }
    for (NodeId cur : order) {
      DOEM_RETURN_IF_ERROR(answer->CreNode(cur, view_.value(cur)));
      copied_.emplace(cur, cur);
    }
    for (NodeId cur : order) {
      for (const OutArc& a : view_.LiveOutArcs(cur)) {
        if (!answer->HasArc(cur, a.label, a.child)) {
          DOEM_RETURN_IF_ERROR(answer->AddArc(cur, a.label, a.child));
        }
      }
    }
    return n;
  }

 private:
  const GraphView& view_;
  std::unordered_map<NodeId, NodeId> copied_;
};

}  // namespace

std::string RowDedupKey(const std::vector<RtVal>& row) {
  std::string key;
  for (const RtVal& v : row) key += v.Key() + "\x1f";
  return key;
}

Status PackageResult(const GraphView& view, size_t select_count,
                     QueryResult* result) {
  OemDatabase& answer = result->answer;
  // Copied subgraphs preserve source node ids; allocate the answer's
  // own nodes (root, tuples, value atoms) above the source id space.
  answer.ReserveIdsBelow(view.IdFloor());
  NodeId root = answer.NewComplex();
  DOEM_RETURN_IF_ERROR(answer.SetRoot(root));

  ResultPackager packager(view);
  bool single = select_count == 1;
  for (const auto& row : result->rows) {
    NodeId parent = root;
    if (!single) {
      parent = answer.NewComplex();
      DOEM_RETURN_IF_ERROR(answer.AddArc(root, "answer", parent));
    }
    for (size_t i = 0; i < row.size(); ++i) {
      const RtVal& v = row[i];
      const std::string& label =
          result->labels[i].empty() ? "value" : result->labels[i];
      NodeId target;
      if (v.kind == RtVal::Kind::kNode) {
        auto copied = packager.CopyIntoAnswer(v.node, &answer);
        if (!copied.ok()) return copied.status();
        target = *copied;
      } else {
        target = answer.NewNode(v.value);
      }
      if (!answer.HasArc(parent, label, target)) {
        DOEM_RETURN_IF_ERROR(answer.AddArc(parent, label, target));
      }
    }
  }
  return Status::OK();
}

std::string RtVal::Key() const {
  if (kind == Kind::kNode) {
    std::string k = "n" + std::to_string(node);
    if (as_of) k += "@" + std::to_string(as_of->ticks);
    return k;
  }
  return "v" + std::to_string(static_cast<int>(value.kind())) + ":" +
         value.ToString();
}

std::string QueryResult::RowsToString() const {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += labels.size() > i ? labels[i] + "=" : "";
      out += row[i].Key();
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> Evaluate(const NormQuery& q, const GraphView& view,
                             const EvalOptions& opts) {
  return Evaluator(q, view, opts).Run();
}

}  // namespace lorel
}  // namespace doem
