#ifndef DOEM_LOREL_VIEW_H_
#define DOEM_LOREL_VIEW_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "oem/oem.h"
#include "oem/timestamp.h"
#include "oem/value.h"

namespace doem {
namespace lorel {

/// An upd-annotation record as seen by the query engine: timestamp, value
/// before, value after (mirrors doem::UpdRecord without a dependency on
/// the doem library).
struct UpdEntry {
  Timestamp time;
  Value old_value;
  Value new_value;
};

/// The evaluator's window onto a database. Two concrete views exist:
///
///   OemView   — a plain OEM database (Lorel). Annotation accessors report
///               no annotations; running a Chorel query over it fails with
///               Unsupported.
///   DoemView  — (in chorel/) a DOEM database: plain steps see the
///               *current snapshot* (paper Section 4.2.1) and annotation
///               accessors expose cre/upd/add/rem, enabling direct Chorel
///               evaluation.
///
/// The same evaluator thereby implements both Lorel and the "extended
/// kernel" Chorel strategy of Section 5, and — pointed at the OEM
/// *encoding* of a DOEM database with translated queries — the layered
/// strategy as well.
class GraphView {
 public:
  virtual ~GraphView() = default;

  virtual NodeId root() const = 0;
  virtual bool HasNode(NodeId n) const = 0;

  /// The node's (current) value.
  virtual const Value& value(NodeId n) const = 0;

  /// Children reachable from n via live arcs labeled `label`.
  virtual std::vector<NodeId> Children(NodeId n,
                                       const std::string& label) const = 0;

  /// A stable, allocation-free reference to Children(n, label) when the
  /// view can provide one (null otherwise, and callers materialize via
  /// Children). The pointed-to vector must stay valid for the duration of
  /// a query. Views that filter children on the fly (DoemView's liveness
  /// check) cannot offer this and keep the default.
  virtual const std::vector<NodeId>* ChildrenRef(NodeId,
                                                 const std::string&) const {
    return nullptr;
  }

  /// All live out-arcs of n (for '#' wildcard traversal and result
  /// packaging).
  virtual std::vector<OutArc> LiveOutArcs(NodeId n) const = 0;

  /// Whether '#' wildcard traversal must skip '&'-prefixed labels. True
  /// for views over a Section 5.1 encoding, where &-arcs are bookkeeping,
  /// not data.
  virtual bool SkipEncodingLabelsInWildcard() const { return false; }

  /// An id strictly above every node id in this view's database; result
  /// packaging allocates its own nodes from here to avoid collisions.
  virtual NodeId IdFloor() const = 0;

  // ---- Chorel annotation hooks (default: none) -----------------------

  virtual bool SupportsAnnotations() const { return false; }
  virtual std::optional<Timestamp> CreTime(NodeId) const {
    return std::nullopt;
  }
  virtual std::vector<UpdEntry> UpdEntries(NodeId) const { return {}; }
  virtual std::vector<std::pair<Timestamp, NodeId>> AddAnnotated(
      NodeId, const std::string&) const {
    return {};
  }
  virtual std::vector<std::pair<Timestamp, NodeId>> RemAnnotated(
      NodeId, const std::string&) const {
    return {};
  }
  /// Any-label variants, backing annotation expressions on the '%'
  /// wildcard (<add at T>% — "some arc, whatever its label, was added").
  virtual std::vector<std::pair<Timestamp, NodeId>> AddAnnotatedAny(
      NodeId) const {
    return {};
  }
  virtual std::vector<std::pair<Timestamp, NodeId>> RemAnnotatedAny(
      NodeId) const {
    return {};
  }

  // ---- Annotation-index seeding (default: no index) -------------------
  //
  // Views backed by an annotation index answer "which nodes/arcs carry a
  // cre/upd/add/rem annotation in [from, to]?" from time-sorted postings.
  // The evaluator uses these to enumerate candidates annotation-first
  // when a step's time variable is range-bounded by the where clause,
  // instead of scanning every child. nullopt = no index; the evaluator
  // falls back to scanning.

  virtual std::optional<std::vector<NodeId>> CreatedInRange(
      Timestamp, Timestamp) const {
    return std::nullopt;
  }
  /// Distinct nodes with at least one upd annotation in range.
  virtual std::optional<std::vector<NodeId>> UpdatedInRange(
      Timestamp, Timestamp) const {
    return std::nullopt;
  }
  virtual std::optional<std::vector<std::pair<Timestamp, Arc>>> AddedInRange(
      Timestamp, Timestamp) const {
    return std::nullopt;
  }
  virtual std::optional<std::vector<std::pair<Timestamp, Arc>>>
  RemovedInRange(Timestamp, Timestamp) const {
    return std::nullopt;
  }
  /// Membership probe used by seeded enumeration: is c a live l-child of
  /// p? Default derives from Children; concrete views override with O(1)
  /// lookups.
  virtual bool HasLiveArc(NodeId p, const std::string& l, NodeId c) const {
    for (NodeId x : Children(p, l)) {
      if (x == c) return true;
    }
    return false;
  }

  // ---- Cardinality estimates (bytecode-VM cost model; DESIGN.md §6f) --
  //
  // The VM's step orderer ranks range definitions by estimated candidate
  // cardinality before choosing a loop nesting. Estimates are advisory:
  // kUnknownCardinality (or nullopt) makes the orderer keep the original
  // left-to-right position, so views without statistics lose nothing.

  static constexpr size_t kUnknownCardinality = static_cast<size_t>(-1);

  /// Which annotation postings AnnotCountInRange estimates.
  enum class AnnotStat { kCre, kUpd, kAdd, kRem };

  /// Approximate node count of the database (wildcard-step cardinality).
  virtual size_t TotalNodeEstimate() const { return kUnknownCardinality; }

  /// Total arcs labeled `label` anywhere in the graph — the estimate for
  /// a plain-label step whose source binding is not known statically.
  virtual size_t LabelArcEstimate(const std::string&) const {
    return kUnknownCardinality;
  }

  /// Exact `label`-child count of a specific node (root-sourced steps).
  virtual size_t ChildCountEstimate(NodeId, const std::string&) const {
    return kUnknownCardinality;
  }

  /// Number of index postings of `kind` in [from, to]; nullopt when the
  /// view has no annotation index.
  virtual std::optional<size_t> AnnotCountInRange(AnnotStat, Timestamp,
                                                  Timestamp) const {
    return std::nullopt;
  }

  // ---- Virtual annotations (Section 4.2.2; default: unsupported) -----

  virtual bool SupportsTimeTravel() const { return false; }
  virtual std::vector<NodeId> ChildrenAt(NodeId, const std::string&,
                                         Timestamp) const {
    return {};
  }
  virtual std::vector<NodeId> ChildrenAtAny(NodeId, Timestamp) const {
    return {};
  }
  virtual Value ValueAt(NodeId n, Timestamp) const { return value(n); }
};

/// A view over a plain OEM database.
class OemView : public GraphView {
 public:
  /// `amp_aware` marks the database as a Section 5.1 encoding, making '#'
  /// wildcards skip '&'-labeled bookkeeping arcs.
  explicit OemView(const OemDatabase& db, bool amp_aware = false)
      : db_(db), amp_aware_(amp_aware) {}

  NodeId root() const override { return db_.root(); }
  bool HasNode(NodeId n) const override { return db_.HasNode(n); }
  const Value& value(NodeId n) const override;
  std::vector<NodeId> Children(NodeId n,
                               const std::string& label) const override {
    return db_.Children(n, label);
  }
  const std::vector<NodeId>* ChildrenRef(
      NodeId n, const std::string& label) const override {
    // Every OEM arc is live, so the by_label_ bucket is the child list.
    return db_.ChildBucket(n, label);
  }
  std::vector<OutArc> LiveOutArcs(NodeId n) const override {
    return db_.OutArcs(n);
  }
  bool SkipEncodingLabelsInWildcard() const override { return amp_aware_; }
  size_t TotalNodeEstimate() const override { return db_.node_count(); }
  size_t LabelArcEstimate(const std::string& label) const override {
    return db_.ArcCountForLabel(label);
  }
  size_t ChildCountEstimate(NodeId n,
                            const std::string& label) const override {
    return db_.LabelChildCount(n, label);
  }
  bool HasLiveArc(NodeId p, const std::string& l, NodeId c) const override {
    return db_.HasArc(p, l, c);
  }
  NodeId IdFloor() const override { return db_.PeekNextId(); }

  const OemDatabase& db() const { return db_; }

 private:
  const OemDatabase& db_;
  bool amp_aware_;
};

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_VIEW_H_
