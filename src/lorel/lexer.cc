#include "lorel/lexer.h"

#include <cctype>
#include <charconv>

namespace doem {
namespace lorel {

namespace {

bool IsIdentHead(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '&';
}

bool IsIdentTail(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '&';
}

Status LexError(size_t offset, const std::string& msg) {
  return Status::ParseError("at offset " + std::to_string(offset) + ": " +
                            msg);
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& q) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = q.size();
  auto push = [&](TokenKind kind, size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    out.push_back(std::move(t));
    return &out.back();
  };

  while (i < n) {
    char c = q[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && q[i + 1] == '-') {
      // SQL-style comment to end of line.
      while (i < n && q[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (c == '@') {
      // Explicit timestamp literal: @8Jan1997, @42, @1997-01-08.
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(q[j])) ||
                       q[j] == '-')) {
        ++j;
      }
      std::string text = q.substr(i + 1, j - i - 1);
      Timestamp ts;
      if (!Timestamp::Parse(text, &ts)) {
        return LexError(start, "bad timestamp literal '@" + text + "'");
      }
      Token* t = push(TokenKind::kDate, start);
      t->text = text;
      t->date_value = ts;
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Integer, real, or date literal (4Jan97).
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(q[j]))) ++j;
      if (j < n && std::isalpha(static_cast<unsigned char>(q[j]))) {
        // Date literal: digits letters digits.
        size_t k = j;
        while (k < n && std::isalpha(static_cast<unsigned char>(q[k]))) ++k;
        size_t m = k;
        while (m < n && std::isdigit(static_cast<unsigned char>(q[m]))) ++m;
        std::string text = q.substr(i, m - i);
        Timestamp ts;
        if (m == k || !Timestamp::Parse(text, &ts)) {
          return LexError(start, "bad date literal '" + text + "'");
        }
        Token* t = push(TokenKind::kDate, start);
        t->text = text;
        t->date_value = ts;
        i = m;
        continue;
      }
      bool is_real = false;
      if (j < n && q[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(q[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(q[j]))) ++j;
      }
      std::string text = q.substr(i, j - i);
      if (is_real) {
        Token* t = push(TokenKind::kReal, start);
        t->real_value = std::stod(text);
        t->text = text;
      } else {
        Token* t = push(TokenKind::kInt, start);
        auto [p, ec] = std::from_chars(text.data(),
                                       text.data() + text.size(),
                                       t->int_value);
        (void)p;
        if (ec != std::errc()) {
          return LexError(start, "bad integer literal '" + text + "'");
        }
        t->text = text;
      }
      i = j;
      continue;
    }
    if (IsIdentHead(c)) {
      size_t j = i + 1;
      while (j < n) {
        if (IsIdentTail(q[j])) {
          ++j;
        } else if (q[j] == '-' && j + 1 < n && IsIdentTail(q[j + 1])) {
          // '-' joins identifier parts: nearby-eats, &price-history.
          j += 2;
          while (j < n && IsIdentTail(q[j])) ++j;
        } else {
          break;
        }
      }
      Token* t = push(TokenKind::kIdent, start);
      t->text = q.substr(i, j - i);
      i = j;
      continue;
    }
    if (c == '"') {
      std::string s;
      ++i;
      bool closed = false;
      while (i < n) {
        char d = q[i++];
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\' && i < n) {
          char e = q[i++];
          switch (e) {
            case 'n':
              s.push_back('\n');
              break;
            case 't':
              s.push_back('\t');
              break;
            case '"':
              s.push_back('"');
              break;
            case '\\':
              s.push_back('\\');
              break;
            default:
              return LexError(i - 1, std::string("bad escape '\\") + e +
                                         "' in string");
          }
        } else {
          s.push_back(d);
        }
      }
      if (!closed) return LexError(start, "unterminated string");
      Token* t = push(TokenKind::kString, start);
      t->text = std::move(s);
      continue;
    }
    switch (c) {
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        continue;
      case '{':
        push(TokenKind::kLBrace, start);
        ++i;
        continue;
      case '}':
        push(TokenKind::kRBrace, start);
        ++i;
        continue;
      case ':':
        push(TokenKind::kColon, start);
        ++i;
        continue;
      case '#':
        push(TokenKind::kHash, start);
        ++i;
        continue;
      case '%':
        push(TokenKind::kPercent, start);
        ++i;
        continue;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && q[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
          continue;
        }
        return LexError(start, "unexpected '!'");
      case '<':
        if (i + 1 < n && q[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && q[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLAngle, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && q[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kRAngle, start);
          ++i;
        }
        continue;
      default:
        return LexError(start, std::string("unexpected character '") + c +
                                   "'");
    }
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace lorel
}  // namespace doem
