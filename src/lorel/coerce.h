#ifndef DOEM_LOREL_COERCE_H_
#define DOEM_LOREL_COERCE_H_

#include "lorel/ast.h"
#include "oem/value.h"

namespace doem {
namespace lorel {

/// Lorel's "forgiving" comparison semantics (paper Section 4.1): before
/// comparing, values are coerced to a common type; if coercion fails the
/// comparison is false — never an error. Rules:
///
///   int vs real        -> real comparison
///   string vs number   -> parse the string as a number; else false
///   string vs timestamp-> parse the string as a timestamp; else false
///   int vs timestamp   -> the int is a tick count
///   bool vs bool       -> = and != only
///   complex vs anything-> false (a complex object has no comparable value)
///   like               -> both sides rendered as text; SQL %/_ pattern
///
/// Example 4.1: price < 20.5 succeeds for the integer price 10 (coerced
/// to real), fails (false, not error) for the string price "moderate",
/// and is false for restaurants with no price at all.
bool CompareValues(const Value& lhs, BinOp op, const Value& rhs);

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_COERCE_H_
