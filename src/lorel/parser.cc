#include "lorel/parser.h"

#include <vector>

#include "common/strings.h"
#include "lorel/lexer.h"

namespace doem {
namespace lorel {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    if (!EatKeyword("select")) return Err("expected 'select'");
    DOEM_RETURN_IF_ERROR(ParseSelectList(&q));
    if (EatKeyword("from")) {
      DOEM_RETURN_IF_ERROR(ParseFromList(&q));
    }
    if (EatKeyword("where")) {
      auto cond = ParseOrExpr();
      if (!cond.ok()) return cond.status();
      q.where = std::move(cond).value();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    return q;
  }

 private:
  // ---- token helpers ----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Eat(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool EatKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  static bool IsKeywordText(const std::string& s) {
    static const char* kKeywords[] = {"select", "from", "where", "as",
                                      "and",    "or",   "not",   "exists",
                                      "in",     "like"};
    for (const char* k : kKeywords) {
      if (EqualsIgnoreCase(s, k)) return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("at offset " + std::to_string(Peek().offset) +
                              ": " + msg);
  }

  // ---- clauses ------------------------------------------------------------

  Status ParseSelectList(Query* q) {
    do {
      SelectItem item;
      auto e = ParseOperand();
      if (!e.ok()) return e.status();
      item.expr = std::move(e).value();
      if (EatKeyword("as")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected label after 'as'");
        }
        item.as_label = Next().text;
      }
      q->select.push_back(std::move(item));
    } while (Eat(TokenKind::kComma));
    return Status::OK();
  }

  Status ParseFromList(Query* q) {
    do {
      FromItem item;
      auto p = ParsePath();
      if (!p.ok()) return p.status();
      item.path = std::move(p).value();
      if (Peek().kind == TokenKind::kIdent && !IsKeywordText(Peek().text)) {
        item.var = Next().text;
      }
      q->from.push_back(std::move(item));
    } while (Eat(TokenKind::kComma));
    return Status::OK();
  }

  // ---- boolean expressions -------------------------------------------------

  Result<ExprPtr> ParseOrExpr() {
    auto lhs = ParseAndExpr();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (EatKeyword("or")) {
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs;
      e = Expr::MakeBinary(BinOp::kOr, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseAndExpr() {
    auto lhs = ParseNotExpr();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (EatKeyword("and")) {
      auto rhs = ParseNotExpr();
      if (!rhs.ok()) return rhs;
      e = Expr::MakeBinary(BinOp::kAnd, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseNotExpr() {
    if (EatKeyword("not")) {
      auto c = ParseNotExpr();
      if (!c.ok()) return c;
      return Expr::MakeNot(std::move(c).value());
    }
    return ParseBoolPrimary();
  }

  Result<ExprPtr> ParseBoolPrimary() {
    if (Eat(TokenKind::kLParen)) {
      auto e = ParseOrExpr();
      if (!e.ok()) return e;
      if (!Eat(TokenKind::kRParen)) return Err("expected ')'");
      return e;
    }
    if (PeekKeyword("exists")) {
      ++pos_;
      if (Peek().kind != TokenKind::kIdent || IsKeywordText(Peek().text)) {
        return Err("expected variable after 'exists'");
      }
      std::string var = Next().text;
      if (!EatKeyword("in")) return Err("expected 'in' after exists variable");
      auto p = ParsePath();
      if (!p.ok()) return p.status();
      if (!Eat(TokenKind::kColon)) return Err("expected ':' after exists range");
      auto pred = ParseNotExpr();
      if (!pred.ok()) return pred;
      return Expr::MakeExists(std::move(var), std::move(p).value(),
                              std::move(pred).value());
    }
    // Comparison.
    auto lhs = ParseOperand();
    if (!lhs.ok()) return lhs;
    BinOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinOp::kNe;
        break;
      case TokenKind::kLAngle:
        op = BinOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinOp::kLe;
        break;
      case TokenKind::kRAngle:
        op = BinOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinOp::kGe;
        break;
      case TokenKind::kIdent:
        if (EqualsIgnoreCase(Peek().text, "like")) {
          op = BinOp::kLike;
          break;
        }
        return Err("expected a comparison operator, got '" + Peek().text +
                   "'");
      default:
        return Err("expected a comparison operator");
    }
    ++pos_;
    auto rhs = ParseOperand();
    if (!rhs.ok()) return rhs;
    return Expr::MakeBinary(op, std::move(lhs).value(),
                            std::move(rhs).value());
  }

  // ---- operands & paths ------------------------------------------------------

  Result<ExprPtr> ParseOperand() {
    if (Peek().kind == TokenKind::kMinus) {
      // Unary minus on a numeric literal.
      ++pos_;
      const Token& n = Peek();
      if (n.kind == TokenKind::kInt) {
        ++pos_;
        return Expr::MakeLiteral(Value::Int(-n.int_value));
      }
      if (n.kind == TokenKind::kReal) {
        ++pos_;
        return Expr::MakeLiteral(Value::Real(-n.real_value));
      }
      return Err("expected a number after unary '-'");
    }
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        ++pos_;
        return Expr::MakeLiteral(Value::Int(t.int_value));
      }
      case TokenKind::kReal: {
        ++pos_;
        return Expr::MakeLiteral(Value::Real(t.real_value));
      }
      case TokenKind::kString: {
        ++pos_;
        return Expr::MakeLiteral(Value::String(t.text));
      }
      case TokenKind::kDate: {
        ++pos_;
        return Expr::MakeLiteral(Value::Time(t.date_value));
      }
      case TokenKind::kIdent: {
        if (EqualsIgnoreCase(t.text, "true")) {
          ++pos_;
          return Expr::MakeLiteral(Value::Bool(true));
        }
        if (EqualsIgnoreCase(t.text, "false")) {
          ++pos_;
          return Expr::MakeLiteral(Value::Bool(false));
        }
        // t[i]: the QSS relative polling-time variable.
        if (t.text == "t" && Peek(1).kind == TokenKind::kLBracket) {
          pos_ += 2;
          int sign = 1;
          if (Eat(TokenKind::kMinus)) sign = -1;
          if (Peek().kind != TokenKind::kInt) {
            return Err("expected integer inside t[...]");
          }
          int idx = sign * static_cast<int>(Next().int_value);
          if (idx > 0) return Err("t[i] requires i <= 0");
          if (!Eat(TokenKind::kRBracket)) return Err("expected ']'");
          return Expr::MakeTimeRef(idx);
        }
        auto p = ParsePath();
        if (!p.ok()) return p.status();
        return Expr::MakePath(std::move(p).value());
      }
      case TokenKind::kLAngle:
      case TokenKind::kHash:
      case TokenKind::kPercent: {
        // A path may begin with an annotation or wildcard.
        auto p = ParsePath();
        if (!p.ok()) return p.status();
        return Expr::MakePath(std::move(p).value());
      }
      default:
        return Err("expected a value or path, got '" + t.text + "'");
    }
  }

  Result<PathExpr> ParsePath() {
    PathExpr path;
    while (true) {
      PathStep step;
      // Arc annotation (before the label).
      if (Peek().kind == TokenKind::kLAngle) {
        size_t save = pos_;
        auto a = ParseAnnot(/*arc_position=*/true);
        if (!a.ok()) {
          pos_ = save;
          return a.status();
        }
        step.arc_annot = std::move(a).value();
      }
      if (Eat(TokenKind::kHash)) {
        step.wildcard = true;
        step.label = "#";
      } else if (Eat(TokenKind::kPercent)) {
        step.wildcard_one = true;
        step.label = "%";
      } else if (Peek().kind == TokenKind::kIdent &&
                 !IsKeywordText(Peek().text)) {
        step.label = Next().text;
      } else {
        return Err("expected a label in path expression");
      }
      // Node annotation (after the label) — speculative, since '<' here
      // may instead be a comparison operator.
      if (Peek().kind == TokenKind::kLAngle) {
        size_t save = pos_;
        auto a = ParseAnnot(/*arc_position=*/false);
        if (a.ok()) {
          step.node_annot = std::move(a).value();
        } else {
          pos_ = save;  // treat '<' as a comparison, handled by caller
        }
      }
      // Annotation expressions on the '#' wildcard stay unsupported (the
      // paper defers them, Section 4.2); on '%' they have a clear
      // semantics — one arc of any label carrying the annotation — and
      // are implemented as a Section 7 extension.
      if (step.wildcard && (step.arc_annot || step.node_annot)) {
        return Err(
            "annotation expressions on '#' are not supported (paper "
            "Section 4.2)");
      }
      path.steps.push_back(std::move(step));
      if (!Eat(TokenKind::kDot)) break;
    }
    return path;
  }

  Result<AnnotExpr> ParseAnnot(bool arc_position) {
    // Caller guarantees current token is '<'.
    ++pos_;
    AnnotExpr a;
    if (Peek().kind != TokenKind::kIdent) {
      return Err("expected annotation keyword after '<'");
    }
    std::string head = ToLower(Peek().text);
    if (head == "at") {
      // Virtual annotation <at T> (Section 4.2.2).
      ++pos_;
      a.kind = AnnotKind::kAt;
      auto t = ParseOperand();
      if (!t.ok()) return t.status();
      a.at_time = std::move(t).value();
      if (!Eat(TokenKind::kRAngle)) return Err("expected '>'");
      return a;
    }
    if (head == "add" || head == "rem") {
      if (!arc_position) {
        return Err("'" + head + "' is an arc annotation; it must appear "
                   "before a label");
      }
      a.kind = head == "add" ? AnnotKind::kAdd : AnnotKind::kRem;
      ++pos_;
      if (EatKeyword("at")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected variable after 'at'");
        }
        a.time_var = Next().text;
      }
      if (!Eat(TokenKind::kRAngle)) return Err("expected '>'");
      return a;
    }
    if (head == "cre" || head == "upd") {
      if (arc_position) {
        return Err("'" + head + "' is a node annotation; it must appear "
                   "after a label");
      }
      a.kind = head == "cre" ? AnnotKind::kCre : AnnotKind::kUpd;
      ++pos_;
      if (EatKeyword("at")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected variable after 'at'");
        }
        a.time_var = Next().text;
      }
      if (a.kind == AnnotKind::kUpd) {
        if (EatKeyword("from")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected variable after 'from'");
          }
          a.from_var = Next().text;
        }
        if (EatKeyword("to")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected variable after 'to'");
          }
          a.to_var = Next().text;
        }
      }
      if (!Eat(TokenKind::kRAngle)) return Err("expected '>'");
      return a;
    }
    return Err("unknown annotation '" + head + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).value()).Parse();
}

}  // namespace lorel
}  // namespace doem
