#ifndef DOEM_LOREL_PARSER_H_
#define DOEM_LOREL_PARSER_H_

#include <string>

#include "common/result.h"
#include "lorel/ast.h"

namespace doem {
namespace lorel {

/// Parses a Lorel or Chorel query. The grammar is the select-from-where
/// subset used throughout the paper:
///
///   query    := SELECT item {, item} [FROM fi {, fi}] [WHERE cond]
///   item     := operand [AS label]
///   fi       := path [Var]
///   path     := step {. step}
///   step     := [<arcAnnot>] (label | #) [<nodeAnnot>]
///   arcAnnot := (add|rem) [at Var] | at operand
///   nodeAnnot:= cre [at Var] | upd [at Var] [from Var] [to Var]
///              | at operand
///   cond     := or-combination of: comparisons (= != < <= > >= like),
///               not, parentheses, exists Var in path : cond
///   operand  := literal | date (4Jan97) | t[i] | path
///
/// Keywords are case-insensitive; identifiers may contain '-' (labels like
/// nearby-eats). Plain Lorel queries are exactly those without annotation
/// expressions.
Result<Query> ParseQuery(const std::string& text);

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_PARSER_H_
