#ifndef DOEM_LOREL_LEXER_H_
#define DOEM_LOREL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lorel/token.h"

namespace doem {
namespace lorel {

/// Tokenizes a Lorel/Chorel query. Keywords are not distinguished here —
/// the parser recognizes them contextually and case-insensitively, so that
/// labels like "name" or "at" remain usable in paths.
///
/// A lexical quirk carried over from Lorel: '-' joins identifier parts
/// (nearby-eats is one identifier), and digit-letter-digit runs such as
/// 4Jan97 lex as date literals.
Result<std::vector<Token>> Lex(const std::string& query);

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_LEXER_H_
