#include "lorel/ast.h"

namespace doem {
namespace lorel {

namespace {

const char* AnnotKindName(AnnotKind k) {
  switch (k) {
    case AnnotKind::kCre:
      return "cre";
    case AnnotKind::kUpd:
      return "upd";
    case AnnotKind::kAdd:
      return "add";
    case AnnotKind::kRem:
      return "rem";
    case AnnotKind::kAt:
      return "at";
  }
  return "?";
}

}  // namespace

std::string AnnotExpr::ToString() const {
  std::string out = "<";
  if (kind == AnnotKind::kAt) {
    out += "at ";
    out += at_time ? at_time->ToString() : "?";
  } else {
    out += AnnotKindName(kind);
    if (!time_var.empty()) out += " at " + time_var;
    if (!from_var.empty()) out += " from " + from_var;
    if (!to_var.empty()) out += " to " + to_var;
  }
  out += ">";
  return out;
}

std::string PathStep::ToString() const {
  std::string out;
  if (arc_annot) out += arc_annot->ToString();
  out += wildcard ? "#" : (wildcard_one ? "%" : label);
  if (node_annot) out += node_annot->ToString();
  return out;
}

std::string PathExpr::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += ".";
    out += steps[i].ToString();
  }
  return out;
}

const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kLike:
      return "like";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kPath:
      return path.ToString();
    case Kind::kVar:
      return var;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpToString(op) + " " +
             rhs->ToString() + ")";
    case Kind::kNot:
      return "not " + child->ToString();
    case Kind::kExists:
      return "exists " + exists_var + " in " + exists_path.ToString() +
             " : " + exists_pred->ToString();
    case Kind::kTimeRef:
      return "t[" + std::to_string(time_ref) + "]";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakePath(PathExpr p) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kPath;
  e->path = std::move(p);
  return e;
}

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr c) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNot;
  e->child = std::move(c);
  return e;
}

ExprPtr Expr::MakeExists(std::string var, PathExpr path, ExprPtr pred) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kExists;
  e->exists_var = std::move(var);
  e->exists_path = std::move(path);
  e->exists_pred = std::move(pred);
  return e;
}

ExprPtr Expr::MakeTimeRef(int i) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kTimeRef;
  e->time_ref = i;
  return e;
}

std::string SelectItem::ToString() const {
  std::string out = expr ? expr->ToString() : "?";
  if (!as_label.empty()) out += " as " + as_label;
  return out;
}

std::string FromItem::ToString() const {
  std::string out = path.ToString();
  if (!var.empty()) out += " " + var;
  return out;
}

std::string Query::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].ToString();
  }
  if (!from.empty()) {
    out += " from ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].ToString();
    }
  }
  if (where) out += " where " + where->ToString();
  return out;
}

}  // namespace lorel
}  // namespace doem
