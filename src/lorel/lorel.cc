#include "lorel/lorel.h"

namespace doem {
namespace lorel {

Result<NormQuery> ParseAndNormalize(const std::string& text) {
  auto q = ParseQuery(text);
  if (!q.ok()) return q.status();
  return Normalize(*q);
}

Result<QueryResult> RunQuery(const std::string& text, const GraphView& view,
                             const EvalOptions& opts) {
  auto nq = ParseAndNormalize(text);
  if (!nq.ok()) return nq.status();
  return Evaluate(*nq, view, opts);
}

}  // namespace lorel
}  // namespace doem
