#ifndef DOEM_LOREL_AST_H_
#define DOEM_LOREL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oem/value.h"

namespace doem {
namespace lorel {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Annotation-expression kinds (Chorel, paper Section 4.2). kAt is the
/// "virtual annotation" extension of Section 4.2.2: on an arc position it
/// means "the arc existed at time T"; on a node position, "the value of
/// the object at time T".
enum class AnnotKind { kCre, kUpd, kAdd, kRem, kAt };

/// An annotation expression, e.g. <add at T>, <upd at T from OV to NV>,
/// <at 5Jan97>. Variable fields are empty when not written; the
/// canonicalization step of Section 4.2.1 fills them with fresh variables.
struct AnnotExpr {
  AnnotKind kind = AnnotKind::kCre;
  std::string time_var;  // "at V" for cre/upd/add/rem
  std::string from_var;  // upd only: "from V"
  std::string to_var;    // upd only: "to V"
  ExprPtr at_time;       // kAt only: a literal, variable, or t[i]

  std::string ToString() const;
};

/// One step of a path expression: optional arc annotation, a label (or
/// the '#' wildcard matching any path of length >= 0), and an optional
/// node annotation. E.g. in guide.<add>restaurant.price<upd at T>:
///   step 1: label "guide"
///   step 2: arc_annot add, label "restaurant"
///   step 3: label "price", node_annot upd at T.
struct PathStep {
  std::string label;
  bool wildcard = false;      // label is '#' (any path, length >= 0)
  bool wildcard_one = false;  // label is '%' (exactly one arc, any label)
  std::optional<AnnotExpr> arc_annot;   // add / rem / at
  std::optional<AnnotExpr> node_annot;  // cre / upd / at

  std::string ToString() const;
};

/// A path expression. `head` is either a range variable declared in the
/// from clause (or an exists binder), or — when no such variable is in
/// scope — the name of a root-level entry (the first step's label).
/// Which one it is gets resolved during normalization; syntactically the
/// head is just the first step.
struct PathExpr {
  std::vector<PathStep> steps;
  /// Set by normalization: the first step is a bound range variable, not
  /// a root entry name. Enumeration then starts at that variable's node
  /// with steps[1..].
  bool head_is_var = false;

  std::string ToString() const;
};

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kAnd,
  kOr,
};

const char* BinOpToString(BinOp op);

/// An expression tree: literals, paths (a bare identifier is a
/// single-step path that may resolve to a variable), comparisons,
/// boolean connectives, `exists V in <path> : <pred>`, and the QSS
/// relative polling-time reference t[i] (Section 6).
struct Expr {
  enum class Kind {
    kLiteral,
    kPath,
    kVar,      // produced by normalization: a bound range variable
    kBinary,
    kNot,
    kExists,
    kTimeRef,
  };

  Kind kind = Kind::kLiteral;

  Value literal;                // kLiteral
  PathExpr path;                // kPath
  std::string var;              // kVar
  BinOp op = BinOp::kEq;        // kBinary
  ExprPtr lhs, rhs;             // kBinary
  ExprPtr child;                // kNot
  std::string exists_var;       // kExists: binder
  PathExpr exists_path;         // kExists: range
  ExprPtr exists_pred;          // kExists: predicate
  int time_ref = 0;             // kTimeRef: the i of t[i] (i <= 0)

  std::string ToString() const;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakePath(PathExpr p);
  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeNot(ExprPtr e);
  static ExprPtr MakeExists(std::string var, PathExpr path, ExprPtr pred);
  static ExprPtr MakeTimeRef(int i);
};

/// One item of the select clause, with an optional output label
/// (`select N as restaurant-name`).
struct SelectItem {
  ExprPtr expr;
  std::string as_label;

  std::string ToString() const;
};

/// One item of the from clause: a path and an optional range variable
/// bound to its endpoint (`from guide.restaurant R`).
struct FromItem {
  PathExpr path;
  std::string var;

  std::string ToString() const;
};

/// A parsed select-from-where query.
struct Query {
  std::vector<SelectItem> select;
  std::vector<FromItem> from;
  ExprPtr where;  // null if absent

  std::string ToString() const;
};

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_AST_H_
