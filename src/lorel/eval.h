#ifndef DOEM_LOREL_EVAL_H_
#define DOEM_LOREL_EVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "lorel/normalize.h"
#include "lorel/view.h"
#include "oem/oem.h"

namespace doem {
namespace lorel {

/// A runtime binding: either a database object (with an optional "as of"
/// time attached by a virtual <at T> node annotation) or a plain value
/// (timestamps and old/new values bound by annotation expressions).
struct RtVal {
  enum class Kind { kNode, kValue };

  Kind kind = Kind::kValue;
  NodeId node = kInvalidNode;
  std::optional<Timestamp> as_of;
  Value value;

  static RtVal Node(NodeId n) {
    RtVal v;
    v.kind = Kind::kNode;
    v.node = n;
    return v;
  }
  static RtVal NodeAt(NodeId n, Timestamp t) {
    RtVal v = Node(n);
    v.as_of = t;
    return v;
  }
  static RtVal Val(Value val) {
    RtVal v;
    v.value = std::move(val);
    return v;
  }

  /// Canonical key used for row deduplication and deterministic ordering.
  std::string Key() const;
  /// Field comparison — equivalent to Key() == o.Key() without
  /// materializing the key strings.
  bool operator==(const RtVal& o) const {
    return kind == o.kind && node == o.node && as_of == o.as_of &&
           value == o.value;
  }
};

/// The outcome of a query: raw variable bindings per result row (used by
/// the differential tests and the QSS), display labels per select item,
/// and the result packaged as an OEM database in Lorel style — the root
/// has one arc per result; multi-item rows become complex "answer"
/// objects whose components carry the item labels (paper Example 4.4).
struct QueryResult {
  std::vector<std::string> labels;
  std::vector<std::vector<RtVal>> rows;
  OemDatabase answer;

  std::string RowsToString() const;
};

/// Per-evaluation profiling counters (DESIGN.md §6d): where a query's
/// time went, in evaluator-native units. Collected only when
/// EvalOptions::stats is set; counters are *added to*, never reset, so
/// one EvalStats can accumulate across a whole poll's filter runs.
struct EvalStats {
  /// Candidate endpoint nodes considered across all path steps, before
  /// the where clause prunes them.
  size_t nodes_visited = 0;
  /// Live out-arcs enumerated while matching steps ('#'/'%' closures and
  /// plain-label child lookups).
  size_t arcs_expanded = 0;
  /// Annotation steps whose candidates were seeded from the annotation
  /// index (the DESIGN.md §6c fast path).
  size_t steps_index_seeded = 0;
  /// Annotation steps that fell back to scanning children/annotations
  /// (no index, unbounded time variable, or a non-seedable step shape).
  size_t steps_scanned = 0;
  /// Index postings inspected by seeded enumeration, including postings
  /// filtered out by the source/label restriction.
  size_t postings_scanned = 0;
};

struct EvalOptions {
  /// Polling times t_1..t_k for resolving the QSS variables t[0], t[-1],
  /// ... (Section 6): t[0] = t_k, t[-i] = t_{k-i}, negative infinity when
  /// out of range. Null if the query must not use t[i].
  const std::vector<Timestamp>* polling_times = nullptr;
  /// Safety valve: abort with an error after this many result rows
  /// (0 = unlimited).
  size_t max_rows = 0;
  /// Skip building `answer` (rows only) — used by benchmarks and QSS
  /// internals.
  bool package_results = true;
  /// When set, the evaluator adds its profiling counters here on
  /// completion (success or failure). Purely observational: identical
  /// rows with or without it.
  EvalStats* stats = nullptr;
};

/// Runs a normalized query against a view. Chorel annotation expressions
/// require view.SupportsAnnotations(); virtual <at T> annotations require
/// view.SupportsTimeTravel().
Result<QueryResult> Evaluate(const NormQuery& q, const GraphView& view,
                             const EvalOptions& opts = {});

// ---- Shared row machinery (tree-walker + bytecode VM) -----------------
//
// The bytecode VM (src/vm/) must produce byte-identical results to the
// tree-walking evaluator, so row deduplication keys and answer packaging
// are factored out and used by both.

/// Canonical deduplication key of a result row: each item's RtVal::Key()
/// followed by a field separator.
std::string RowDedupKey(const std::vector<RtVal>& row);

/// Packages result->rows as the Lorel-style answer database described on
/// QueryResult (single-select rows hang off the root; multi-select rows
/// become complex "answer" objects). `select_count` is the number of
/// select items.
Status PackageResult(const GraphView& view, size_t select_count,
                     QueryResult* result);

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_EVAL_H_
