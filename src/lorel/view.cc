#include "lorel/view.h"

namespace doem {
namespace lorel {

const Value& OemView::value(NodeId n) const {
  static const Value kComplex;
  const Value* v = db_.GetValue(n);
  return v == nullptr ? kComplex : *v;
}

}  // namespace lorel
}  // namespace doem
