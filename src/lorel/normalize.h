#ifndef DOEM_LOREL_NORMALIZE_H_
#define DOEM_LOREL_NORMALIZE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "lorel/ast.h"

namespace doem {
namespace lorel {

/// A range-variable definition, the unit of the paper's OQL-style
/// rewriting (Section 4.2.1): "X.label Y" possibly carrying annotation
/// expressions. `source_var` empty means the database root (names such as
/// "guide" are labels on arcs from the root).
struct RangeDef {
  std::string source_var;
  PathStep step;
  std::string var;  // the node variable bound by this def
  /// Bind `var` to the matched node's atomic *value* instead of the node
  /// itself. Produced only by the Chorel-to-Lorel translator, which binds
  /// annotation variables (timestamps, old/new values) from the &time /
  /// &add / &ov / ... atoms of the Section 5.1 encoding; with this flag
  /// both evaluation strategies yield identical rows.
  bool bind_value = false;

  std::string ToString() const;
};

/// How a variable is bound — needed by the Chorel-to-Lorel translator
/// (object variables get ".&val" on value access, annotation-bound value
/// variables do not; Section 5.2).
enum class VarKind { kNode, kValue };

/// The normalized form of a query: path expressions have been eliminated
/// in favor of range-variable definitions with shared prefixes (Lorel's
/// rewriting; e.g. Example 4.4's two from-paths share the
/// guide.restaurant prefix and therefore range over the *same*
/// restaurant), annotation expressions are canonicalized with fresh
/// variables, and select/where reference variables only.
///
/// Variables introduced by paths in the where clause are hoisted into
/// `defs` — evaluation enumerates all of them and filters, which is
/// exactly the paper's "existential quantification over the where clause"
/// semantics (Example 4.5). Paths inside an `exists` predicate stay
/// un-hoisted and are quantified at their enclosing comparison.
struct NormQuery {
  std::vector<RangeDef> defs;
  std::vector<SelectItem> select;  // exprs are kVar/kLiteral/kTimeRef
  ExprPtr where;                   // may be null
  /// Output label per select item (as-label, path label, or annotation
  /// default such as "update-time"; paper Example 4.4).
  std::vector<std::string> labels;
  /// Binding kind of every variable.
  std::unordered_map<std::string, VarKind> var_kinds;

  /// Renders the OQL-like rewritten form, mirroring the paper's
  /// presentation of rewritten queries.
  std::string ToString() const;
};

/// Rewrites a parsed query into normalized form. Fails with ParseError on
/// scoping errors (e.g. a from-item variable redeclared) and Unsupported
/// on constructs outside the implemented subset.
Result<NormQuery> Normalize(const Query& q);

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_NORMALIZE_H_
