#ifndef DOEM_LOREL_LOREL_H_
#define DOEM_LOREL_LOREL_H_

#include <string>

#include "common/result.h"
#include "lorel/eval.h"
#include "lorel/normalize.h"
#include "lorel/parser.h"
#include "lorel/view.h"

namespace doem {
namespace lorel {

/// One-call convenience: parse, normalize, and evaluate a query text
/// against a view. Lorel queries (no annotation expressions) work over any
/// view; Chorel queries additionally need a view with annotations.
Result<QueryResult> RunQuery(const std::string& text, const GraphView& view,
                             const EvalOptions& opts = {});

/// Parse + normalize only; exposed for the Chorel translator, benchmarks,
/// and tests that inspect the OQL-style rewriting of Section 4.2.1.
Result<NormQuery> ParseAndNormalize(const std::string& text);

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_LOREL_H_
