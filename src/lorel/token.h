#ifndef DOEM_LOREL_TOKEN_H_
#define DOEM_LOREL_TOKEN_H_

#include <cstdint>
#include <string>

#include "oem/timestamp.h"

namespace doem {
namespace lorel {

/// Token kinds of the Lorel/Chorel lexical grammar.
enum class TokenKind {
  kEnd,
  kIdent,     // identifiers and labels: restaurant, nearby-eats
  kInt,       // 42
  kReal,      // 2.5
  kString,    // "Lytton"
  kDate,      // 4Jan97 (a digits-letters-digits date literal)
  kDot,       // .
  kComma,     // ,
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kLBrace,    // {  (object literals in update statements)
  kRBrace,    // }
  kLAngle,    // <
  kRAngle,    // >
  kLe,        // <=
  kGe,        // >=
  kEq,        // =
  kNe,        // != or <>
  kColon,     // :
  kHash,      // #   (wildcard: any path of length >= 0)
  kPercent,   // %   (wildcard: exactly one arc, any label)
  kMinus,     // - (only in t[-1] position)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier / string contents
  int64_t int_value = 0;
  double real_value = 0;
  Timestamp date_value;
  size_t offset = 0;   // byte offset in the query, for error messages
};

}  // namespace lorel
}  // namespace doem

#endif  // DOEM_LOREL_TOKEN_H_
