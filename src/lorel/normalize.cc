#include "lorel/normalize.h"

#include <unordered_set>

namespace doem {
namespace lorel {

namespace {

std::string DefaultTimeLabel(AnnotKind kind) {
  switch (kind) {
    case AnnotKind::kCre:
      return "create-time";
    case AnnotKind::kAdd:
      return "add-time";
    case AnnotKind::kRem:
      return "remove-time";
    case AnnotKind::kUpd:
      return "update-time";
    case AnnotKind::kAt:
      return "time";
  }
  return "time";
}

class Normalizer {
 public:
  explicit Normalizer(const Query& q) : q_(q) {}

  Result<NormQuery> Run() {
    // Pass 0: pre-declare from-clause variables so that later from items
    // and the select/where clauses can reference them in head position.
    for (const FromItem& fi : q_.from) {
      if (!fi.var.empty()) {
        if (!user_vars_.insert(fi.var).second) {
          return Status::ParseError("range variable '" + fi.var +
                                    "' declared twice");
        }
      }
    }
    // Pass 1: from items define range variables.
    for (const FromItem& fi : q_.from) {
      auto v = HoistPath(fi.path, fi.var);
      if (!v.ok()) return v.status();
    }
    // Pass 2: select items.
    for (const SelectItem& item : q_.select) {
      SelectItem norm;
      norm.as_label = item.as_label;
      std::string label;
      auto e = RewriteExpr(item.expr, Mode::kHoist, &label);
      if (!e.ok()) return e.status();
      norm.expr = std::move(e).value();
      out_.select.push_back(std::move(norm));
      out_.labels.push_back(!item.as_label.empty() ? item.as_label : label);
    }
    // Pass 3: where clause. Annotated paths are hoisted (whole-where
    // existential scope, Section 4.2.1); plain paths become lazy and
    // quantify at their enclosing comparison.
    if (q_.where) {
      auto e = RewriteExpr(q_.where, Mode::kWhere, nullptr);
      if (!e.ok()) return e.status();
      out_.where = std::move(e).value();
    }
    return std::move(out_);
  }

 private:
  std::string Fresh(const std::string& hint) {
    std::string base = hint.empty() || hint == "#" ? "v" : hint;
    std::string name;
    do {
      name = "_" + base + std::to_string(++fresh_counter_);
    } while (declared_.contains(name) || user_vars_.contains(name));
    declared_.insert(name);
    return name;
  }

  Status DeclareValueVar(const std::string& name, const std::string& label) {
    if (out_.var_kinds.contains(name)) {
      return Status::ParseError("variable '" + name + "' bound twice");
    }
    out_.var_kinds[name] = VarKind::kValue;
    declared_.insert(name);
    var_labels_[name] = label;
    return Status::OK();
  }

  enum class Mode { kHoist, kWhere, kLazy };

  /// Canonicalizes an annotation expression: fills omitted variables with
  /// fresh ones (the paper's "<add>" -> "<add at T1>" step) and registers
  /// the value variables it binds. kAt time expressions are rewritten as
  /// ordinary operands.
  Status Canonicalize(AnnotExpr* a, Mode mode) {
    if (a->kind == AnnotKind::kAt) {
      auto e = RewriteExpr(a->at_time, mode, nullptr);
      if (!e.ok()) return e.status();
      a->at_time = std::move(e).value();
      return Status::OK();
    }
    if (a->time_var.empty()) a->time_var = Fresh("T");
    DOEM_RETURN_IF_ERROR(
        DeclareValueVar(a->time_var, DefaultTimeLabel(a->kind)));
    if (a->kind == AnnotKind::kUpd) {
      if (a->from_var.empty()) a->from_var = Fresh("OV");
      DOEM_RETURN_IF_ERROR(DeclareValueVar(a->from_var, "old-value"));
      if (a->to_var.empty()) a->to_var = Fresh("NV");
      DOEM_RETURN_IF_ERROR(DeclareValueVar(a->to_var, "new-value"));
    }
    return Status::OK();
  }

  bool IsNodeVar(const std::string& name) const {
    auto it = out_.var_kinds.find(name);
    return it != out_.var_kinds.end() && it->second == VarKind::kNode;
  }

  std::string Resolve(const std::string& name) const {
    auto it = aliases_.find(name);
    return it == aliases_.end() ? name : it->second;
  }

  /// Hoists a path into global range definitions, sharing textual
  /// prefixes, and returns the variable bound to its endpoint.
  Result<std::string> HoistPath(const PathExpr& path,
                                const std::string& explicit_var) {
    if (path.steps.empty()) {
      return Status::ParseError("empty path expression");
    }
    std::string source;  // "" = root
    size_t first = 0;
    std::string key;
    const PathStep& head = path.steps[0];
    if (!head.arc_annot && !head.node_annot && !head.wildcard &&
        !head.wildcard_one && IsNodeVar(Resolve(head.label))) {
      source = Resolve(head.label);
      first = 1;
      key = "$" + source;
      if (path.steps.size() == 1) {
        if (!explicit_var.empty() && explicit_var != head.label) {
          aliases_[explicit_var] = source;
          out_.var_kinds[explicit_var] = VarKind::kNode;
        }
        return source;
      }
    }
    std::string cur = source;
    for (size_t i = first; i < path.steps.size(); ++i) {
      const PathStep& raw = path.steps[i];
      // Prefix sharing keys on the raw (pre-canonicalization) step text,
      // so that guide.restaurant.price and guide.restaurant.name range
      // over the same restaurant (paper Example 4.4).
      key += "." + raw.ToString();
      auto shared = prefix_to_var_.find(key);
      bool is_last = i + 1 == path.steps.size();
      if (shared != prefix_to_var_.end()) {
        cur = shared->second;
        if (is_last && !explicit_var.empty()) {
          aliases_[explicit_var] = cur;
          out_.var_kinds[explicit_var] = VarKind::kNode;
        }
        continue;
      }
      RangeDef def;
      def.source_var = cur;
      def.step = raw;
      if (def.step.arc_annot) {
        DOEM_RETURN_IF_ERROR(Canonicalize(&*def.step.arc_annot,
                                          Mode::kHoist));
      }
      if (def.step.node_annot) {
        DOEM_RETURN_IF_ERROR(Canonicalize(&*def.step.node_annot,
                                          Mode::kHoist));
      }
      std::string var;
      if (is_last && !explicit_var.empty()) {
        var = explicit_var;
      } else {
        var = Fresh(raw.wildcard || raw.wildcard_one ? "obj" : raw.label);
      }
      if (out_.var_kinds.contains(var)) {
        return Status::ParseError("variable '" + var + "' bound twice");
      }
      out_.var_kinds[var] = VarKind::kNode;
      var_labels_[var] =
          raw.wildcard || raw.wildcard_one ? "object" : raw.label;
      def.var = var;
      out_.defs.push_back(std::move(def));
      prefix_to_var_[key] = var;
      cur = var;
    }
    return cur;
  }

  /// Prepares a path for lazy (in-place) evaluation inside an exists
  /// predicate or range: resolves the head and canonicalizes annotations
  /// without hoisting.
  Status PrepareLazyPath(PathExpr* path) {
    if (path->steps.empty()) {
      return Status::ParseError("empty path expression");
    }
    PathStep& head = path->steps[0];
    if (!head.arc_annot && !head.node_annot && !head.wildcard &&
        !head.wildcard_one && IsNodeVar(Resolve(head.label))) {
      head.label = Resolve(head.label);
      path->head_is_var = true;
    }
    for (size_t i = path->head_is_var ? 1 : 0; i < path->steps.size(); ++i) {
      PathStep& s = path->steps[i];
      if (s.arc_annot) {
        DOEM_RETURN_IF_ERROR(Canonicalize(&*s.arc_annot, Mode::kLazy));
      }
      if (s.node_annot) {
        DOEM_RETURN_IF_ERROR(Canonicalize(&*s.node_annot, Mode::kLazy));
      }
    }
    return Status::OK();
  }

  static bool HasAnnotations(const PathExpr& p) {
    for (const PathStep& s : p.steps) {
      if (s.arc_annot || s.node_annot) return true;
    }
    return false;
  }

  /// Builds the lazy form of a where-clause path: its longest prefix that
  /// is already bound by a global definition becomes the head variable
  /// (keeping the paper's prefix correlation, Example 4.4), and only the
  /// residual steps are enumerated at the enclosing comparison. This gives
  /// per-comparison existential semantics for plain paths — so
  /// disjunctions over optional subobjects behave sensibly — while paths
  /// with annotation expressions are hoisted instead (whole-where scope,
  /// Example 4.5, which also keeps the Chorel-to-Lorel translation
  /// linear).
  Result<ExprPtr> MakeLazyWherePath(const PathExpr& p,
                                    std::string* label_out) {
    std::string source;
    size_t first = 0;
    std::string key;
    const PathStep& head = p.steps[0];
    if (!head.arc_annot && !head.node_annot && !head.wildcard &&
        !head.wildcard_one && IsNodeVar(Resolve(head.label))) {
      source = Resolve(head.label);
      first = 1;
      key = "$" + source;
    }
    size_t residual_start = first;
    std::string residual_source = source;
    for (size_t i = first; i < p.steps.size(); ++i) {
      key += "." + p.steps[i].ToString();
      auto it = prefix_to_var_.find(key);
      if (it == prefix_to_var_.end()) break;
      residual_source = it->second;
      residual_start = i + 1;
    }
    PathExpr lazy;
    if (!residual_source.empty()) {
      PathStep head_step;
      head_step.label = residual_source;
      lazy.steps.push_back(std::move(head_step));
      lazy.head_is_var = true;
    }
    for (size_t i = residual_start; i < p.steps.size(); ++i) {
      PathStep s = p.steps[i];
      if (s.arc_annot) {
        DOEM_RETURN_IF_ERROR(Canonicalize(&*s.arc_annot, Mode::kLazy));
      }
      if (s.node_annot) {
        DOEM_RETURN_IF_ERROR(Canonicalize(&*s.node_annot, Mode::kLazy));
      }
      lazy.steps.push_back(std::move(s));
    }
    if (label_out) {
      const PathStep& last = p.steps.back();
      *label_out =
          last.wildcard || last.wildcard_one ? "object" : last.label;
    }
    if (lazy.head_is_var && lazy.steps.size() == 1) {
      return Expr::MakeVar(residual_source);
    }
    return Expr::MakePath(std::move(lazy));
  }

  /// Rewrites an expression. In non-lazy mode, select paths and where
  /// annotated where paths are hoisted into the global defs; plain where
  /// paths become lazy (see MakeLazyWherePath).
  /// In lazy mode (inside exists predicates), multi-step paths stay as
  /// kPath and are enumerated during evaluation, existentially at their
  /// enclosing comparison.
  /// `label_out`, if non-null, receives a display label for the value.
  Result<ExprPtr> RewriteExpr(const ExprPtr& e, Mode mode,
                              std::string* label_out) {
    if (label_out) *label_out = "value";
    if (!e) return Status::Internal("null expression");
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        return e;
      case Expr::Kind::kVar:
        return e;
      case Expr::Kind::kTimeRef:
        if (label_out) *label_out = "time";
        return e;
      case Expr::Kind::kPath: {
        // A single bare identifier that names a bound variable.
        const PathExpr& p = e->path;
        if (p.steps.size() == 1 && !p.steps[0].arc_annot &&
            !p.steps[0].node_annot && !p.steps[0].wildcard &&
            !p.steps[0].wildcard_one &&
            out_.var_kinds.contains(Resolve(p.steps[0].label))) {
          std::string var = Resolve(p.steps[0].label);
          if (label_out) {
            auto it = var_labels_.find(var);
            *label_out = it != var_labels_.end() ? it->second : var;
          }
          return Expr::MakeVar(var);
        }
        if (mode == Mode::kLazy) {
          auto copy = std::make_shared<Expr>(*e);
          DOEM_RETURN_IF_ERROR(PrepareLazyPath(&copy->path));
          if (label_out) {
            const PathStep& last = copy->path.steps.back();
            *label_out =
                last.wildcard || last.wildcard_one ? "object" : last.label;
          }
          return ExprPtr(copy);
        }
        if (mode == Mode::kWhere && !HasAnnotations(p)) {
          return MakeLazyWherePath(p, label_out);
        }
        auto var = HoistPath(p, "");
        if (!var.ok()) return var.status();
        if (label_out) {
          auto it = var_labels_.find(*var);
          *label_out = it != var_labels_.end() ? it->second : *var;
        }
        return Expr::MakeVar(std::move(var).value());
      }
      case Expr::Kind::kBinary: {
        auto l = RewriteExpr(e->lhs, mode, nullptr);
        if (!l.ok()) return l;
        auto r = RewriteExpr(e->rhs, mode, nullptr);
        if (!r.ok()) return r;
        return Expr::MakeBinary(e->op, std::move(l).value(),
                                std::move(r).value());
      }
      case Expr::Kind::kNot: {
        auto c = RewriteExpr(e->child, mode, nullptr);
        if (!c.ok()) return c;
        return Expr::MakeNot(std::move(c).value());
      }
      case Expr::Kind::kExists: {
        auto copy = std::make_shared<Expr>(*e);
        if (out_.var_kinds.contains(copy->exists_var)) {
          return Status::ParseError("exists variable '" + copy->exists_var +
                                    "' shadows an existing variable");
        }
        DOEM_RETURN_IF_ERROR(PrepareLazyPath(&copy->exists_path));
        out_.var_kinds[copy->exists_var] = VarKind::kNode;
        declared_.insert(copy->exists_var);
        var_labels_[copy->exists_var] = copy->exists_var;
        auto pred = RewriteExpr(copy->exists_pred, Mode::kLazy, nullptr);
        if (!pred.ok()) return pred;
        copy->exists_pred = std::move(pred).value();
        return ExprPtr(copy);
      }
    }
    return Status::Internal("unknown expression kind");
  }

  const Query& q_;
  NormQuery out_;
  std::unordered_map<std::string, std::string> prefix_to_var_;
  std::unordered_map<std::string, std::string> aliases_;
  std::unordered_map<std::string, std::string> var_labels_;
  std::unordered_set<std::string> declared_;
  std::unordered_set<std::string> user_vars_;
  int fresh_counter_ = 0;
};

}  // namespace

std::string RangeDef::ToString() const {
  std::string src = source_var.empty() ? "root" : source_var;
  return src + "." + step.ToString() + " " + var;
}

std::string NormQuery::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].expr ? select[i].expr->ToString() : "?";
    out += " as " + labels[i];
  }
  out += "\nfrom ";
  for (size_t i = 0; i < defs.size(); ++i) {
    if (i > 0) out += ", ";
    out += defs[i].ToString();
  }
  if (where) out += "\nwhere " + where->ToString();
  return out;
}

Result<NormQuery> Normalize(const Query& q) { return Normalizer(q).Run(); }

}  // namespace lorel
}  // namespace doem
