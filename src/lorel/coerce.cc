#include "lorel/coerce.h"

#include <charconv>
#include <cstdlib>
#include <optional>

#include "common/strings.h"

namespace doem {
namespace lorel {

namespace {

bool ApplyOrder(int cmp, BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return cmp == 0;
    case BinOp::kNe:
      return cmp != 0;
    case BinOp::kLt:
      return cmp < 0;
    case BinOp::kLe:
      return cmp <= 0;
    case BinOp::kGt:
      return cmp > 0;
    case BinOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

std::optional<double> ToNumber(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return static_cast<double>(v.AsInt());
    case Value::Kind::kReal:
      return v.AsReal();
    case Value::Kind::kString: {
      const std::string& s = v.AsString();
      if (s.empty()) return std::nullopt;
      char* end = nullptr;
      double d = std::strtod(s.c_str(), &end);
      if (end != s.c_str() + s.size()) return std::nullopt;
      return d;
    }
    default:
      return std::nullopt;
  }
}

std::optional<Timestamp> ToTimestamp(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kTimestamp:
      return v.AsTime();
    case Value::Kind::kInt:
      return Timestamp(v.AsInt());
    case Value::Kind::kString: {
      Timestamp t;
      if (Timestamp::Parse(v.AsString(), &t)) return t;
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

// Text rendering for `like`: strings stay as-is, other atomics use their
// literal form (without quotes).
std::optional<std::string> ToText(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kString:
      return v.AsString();
    case Value::Kind::kInt:
    case Value::Kind::kReal:
    case Value::Kind::kBool:
      return v.ToString();
    case Value::Kind::kTimestamp:
      return v.AsTime().ToString();
    case Value::Kind::kComplex:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

bool CompareValues(const Value& lhs, BinOp op, const Value& rhs) {
  if (lhs.is_complex() || rhs.is_complex()) return false;

  if (op == BinOp::kLike) {
    auto l = ToText(lhs);
    auto r = ToText(rhs);
    return l && r && LikeMatch(*l, *r);
  }

  // Timestamp context: if either side is a timestamp, coerce both.
  if (lhs.kind() == Value::Kind::kTimestamp ||
      rhs.kind() == Value::Kind::kTimestamp) {
    auto l = ToTimestamp(lhs);
    auto r = ToTimestamp(rhs);
    if (!l || !r) return false;
    return ApplyOrder(l->ticks < r->ticks ? -1 : (l->ticks > r->ticks ? 1 : 0),
                      op);
  }

  // Boolean context: only with two booleans, only (in)equality.
  if (lhs.kind() == Value::Kind::kBool ||
      rhs.kind() == Value::Kind::kBool) {
    if (lhs.kind() != rhs.kind()) return false;
    if (op != BinOp::kEq && op != BinOp::kNe) return false;
    return ApplyOrder(lhs.AsBool() == rhs.AsBool() ? 0 : 1, op);
  }

  // Numeric context: if either side is a number, coerce both.
  if (lhs.kind() == Value::Kind::kInt || lhs.kind() == Value::Kind::kReal ||
      rhs.kind() == Value::Kind::kInt || rhs.kind() == Value::Kind::kReal) {
    // Exact path for int-int.
    if (lhs.kind() == Value::Kind::kInt &&
        rhs.kind() == Value::Kind::kInt) {
      int64_t a = lhs.AsInt(), b = rhs.AsInt();
      return ApplyOrder(a < b ? -1 : (a > b ? 1 : 0), op);
    }
    auto l = ToNumber(lhs);
    auto r = ToNumber(rhs);
    if (!l || !r) return false;
    return ApplyOrder(*l < *r ? -1 : (*l > *r ? 1 : 0), op);
  }

  // String vs string.
  if (lhs.kind() == Value::Kind::kString &&
      rhs.kind() == Value::Kind::kString) {
    int cmp = lhs.AsString().compare(rhs.AsString());
    return ApplyOrder(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0), op);
  }
  return false;
}

}  // namespace lorel
}  // namespace doem
