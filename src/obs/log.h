#ifndef DOEM_OBS_LOG_H_
#define DOEM_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "oem/timestamp.h"

namespace doem {
namespace obs {

/// What happened. Each value maps to a stable string (EventTypeToString)
/// used by the JSON-lines export; add new values at the end so dashboards
/// keyed on the strings stay valid.
enum class EventType : uint8_t {
  /// A scheduled poll failed after exhausting retries.
  kPollFailed,
  /// A scheduled poll was skipped because its group was quarantined.
  kPollMissed,
  /// Circuit breaker tripped: the group entered quarantine.
  kQuarantineOpened,
  /// Cool-down elapsed: the next due poll runs as a half-open probe.
  kQuarantineProbe,
  /// A probe succeeded: the group left quarantine.
  kQuarantineClosed,
  /// The durable store failed (append failure, broken writer, recovery
  /// truncation).
  kStoreError,
  /// A member's filter query (or the group's filter-cache maintenance)
  /// failed.
  kFilterError,
  /// A wire connection fed a corrupt frame and was poisoned.
  kFramePoisoned,
  kConnectionOpened,
  kConnectionClosed,
  kSubscribed,
  kSubscribeRejected,
  kUnsubscribed,
  kGroupCreated,
  kGroupRetired,
};

const char* EventTypeToString(EventType type);

enum class EventSeverity : uint8_t { kInfo, kWarning, kError };

const char* EventSeverityToString(EventSeverity severity);

/// One structured event. `wall_ns` is the obs clock reading at Record
/// time (measured, excluded from determinism comparisons like every
/// other wall-clock field); `sim` is the simulated Timestamp of the
/// operation when it has one.
struct Event {
  /// Position in the log's total order (0-based, never reused). Gaps in
  /// a snapshot mean older events were overwritten by the ring.
  uint64_t seq = 0;
  int64_t wall_ns = 0;
  Timestamp sim;
  EventType type = EventType::kPollFailed;
  EventSeverity severity = EventSeverity::kInfo;
  /// Who it happened to: a group key, subscription name, connection id,
  /// or store path.
  std::string subject;
  /// Free-form detail (an error message, a reason); may be empty.
  std::string detail;
};

/// A bounded ring of typed events (DESIGN.md §6h): the operational
/// journal behind the metrics — metrics say *how often*, the event log
/// says *what, to whom, and why* for the most recent N incidents.
///
/// Thread safety: Record may be called from any thread (QSS executor
/// threads, server dispatch). Each Record claims a slot with one atomic
/// fetch_add — writers never contend on a shared lock — then fills the
/// slot under that slot's own mutex, which is uncontended except against
/// a concurrent Snapshot or a writer that lapped the ring. When the ring
/// is full the oldest event is overwritten (overwritten() counts them):
/// a bounded log never becomes the memory regression it is journaling.
///
/// Call sites should go through DOEM_LOG_EVENT below, which compiles to
/// nothing under -DDOEM_EVENTLOG=OFF (mirroring DOEM_TRACING) so the
/// argument expressions are never evaluated.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Stamps wall_ns/seq and appends. Severity-agnostic: filtering is the
  /// reader's job (ExportJsonLines takes a floor).
  void Record(EventType type, EventSeverity severity, Timestamp sim,
              std::string subject, std::string detail = "");

  /// The retained events in seq order (oldest first). Taken under the
  /// slot mutexes, so concurrent writers are safe; events recorded while
  /// the snapshot walks the ring may or may not appear.
  std::vector<Event> Snapshot() const;

  /// Events ever recorded / overwritten by the ring bound. recorded() -
  /// overwritten() == retained count once writers quiesce.
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  uint64_t overwritten() const {
    uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

  /// One JSON object per line, oldest first, events below `floor`
  /// omitted:
  ///   {"seq":12,"wall_ns":98,"sim_ticks":4,"type":"poll-failed",
  ///    "severity":"error","subject":"...","detail":"..."}
  std::string ExportJsonLines(
      EventSeverity floor = EventSeverity::kInfo) const;

 private:
  struct Slot {
    mutable std::mutex mu;
    bool full = false;
    Event event;
  };

  const size_t capacity_;
  std::atomic<uint64_t> next_{0};
  std::vector<Slot> slots_;
};

/// Serializes one event as the JSON-lines object ExportJsonLines emits.
std::string EventToJson(const Event& e);

}  // namespace obs
}  // namespace doem

#ifdef DOEM_EVENTLOG_DISABLED

/// Event logging compiled out (CMake -DDOEM_EVENTLOG=OFF): the call site
/// vanishes and its argument expressions are never evaluated. The
/// EventLog class itself stays available (tests and tools may drive it
/// directly); only the instrumentation points disappear.
#define DOEM_LOG_EVENT(log, type, severity, sim, subject, detail) \
  do {                                                            \
  } while (0)

#else

/// Records an event iff `log` is non-null. A macro (not an inline
/// function) so -DDOEM_EVENTLOG=OFF removes the argument expressions —
/// subjects are often string concatenations that would otherwise still
/// allocate.
#define DOEM_LOG_EVENT(log, type, severity, sim, subject, detail)       \
  do {                                                                  \
    ::doem::obs::EventLog* doem_log_event_sink = (log);                 \
    if (doem_log_event_sink != nullptr) {                               \
      doem_log_event_sink->Record((type), (severity), (sim), (subject), \
                                  (detail));                            \
    }                                                                   \
  } while (0)

#endif  // DOEM_EVENTLOG_DISABLED

#endif  // DOEM_OBS_LOG_H_
