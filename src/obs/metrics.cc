#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace doem {
namespace obs {

namespace {

/// Maps a dotted metric name onto the Prometheus exposition charset
/// [a-zA-Z0-9_:]; anything else becomes '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out = "_" + out;
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Escapes a HELP text for the Prometheus exposition format, where the
/// value runs to end of line: backslash and newline are the only
/// characters with meaning.
std::string PrometheusHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void CheckName(const std::string& name) {
  if (MetricsRegistry::ValidName(name)) return;
  std::fprintf(stderr,
               "MetricsRegistry: invalid metric name \"%s\" (want lowercase "
               "first, then [a-z0-9_.], no empty dotted segment)\n",
               name.c_str());
  std::abort();
}

}  // namespace

bool MetricsRegistry::ValidName(const std::string& name) {
  if (name.empty()) return false;
  if (!(name[0] >= 'a' && name[0] <= 'z')) return false;
  char prev = '\0';
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '.';
    if (!ok) return false;
    if (c == '.' && prev == '.') return false;
    prev = c;
  }
  return name.back() != '.';
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Duplicate bounds were collapsed; rebuild the cell array to match.
    std::vector<std::atomic<uint64_t>> cells(bounds_.size() + 1);
    buckets_.swap(cells);
  }
}

void Histogram::Observe(int64_t v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const std::vector<int64_t>& LatencyBucketsNs() {
  // 1us .. ~4.3s in powers of four — 12 buckets spans the gap between a
  // sub-microsecond counter bump and a multi-second rebuild.
  static const std::vector<int64_t> kBuckets = [] {
    std::vector<int64_t> b;
    for (int64_t bound = 1000; b.size() < 12; bound *= 4) b.push_back(bound);
    return b;
  }();
  return kBuckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.help = help;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry e;
  e.kind = Kind::kGauge;
  e.help = help;
  e.gauge = std::make_unique<Gauge>();
  Gauge* out = e.gauge.get();
  entries_.emplace(name, std::move(e));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<int64_t>& bounds,
                                         const std::string& help) {
  CheckName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kHistogram) return nullptr;
    Histogram* h = it->second.histogram.get();
    return h->bounds() == bounds ? h : nullptr;
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.help = help;
  e.histogram = std::make_unique<Histogram>(bounds);
  Histogram* out = e.histogram.get();
  entries_.emplace(name, std::move(e));
  return out;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) return 0;
  return it->second.counter->value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kGauge) return 0;
  return it->second.gauge->value();
}

uint64_t MetricsRegistry::HistogramCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) return 0;
  return it->second.histogram->count();
}

std::vector<MetricsRegistry::MetricInfo> MetricsRegistry::Describe() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricInfo info;
    info.name = name;
    switch (e.kind) {
      case Kind::kCounter: info.kind = "counter"; break;
      case Kind::kGauge: info.kind = "gauge"; break;
      case Kind::kHistogram: info.kind = "histogram"; break;
    }
    info.help = e.help;
    out.push_back(std::move(info));
  }
  return out;
}

MetricsRegistry::Values MetricsRegistry::CurrentValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  Values out;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.counters[name] = e.counter->value();
        break;
      case Kind::kGauge:
        out.gauges[name] = e.gauge->value();
        break;
      case Kind::kHistogram:
        out.histogram_counts[name] = e.histogram->count();
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    std::string pn = PrometheusName(name);
    if (!e.help.empty()) {
      out += "# HELP " + pn + " " + PrometheusHelpEscape(e.help) + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + pn + " counter\n";
        out += pn + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + pn + " gauge\n";
        out += pn + " " + std::to_string(e.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + pn + " histogram\n";
        const Histogram& h = *e.histogram;
        std::vector<uint64_t> cells = h.bucket_counts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += cells[i];
          out += pn + "_bucket{le=\"" + std::to_string(h.bounds()[i]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += cells.back();
        out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += pn + "_sum " + std::to_string(h.sum()) + "\n";
        out += pn + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : entries_) {
    std::string key = "\"" + JsonEscape(name) + "\":";
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += key + std::to_string(e.counter->value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += key + std::to_string(e.gauge->value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const Histogram& h = *e.histogram;
        std::string bounds, cells;
        for (int64_t b : h.bounds()) {
          if (!bounds.empty()) bounds += ",";
          bounds += std::to_string(b);
        }
        for (uint64_t c : h.bucket_counts()) {
          if (!cells.empty()) cells += ",";
          cells += std::to_string(c);
        }
        histograms += key + "{\"bounds\":[" + bounds + "],\"counts\":[" +
                      cells + "],\"sum\":" + std::to_string(h.sum()) +
                      ",\"count\":" + std::to_string(h.count()) + "}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace obs
}  // namespace doem
