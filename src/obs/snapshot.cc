#include "obs/snapshot.h"

#include "obs/clock.h"

namespace doem {
namespace obs {

namespace {

/// Metric names are pre-validated to [a-z0-9_.], so no escaping needed.
template <typename Map>
std::string JsonObject(const Map& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : m) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "}";
  return out;
}

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(const MetricsRegistry* registry)
    : registry_(registry),
      base_(registry->CurrentValues()),
      base_ns_(NowNs()) {}

MetricsSnapshotter::Interval MetricsSnapshotter::Capture() {
  MetricsRegistry::Values now = registry_->CurrentValues();
  int64_t now_ns = NowNs();
  Interval out;
  out.interval_ns = now_ns - base_ns_;
  for (const auto& [name, value] : now.counters) {
    auto it = base_.counters.find(name);
    uint64_t before = it == base_.counters.end() ? 0 : it->second;
    out.counter_deltas[name] = value - before;
  }
  for (const auto& [name, value] : now.histogram_counts) {
    auto it = base_.histogram_counts.find(name);
    uint64_t before = it == base_.histogram_counts.end() ? 0 : it->second;
    out.histogram_count_deltas[name] = value - before;
  }
  out.gauges = now.gauges;
  base_ = std::move(now);
  base_ns_ = now_ns;
  return out;
}

std::string MetricsSnapshotter::Interval::ToJson() const {
  return "{\"interval_ns\":" + std::to_string(interval_ns) +
         ",\"counter_deltas\":" + JsonObject(counter_deltas) +
         ",\"histogram_count_deltas\":" + JsonObject(histogram_count_deltas) +
         ",\"gauges\":" + JsonObject(gauges) + "}";
}

}  // namespace obs
}  // namespace doem
