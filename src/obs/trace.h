#ifndef DOEM_OBS_TRACE_H_
#define DOEM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"
#include "oem/timestamp.h"

namespace doem {
namespace obs {

/// One completed span. Durations are wall-clock (obs::NowNs); `sim`
/// carries the simulated Timestamp of the operation when it has one, so
/// a trace can be correlated with the paper's simulated time domain.
struct TraceEvent {
  std::string name;
  std::string category;
  /// Free-form detail ("group", a subscription name, ...); empty = none.
  std::string label;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::optional<Timestamp> sim;
  /// Dense recorder-assigned thread index (0 = first recording thread).
  uint32_t tid = 0;
};

/// Records RAII spans into bounded per-thread buffers and exports them
/// as Chrome trace-event JSON ("X" complete events) loadable in
/// Perfetto / chrome://tracing (DESIGN.md §6d).
///
/// Thread safety: spans may begin and end on any thread (QSS records
/// from executor threads); each thread appends to its own buffer under
/// an uncontended per-buffer mutex. When a thread's buffer is full,
/// further events on it are counted in dropped() and discarded — a
/// bounded trace never becomes the memory regression it is measuring.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t max_events_per_thread = 65536);

  void Record(TraceEvent event);

  /// All recorded events, merged across threads in start-time order.
  std::vector<TraceEvent> Events() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discards every recorded event and resets the drop counter — the
  /// TraceDump admin frame drains the recorder so each dump carries only
  /// spans since the previous one. Thread buffers stay registered;
  /// recording continues normally afterwards.
  void Clear();

  /// Chrome trace-event JSON: {"traceEvents": [...]} with "X" complete
  /// events (ts/dur in fractional microseconds, relative to the earliest
  /// span), one pid, recorder thread indexes as tids, and args carrying
  /// the simulated timestamp and label.
  std::string ExportChromeTrace() const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  /// This thread's buffer (registering it on first use), plus its dense
  /// index. Cached thread-locally, keyed by a process-unique recorder id
  /// so a recorder reallocated at the same address never sees another's
  /// cache entry.
  ThreadBuffer* BufferForThisThread(uint32_t* tid);

  const size_t capacity_;
  const uint64_t id_;
  mutable std::mutex mu_;  // guards buffers_ growth
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint64_t> dropped_{0};
};

#ifdef DOEM_TRACING_DISABLED

/// Tracing compiled out (CMake -DDOEM_TRACING=OFF): spans are empty
/// objects and their constructor arguments are never evaluated beyond
/// trivial parameter passing; the optimizer removes the call sites.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder*, std::string_view, std::string_view) {}
  TraceSpan(TraceRecorder*, std::string_view, std::string_view, Timestamp) {}
  TraceSpan(TraceRecorder*, std::string_view, std::string_view, Timestamp,
            std::string_view) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#else

/// An RAII span: starts timing at construction, records a TraceEvent
/// into `recorder` at destruction. A null recorder makes both ends a
/// pointer test — spans stay in the code unconditionally and cost
/// nearly nothing when tracing is off at runtime (and exactly nothing
/// when compiled out via DOEM_TRACING=OFF).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name,
            std::string_view category)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    event_.name = std::string(name);
    event_.category = std::string(category);
    event_.start_ns = NowNs();
  }
  TraceSpan(TraceRecorder* recorder, std::string_view name,
            std::string_view category, Timestamp sim)
      : TraceSpan(recorder, name, category) {
    if (recorder_ != nullptr) event_.sim = sim;
  }
  TraceSpan(TraceRecorder* recorder, std::string_view name,
            std::string_view category, Timestamp sim, std::string_view label)
      : TraceSpan(recorder, name, category, sim) {
    if (recorder_ != nullptr) event_.label = std::string(label);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    event_.duration_ns = ElapsedNs(event_.start_ns);
    recorder_->Record(std::move(event_));
  }

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

#endif  // DOEM_TRACING_DISABLED

}  // namespace obs
}  // namespace doem

#endif  // DOEM_OBS_TRACE_H_
