#include "obs/clock.h"

#include <chrono>

namespace doem {
namespace obs {

namespace {

// The installed override, null for the default steady clock. An atomic
// pointer so NowNs stays lock-free on the hot path.
std::atomic<ClockInterface*> g_clock{nullptr};

}  // namespace

int64_t NowNs() {
  ClockInterface* clock = g_clock.load(std::memory_order_acquire);
  if (clock != nullptr) return clock->NowNs();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedClockOverride::ScopedClockOverride(ClockInterface* clock)
    : previous_(g_clock.exchange(clock, std::memory_order_acq_rel)) {}

ScopedClockOverride::~ScopedClockOverride() {
  g_clock.store(previous_, std::memory_order_release);
}

}  // namespace obs
}  // namespace doem
