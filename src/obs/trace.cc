#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace doem {
namespace obs {

namespace {

std::atomic<uint64_t> g_recorder_ids{1};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fractional microseconds with fixed precision — Chrome trace "ts" and
/// "dur" are microsecond doubles.
std::string MicrosFromNs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t max_events_per_thread)
    : capacity_(max_events_per_thread == 0 ? 1 : max_events_per_thread),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread(
    uint32_t* tid) {
  struct Cache {
    uint64_t recorder_id = 0;
    ThreadBuffer* buffer = nullptr;
    uint32_t tid = 0;
  };
  thread_local Cache cache;
  if (cache.recorder_id == id_) {
    *tid = cache.tid;
    return cache.buffer;
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  cache.recorder_id = id_;
  cache.buffer = buffers_.back().get();
  cache.tid = static_cast<uint32_t>(buffers_.size() - 1);
  *tid = cache.tid;
  return cache.buffer;
}

void TraceRecorder::Record(TraceEvent event) {
  uint32_t tid = 0;
  ThreadBuffer* buffer = BufferForThisThread(&tid);
  event.tid = tid;
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::string TraceRecorder::ExportChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  int64_t epoch = 0;
  if (!events.empty()) epoch = events.front().start_ns;
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"doem\"}}";
  for (const TraceEvent& e : events) {
    out += ",{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",\"ph\":\"X\",\"ts\":" +
           MicrosFromNs(e.start_ns - epoch) +
           ",\"dur\":" + MicrosFromNs(e.duration_ns) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + ",\"args\":{";
    bool first = true;
    if (e.sim.has_value()) {
      out += "\"sim_ticks\":" + std::to_string(e.sim->ticks);
      first = false;
    }
    if (!e.label.empty()) {
      if (!first) out += ",";
      out += "\"label\":\"" + JsonEscape(e.label) + "\"";
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace obs
}  // namespace doem
