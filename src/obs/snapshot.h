#ifndef DOEM_OBS_SNAPSHOT_H_
#define DOEM_OBS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace doem {
namespace obs {

/// Turns a MetricsRegistry's monotonic values into interval deltas:
/// each Capture() diffs the registry against the previous capture (the
/// constructor takes the first baseline), so a StatsReply can report
/// "polls per interval" instead of "polls since process start".
///
/// Not thread-safe by itself — the QssServer drives one snapshotter from
/// its (externally synchronized) dispatch path. Multiple clients asking
/// for stats share the interval: each reply covers the span since the
/// previous stats request from *any* client.
class MetricsSnapshotter {
 public:
  explicit MetricsSnapshotter(const MetricsRegistry* registry);

  struct Interval {
    /// Wall nanoseconds covered (obs::NowNs domain).
    int64_t interval_ns = 0;
    /// Counter increments over the interval (every registered counter,
    /// including zeros — absence would be ambiguous with "unregistered").
    std::map<std::string, uint64_t> counter_deltas;
    /// Histogram observation-count increments over the interval.
    std::map<std::string, uint64_t> histogram_count_deltas;
    /// Gauges are levels, not flows: current values, not deltas.
    std::map<std::string, int64_t> gauges;

    /// {"interval_ns":N,"counter_deltas":{...},
    ///  "histogram_count_deltas":{...},"gauges":{...}} — rates are
    /// delta * 1e9 / interval_ns, left to the consumer so the wire
    /// carries integers only.
    std::string ToJson() const;
  };

  /// The interval since the previous Capture (or construction), and
  /// resets the baseline to now.
  Interval Capture();

 private:
  const MetricsRegistry* registry_;
  MetricsRegistry::Values base_;
  int64_t base_ns_;
};

}  // namespace obs
}  // namespace doem

#endif  // DOEM_OBS_SNAPSHOT_H_
