#include "obs/log.h"

#include <algorithm>
#include <cstdio>

#include "obs/clock.h"

namespace doem {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kPollFailed: return "poll-failed";
    case EventType::kPollMissed: return "poll-missed";
    case EventType::kQuarantineOpened: return "quarantine-opened";
    case EventType::kQuarantineProbe: return "quarantine-probe";
    case EventType::kQuarantineClosed: return "quarantine-closed";
    case EventType::kStoreError: return "store-error";
    case EventType::kFilterError: return "filter-error";
    case EventType::kFramePoisoned: return "frame-poisoned";
    case EventType::kConnectionOpened: return "connection-opened";
    case EventType::kConnectionClosed: return "connection-closed";
    case EventType::kSubscribed: return "subscribed";
    case EventType::kSubscribeRejected: return "subscribe-rejected";
    case EventType::kUnsubscribed: return "unsubscribed";
    case EventType::kGroupCreated: return "group-created";
    case EventType::kGroupRetired: return "group-retired";
  }
  return "unknown";
}

const char* EventSeverityToString(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo: return "info";
    case EventSeverity::kWarning: return "warning";
    case EventSeverity::kError: return "error";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

void EventLog::Record(EventType type, EventSeverity severity, Timestamp sim,
                      std::string subject, std::string detail) {
  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  Event e;
  e.seq = seq;
  e.wall_ns = NowNs();
  e.sim = sim;
  e.type = type;
  e.severity = severity;
  e.subject = std::move(subject);
  e.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(slot.mu);
  // Two writers lapping each other race to the same slot; keep the newer
  // event (the older one counts as overwritten either way).
  if (slot.full && slot.event.seq > seq) return;
  slot.full = true;
  slot.event = std::move(e);
}

std::vector<Event> EventLog::Snapshot() const {
  std::vector<Event> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.full) out.push_back(slot.event);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::string EventToJson(const Event& e) {
  std::string out = "{\"seq\":" + std::to_string(e.seq) +
                    ",\"wall_ns\":" + std::to_string(e.wall_ns) +
                    ",\"sim_ticks\":" + std::to_string(e.sim.ticks) +
                    ",\"type\":\"" + EventTypeToString(e.type) +
                    "\",\"severity\":\"" + EventSeverityToString(e.severity) +
                    "\",\"subject\":\"" + JsonEscape(e.subject) + "\"";
  if (!e.detail.empty()) {
    out += ",\"detail\":\"" + JsonEscape(e.detail) + "\"";
  }
  out += "}";
  return out;
}

std::string EventLog::ExportJsonLines(EventSeverity floor) const {
  std::string out;
  for (const Event& e : Snapshot()) {
    if (e.severity < floor) continue;
    out += EventToJson(e);
    out += "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace doem
