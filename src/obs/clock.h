#ifndef DOEM_OBS_CLOCK_H_
#define DOEM_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace doem {
namespace obs {

/// The wall-clock shim every measured duration in the codebase goes
/// through (DESIGN.md §6d). Phase timings in PollReport, histogram
/// observations, and trace spans all read this clock, so tests can
/// substitute a manual clock and assert on exact durations.
///
/// This is the *wall* clock domain — monotonic nanoseconds with an
/// arbitrary epoch — as opposed to the simulated Timestamp domain the
/// paper's Section 2.2 time model uses. Trace events carry both.
class ClockInterface {
 public:
  virtual ~ClockInterface() = default;
  /// Monotonic nanoseconds. Must be safe to call from any thread.
  virtual int64_t NowNs() const = 0;
};

/// Monotonic nanoseconds from the installed clock (default:
/// std::chrono::steady_clock).
int64_t NowNs();

/// Nanoseconds elapsed since a NowNs() reading.
inline int64_t ElapsedNs(int64_t start_ns) { return NowNs() - start_ns; }

/// Installs `clock` as the process-wide clock for its lifetime and
/// restores the previous clock on destruction. For tests; installing a
/// clock while other threads are measuring is safe (the pointer swap is
/// atomic) but mid-measurement readings may mix domains.
class ScopedClockOverride {
 public:
  explicit ScopedClockOverride(ClockInterface* clock);
  ~ScopedClockOverride();

  ScopedClockOverride(const ScopedClockOverride&) = delete;
  ScopedClockOverride& operator=(const ScopedClockOverride&) = delete;

 private:
  ClockInterface* previous_;
};

/// A manually advanced clock for deterministic timing tests.
class ManualClock : public ClockInterface {
 public:
  explicit ManualClock(int64_t start_ns = 0) : ns_(start_ns) {}
  int64_t NowNs() const override {
    return ns_.load(std::memory_order_relaxed);
  }
  void Advance(int64_t delta_ns) {
    ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void Set(int64_t ns) { ns_.store(ns, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> ns_;
};

}  // namespace obs
}  // namespace doem

#endif  // DOEM_OBS_CLOCK_H_
