#ifndef DOEM_OBS_METRICS_H_
#define DOEM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace doem {
namespace obs {

/// A monotonically increasing event count. Updates are lock-free and
/// safe from any thread (including QSS executor threads).
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (circuit states, cache sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds; one implicit overflow bucket (+Inf) follows. Observations are
/// lock-free; the snapshot accessors read relaxed-atomic counters, so a
/// snapshot taken while writers run is per-cell consistent (sum/count
/// may momentarily disagree by in-flight observations — the exporters
/// are meant for quiescent or monitoring reads, not invariants).
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t v);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Default bucket bounds for nanosecond latency histograms: powers of
/// four from 1us to ~4.3s.
const std::vector<int64_t>& LatencyBucketsNs();

/// A named registry of counters, gauges, and histograms (DESIGN.md §6d).
///
/// Get* registers on first use and returns the existing instrument on
/// subsequent calls; returned pointers are stable for the registry's
/// lifetime, so hot paths resolve each name once and update through the
/// cached pointer. Registration takes a lock; updates do not. Asking for
/// a name that exists with a different kind (or a histogram with
/// different bounds) returns null — the caller's metric is silently
/// disabled rather than corrupting someone else's.
///
/// Metric names use dotted lowercase ("qss.polls_ok"); the Prometheus
/// exporter maps them to the exposition charset ("qss_polls_ok").
/// Registration validates the name against that charset — a lowercase
/// letter first, then [a-z0-9_.] with no empty dotted segment — and
/// aborts on violation: a misspelled registration is a programming
/// error, and failing at first use beats a silently unexportable metric.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<int64_t>& bounds,
                          const std::string& help = "");

  /// True iff `name` passes registration validation (see class comment).
  static bool ValidName(const std::string& name);

  /// Prometheus text exposition format (one # HELP / # TYPE block per
  /// metric, histograms with cumulative le-buckets), names sorted.
  std::string ExportPrometheus() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}, names sorted — the form scripts/bench.sh and the dashboard
  /// example consume.
  std::string ExportJson() const;

  /// Point-in-time value lookups for tests and examples; 0 / empty when
  /// the name is unknown or of another kind.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  uint64_t HistogramCount(const std::string& name) const;

  /// What is registered, without values — name order. Feeds the
  /// generated METRICS.md reference (tests/metrics_doc_test.cc).
  struct MetricInfo {
    std::string name;
    /// "counter" | "gauge" | "histogram".
    std::string kind;
    std::string help;
  };
  std::vector<MetricInfo> Describe() const;

  /// Scalar values of every counter and gauge at one instant — the raw
  /// material MetricsSnapshotter diffs into interval rates. Histograms
  /// are represented by their total observation count (rates of events,
  /// not of latency).
  struct Values {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    /// name -> count() per histogram.
    std::map<std::string, uint64_t> histogram_counts;
  };
  Values CurrentValues() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  // Ordered so the exporters are deterministic without re-sorting.
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace doem

#endif  // DOEM_OBS_METRICS_H_
