#include "store/recovery.h"

namespace doem {
namespace store {

Result<RecoveryResult> RecoverStoreBytes(std::string_view bytes) {
  RecoveryResult out;
  if (bytes.size() < kStoreHeaderSize) {
    // A crash inside the very first write: nothing was committed.
    if (!bytes.empty()) {
      out.truncated = true;
      out.truncation_reason = "torn file header";
      out.truncated_bytes = bytes.size();
    }
    return out;
  }
  if (bytes.substr(0, kStoreHeaderSize) != kStoreMagic) {
    return Status::ParseError(
        "not a DOEM store file (bad magic); refusing to repair");
  }
  uint64_t offset = kStoreHeaderSize;
  out.valid_size = offset;

  auto stop = [&](std::string reason) {
    out.truncated = true;
    out.truncation_reason = std::move(reason);
    out.truncated_bytes = bytes.size() - out.valid_size;
  };

  while (offset < bytes.size()) {
    DecodedRecord rec;
    std::string reason;
    DecodeOutcome oc = DecodeRecordAt(bytes, offset, &rec, &reason);
    if (oc != DecodeOutcome::kOk) {
      stop(std::move(reason));
      break;
    }
    if (rec.type == RecordType::kCheckpoint) {
      auto ckpt = DecodeCheckpointPayload(rec.payload);
      if (!ckpt.ok()) {
        stop("invalid checkpoint record: " + ckpt.status().message());
        break;
      }
      out.db = std::move(ckpt->db);
      out.times = std::move(ckpt->times);
      out.has_state = true;
      out.replayed = 0;
      ++out.checkpoints;
    } else {
      auto delta = DecodeDeltaPayload(rec.payload);
      if (!delta.ok()) {
        stop("invalid delta record: " + delta.status().message());
        break;
      }
      if (!out.has_state) {
        stop("delta record before any checkpoint");
        break;
      }
      if (!out.times.empty() && delta->time <= out.times.back()) {
        stop("delta time " + delta->time.ToString() +
             " not after the previous record's " +
             out.times.back().ToString());
        break;
      }
      // Replaying the committed change set must succeed against the
      // committed state — a record that passes its checksum but does not
      // apply is corruption at a level CRC cannot see (or a tampered
      // file); it and everything after it are discarded.
      Status applied = out.db.ApplyChangeSet(delta->time, delta->ops);
      if (!applied.ok()) {
        stop("delta replay failed: " + applied.message());
        break;
      }
      out.times.push_back(delta->time);
      ++out.deltas;
      ++out.replayed;
    }
    offset = rec.end;
    out.valid_size = offset;
  }
  return out;
}

}  // namespace store
}  // namespace doem
