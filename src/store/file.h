#ifndef DOEM_STORE_FILE_H_
#define DOEM_STORE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace doem {
namespace store {

/// The store's only contact with a durable medium: an append-only byte
/// sequence with explicit sync points and whole-file reads. Narrow by
/// design — every operation the recovery code must survive failing is a
/// virtual call a FaultInjectingFile (fault_file.h) can intercept.
///
/// Contract:
///   - Append writes at the end; on error the file holds some *prefix*
///     of the requested bytes (a torn write), never reordered or
///     interleaved bytes.
///   - Sync makes previously appended bytes durable. A failed Sync means
///     bytes appended since the last successful Sync may vanish on
///     crash; the store treats it as fatal for the writer.
///   - ReadAll returns the current contents; recovery interprets them.
///   - Truncate discards everything at and beyond `size` (recovery's
///     repair step for torn tails).
///
/// Implementations need not be thread-safe; each Store serializes access
/// to its file (QSS appends from the serial commit phase).
class File {
 public:
  virtual ~File() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Result<std::string> ReadAll() const = 0;
  virtual Result<uint64_t> Size() const = 0;
  virtual Status Truncate(uint64_t size) = 0;
};

/// In-memory File: the byte string is the "disk". Used by tests and
/// benchmarks, and by MemoryStoreManager to model a medium that survives
/// a (simulated) process crash — the bytes outlive any Store opened on
/// them.
class MemoryFile : public File {
 public:
  MemoryFile() = default;
  explicit MemoryFile(std::string initial) : data_(std::move(initial)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Result<std::string> ReadAll() const override;
  Result<uint64_t> Size() const override;
  Status Truncate(uint64_t size) override;

  const std::string& data() const { return data_; }
  std::string* mutable_data() { return &data_; }
  size_t sync_count() const { return sync_count_; }

 private:
  std::string data_;
  size_t sync_count_ = 0;
};

/// POSIX File over a real descriptor. Append uses write(2) in a loop
/// (partial writes continue), Sync is fsync(2).
class PosixFile : public File {
 public:
  /// Opens (creating if missing) `path` for append + read.
  static Result<std::unique_ptr<PosixFile>> Open(const std::string& path);
  ~PosixFile() override;

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  Status Append(std::string_view data) override;
  Status Sync() override;
  Result<std::string> ReadAll() const override;
  Result<uint64_t> Size() const override;
  Status Truncate(uint64_t size) override;

  const std::string& path() const { return path_; }

 private:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
};

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_FILE_H_
