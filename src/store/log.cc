#include "store/log.h"

namespace doem {
namespace store {

Status LogWriter::Fail(Status s) {
  if (broken_.ok()) broken_ = s;
  return broken_;
}

Status LogWriter::WriteHeader() {
  if (!broken_.ok()) return broken_;
  if (offset_ != 0) {
    return Status::InvalidArgument("store header must be the first write");
  }
  std::string header = EncodeStoreHeader();
  Status s = file_->Append(header);
  if (!s.ok()) return Fail(std::move(s));
  offset_ += header.size();
  if (sync_each_append_) return Sync();
  return Status::OK();
}

Status LogWriter::AppendRecord(RecordType type, std::string_view payload) {
  if (!broken_.ok()) return broken_;
  std::string framed = EncodeRecord(type, payload);
  Status s = file_->Append(framed);
  if (!s.ok()) return Fail(std::move(s));
  offset_ += framed.size();
  ++records_;
  if (sync_each_append_) return Sync();
  return Status::OK();
}

Status LogWriter::Sync() {
  if (!broken_.ok()) return broken_;
  Status s = file_->Sync();
  if (!s.ok()) return Fail(std::move(s));
  ++syncs_;
  return Status::OK();
}

LogReader::LogReader(std::string_view bytes) : bytes_(bytes) {
  if (bytes_.size() < kStoreHeaderSize) {
    done_ = true;
    if (!bytes_.empty()) {
      status_ = Status::ParseError("torn file header");
    }
    return;
  }
  if (bytes_.substr(0, kStoreHeaderSize) != kStoreMagic) {
    done_ = true;
    status_ = Status::ParseError("not a DOEM store file (bad magic)");
    return;
  }
  offset_ = kStoreHeaderSize;
}

bool LogReader::Next(DecodedRecord* out) {
  if (done_ || offset_ >= bytes_.size()) {
    done_ = true;
    return false;
  }
  std::string reason;
  DecodeOutcome oc = DecodeRecordAt(bytes_, offset_, out, &reason);
  if (oc != DecodeOutcome::kOk) {
    done_ = true;
    status_ = Status::ParseError(reason);
    return false;
  }
  offset_ = out->end;
  return true;
}

}  // namespace store
}  // namespace doem
