#ifndef DOEM_STORE_STORE_H_
#define DOEM_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "doem/doem.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "store/file.h"
#include "store/log.h"
#include "store/recovery.h"

namespace doem {
namespace store {

struct StoreOptions {
  /// Write a fresh checkpoint record after this many delta records since
  /// the last checkpoint. Bounds cold-recovery replay work; 1 means
  /// every commit is a full checkpoint.
  size_t checkpoint_interval = 64;
  /// fsync after every record (per-commit durability). Turning this off
  /// batches durability at explicit Sync() points; a crash may then lose
  /// records past the last sync, but recovery still yields a committed
  /// prefix.
  bool sync_each_append = true;
  /// Optional: store.* counters and latency histograms land here.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional: recovery truncations and append failures land here as
  /// typed kStoreError events (src/obs/log.h), with `name` as subject.
  obs::EventLog* events = nullptr;
  /// Diagnostic identity of this store (the store managers stamp the
  /// store key); only used as the subject of event-log entries.
  std::string name;
};

/// A durable DOEM history: one append-only file of checkpoint + delta
/// records (format.h). Open() recovers the committed prefix and repairs
/// the file (truncating any torn/corrupt tail) so appends can resume;
/// Append() commits one (t, U) change set per call.
///
/// Failure model: any append/sync failure marks the store *broken* —
/// every later Append returns the original error, because the file tail
/// is undefined after a torn write. The in-memory database the caller
/// maintains is unaffected; callers choose availability over durability
/// (QSS keeps polling and surfaces the error) or stop. Reopening the
/// file (a new Open) re-recovers and repairs.
class Store {
 public:
  /// Opens a store over `file` (not owned; must outlive the Store).
  /// Recovers the committed prefix, physically truncates the torn tail
  /// if any, and writes the magic header if the file is empty.
  static Result<std::unique_ptr<Store>> Open(File* file,
                                             const StoreOptions& options);
  /// As above, taking ownership of the file.
  static Result<std::unique_ptr<Store>> Open(std::unique_ptr<File> file,
                                             const StoreOptions& options);

  /// True when recovery found committed state: recovered_db() /
  /// recovered_times() return it and Append may be called directly.
  /// False for a brand-new (or fully torn) file: call Start() first.
  bool has_state() const { return recovered_.has_state; }

  /// How recovery went (truncation flags, record counts, valid size).
  const RecoveryResult& recovery() const { return recovered_; }

  /// The recovered state. Valid only when has_state(); the database is
  /// *moved out* (it can be large) — callable once.
  DoemDatabase TakeRecoveredDb() { return std::move(recovered_.db); }
  const std::vector<Timestamp>& recovered_times() const {
    return recovered_.times;
  }

  /// Initializes an empty store with a base state: writes the initial
  /// checkpoint of `db` (+ `times`, for histories that already have
  /// committed steps). Requires !has_state().
  Status Start(const DoemDatabase& db, std::vector<Timestamp> times = {});

  /// Commits one change set: appends a delta record for (t, ops), then —
  /// every checkpoint_interval deltas — a checkpoint of `current`, which
  /// must be the database *after* applying (t, ops). `t` must exceed
  /// every committed time.
  Status Append(Timestamp t, const ChangeSet& ops,
                const DoemDatabase& current);

  /// Commits one time whose new state is *not* expressible as a delta on
  /// the previous record — e.g. the QSS two-snapshot rebase, which
  /// replaces the history wholesale each poll. Appends `t` to the
  /// committed times and writes a checkpoint of `current` (the state
  /// after the commit at `t`).
  Status CommitCheckpoint(Timestamp t, const DoemDatabase& current);

  /// Forces a checkpoint record of `current` now (e.g. before an
  /// expected shutdown, to make the next recovery O(1)).
  Status Checkpoint(const DoemDatabase& current);

  /// Durability point when options.sync_each_append is false.
  Status Sync();

  /// Sticky failure state (see class comment).
  bool broken() const { return writer_.broken(); }
  const Status& broken_status() const { return writer_.broken_status(); }

  /// Commit times of every record written or recovered, in order.
  const std::vector<Timestamp>& times() const { return times_; }
  /// Current file length in committed bytes.
  uint64_t size() const { return writer_.offset(); }

 private:
  Store(File* file, std::unique_ptr<File> owned, RecoveryResult recovered,
        const StoreOptions& options);

  Status AppendCheckpoint(const DoemDatabase& current);

  std::unique_ptr<File> owned_file_;
  File* file_;
  StoreOptions options_;
  RecoveryResult recovered_;
  LogWriter writer_;
  /// All committed times (recovered + appended); mirrors what the next
  /// checkpoint must carry.
  std::vector<Timestamp> times_;
  /// Deltas since the last checkpoint record.
  size_t deltas_since_checkpoint_ = 0;
  bool started_ = false;

  // store.* instruments (null when options.metrics is null).
  obs::Counter* records_written_ = nullptr;
  obs::Counter* checkpoints_written_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
  obs::Counter* append_failures_ = nullptr;
  obs::Histogram* append_ns_ = nullptr;
  obs::Histogram* checkpoint_ns_ = nullptr;
};

/// Opens the durable medium behind named stores. QSS asks its manager
/// for one store per poll group; the manager owns the medium (bytes or
/// files), each Open returns a *fresh* Store re-recovered from it — so a
/// "crashed" process is simulated by dropping the Store and opening
/// another over the same manager.
class StoreManager {
 public:
  virtual ~StoreManager() = default;

  /// Opens (creating if new) the store for `key`. Each call re-runs
  /// recovery over the current medium contents.
  virtual Result<std::unique_ptr<Store>> OpenStore(const std::string& key) = 0;
};

/// Keeps each store's bytes in an in-process map: the "disk" that
/// survives simulated crashes in tests. `file(key)` exposes the backing
/// MemoryFile for corruption/inspection.
class MemoryStoreManager : public StoreManager {
 public:
  explicit MemoryStoreManager(StoreOptions options = {})
      : options_(options) {}

  Result<std::unique_ptr<Store>> OpenStore(const std::string& key) override;

  /// The backing file for `key` (created on first use). Owned by the
  /// manager; tests may corrupt its bytes between OpenStore calls.
  MemoryFile* file(const std::string& key);

  StoreOptions* mutable_options() { return &options_; }

 private:
  StoreOptions options_;
  std::map<std::string, std::unique_ptr<MemoryFile>> files_;
};

/// One file per key under a directory: "<dir>/<sanitized key>.doemstore".
/// Key bytes outside [A-Za-z0-9._-] are %XX-escaped so distinct keys
/// (e.g. QSS group keys embedding '\x1f') map to distinct, portable
/// file names.
class DirectoryStoreManager : public StoreManager {
 public:
  DirectoryStoreManager(std::string directory, StoreOptions options = {})
      : directory_(std::move(directory)), options_(options) {}

  Result<std::unique_ptr<Store>> OpenStore(const std::string& key) override;

  /// The file path a key maps to (for tests and tooling).
  std::string PathFor(const std::string& key) const;

 private:
  std::string directory_;
  StoreOptions options_;
};

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_STORE_H_
