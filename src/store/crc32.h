#ifndef DOEM_STORE_CRC32_H_
#define DOEM_STORE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace doem {
namespace store {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), computed in
/// software with a lazily built lookup table. Every record the store
/// writes carries one; every record read back is verified against it
/// before a single byte of the payload is interpreted.
uint32_t Crc32(std::string_view data);

/// Incremental form: extend a running checksum (start from
/// `kCrc32Initial`) with more bytes. `Crc32(a + b) ==
/// Crc32Extend(Crc32Extend(kCrc32Initial, a), b)` finalized — both
/// helpers below handle the pre/post conditioning internally, so callers
/// only ever see finalized values.
uint32_t Crc32Extend(uint32_t crc, std::string_view data);
constexpr uint32_t kCrc32Initial = 0;

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_CRC32_H_
