#include "store/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

namespace doem {
namespace store {

// ---- MemoryFile -----------------------------------------------------------

Status MemoryFile::Append(std::string_view data) {
  data_.append(data);
  return Status::OK();
}

Status MemoryFile::Sync() {
  ++sync_count_;
  return Status::OK();
}

Result<std::string> MemoryFile::ReadAll() const { return data_; }

Result<uint64_t> MemoryFile::Size() const {
  return static_cast<uint64_t>(data_.size());
}

Status MemoryFile::Truncate(uint64_t size) {
  if (size > data_.size()) {
    return Status::InvalidArgument("MemoryFile::Truncate beyond end");
  }
  data_.resize(size);
  return Status::OK();
}

// ---- PosixFile ------------------------------------------------------------

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " '" + path +
                             "': " + std::string(strerror(errno)));
}

}  // namespace

Result<std::unique_ptr<PosixFile>> PosixFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  return std::unique_ptr<PosixFile>(new PosixFile(path, fd));
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixFile::Append(std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd_, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status PosixFile::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Result<std::string> PosixFile::ReadAll() const {
  auto size = Size();
  if (!size.ok()) return size.status();
  std::string out;
  out.resize(*size);
  uint64_t off = 0;
  while (off < *size) {
    ssize_t n = ::pread(fd_, out.data() + off, *size - off,
                        static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) {  // shrank underneath us; return what exists
      out.resize(off);
      break;
    }
    off += static_cast<uint64_t>(n);
  }
  return out;
}

Result<uint64_t> PosixFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);
  return static_cast<uint64_t>(st.st_size);
}

Status PosixFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  // O_APPEND keeps future writes at the (new) end; nothing else to fix.
  return Status::OK();
}

}  // namespace store
}  // namespace doem
