#include "store/store.h"

#include <sys/stat.h>

#include <utility>

#include "obs/clock.h"

namespace doem {
namespace store {

Store::Store(File* file, std::unique_ptr<File> owned,
             RecoveryResult recovered, const StoreOptions& options)
    : owned_file_(std::move(owned)),
      file_(file),
      options_(options),
      recovered_(std::move(recovered)),
      writer_(file, recovered_.valid_size, options.sync_each_append),
      times_(recovered_.times),
      started_(recovered_.has_state) {
  if (obs::MetricsRegistry* m = options_.metrics) {
    records_written_ = m->GetCounter(
        "store.records_written", "Log records appended (deltas + checkpoints)");
    checkpoints_written_ = m->GetCounter("store.checkpoints_written",
                                         "Checkpoint records appended");
    bytes_written_ =
        m->GetCounter("store.bytes_written", "Framed record bytes appended");
    fsyncs_ = m->GetCounter("store.fsyncs", "Successful sync operations");
    append_failures_ = m->GetCounter(
        "store.append_failures", "Commits refused or failed (store broken)");
    // Bumped from Open (before construction); registered here too so the
    // metric is visible in Describe()/exports from the first open, not
    // only after a truncating recovery.
    m->GetCounter("store.recovery_truncations",
                  "Opens that discarded a torn/corrupt tail");
    append_ns_ = m->GetHistogram("store.append_ns", obs::LatencyBucketsNs(),
                                 "Latency of one committed append");
    checkpoint_ns_ =
        m->GetHistogram("store.checkpoint_ns", obs::LatencyBucketsNs(),
                        "Latency of one checkpoint record write");
  }
}

Result<std::unique_ptr<Store>> Store::Open(File* file,
                                           const StoreOptions& options) {
  if (file == nullptr) {
    return Status::InvalidArgument("Store::Open: null file");
  }
  if (options.checkpoint_interval == 0) {
    return Status::InvalidArgument(
        "Store::Open: checkpoint_interval must be >= 1");
  }
  auto bytes = file->ReadAll();
  if (!bytes.ok()) return bytes.status();
  auto recovered = RecoverStoreBytes(*bytes);
  if (!recovered.ok()) return recovered.status();

  if (recovered->truncated) {
    if (options.metrics != nullptr) {
      options.metrics
          ->GetCounter("store.recovery_truncations",
                       "Opens that discarded a torn/corrupt tail")
          ->Increment();
    }
    DOEM_LOG_EVENT(options.events, obs::EventType::kStoreError,
                   obs::EventSeverity::kWarning,
                   recovered->times.empty() ? Timestamp{}
                                            : recovered->times.back(),
                   options.name,
                   "recovery discarded torn/corrupt tail after byte " +
                       std::to_string(recovered->valid_size));
  }

  // Repair: physically drop the torn/corrupt tail so appends resume on a
  // record boundary.
  if (recovered->valid_size < bytes->size()) {
    DOEM_RETURN_IF_ERROR(file->Truncate(recovered->valid_size));
    DOEM_RETURN_IF_ERROR(file->Sync());
  }

  std::unique_ptr<Store> store(
      new Store(file, nullptr, std::move(*recovered), options));
  if (store->writer_.offset() == 0) {
    // Brand-new (or fully torn) file: (re)write the magic header now so
    // the file identifies itself even before the first checkpoint.
    DOEM_RETURN_IF_ERROR(store->writer_.WriteHeader());
  }
  return store;
}

Result<std::unique_ptr<Store>> Store::Open(std::unique_ptr<File> file,
                                           const StoreOptions& options) {
  auto store = Open(file.get(), options);
  if (store.ok()) (*store)->owned_file_ = std::move(file);
  return store;
}

Status Store::AppendCheckpoint(const DoemDatabase& current) {
  int64_t start_ns = obs::NowNs();
  auto payload = EncodeCheckpointPayload(current, times_);
  if (!payload.ok()) return payload.status();
  uint64_t before = writer_.offset();
  DOEM_RETURN_IF_ERROR(writer_.AppendRecord(RecordType::kCheckpoint, *payload));
  deltas_since_checkpoint_ = 0;
  if (records_written_) records_written_->Increment();
  if (checkpoints_written_) checkpoints_written_->Increment();
  if (bytes_written_) bytes_written_->Increment(writer_.offset() - before);
  if (fsyncs_ && options_.sync_each_append) fsyncs_->Increment();
  if (checkpoint_ns_) checkpoint_ns_->Observe(obs::ElapsedNs(start_ns));
  return Status::OK();
}

Status Store::Start(const DoemDatabase& db, std::vector<Timestamp> times) {
  if (started_) {
    return Status::InvalidArgument(
        "Store::Start: store already has state (recovered or started)");
  }
  if (broken()) {
    if (append_failures_) append_failures_->Increment();
    return broken_status();
  }
  times_ = std::move(times);
  Status s = AppendCheckpoint(db);
  if (!s.ok()) {
    if (append_failures_) append_failures_->Increment();
    DOEM_LOG_EVENT(options_.events, obs::EventType::kStoreError,
                   obs::EventSeverity::kError, Timestamp{}, options_.name,
                   "initial checkpoint: " + s.ToString());
    return s;
  }
  started_ = true;
  return Status::OK();
}

Status Store::Append(Timestamp t, const ChangeSet& ops,
                     const DoemDatabase& current) {
  if (!started_) {
    return Status::InvalidArgument(
        "Store::Append: store has no state; call Start() first");
  }
  if (broken()) {
    if (append_failures_) append_failures_->Increment();
    return broken_status();
  }
  if (!times_.empty() && t <= times_.back()) {
    if (append_failures_) append_failures_->Increment();
    return Status::InvalidArgument(
        "Store::Append: time " + t.ToString() +
        " not after last committed time " + times_.back().ToString());
  }
  int64_t start_ns = obs::NowNs();
  uint64_t before = writer_.offset();
  Status s = writer_.AppendRecord(RecordType::kDelta, EncodeDeltaPayload(t, ops));
  if (!s.ok()) {
    if (append_failures_) append_failures_->Increment();
    DOEM_LOG_EVENT(options_.events, obs::EventType::kStoreError,
                   obs::EventSeverity::kError, t, options_.name,
                   "delta append failed (store now broken): " + s.ToString());
    return s;
  }
  times_.push_back(t);
  ++deltas_since_checkpoint_;
  if (records_written_) records_written_->Increment();
  if (bytes_written_) bytes_written_->Increment(writer_.offset() - before);
  if (fsyncs_ && options_.sync_each_append) fsyncs_->Increment();
  if (append_ns_) append_ns_->Observe(obs::ElapsedNs(start_ns));

  if (deltas_since_checkpoint_ >= options_.checkpoint_interval) {
    Status ckpt = AppendCheckpoint(current);
    if (!ckpt.ok()) {
      // The delta itself committed; only the redundant checkpoint
      // failed. The store is now broken (sticky), but this commit
      // stands — report it as such.
      if (append_failures_) append_failures_->Increment();
      return ckpt;
    }
  }
  return Status::OK();
}

Status Store::CommitCheckpoint(Timestamp t, const DoemDatabase& current) {
  if (!started_) {
    return Status::InvalidArgument(
        "Store::CommitCheckpoint: store has no state; call Start() first");
  }
  if (broken()) {
    if (append_failures_) append_failures_->Increment();
    return broken_status();
  }
  if (!times_.empty() && t <= times_.back()) {
    if (append_failures_) append_failures_->Increment();
    return Status::InvalidArgument(
        "Store::CommitCheckpoint: time " + t.ToString() +
        " not after last committed time " + times_.back().ToString());
  }
  times_.push_back(t);
  deltas_since_checkpoint_ = 0;
  Status s = AppendCheckpoint(current);
  if (!s.ok()) {
    if (append_failures_) append_failures_->Increment();
    DOEM_LOG_EVENT(options_.events, obs::EventType::kStoreError,
                   obs::EventSeverity::kError, t, options_.name,
                   "checkpoint commit failed (store now broken): " +
                       s.ToString());
  }
  return s;
}

Status Store::Checkpoint(const DoemDatabase& current) {
  if (!started_) {
    return Status::InvalidArgument(
        "Store::Checkpoint: store has no state; call Start() first");
  }
  if (broken()) {
    if (append_failures_) append_failures_->Increment();
    return broken_status();
  }
  return AppendCheckpoint(current);
}

Status Store::Sync() {
  Status s = writer_.Sync();
  if (s.ok() && fsyncs_) fsyncs_->Increment();
  return s;
}

// ---- Managers --------------------------------------------------------------

Result<std::unique_ptr<Store>> MemoryStoreManager::OpenStore(
    const std::string& key) {
  StoreOptions opts = options_;
  opts.name = key;
  return Store::Open(file(key), opts);
}

MemoryFile* MemoryStoreManager::file(const std::string& key) {
  auto it = files_.find(key);
  if (it == files_.end()) {
    it = files_.emplace(key, std::make_unique<MemoryFile>()).first;
  }
  return it->second.get();
}

namespace {

bool IsPortableKeyChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

}  // namespace

std::string DirectoryStoreManager::PathFor(const std::string& key) const {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string name;
  name.reserve(key.size());
  for (char c : key) {
    if (IsPortableKeyChar(c)) {
      name.push_back(c);
    } else {
      unsigned char b = static_cast<unsigned char>(c);
      name.push_back('%');
      name.push_back(kHex[b >> 4]);
      name.push_back(kHex[b & 0xF]);
    }
  }
  if (name.empty()) name = "%";
  return directory_ + "/" + name + ".doemstore";
}

Result<std::unique_ptr<Store>> DirectoryStoreManager::OpenStore(
    const std::string& key) {
  // Best-effort create, parents included ("a/b/c" needs "a" and "a/b");
  // Open reports a usable error if it still fails.
  for (size_t slash = directory_.find('/', 1); slash != std::string::npos;
       slash = directory_.find('/', slash + 1)) {
    ::mkdir(directory_.substr(0, slash).c_str(), 0755);
  }
  ::mkdir(directory_.c_str(), 0755);
  auto file = PosixFile::Open(PathFor(key));
  if (!file.ok()) return file.status();
  StoreOptions opts = options_;
  opts.name = key;
  return Store::Open(std::unique_ptr<File>(std::move(*file)), opts);
}

}  // namespace store
}  // namespace doem
