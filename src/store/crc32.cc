#include "store/crc32.h"

#include <array>

namespace doem {
namespace store {

namespace {

// Reflected table for the IEEE polynomial 0xEDB88320.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, std::string_view data) {
  const auto& table = Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) {
  return Crc32Extend(kCrc32Initial, data);
}

}  // namespace store
}  // namespace doem
