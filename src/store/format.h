#ifndef DOEM_STORE_FORMAT_H_
#define DOEM_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "doem/doem.h"
#include "oem/history.h"

namespace doem {
namespace store {

/// The store's single-file on-disk format: one 8-byte magic header, then
/// an append-only sequence of length-prefixed, CRC32-checksummed records.
/// Checkpoints live *inline* in the same log as the deltas — the commit
/// point of every record, checkpoint or delta, is the same append+sync,
/// so there is no multi-file "which checkpoint goes with which log
/// suffix" ambiguity for recovery to resolve.
///
///   +--------------------------------------------------------------+
///   | "DOEMSTR1"                                   file header, 8B |
///   +------------+------------+------+-----------------------------+
///   | length u32 | crc32  u32 | type | payload (length - 1 bytes)  |
///   +------------+------------+------+-----------------------------+
///   | length u32 | crc32  u32 | type | payload                     |
///   +------------+------------+------+-----------------------------+
///   | ...                                                          |
///
/// Fixed-width fields are little-endian. `length` covers the type byte
/// plus the payload; `crc32` covers the same bytes, so a flipped bit in
/// either the type or the payload is caught before any byte is
/// interpreted. A record is *committed* iff every one of its bytes is in
/// the file and the checksum verifies — recovery truncates at the first
/// record that fails either test.
///
/// Payloads are the repo's existing text formats (checkpoint: the §5.1
/// DOEM-in-OEM encoding in OEM text; delta: one history-text step), so
/// the store inherits their pinned round-trip guarantees and their
/// hardened parsers — recovery feeds them hostile bytes by design.

inline constexpr std::string_view kStoreMagic = "DOEMSTR1";
inline constexpr size_t kStoreHeaderSize = 8;
/// u32 length + u32 crc.
inline constexpr size_t kRecordHeaderSize = 8;
/// Upper bound on `length`: a hostile length field must not make
/// recovery allocate unbounded memory.
inline constexpr uint32_t kMaxRecordLength = 1u << 30;

enum class RecordType : uint8_t {
  /// Full state: the DOEM database plus the committed-record times that
  /// produced it. Recovery restarts from the latest valid one.
  kCheckpoint = 1,
  /// One committed change set (t, U) — possibly empty (a poll that
  /// observed no change still commits its polling time).
  kDelta = 2,
};

// ---- Frame codec -----------------------------------------------------------
//
// The record shape — u32 length | u32 crc32 | type byte | payload — is
// useful beyond the log file: the QSS server's wire protocol frames its
// messages the same way, so a torn TCP read and a torn file tail are the
// same condition handled by the same code. EncodeFrame/DecodeFrameAt are
// the type-agnostic layer (the caller owns the type-byte namespace);
// EncodeRecord/DecodeRecordAt specialize them to the store's RecordType.

enum class DecodeOutcome {
  kOk,
  /// The bytes end mid-record (torn tail): fewer bytes than the header
  /// or the declared length promises.
  kTorn,
  /// The record is structurally whole but lies: bad checksum, zero or
  /// oversized length, or an unknown type byte.
  kCorrupt,
};

struct DecodedFrame {
  uint8_t type = 0;
  std::string_view payload;
  /// Offset just past this frame; where the next one starts.
  uint64_t end = 0;
};

/// Frames one message (header + type + payload).
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Decodes the frame starting at `offset`, accepting any type byte.
/// `max_length` bounds the declared length (a hostile peer's length field
/// must not make the receiver buffer unbounded memory); pass
/// kMaxRecordLength for parity with the store. On kTorn/kCorrupt,
/// `*reason` describes the defect; `out` is valid only on kOk. Never
/// reads past `bytes`.
DecodeOutcome DecodeFrameAt(std::string_view bytes, uint64_t offset,
                            uint32_t max_length, DecodedFrame* out,
                            std::string* reason);

// ---- Record framing --------------------------------------------------------

/// The 8-byte file header.
std::string EncodeStoreHeader();

/// Frames one record (header + type + payload) ready to append.
std::string EncodeRecord(RecordType type, std::string_view payload);

struct DecodedRecord {
  RecordType type = RecordType::kDelta;
  std::string_view payload;
  /// Offset just past this record; where the next one starts.
  uint64_t end = 0;
};

/// Decodes the record starting at `offset`. On kTorn/kCorrupt, `*reason`
/// describes the defect; `out` is valid only on kOk. Never reads past
/// `bytes`, never allocates proportional to the hostile length field.
DecodeOutcome DecodeRecordAt(std::string_view bytes, uint64_t offset,
                             DecodedRecord* out, std::string* reason);

// ---- Payload codecs --------------------------------------------------------

/// A decoded checkpoint: the database and the polling/commit times of
/// every record up to it.
struct CheckpointPayload {
  DoemDatabase db;
  std::vector<Timestamp> times;
};

/// Serializes `db` + `times` ("times <raw ticks>..." line, a "---"
/// separator, then the DOEM text encoding). Fails if `db` cannot be
/// encoded (e.g. reserved '&' labels).
Result<std::string> EncodeCheckpointPayload(const DoemDatabase& db,
                                            const std::vector<Timestamp>& times);
Result<CheckpointPayload> DecodeCheckpointPayload(std::string_view payload);

/// A decoded delta record.
struct DeltaPayload {
  Timestamp time;
  ChangeSet ops;
};

/// Serializes one (t, U) step in the history text format.
std::string EncodeDeltaPayload(Timestamp t, const ChangeSet& ops);
Result<DeltaPayload> DecodeDeltaPayload(std::string_view payload);

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_FORMAT_H_
