#ifndef DOEM_STORE_TIME_TRAVEL_H_
#define DOEM_STORE_TIME_TRAVEL_H_

#include "common/result.h"
#include "doem/doem.h"
#include "oem/timestamp.h"

namespace doem {
namespace store {

/// Time-travel reconstruction over a (typically recovered) DOEM history.
/// These are thin, well-specified compositions of the Section 3.2
/// machinery, packaged so a process that just reopened its store can run
/// Chorel/Lorel queries against past states and past intervals.

/// The database as of time t: a plain OEM snapshot O_t(D) wrapped as an
/// annotation-free DOEM database. Queries over it see exactly the state
/// a fresh observer would have seen at t.
Result<DoemDatabase> AsOf(const DoemDatabase& db, Timestamp t);

/// The history restricted to the interval (t1, t2]: starts from the
/// snapshot at t1 and carries annotations only for changes committed
/// after t1 and at or before t2. Chorel annotation predicates over the
/// result range exactly over that interval — `Between(db, -inf, +inf)`
/// is (feasibility-equivalent to) db itself.
Result<DoemDatabase> Between(const DoemDatabase& db, Timestamp t1,
                             Timestamp t2);

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_TIME_TRAVEL_H_
