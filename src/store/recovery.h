#ifndef DOEM_STORE_RECOVERY_H_
#define DOEM_STORE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "doem/doem.h"
#include "store/format.h"

namespace doem {
namespace store {

/// Outcome of scanning a store file's bytes. Recovery is pure — it never
/// touches the file — so the crash-matrix sweep can replay it over
/// thousands of mutated byte strings cheaply; Store::Open performs the
/// physical Truncate to `valid_size` afterwards.
struct RecoveryResult {
  /// False when no valid checkpoint exists (brand-new or fully corrupt
  /// file): `db`/`times` are meaningless and the caller must Start() the
  /// store before appending.
  bool has_state = false;
  /// The state as of the last committed record of the valid prefix.
  DoemDatabase db;
  /// Commit time of every record in the valid prefix, in order —
  /// including deltas whose change set was empty (a poll that saw no
  /// change). For a QSS group these are exactly the polling times.
  std::vector<Timestamp> times;

  /// Byte length of the valid prefix; everything beyond it is torn or
  /// corrupt and must be truncated before appending resumes.
  uint64_t valid_size = 0;
  /// Committed records in the valid prefix, by type.
  size_t checkpoints = 0;
  size_t deltas = 0;
  /// Delta records replayed on top of the last valid checkpoint (<=
  /// deltas; earlier deltas were superseded by a later checkpoint).
  size_t replayed = 0;
  /// True when valid_size < the scanned byte count: the tail was
  /// dropped. `truncation_reason` says why, `truncated_bytes` how much.
  bool truncated = false;
  std::string truncation_reason;
  uint64_t truncated_bytes = 0;
};

/// Scans `bytes` and reconstructs the state of the longest committed
/// prefix.
///
/// Invariants, enforced no matter what the bytes contain:
///   1. Never crashes, never allocates proportional to hostile length
///      fields, never interprets a byte whose checksum did not verify.
///   2. The result is the replay of records [0, k) for some k — exactly
///      the records whose bytes are complete, checksum-valid, and
///      semantically applicable, stopping at the first that is not.
///   3. valid_size always points at a record boundary, so appending
///      after Truncate(valid_size) yields a well-formed file.
///
/// A file whose *full* 8-byte header exists but is not the store magic is
/// the one non-degradable error (kParseError: it is not ours to repair);
/// a shorter-than-header file recovers as empty-with-truncation.
Result<RecoveryResult> RecoverStoreBytes(std::string_view bytes);

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_RECOVERY_H_
