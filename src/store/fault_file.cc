#include "store/fault_file.h"

namespace doem {
namespace store {

FaultInjectingFile::FaultInjectingFile(File* inner) : inner_(inner) {
  auto size = inner_->Size();
  size_ = size.ok() ? *size : 0;
  synced_size_ = size_;
}

void FaultInjectingFile::FailSync(size_t nth, bool drop_unsynced) {
  fail_sync_at_ = nth;
  drop_unsynced_on_fail_ = drop_unsynced;
}

void FaultInjectingFile::FlipBit(uint64_t offset, int bit) {
  flips_.push_back(BitFlip{offset, bit});
}

Status FaultInjectingFile::Append(std::string_view data) {
  ++appends_;
  if (crashed_) {
    return Status::Unavailable("FaultInjectingFile: process crashed");
  }
  // Crash-at-offset: persist only the bytes below the crash point, then
  // die. The partial prefix is exactly what an interrupted write(2)
  // sequence leaves behind.
  if (crash_offset_ != kNoFault && size_ + data.size() > crash_offset_) {
    ++injected_faults_;
    crashed_ = true;
    uint64_t keep = crash_offset_ > size_ ? crash_offset_ - size_ : 0;
    if (keep > 0) {
      Status s = inner_->Append(data.substr(0, keep));
      if (!s.ok()) return s;
      size_ += keep;
    }
    return Status::Unavailable("FaultInjectingFile: crash at offset " +
                               std::to_string(crash_offset_));
  }
  // One-shot short write.
  if (short_write_bytes_ != kNoFault) {
    uint64_t keep = short_write_bytes_ < data.size() ? short_write_bytes_
                                                     : data.size();
    short_write_bytes_ = kNoFault;
    ++injected_faults_;
    if (keep > 0) {
      Status s = inner_->Append(data.substr(0, keep));
      if (!s.ok()) return s;
      size_ += keep;
    }
    return Status::Unavailable("FaultInjectingFile: short write (" +
                               std::to_string(keep) + " of " +
                               std::to_string(data.size()) + " bytes)");
  }
  Status s = inner_->Append(data);
  if (s.ok()) size_ += data.size();
  return s;
}

Status FaultInjectingFile::Sync() {
  ++syncs_;
  if (crashed_) {
    return Status::Unavailable("FaultInjectingFile: process crashed");
  }
  if (fail_sync_at_ > 0 && --fail_sync_at_ == 0) {
    ++injected_faults_;
    if (drop_unsynced_on_fail_) {
      // The unsynced tail never reached the platter: roll the real file
      // back to the last successful sync point.
      Status s = inner_->Truncate(synced_size_);
      if (!s.ok()) return s;
      size_ = synced_size_;
    }
    return Status::Unavailable("FaultInjectingFile: fsync failed");
  }
  Status s = inner_->Sync();
  if (s.ok()) synced_size_ = size_;
  return s;
}

Result<std::string> FaultInjectingFile::ReadAll() const {
  auto data = inner_->ReadAll();
  if (!data.ok()) return data;
  for (const BitFlip& flip : flips_) {
    if (flip.offset < data->size()) {
      (*data)[flip.offset] ^= static_cast<char>(1u << (flip.bit & 7));
    }
  }
  return data;
}

Result<uint64_t> FaultInjectingFile::Size() const { return inner_->Size(); }

Status FaultInjectingFile::Truncate(uint64_t size) {
  if (crashed_) {
    return Status::Unavailable("FaultInjectingFile: process crashed");
  }
  Status s = inner_->Truncate(size);
  if (s.ok()) {
    size_ = size;
    if (synced_size_ > size_) synced_size_ = size_;
  }
  return s;
}

}  // namespace store
}  // namespace doem
