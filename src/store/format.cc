#include "store/format.h"

#include <charconv>

#include "encoding/doem_text.h"
#include "encoding/encode.h"
#include "oem/history_text.h"
#include "oem/oem_text.h"
#include "store/crc32.h"

namespace doem {
namespace store {

namespace {

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(std::string_view bytes, uint64_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3]))
             << 24;
}

}  // namespace

std::string EncodeStoreHeader() { return std::string(kStoreMagic); }

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kRecordHeaderSize + 1 + payload.size());
  uint32_t length = static_cast<uint32_t>(1 + payload.size());
  PutU32(length, &out);
  // CRC covers type byte + payload.
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  PutU32(Crc32(body), &out);
  out.append(body);
  return out;
}

DecodeOutcome DecodeFrameAt(std::string_view bytes, uint64_t offset,
                            uint32_t max_length, DecodedFrame* out,
                            std::string* reason) {
  if (offset > bytes.size()) {
    *reason = "record offset past end of file";
    return DecodeOutcome::kTorn;
  }
  uint64_t remaining = bytes.size() - offset;
  if (remaining < kRecordHeaderSize) {
    *reason = "torn record header (" + std::to_string(remaining) + " of " +
              std::to_string(kRecordHeaderSize) + " bytes)";
    return DecodeOutcome::kTorn;
  }
  uint32_t length = GetU32(bytes, offset);
  uint32_t crc = GetU32(bytes, offset + 4);
  if (length == 0) {
    *reason = "record with zero length";
    return DecodeOutcome::kCorrupt;
  }
  if (length > max_length) {
    *reason = "record length " + std::to_string(length) +
              " exceeds the format bound";
    return DecodeOutcome::kCorrupt;
  }
  if (remaining - kRecordHeaderSize < length) {
    *reason = "torn record body (" +
              std::to_string(remaining - kRecordHeaderSize) + " of " +
              std::to_string(length) + " bytes)";
    return DecodeOutcome::kTorn;
  }
  std::string_view body = bytes.substr(offset + kRecordHeaderSize, length);
  uint32_t actual = Crc32(body);
  if (actual != crc) {
    *reason = "checksum mismatch (stored " + std::to_string(crc) +
              ", computed " + std::to_string(actual) + ")";
    return DecodeOutcome::kCorrupt;
  }
  out->type = static_cast<uint8_t>(body[0]);
  out->payload = body.substr(1);
  out->end = offset + kRecordHeaderSize + length;
  return DecodeOutcome::kOk;
}

std::string EncodeRecord(RecordType type, std::string_view payload) {
  return EncodeFrame(static_cast<uint8_t>(type), payload);
}

DecodeOutcome DecodeRecordAt(std::string_view bytes, uint64_t offset,
                             DecodedRecord* out, std::string* reason) {
  DecodedFrame frame;
  DecodeOutcome outcome =
      DecodeFrameAt(bytes, offset, kMaxRecordLength, &frame, reason);
  if (outcome != DecodeOutcome::kOk) return outcome;
  if (frame.type != static_cast<uint8_t>(RecordType::kCheckpoint) &&
      frame.type != static_cast<uint8_t>(RecordType::kDelta)) {
    *reason = "unknown record type " + std::to_string(frame.type);
    return DecodeOutcome::kCorrupt;
  }
  out->type = static_cast<RecordType>(frame.type);
  out->payload = frame.payload;
  out->end = frame.end;
  return DecodeOutcome::kOk;
}

// ---- Payload codecs --------------------------------------------------------

namespace {

Status CkptErr(const std::string& msg) {
  return Status::ParseError("checkpoint payload: " + msg);
}

}  // namespace

Result<std::string> EncodeCheckpointPayload(
    const DoemDatabase& db, const std::vector<Timestamp>& times) {
  auto enc = EncodeDoem(db);
  if (!enc.ok()) {
    return Status(enc.status().code(),
                  "checkpoint encode: " + enc.status().message());
  }
  std::string out = "times";
  for (const Timestamp& t : times) {
    out.append(" ").append(std::to_string(t.ticks));
  }
  out.append("\n---\n");
  out.append(WriteOemText(*enc));
  return out;
}

Result<CheckpointPayload> DecodeCheckpointPayload(std::string_view payload) {
  size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) return CkptErr("missing times line");
  std::string_view times_line = payload.substr(0, nl);
  if (times_line.substr(0, 5) != "times") {
    return CkptErr("first line is not a times line");
  }
  CheckpointPayload out;
  size_t pos = 5;
  while (pos < times_line.size()) {
    while (pos < times_line.size() && times_line[pos] == ' ') ++pos;
    if (pos == times_line.size()) break;
    int64_t ticks = 0;
    auto [ptr, ec] = std::from_chars(times_line.data() + pos,
                                     times_line.data() + times_line.size(),
                                     ticks);
    if (ec != std::errc() || (ptr != times_line.data() + times_line.size() &&
                              *ptr != ' ')) {
      return CkptErr("bad tick value in times line");
    }
    Timestamp t(ticks);
    if (!out.times.empty() && t <= out.times.back()) {
      return CkptErr("times not strictly increasing");
    }
    out.times.push_back(t);
    pos = static_cast<size_t>(ptr - times_line.data());
  }
  std::string_view rest = payload.substr(nl + 1);
  if (rest.substr(0, 4) != "---\n") return CkptErr("missing --- separator");
  auto db = ParseDoemText(std::string(rest.substr(4)));
  if (!db.ok()) {
    return Status(db.status().code(),
                  "checkpoint database: " + db.status().message());
  }
  out.db = std::move(db).value();
  return out;
}

std::string EncodeDeltaPayload(Timestamp t, const ChangeSet& ops) {
  OemHistory h;
  // Append on an empty history cannot fail.
  (void)h.Append(t, ops);
  return WriteHistoryText(h);
}

Result<DeltaPayload> DecodeDeltaPayload(std::string_view payload) {
  auto h = ParseHistoryText(std::string(payload));
  if (!h.ok()) {
    return Status(h.status().code(),
                  "delta payload: " + h.status().message());
  }
  if (h->size() != 1) {
    return Status::ParseError("delta payload: expected exactly one step, "
                              "got " +
                              std::to_string(h->size()));
  }
  DeltaPayload out;
  out.time = h->steps()[0].time;
  out.ops = h->steps()[0].changes;
  return out;
}

}  // namespace store
}  // namespace doem
