#ifndef DOEM_STORE_LOG_H_
#define DOEM_STORE_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "store/file.h"
#include "store/format.h"

namespace doem {
namespace store {

/// Appends framed records to a File. Robust by construction:
///   - every record is one Append call (the File contract turns a crash
///     into a clean prefix of that record, which recovery truncates);
///   - an optional Sync after each record makes the commit durable;
///   - any Append/Sync failure is *sticky*: the writer refuses all
///     further records with the original error, because after a torn
///     write the file tail is undefined until recovery repairs it.
class LogWriter {
 public:
  /// Writes over `file` (not owned), which currently holds `size` valid
  /// bytes (0 for a brand-new file, RecoveryResult::valid_size after
  /// recovery). sync_each_append trades append throughput for
  /// per-record durability.
  LogWriter(File* file, uint64_t size, bool sync_each_append)
      : file_(file), offset_(size), sync_each_append_(sync_each_append) {}

  /// Writes the 8-byte magic header. Only valid at offset 0.
  Status WriteHeader();

  /// Frames and appends one record; syncs if configured. Returns the
  /// sticky error once broken.
  Status AppendRecord(RecordType type, std::string_view payload);

  /// Explicit durability point (for sync_each_append == false callers).
  Status Sync();

  /// Bytes successfully appended so far (the next record's offset).
  uint64_t offset() const { return offset_; }
  bool broken() const { return !broken_.ok(); }
  const Status& broken_status() const { return broken_; }
  size_t records_written() const { return records_; }
  size_t syncs() const { return syncs_; }

 private:
  Status Fail(Status s);

  File* file_;
  uint64_t offset_;
  bool sync_each_append_;
  Status broken_;
  size_t records_ = 0;
  size_t syncs_ = 0;
};

/// Iterates the committed records of a byte string, stopping cleanly at
/// the first torn/corrupt one — the read-side twin of LogWriter, used by
/// tests, the bench harness, and inspection tooling. (Recovery proper
/// layers state replay on top; see recovery.h.)
class LogReader {
 public:
  /// `bytes` must outlive the reader. Verifies the magic eagerly.
  explicit LogReader(std::string_view bytes);

  /// True while another committed record is available.
  bool Next(DecodedRecord* out);

  /// After Next returns false: why iteration stopped. OK at a clean end
  /// of file; otherwise describes the torn/corrupt tail (or bad magic).
  const Status& status() const { return status_; }
  uint64_t offset() const { return offset_; }

 private:
  std::string_view bytes_;
  uint64_t offset_ = 0;
  Status status_;
  bool done_ = false;
};

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_LOG_H_
