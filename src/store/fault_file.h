#ifndef DOEM_STORE_FAULT_FILE_H_
#define DOEM_STORE_FAULT_FILE_H_

#include <cstdint>
#include <vector>

#include "store/file.h"

namespace doem {
namespace store {

/// Decorator that wraps any File with a deterministic fault schedule,
/// modeled on qss::FaultInjectingSource: tests and the crash-matrix sweep
/// script every failure the on-disk format can express and assert that
/// recovery copes. Four fault families:
///
///   CrashAtOffset(o)   The process "dies" once the file would grow past
///                      byte offset o: the Append that crosses o writes
///                      only the prefix up to o (a torn record), and
///                      every later Append/Sync fails with Unavailable.
///                      Sweeping o across a whole log visits every torn
///                      state a real crash can leave behind.
///   ShortWriteNext(n)  The next Append persists only its first n bytes
///                      and reports failure (disk-full / EIO torn write).
///                      The writer sees the error; the bytes stay torn.
///   FailSync(k, drop)  The k-th upcoming Sync (1-based) fails. With
///                      `drop_unsynced`, bytes appended since the last
///                      successful Sync vanish — the kernel page cache
///                      that never reached the platter.
///   FlipBit(off, bit)  Read-path corruption: ReadAll returns the true
///                      contents with one bit flipped (latent media
///                      corruption). Checksums must catch it.
///
/// The write-path faults mutate the inner file's real contents (via
/// Append/Truncate), so a subsequent recovery over the inner file sees
/// exactly what a crashed process would have left on disk.
class FaultInjectingFile : public File {
 public:
  explicit FaultInjectingFile(File* inner);

  // ---- Fault schedule --------------------------------------------------
  void CrashAtOffset(uint64_t offset) { crash_offset_ = offset; }
  void ShortWriteNext(uint64_t bytes) { short_write_bytes_ = bytes; }
  void FailSync(size_t nth, bool drop_unsynced);
  void FlipBit(uint64_t offset, int bit);

  // ---- File ------------------------------------------------------------
  Status Append(std::string_view data) override;
  Status Sync() override;
  Result<std::string> ReadAll() const override;
  Result<uint64_t> Size() const override;
  Status Truncate(uint64_t size) override;

  // ---- Bookkeeping for assertions --------------------------------------
  bool crashed() const { return crashed_; }
  size_t appends() const { return appends_; }
  size_t syncs() const { return syncs_; }
  size_t injected_faults() const { return injected_faults_; }

 private:
  struct BitFlip {
    uint64_t offset;
    int bit;
  };

  File* inner_;
  // Write-path schedule. kNoFault means "disabled".
  static constexpr uint64_t kNoFault = UINT64_MAX;
  uint64_t crash_offset_ = kNoFault;
  uint64_t short_write_bytes_ = kNoFault;
  size_t fail_sync_at_ = 0;  // 0 = disabled; counts down per Sync
  bool drop_unsynced_on_fail_ = false;
  std::vector<BitFlip> flips_;

  bool crashed_ = false;
  uint64_t size_ = 0;         // mirrors inner size (post-construction)
  uint64_t synced_size_ = 0;  // size at the last successful Sync
  size_t appends_ = 0;
  size_t syncs_ = 0;
  size_t injected_faults_ = 0;
};

}  // namespace store
}  // namespace doem

#endif  // DOEM_STORE_FAULT_FILE_H_
