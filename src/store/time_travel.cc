#include "store/time_travel.h"

#include "oem/history.h"

namespace doem {
namespace store {

Result<DoemDatabase> AsOf(const DoemDatabase& db, Timestamp t) {
  return DoemDatabase::FromSnapshot(db.SnapshotAt(t));
}

Result<DoemDatabase> Between(const DoemDatabase& db, Timestamp t1,
                             Timestamp t2) {
  if (t2 < t1) {
    return Status::InvalidArgument("Between: t2 " + t2.ToString() +
                                   " precedes t1 " + t1.ToString());
  }
  OemHistory window;
  OemHistory full = db.ExtractHistory();
  for (const auto& step : full.steps()) {
    if (step.time <= t1 || t2 < step.time) continue;
    DOEM_RETURN_IF_ERROR(window.Append(step.time, step.changes));
  }
  return DoemDatabase::Build(db.SnapshotAt(t1), window);
}

}  // namespace store
}  // namespace doem
