#ifndef DOEM_CHOREL_CHOREL_H_
#define DOEM_CHOREL_CHOREL_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "chorel/doem_view.h"
#include "doem/annotation_index.h"
#include "doem/doem.h"
#include "encoding/encode_incremental.h"
#include "lorel/lorel.h"
#include "obs/metrics.h"
#include "oem/change.h"
#include "oem/oem.h"
#include "vm/compile.h"
#include "vm/vm.h"

namespace doem {
namespace chorel {

/// The two implementation strategies discussed in Section 5.
enum class Strategy {
  /// Evaluate annotation expressions directly against the DOEM database
  /// ("extend the Lore kernel").
  kDirect,
  /// Encode the DOEM database in plain OEM (Section 5.1) and translate
  /// the Chorel query to Lorel over the encoding (Section 5.2) — the
  /// paper's layered implementation.
  kTranslated,
};

/// A parsed, normalized query, reusable across polls. The Section 5.2
/// translation is derived lazily on the first translated-strategy run and
/// cached (translation errors are not cached and re-surface per run).
struct CompiledQuery {
  lorel::NormQuery normalized;
  std::optional<lorel::NormQuery> translated;
  /// Lazily compiled bytecode programs, one per evaluated form
  /// (DESIGN.md §6f). Compilation failure is sticky and falls back to the
  /// tree walker forever; see ChorelEngineOptions::use_vm.
  vm::ProgramCache vm_direct;
  vm::ProgramCache vm_translated;
};

/// Parses and normalizes `query` for repeated evaluation.
Result<CompiledQuery> CompileChorel(const std::string& query);

/// Interns compiled filters by query text so many subscribers that watch
/// one group through the same filter share a single compiled form — the
/// lazily cached Section 5.2 translation and the bytecode programs are
/// built once and reused across the whole cohort (DESIGN.md §6g). A pool
/// belongs to one engine's single-threaded evaluation context (QSS: the
/// serial commit phase); entries live as long as the pool plus any
/// subscriber still holding the shared_ptr.
class CompiledQueryPool {
 public:
  /// The pooled compiled form of `query`, compiling it on first use.
  Result<std::shared_ptr<CompiledQuery>> Get(const std::string& query);

  /// Interns an already-compiled form (skips the re-parse when the
  /// caller validated the query separately). If the text is already
  /// pooled, the existing entry wins and `compiled` is discarded.
  std::shared_ptr<CompiledQuery> Intern(const std::string& query,
                                        CompiledQuery compiled);

  /// Distinct filter texts pooled.
  size_t size() const { return pool_.size(); }
  /// Lookups served by an existing entry (the sharing win).
  uint64_t hits() const { return hits_; }

 private:
  std::unordered_map<std::string, std::shared_ptr<CompiledQuery>> pool_;
  uint64_t hits_ = 0;
};

struct ChorelEngineOptions {
  /// Maintain the cached OEM encoding and annotation index incrementally
  /// via ApplyDelta — O(delta) per change set. When false (the ablation
  /// baseline), ApplyDelta merely invalidates and the next run rebuilds
  /// from scratch.
  bool incremental = true;
  /// Attach the annotation index to direct-strategy evaluation so
  /// time-bounded annotation expressions enumerate candidates from index
  /// postings (DESIGN.md §6c). Off by default: seeded enumeration can
  /// reorder result rows relative to the legacy scan order.
  bool seed_from_index = false;
  /// Debug cross-check: after every ApplyDelta, decode the patched
  /// encoding back to a DOEM database and rebuild the index from scratch,
  /// failing if either diverges. Slow; for tests.
  bool verify_incremental = false;
  /// Evaluate queries on the bytecode VM (DESIGN.md §6f) when they
  /// compile, falling back to the tree-walking evaluator for uncovered
  /// constructs and on any VM error. Rows, order, packaging, and errors
  /// are identical either way; only speed differs.
  bool use_vm = true;
  /// Debug cross-check: run every VM evaluation through the tree walker
  /// too and fail with Internal if rows or packaged answers diverge.
  /// Slow; for tests.
  bool verify_vm = false;
  /// Optional metrics sink (not owned; must outlive the engine). The
  /// engine counts cache patches vs. rebuilds, verify cross-check
  /// failures, and translation cache hits/misses, and mirrors the
  /// encoder/index maintenance tallies as gauges (DESIGN.md §6d).
  /// Purely observational: rows and caches are identical without it.
  obs::MetricsRegistry* metrics = nullptr;
};

/// A Chorel query processor over one DOEM database, supporting both
/// strategies. The translated strategy encodes the database once, lazily,
/// and caches the encoding; after mutating the DOEM database either patch
/// the caches with ApplyDelta(...) (O(delta)) or drop them with
/// Invalidate().
///
/// Both strategies produce identical rows for every supported query (a
/// property the test suite checks exhaustively). The packaged `answer`
/// databases differ by design: the translated strategy returns encoding
/// objects, which carry their history with them (end of Section 5.2).
class ChorelEngine {
 public:
  explicit ChorelEngine(const DoemDatabase& d,
                        ChorelEngineOptions options = {});

  /// Parses, normalizes, (optionally translates,) and evaluates `query`.
  Result<lorel::QueryResult> Run(const std::string& query,
                                 Strategy strategy,
                                 const lorel::EvalOptions& opts = {});

  /// As Run, but with the parse/normalize (and, after the first
  /// translated run, the translation) already done — the per-poll path.
  Result<lorel::QueryResult> RunCompiled(CompiledQuery* q, Strategy strategy,
                                         const lorel::EvalOptions& opts = {});

  /// Patches the cached encoding and annotation index with one change set
  /// that was just applied to the database (call after ApplyChangeSet).
  /// With options.incremental false — or on a patch error — the caches
  /// are dropped instead and the next run rebuilds them, so correctness
  /// never depends on this call succeeding.
  Status ApplyDelta(Timestamp t, const ChangeSet& ops);

  /// Drops all cached derived state (encoding and annotation index).
  /// Required when the database was replaced wholesale (e.g. the QSS
  /// two-snapshot rebase) rather than mutated by a change set.
  void Invalidate();

  /// Drops the cached OEM encoding; the next translated Run re-encodes.
  void InvalidateEncoding() { encoder_.reset(); }

  /// The cached encoding (encodes now if needed). Exposed for benchmarks.
  Result<const OemDatabase*> Encoding();

 private:
  /// The annotation index to attach to direct evaluation (builds it on
  /// first use), or null when seeding is disabled.
  const AnnotationIndex* IndexForRun();
  /// Evaluates `nq` on the bytecode VM when enabled and compilable,
  /// otherwise (or on any VM error) on the tree walker.
  Result<lorel::QueryResult> Eval(const lorel::NormQuery& nq,
                                  vm::ProgramCache* cache,
                                  const lorel::GraphView& view,
                                  const lorel::EvalOptions& opts);
  Status VerifyCaches() const;
  /// Mirrors the encoder/index maintenance tallies into the metrics
  /// gauges after a successful patch.
  void PublishCacheStats();

  const DoemDatabase& doem_;
  ChorelEngineOptions options_;
  std::optional<IncrementalEncoder> encoder_;
  std::optional<AnnotationIndex> index_;

  /// Instrument handles resolved once at construction (null without a
  /// registry — updates are guarded).
  struct Instruments {
    obs::Counter* cache_patches = nullptr;
    obs::Counter* cache_invalidations = nullptr;
    obs::Counter* encoding_rebuilds = nullptr;
    obs::Counter* index_rebuilds = nullptr;
    obs::Counter* verify_failures = nullptr;
    obs::Counter* translation_hits = nullptr;
    obs::Counter* translation_misses = nullptr;
    obs::Gauge* encoder_patch_ops = nullptr;
    obs::Gauge* encoder_aux_allocations = nullptr;
    obs::Gauge* index_applied_ops = nullptr;
    // Bytecode VM (DESIGN.md §6f).
    obs::Counter* vm_compiles = nullptr;
    obs::Counter* vm_compile_fallbacks = nullptr;
    obs::Counter* vm_runs = nullptr;
    obs::Counter* vm_run_fallbacks = nullptr;
    obs::Counter* vm_reordered_runs = nullptr;
    obs::Counter* vm_verify_failures = nullptr;
    obs::Gauge* vm_program_instructions = nullptr;
    // Cost-model inputs (annotation-index posting sizes, label stats).
    obs::Gauge* index_postings_cre = nullptr;
    obs::Gauge* index_postings_upd = nullptr;
    obs::Gauge* index_postings_add = nullptr;
    obs::Gauge* index_postings_rem = nullptr;
    obs::Gauge* distinct_labels = nullptr;
  };
  Instruments ins_;
};

/// One-shot conveniences.
Result<lorel::QueryResult> RunChorel(const DoemDatabase& d,
                                     const std::string& query,
                                     Strategy strategy,
                                     const lorel::EvalOptions& opts = {});

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_CHOREL_H_
