#ifndef DOEM_CHOREL_CHOREL_H_
#define DOEM_CHOREL_CHOREL_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "chorel/doem_view.h"
#include "doem/doem.h"
#include "lorel/lorel.h"
#include "oem/oem.h"

namespace doem {
namespace chorel {

/// The two implementation strategies discussed in Section 5.
enum class Strategy {
  /// Evaluate annotation expressions directly against the DOEM database
  /// ("extend the Lore kernel").
  kDirect,
  /// Encode the DOEM database in plain OEM (Section 5.1) and translate
  /// the Chorel query to Lorel over the encoding (Section 5.2) — the
  /// paper's layered implementation.
  kTranslated,
};

/// A Chorel query processor over one DOEM database, supporting both
/// strategies. The translated strategy encodes the database once, lazily,
/// and caches the encoding; call InvalidateEncoding() after mutating the
/// DOEM database.
///
/// Both strategies produce identical rows for every supported query (a
/// property the test suite checks exhaustively). The packaged `answer`
/// databases differ by design: the translated strategy returns encoding
/// objects, which carry their history with them (end of Section 5.2).
class ChorelEngine {
 public:
  explicit ChorelEngine(const DoemDatabase& d) : doem_(d) {}

  /// Parses, normalizes, (optionally translates,) and evaluates `query`.
  Result<lorel::QueryResult> Run(const std::string& query,
                                 Strategy strategy,
                                 const lorel::EvalOptions& opts = {});

  /// Drops the cached OEM encoding; the next translated Run re-encodes.
  void InvalidateEncoding() { encoding_.reset(); }

  /// The cached encoding (encodes now if needed). Exposed for benchmarks.
  Result<const OemDatabase*> Encoding();

 private:
  const DoemDatabase& doem_;
  std::optional<OemDatabase> encoding_;
};

/// One-shot conveniences.
Result<lorel::QueryResult> RunChorel(const DoemDatabase& d,
                                     const std::string& query,
                                     Strategy strategy,
                                     const lorel::EvalOptions& opts = {});

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_CHOREL_H_
