#include "chorel/chorel.h"

#include "chorel/translate.h"
#include "encoding/encode.h"

namespace doem {
namespace chorel {

Result<const OemDatabase*> ChorelEngine::Encoding() {
  if (!encoding_.has_value()) {
    auto enc = EncodeDoem(doem_);
    if (!enc.ok()) return enc.status();
    encoding_ = std::move(enc).value();
  }
  return &*encoding_;
}

Result<lorel::QueryResult> ChorelEngine::Run(const std::string& query,
                                             Strategy strategy,
                                             const lorel::EvalOptions& opts) {
  auto nq = lorel::ParseAndNormalize(query);
  if (!nq.ok()) return nq.status();
  if (strategy == Strategy::kDirect) {
    DoemView view(doem_);
    return lorel::Evaluate(*nq, view, opts);
  }
  auto translated = TranslateToLorel(*nq);
  if (!translated.ok()) return translated.status();
  auto enc = Encoding();
  if (!enc.ok()) return enc.status();
  lorel::OemView view(**enc, /*amp_aware=*/true);
  return lorel::Evaluate(*translated, view, opts);
}

Result<lorel::QueryResult> RunChorel(const DoemDatabase& d,
                                     const std::string& query,
                                     Strategy strategy,
                                     const lorel::EvalOptions& opts) {
  ChorelEngine engine(d);
  return engine.Run(query, strategy, opts);
}

}  // namespace chorel
}  // namespace doem
