#include "chorel/chorel.h"

#include "chorel/translate.h"
#include "encoding/encode.h"

namespace doem {
namespace chorel {

Result<CompiledQuery> CompileChorel(const std::string& query) {
  auto nq = lorel::ParseAndNormalize(query);
  if (!nq.ok()) return nq.status();
  CompiledQuery out;
  out.normalized = std::move(nq).value();
  return out;
}

Result<const OemDatabase*> ChorelEngine::Encoding() {
  if (!encoder_.has_value()) {
    auto enc = IncrementalEncoder::Create(doem_);
    if (!enc.ok()) return enc.status();
    encoder_ = std::move(enc).value();
  }
  return &encoder_->encoding();
}

const AnnotationIndex* ChorelEngine::IndexForRun() {
  if (!options_.seed_from_index) return nullptr;
  if (!index_.has_value()) index_.emplace(doem_);
  return &*index_;
}

Result<lorel::QueryResult> ChorelEngine::RunCompiled(
    CompiledQuery* q, Strategy strategy, const lorel::EvalOptions& opts) {
  if (strategy == Strategy::kDirect) {
    DoemView view(doem_, IndexForRun());
    return lorel::Evaluate(q->normalized, view, opts);
  }
  if (!q->translated.has_value()) {
    auto translated = TranslateToLorel(q->normalized);
    if (!translated.ok()) return translated.status();
    q->translated = std::move(translated).value();
  }
  auto enc = Encoding();
  if (!enc.ok()) return enc.status();
  lorel::OemView view(**enc, /*amp_aware=*/true);
  return lorel::Evaluate(*q->translated, view, opts);
}

Result<lorel::QueryResult> ChorelEngine::Run(const std::string& query,
                                             Strategy strategy,
                                             const lorel::EvalOptions& opts) {
  auto compiled = CompileChorel(query);
  if (!compiled.ok()) return compiled.status();
  return RunCompiled(&*compiled, strategy, opts);
}

Status ChorelEngine::ApplyDelta(Timestamp t, const ChangeSet& ops) {
  if (!options_.incremental) {
    Invalidate();
    return Status::OK();
  }
  if (encoder_.has_value()) {
    Status s = encoder_->ApplyDelta(doem_, t, ops);
    if (!s.ok()) {
      encoder_.reset();
      return s;
    }
  }
  if (index_.has_value()) {
    Status s = index_->Apply(doem_, t, ops);
    if (!s.ok()) {
      index_.reset();
      return s;
    }
  }
  if (options_.verify_incremental) {
    Status s = VerifyCaches();
    if (!s.ok()) {
      Invalidate();
      return s;
    }
  }
  return Status::OK();
}

Status ChorelEngine::VerifyCaches() const {
  if (encoder_.has_value()) {
    auto decoded = DecodeDoem(encoder_->encoding());
    if (!decoded.ok()) {
      return Status::Internal("verify_incremental: patched encoding fails "
                              "to decode: " +
                              decoded.status().message());
    }
    if (!decoded->Equals(doem_)) {
      return Status::Internal(
          "verify_incremental: patched encoding does not decode back to "
          "the DOEM database");
    }
  }
  if (index_.has_value() && !(AnnotationIndex(doem_) == *index_)) {
    return Status::Internal(
        "verify_incremental: maintained annotation index diverges from a "
        "fresh build");
  }
  return Status::OK();
}

Result<lorel::QueryResult> RunChorel(const DoemDatabase& d,
                                     const std::string& query,
                                     Strategy strategy,
                                     const lorel::EvalOptions& opts) {
  ChorelEngine engine(d);
  return engine.Run(query, strategy, opts);
}

}  // namespace chorel
}  // namespace doem
