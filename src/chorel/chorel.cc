#include "chorel/chorel.h"

#include "chorel/translate.h"
#include "encoding/encode.h"

namespace doem {
namespace chorel {

namespace {

void Count(obs::Counter* c, uint64_t by = 1) {
  if (c != nullptr) c->Increment(by);
}

}  // namespace

Result<CompiledQuery> CompileChorel(const std::string& query) {
  auto nq = lorel::ParseAndNormalize(query);
  if (!nq.ok()) return nq.status();
  CompiledQuery out;
  out.normalized = std::move(nq).value();
  return out;
}

Result<std::shared_ptr<CompiledQuery>> CompiledQueryPool::Get(
    const std::string& query) {
  auto it = pool_.find(query);
  if (it != pool_.end()) {
    ++hits_;
    return it->second;
  }
  auto compiled = CompileChorel(query);
  if (!compiled.ok()) return compiled.status();
  auto shared = std::make_shared<CompiledQuery>(std::move(compiled).value());
  pool_.emplace(query, shared);
  return shared;
}

std::shared_ptr<CompiledQuery> CompiledQueryPool::Intern(
    const std::string& query, CompiledQuery compiled) {
  auto it = pool_.find(query);
  if (it != pool_.end()) {
    ++hits_;
    return it->second;
  }
  auto shared = std::make_shared<CompiledQuery>(std::move(compiled));
  pool_.emplace(query, shared);
  return shared;
}

ChorelEngine::ChorelEngine(const DoemDatabase& d, ChorelEngineOptions options)
    : doem_(d), options_(options) {
  obs::MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  ins_.cache_patches = m->GetCounter(
      "chorel.cache_patches", "ApplyDelta calls that patched the caches");
  ins_.cache_invalidations = m->GetCounter(
      "chorel.cache_invalidations",
      "cache drops (Invalidate, non-incremental ApplyDelta, patch errors)");
  ins_.encoding_rebuilds = m->GetCounter(
      "chorel.encoding_rebuilds", "from-scratch Section 5.1 encodings");
  ins_.index_rebuilds = m->GetCounter("chorel.index_rebuilds",
                                      "from-scratch annotation index builds");
  ins_.verify_failures = m->GetCounter(
      "chorel.verify_failures",
      "verify_incremental cross-checks that found divergence");
  ins_.translation_hits = m->GetCounter(
      "chorel.translation_cache_hits",
      "translated runs reusing the cached Section 5.2 translation");
  ins_.translation_misses = m->GetCounter(
      "chorel.translation_cache_misses",
      "translated runs that had to translate the query first");
  ins_.encoder_patch_ops = m->GetGauge(
      "encoding.patch_ops", "change ops patched into the cached encoding");
  ins_.encoder_aux_allocations =
      m->GetGauge("encoding.aux_allocations",
                  "auxiliary encoding nodes allocated by patching");
  ins_.index_applied_ops = m->GetGauge(
      "index.applied_ops", "postings appended by annotation-index Apply");
  ins_.vm_compiles =
      m->GetCounter("vm.compiles", "queries compiled to bytecode");
  ins_.vm_compile_fallbacks = m->GetCounter(
      "vm.compile_fallbacks",
      "queries outside VM coverage, pinned to the tree walker");
  ins_.vm_runs = m->GetCounter("vm.runs", "evaluations completed by the VM");
  ins_.vm_run_fallbacks = m->GetCounter(
      "vm.run_fallbacks",
      "VM runs that errored and were redone by the tree walker");
  ins_.vm_reordered_runs = m->GetCounter(
      "vm.reordered_runs", "VM runs executed under a cost-based step order");
  ins_.vm_verify_failures = m->GetCounter(
      "vm.verify_failures", "verify_vm cross-checks that found divergence");
  ins_.vm_program_instructions = m->GetGauge(
      "vm.program_instructions",
      "instruction count of the most recently compiled program");
  ins_.index_postings_cre = m->GetGauge(
      "chorel.index_postings_cre", "cre postings in the annotation index");
  ins_.index_postings_upd = m->GetGauge(
      "chorel.index_postings_upd", "upd postings in the annotation index");
  ins_.index_postings_add = m->GetGauge(
      "chorel.index_postings_add", "add postings in the annotation index");
  ins_.index_postings_rem = m->GetGauge(
      "chorel.index_postings_rem", "rem postings in the annotation index");
  ins_.distinct_labels = m->GetGauge(
      "chorel.distinct_labels",
      "distinct arc labels in the DOEM graph (cost-model input)");
}

void ChorelEngine::Invalidate() {
  if (encoder_.has_value() || index_.has_value()) {
    Count(ins_.cache_invalidations);
  }
  encoder_.reset();
  index_.reset();
}

void ChorelEngine::PublishCacheStats() {
  if (encoder_.has_value() && ins_.encoder_patch_ops != nullptr) {
    ins_.encoder_patch_ops->Set(
        static_cast<int64_t>(encoder_->stats().patch_ops));
    ins_.encoder_aux_allocations->Set(
        static_cast<int64_t>(encoder_->stats().aux_allocations));
  }
  if (index_.has_value() && ins_.index_applied_ops != nullptr) {
    ins_.index_applied_ops->Set(static_cast<int64_t>(index_->applied_ops()));
  }
  if (index_.has_value() && ins_.index_postings_cre != nullptr) {
    ins_.index_postings_cre->Set(static_cast<int64_t>(index_->cre_count()));
    ins_.index_postings_upd->Set(static_cast<int64_t>(index_->upd_count()));
    ins_.index_postings_add->Set(static_cast<int64_t>(index_->add_count()));
    ins_.index_postings_rem->Set(static_cast<int64_t>(index_->rem_count()));
  }
  if (ins_.distinct_labels != nullptr) {
    ins_.distinct_labels->Set(
        static_cast<int64_t>(doem_.graph().DistinctLabelCount()));
  }
}

Result<const OemDatabase*> ChorelEngine::Encoding() {
  if (!encoder_.has_value()) {
    auto enc = IncrementalEncoder::Create(doem_);
    if (!enc.ok()) return enc.status();
    encoder_ = std::move(enc).value();
    Count(ins_.encoding_rebuilds);
  }
  return &encoder_->encoding();
}

const AnnotationIndex* ChorelEngine::IndexForRun() {
  if (!options_.seed_from_index) return nullptr;
  if (!index_.has_value()) {
    index_.emplace(doem_);
    Count(ins_.index_rebuilds);
    PublishCacheStats();
  }
  return &*index_;
}

Result<lorel::QueryResult> ChorelEngine::Eval(const lorel::NormQuery& nq,
                                              vm::ProgramCache* cache,
                                              const lorel::GraphView& view,
                                              const lorel::EvalOptions& opts) {
  if (!options_.use_vm) return lorel::Evaluate(nq, view, opts);
  if (cache->state == vm::ProgramCache::State::kUnknown) {
    auto program = vm::Compile(nq);
    if (program.ok()) {
      cache->state = vm::ProgramCache::State::kReady;
      cache->program = std::move(program).value();
      Count(ins_.vm_compiles);
      if (ins_.vm_program_instructions != nullptr) {
        ins_.vm_program_instructions->Set(
            static_cast<int64_t>(cache->program.identity_code.size()));
      }
    } else {
      cache->state = vm::ProgramCache::State::kUnsupported;
      Count(ins_.vm_compile_fallbacks);
    }
  }
  if (cache->state == vm::ProgramCache::State::kUnsupported) {
    return lorel::Evaluate(nq, view, opts);
  }
  vm::RunInfo info;
  auto res = vm::Run(cache->program, view, opts, &info);
  if (!res.ok()) {
    // Any VM error — a view capability the hoisted checks rejected, a
    // time operand that did not resolve, max_rows — defers to the tree
    // walker, whose result (including which error, if any) is
    // authoritative.
    Count(ins_.vm_run_fallbacks);
    return lorel::Evaluate(nq, view, opts);
  }
  Count(ins_.vm_runs);
  if (info.reordered) Count(ins_.vm_reordered_runs);
  if (options_.verify_vm) {
    lorel::EvalOptions ref_opts = opts;
    ref_opts.stats = nullptr;  // the VM already contributed its counters
    auto ref = lorel::Evaluate(nq, view, ref_opts);
    bool match = ref.ok() && ref->RowsToString() == res->RowsToString() &&
                 (!opts.package_results || ref->answer.Equals(res->answer));
    if (!match) {
      Count(ins_.vm_verify_failures);
      return Status::Internal(
          "verify_vm: VM result diverges from the tree walker");
    }
  }
  return res;
}

Result<lorel::QueryResult> ChorelEngine::RunCompiled(
    CompiledQuery* q, Strategy strategy, const lorel::EvalOptions& opts) {
  if (strategy == Strategy::kDirect) {
    DoemView view(doem_, IndexForRun());
    return Eval(q->normalized, &q->vm_direct, view, opts);
  }
  if (!q->translated.has_value()) {
    Count(ins_.translation_misses);
    auto translated = TranslateToLorel(q->normalized);
    if (!translated.ok()) return translated.status();
    q->translated = std::move(translated).value();
  } else {
    Count(ins_.translation_hits);
  }
  auto enc = Encoding();
  if (!enc.ok()) return enc.status();
  lorel::OemView view(**enc, /*amp_aware=*/true);
  return Eval(*q->translated, &q->vm_translated, view, opts);
}

Result<lorel::QueryResult> ChorelEngine::Run(const std::string& query,
                                             Strategy strategy,
                                             const lorel::EvalOptions& opts) {
  auto compiled = CompileChorel(query);
  if (!compiled.ok()) return compiled.status();
  return RunCompiled(&*compiled, strategy, opts);
}

Status ChorelEngine::ApplyDelta(Timestamp t, const ChangeSet& ops) {
  if (!options_.incremental) {
    Invalidate();
    return Status::OK();
  }
  bool patched = false;
  if (encoder_.has_value()) {
    Status s = encoder_->ApplyDelta(doem_, t, ops);
    if (!s.ok()) {
      encoder_.reset();
      Count(ins_.cache_invalidations);
      return s;
    }
    patched = true;
  }
  if (index_.has_value()) {
    Status s = index_->Apply(doem_, t, ops);
    if (!s.ok()) {
      index_.reset();
      Count(ins_.cache_invalidations);
      return s;
    }
    patched = true;
  }
  if (options_.verify_incremental) {
    Status s = VerifyCaches();
    if (!s.ok()) {
      Count(ins_.verify_failures);
      Invalidate();
      return s;
    }
  }
  if (patched) {
    Count(ins_.cache_patches);
    PublishCacheStats();
  }
  return Status::OK();
}

Status ChorelEngine::VerifyCaches() const {
  if (encoder_.has_value()) {
    auto decoded = DecodeDoem(encoder_->encoding());
    if (!decoded.ok()) {
      return Status::Internal("verify_incremental: patched encoding fails "
                              "to decode: " +
                              decoded.status().message());
    }
    if (!decoded->Equals(doem_)) {
      return Status::Internal(
          "verify_incremental: patched encoding does not decode back to "
          "the DOEM database");
    }
  }
  if (index_.has_value() && !(AnnotationIndex(doem_) == *index_)) {
    return Status::Internal(
        "verify_incremental: maintained annotation index diverges from a "
        "fresh build");
  }
  return Status::OK();
}

Result<lorel::QueryResult> RunChorel(const DoemDatabase& d,
                                     const std::string& query,
                                     Strategy strategy,
                                     const lorel::EvalOptions& opts) {
  ChorelEngine engine(d);
  return engine.Run(query, strategy, opts);
}

}  // namespace chorel
}  // namespace doem
