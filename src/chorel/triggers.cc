#include "chorel/triggers.h"

#include "lorel/lorel.h"

namespace doem {
namespace chorel {

Result<TriggeredDatabase> TriggeredDatabase::Create(OemDatabase base) {
  auto d = DoemDatabase::FromSnapshot(std::move(base));
  if (!d.ok()) return d.status();
  TriggeredDatabase t;
  t.doem_ = std::move(d).value();
  return t;
}

Status TriggeredDatabase::AddTrigger(const std::string& name,
                                     const std::string& condition,
                                     Action action) {
  if (triggers_.contains(name)) {
    return Status::AlreadyExists("trigger '" + name + "' exists");
  }
  auto nq = lorel::ParseAndNormalize(condition);
  if (!nq.ok()) {
    return Status(nq.status().code(),
                  "trigger condition: " + nq.status().message());
  }
  triggers_.emplace(name, Trigger{condition, std::move(action)});
  return Status::OK();
}

Status TriggeredDatabase::RemoveTrigger(const std::string& name) {
  if (triggers_.erase(name) == 0) {
    return Status::NotFound("no trigger '" + name + "'");
  }
  return Status::OK();
}

Status TriggeredDatabase::ApplyChangeSet(Timestamp t, const ChangeSet& ops) {
  DOEM_RETURN_IF_ERROR(doem_.ApplyChangeSet(t, ops));
  times_.push_back(t);
  ChorelEngine engine(doem_);
  for (auto& [name, trigger] : triggers_) {
    lorel::EvalOptions opts;
    opts.polling_times = &times_;
    auto result = engine.Run(trigger.condition, Strategy::kDirect, opts);
    if (!result.ok()) {
      return Status(result.status().code(),
                    "trigger '" + name + "': " + result.status().message());
    }
    if (!result->rows.empty() && trigger.action) {
      TriggerFiring firing;
      firing.trigger = name;
      firing.time = t;
      firing.result = std::move(result).value();
      trigger.action(firing);
    }
  }
  return Status::OK();
}

}  // namespace chorel
}  // namespace doem
