#ifndef DOEM_CHOREL_UPDATE_H_
#define DOEM_CHOREL_UPDATE_H_

#include <string>

#include "common/result.h"
#include "doem/doem.h"
#include "oem/change.h"

namespace doem {
namespace chorel {

/// A small Lorel-style update language, compiling high-level requests
/// into the four basic change operations — the paper's Section 2.1
/// division of labor: "users will typically request 'higher-level'
/// changes based on the Lorel update language; the basic change
/// operations defined here reflect the actual changes at the database
/// level."
///
/// Statements:
///
///   insert <path> := <literal> [where <cond>]
///       For every object matched by the path prefix (filtered by the
///       condition), create the literal as a fresh subobject reached by
///       the path's last label.
///       insert guide.restaurant := {name: "Hakata"}
///       insert guide.restaurant.comment := "try the curry"
///           where guide.restaurant.name = "Hakata"
///
///   set <path> := <value> [where <cond>]
///       updNode every atomic object matched by the path.
///       set guide.restaurant.price := 20
///           where guide.restaurant.name = "Bangkok Cuisine"
///
///   remove <path> [where <cond>]
///       remArc every matched (parent, last-label, child) arc; objects
///       left unreachable are thereby deleted.
///       remove guide.restaurant where guide.restaurant.name = "Janta"
///
/// Paths in statements are plain label chains (no wildcards or
/// annotation expressions — updates target concrete data). Literals are
/// atomic values (10, 2.5, "s", true, 4Jan97) or object literals
/// ({label: literal, ...}).
///
/// CompileUpdate evaluates the statement against the *current snapshot*
/// and returns the change set; it performs no mutation. ApplyUpdate
/// compiles and applies at the given timestamp. Statements matching
/// nothing compile to an empty change set.
Result<ChangeSet> CompileUpdate(const DoemDatabase& d,
                                const std::string& statement);

Status ApplyUpdate(DoemDatabase* d, Timestamp t,
                   const std::string& statement);

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_UPDATE_H_
