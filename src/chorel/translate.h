#ifndef DOEM_CHOREL_TRANSLATE_H_
#define DOEM_CHOREL_TRANSLATE_H_

#include "common/result.h"
#include "lorel/normalize.h"

namespace doem {
namespace chorel {

/// Translates a normalized Chorel query into an equivalent plain-Lorel
/// query over the Section 5.1 OEM encoding of the DOEM database
/// (Section 5.2):
///
///   X.<add at T>l Y   ->  X.&l-history H, H.&add T, H.&target Y
///   X.<rem at T>l Y   ->  X.&l-history H, H.&rem T, H.&target Y
///   X.l Y<cre at T>   ->  X.l Y, Y.&cre T
///   X.l Y<upd at T from OV to NV>
///                     ->  X.l Y, Y.&upd U, U.&time T, U.&ov OV, U.&nv NV
///
/// plus the value-access rewriting: wherever an object variable's value is
/// read (comparison operands, like arguments), it becomes X.&val; the
/// lazy where-paths similarly gain a final .&val step. Object variables in
/// the select clause are NOT rewritten — they return the encoding object,
/// packaging its history with it (end of Section 5.2).
///
/// Annotation variables are bound from the encoding's timestamp/value
/// atoms with RangeDef::bind_value, so translated evaluation produces
/// rows identical to direct evaluation.
///
/// Unsupported in translation (direct evaluation handles them): virtual
/// <at T> annotations — the paper also leaves their implementation open —
/// and annotated paths inside `exists` ranges, which have no linear path
/// form over the encoding.
Result<lorel::NormQuery> TranslateToLorel(const lorel::NormQuery& q);

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_TRANSLATE_H_
