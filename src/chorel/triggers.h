#ifndef DOEM_CHOREL_TRIGGERS_H_
#define DOEM_CHOREL_TRIGGERS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chorel/chorel.h"
#include "common/result.h"
#include "doem/doem.h"

namespace doem {
namespace chorel {

/// What a fired trigger delivers to its action.
struct TriggerFiring {
  std::string trigger;
  Timestamp time;
  lorel::QueryResult result;
};

/// An event-condition-action trigger facility for OEM "based on ideas
/// from DOEM and Chorel" — the paper's Section 7 future-work item,
/// realized the way Section 6 realizes subscriptions:
///
///   * the *event* is the application of a change set (t_k, U_k);
///   * the *condition* is a Chorel query over the accumulated DOEM
///     database, evaluated with t[0] = t_k and t[-1] = t_{k-1}, so
///     "changes since the last event" is expressible exactly as in QSS
///     filter queries;
///   * the *action* is a callback receiving the query result.
///
/// Unlike QSS — which infers changes by polling and diffing — triggers
/// see every change set as it is applied, so they fire synchronously and
/// lose nothing.
class TriggeredDatabase {
 public:
  using Action = std::function<void(const TriggerFiring&)>;

  /// Wraps a base snapshot; all further mutations must go through
  /// ApplyChangeSet so triggers observe them.
  static Result<TriggeredDatabase> Create(OemDatabase base);

  /// Registers a trigger. The condition must parse as a (Chorel) query;
  /// it may use t[i]. Fails on duplicate names.
  Status AddTrigger(const std::string& name, const std::string& condition,
                    Action action);

  Status RemoveTrigger(const std::string& name);

  /// Applies the change set, then evaluates every trigger condition and
  /// fires actions for non-empty results (in trigger-name order).
  /// The change application and the trigger evaluations are atomic with
  /// respect to failure: a failing condition reports an error after the
  /// change has been applied and remains applied.
  Status ApplyChangeSet(Timestamp t, const ChangeSet& ops);

  const DoemDatabase& doem() const { return doem_; }
  size_t trigger_count() const { return triggers_.size(); }

 private:
  struct Trigger {
    std::string condition;
    Action action;
  };

  DoemDatabase doem_;
  std::map<std::string, Trigger> triggers_;
  std::vector<Timestamp> times_;
};

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_TRIGGERS_H_
