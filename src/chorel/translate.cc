#include "chorel/translate.h"

#include "encoding/encode.h"

namespace doem {
namespace chorel {

namespace {

using lorel::AnnotKind;
using lorel::Expr;
using lorel::ExprPtr;
using lorel::NormQuery;
using lorel::PathExpr;
using lorel::PathStep;
using lorel::RangeDef;
using lorel::VarKind;

class Translator {
 public:
  explicit Translator(const NormQuery& q) : q_(q) {}

  Result<NormQuery> Run() {
    out_.select = q_.select;
    out_.labels = q_.labels;
    out_.var_kinds = q_.var_kinds;
    for (const RangeDef& def : q_.defs) {
      DOEM_RETURN_IF_ERROR(TranslateDef(def));
    }
    if (q_.where) {
      auto w = TranslateBool(q_.where);
      if (!w.ok()) return w.status();
      out_.where = std::move(w).value();
    }
    return std::move(out_);
  }

 private:
  std::string Fresh(const char* hint) {
    // '$' cannot appear in parsed identifiers, so these never collide
    // with user or normalizer variables.
    return std::string("$") + hint + std::to_string(++counter_);
  }

  void EmitPlain(const std::string& source, const PathStep& shape,
                 const std::string& var, bool bind_value = false) {
    RangeDef def;
    def.source_var = source;
    def.step.label = shape.label;
    def.step.wildcard = shape.wildcard;
    def.step.wildcard_one = shape.wildcard_one;
    def.var = var;
    def.bind_value = bind_value;
    if (!out_.var_kinds.contains(var)) {
      out_.var_kinds[var] = bind_value ? VarKind::kValue : VarKind::kNode;
    }
    out_.defs.push_back(std::move(def));
  }

  Status TranslateDef(const RangeDef& def) {
    const PathStep& step = def.step;
    if ((step.arc_annot && step.arc_annot->kind == AnnotKind::kAt) ||
        (step.node_annot && step.node_annot->kind == AnnotKind::kAt)) {
      return Status::Unsupported(
          "virtual <at T> annotations have no Lorel translation; use the "
          "direct evaluation strategy");
    }
    std::string node_var = def.var;
    if (step.wildcard_one && (step.arc_annot || step.node_annot)) {
      return Status::Unsupported(
          "annotation expressions on '%' have no Lorel translation (the "
          "history objects' labels are per-source-label); use the direct "
          "evaluation strategy");
    }
    if (!step.arc_annot) {
      // Plain or wildcard step: current arcs are exposed under their own
      // labels in the encoding; the '#' wildcard skips &-arcs because the
      // evaluator runs with an encoding-aware view.
      EmitPlain(def.source_var, step, node_var);
    } else {
      const auto& a = *step.arc_annot;
      // X.<add at T>l Y -> X.&l-history H, H.&add T, H.&target Y.
      std::string hist = Fresh("h");
      PathStep shape;
      shape.label = HistoryLabelFor(step.label);
      EmitPlain(def.source_var, shape, hist);
      shape.label = a.kind == AnnotKind::kAdd ? "&add" : "&rem";
      EmitPlain(hist, shape, a.time_var, /*bind_value=*/true);
      shape.label = "&target";
      EmitPlain(hist, shape, node_var);
    }
    if (step.node_annot) {
      const auto& a = *step.node_annot;
      PathStep shape;
      if (a.kind == AnnotKind::kCre) {
        shape.label = "&cre";
        EmitPlain(node_var, shape, a.time_var, /*bind_value=*/true);
      } else {  // kUpd
        std::string rec = Fresh("u");
        shape.label = "&upd";
        EmitPlain(node_var, shape, rec);
        shape.label = "&time";
        EmitPlain(rec, shape, a.time_var, true);
        shape.label = "&ov";
        EmitPlain(rec, shape, a.from_var, true);
        shape.label = "&nv";
        EmitPlain(rec, shape, a.to_var, true);
      }
    }
    return Status::OK();
  }

  bool IsObjectVar(const std::string& name) const {
    auto it = out_.var_kinds.find(name);
    return it != out_.var_kinds.end() && it->second == VarKind::kNode;
  }

  /// Value-access rewriting for comparison operands (Section 5.2): object
  /// variables X become the path X.&val; lazy paths gain a final .&val
  /// step.
  Result<ExprPtr> TranslateOperand(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kTimeRef:
        return e;
      case Expr::Kind::kVar: {
        if (!IsObjectVar(e->var)) return e;  // annotation value variable
        PathExpr p;
        p.head_is_var = true;
        PathStep head;
        head.label = e->var;
        p.steps.push_back(std::move(head));
        PathStep val;
        val.label = "&val";
        p.steps.push_back(std::move(val));
        return Expr::MakePath(std::move(p));
      }
      case Expr::Kind::kPath: {
        auto copy = std::make_shared<Expr>(*e);
        for (const PathStep& s : copy->path.steps) {
          if (s.arc_annot || s.node_annot) {
            return Status::Unsupported(
                "annotated paths inside exists ranges/predicates have no "
                "Lorel translation; use the direct evaluation strategy");
          }
        }
        PathStep val;
        val.label = "&val";
        copy->path.steps.push_back(std::move(val));
        return ExprPtr(copy);
      }
      default:
        return Status::Unsupported("operand '" + e->ToString() +
                                   "' cannot be translated");
    }
  }

  Result<ExprPtr> TranslateBool(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        return e;
      case Expr::Kind::kBinary: {
        if (e->op == lorel::BinOp::kAnd || e->op == lorel::BinOp::kOr) {
          auto l = TranslateBool(e->lhs);
          if (!l.ok()) return l;
          auto r = TranslateBool(e->rhs);
          if (!r.ok()) return r;
          return Expr::MakeBinary(e->op, std::move(l).value(),
                                  std::move(r).value());
        }
        auto l = TranslateOperand(e->lhs);
        if (!l.ok()) return l;
        auto r = TranslateOperand(e->rhs);
        if (!r.ok()) return r;
        return Expr::MakeBinary(e->op, std::move(l).value(),
                                std::move(r).value());
      }
      case Expr::Kind::kNot: {
        auto c = TranslateBool(e->child);
        if (!c.ok()) return c;
        return Expr::MakeNot(std::move(c).value());
      }
      case Expr::Kind::kExists: {
        auto copy = std::make_shared<Expr>(*e);
        for (const PathStep& s : copy->exists_path.steps) {
          if (s.arc_annot || s.node_annot) {
            return Status::Unsupported(
                "annotated exists ranges have no Lorel translation; use "
                "the direct evaluation strategy");
          }
        }
        // The binder stays an encoding object; only value accesses inside
        // the predicate are rewritten.
        auto pred = TranslateBool(copy->exists_pred);
        if (!pred.ok()) return pred;
        copy->exists_pred = std::move(pred).value();
        return ExprPtr(copy);
      }
      default:
        return Status::Unsupported("condition '" + e->ToString() +
                                   "' cannot be translated");
    }
  }

  const NormQuery& q_;
  NormQuery out_;
  int counter_ = 0;
};

}  // namespace

Result<NormQuery> TranslateToLorel(const NormQuery& q) {
  return Translator(q).Run();
}

}  // namespace chorel
}  // namespace doem
