#ifndef DOEM_CHOREL_DOEM_VIEW_H_
#define DOEM_CHOREL_DOEM_VIEW_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "doem/annotation_index.h"
#include "doem/doem.h"
#include "lorel/view.h"

namespace doem {
namespace chorel {

/// A GraphView over a DOEM database, implementing the "extend the kernel"
/// strategy of Section 5: plain Lorel steps see the current snapshot
/// (Section 4.2.1's default), annotation accessors expose the DOEM
/// annotations to Chorel annotation expressions, and virtual <at T>
/// annotations time-travel via the snapshot rules of Section 3.2.
///
/// When an AnnotationIndex is attached, the *InRange seeding hooks answer
/// from its postings, letting the evaluator enumerate candidates for
/// time-bounded annotation expressions in O(matching annotations) instead
/// of scanning every child (DESIGN.md §6c). The index must have been
/// built from (and kept current with) the same database.
class DoemView : public lorel::GraphView {
 public:
  explicit DoemView(const DoemDatabase& d,
                    const AnnotationIndex* index = nullptr)
      : d_(d), index_(index) {}

  NodeId root() const override { return d_.root(); }
  bool HasNode(NodeId n) const override { return d_.graph().HasNode(n); }
  const Value& value(NodeId n) const override { return d_.CurrentValue(n); }

  std::vector<NodeId> Children(NodeId n,
                               const std::string& label) const override {
    // Label-keyed: probe the graph's per-label arc bucket, then filter by
    // liveness, instead of scanning every out-arc of n.
    std::vector<NodeId> out;
    for (NodeId c : d_.graph().Children(n, label)) {
      if (d_.ArcCurrentlyLive(n, label, c)) out.push_back(c);
    }
    return out;
  }

  std::vector<OutArc> LiveOutArcs(NodeId n) const override {
    return d_.LiveArcs(n);
  }

  NodeId IdFloor() const override { return d_.graph().PeekNextId(); }

  // Cost-model estimates: the DOEM graph keeps removed arcs in place, so
  // the graph-level tallies over-approximate live cardinalities — sound
  // for ordering decisions, which only need relative magnitudes.
  size_t TotalNodeEstimate() const override {
    return d_.graph().node_count();
  }
  size_t LabelArcEstimate(const std::string& label) const override {
    return d_.graph().ArcCountForLabel(label);
  }
  size_t ChildCountEstimate(NodeId n,
                            const std::string& label) const override {
    return d_.graph().LabelChildCount(n, label);
  }
  std::optional<size_t> AnnotCountInRange(AnnotStat kind, Timestamp from,
                                          Timestamp to) const override {
    if (index_ == nullptr) return std::nullopt;
    switch (kind) {
      case AnnotStat::kCre: return index_->CountCreatedIn(from, to);
      case AnnotStat::kUpd: return index_->CountUpdatedIn(from, to);
      case AnnotStat::kAdd: return index_->CountAddedIn(from, to);
      case AnnotStat::kRem: return index_->CountRemovedIn(from, to);
    }
    return std::nullopt;
  }

  bool SupportsAnnotations() const override { return true; }

  std::optional<Timestamp> CreTime(NodeId n) const override {
    return d_.CreTime(n);
  }

  std::vector<lorel::UpdEntry> UpdEntries(NodeId n) const override {
    std::vector<lorel::UpdEntry> out;
    for (const UpdRecord& u : d_.UpdRecords(n)) {
      out.push_back(lorel::UpdEntry{u.time, u.old_value, u.new_value});
    }
    return out;
  }

  std::vector<std::pair<Timestamp, NodeId>> AddAnnotated(
      NodeId n, const std::string& label) const override {
    return d_.AddAnnotated(n, label);
  }

  std::vector<std::pair<Timestamp, NodeId>> RemAnnotated(
      NodeId n, const std::string& label) const override {
    return d_.RemAnnotated(n, label);
  }

  std::vector<std::pair<Timestamp, NodeId>> AddAnnotatedAny(
      NodeId n) const override {
    return AnyLabel(n, Annotation::Kind::kAdd);
  }

  std::vector<std::pair<Timestamp, NodeId>> RemAnnotatedAny(
      NodeId n) const override {
    return AnyLabel(n, Annotation::Kind::kRem);
  }

  std::optional<std::vector<NodeId>> CreatedInRange(
      Timestamp from, Timestamp to) const override {
    if (index_ == nullptr) return std::nullopt;
    std::vector<NodeId> out;
    for (const auto& e : index_->CreatedIn(from, to)) out.push_back(e.node);
    return out;
  }

  std::optional<std::vector<NodeId>> UpdatedInRange(
      Timestamp from, Timestamp to) const override {
    if (index_ == nullptr) return std::nullopt;
    // A node may carry several upd annotations in range; report it once.
    std::vector<NodeId> out;
    std::unordered_set<NodeId> seen;
    for (const auto& e : index_->UpdatedIn(from, to)) {
      if (seen.insert(e.node).second) out.push_back(e.node);
    }
    return out;
  }

  std::optional<std::vector<std::pair<Timestamp, Arc>>> AddedInRange(
      Timestamp from, Timestamp to) const override {
    if (index_ == nullptr) return std::nullopt;
    std::vector<std::pair<Timestamp, Arc>> out;
    for (const auto& e : index_->AddedIn(from, to)) {
      out.emplace_back(e.time, e.arc);
    }
    return out;
  }

  std::optional<std::vector<std::pair<Timestamp, Arc>>> RemovedInRange(
      Timestamp from, Timestamp to) const override {
    if (index_ == nullptr) return std::nullopt;
    std::vector<std::pair<Timestamp, Arc>> out;
    for (const auto& e : index_->RemovedIn(from, to)) {
      out.emplace_back(e.time, e.arc);
    }
    return out;
  }

  bool HasLiveArc(NodeId p, const std::string& l, NodeId c) const override {
    return d_.graph().HasArc(p, l, c) && d_.ArcCurrentlyLive(p, l, c);
  }

  bool SupportsTimeTravel() const override { return true; }

  std::vector<NodeId> ChildrenAt(NodeId n, const std::string& label,
                                 Timestamp t) const override {
    std::vector<NodeId> out;
    for (const OutArc& a : d_.ArcsLiveAt(n, t)) {
      if (a.label == label) out.push_back(a.child);
    }
    return out;
  }

  std::vector<NodeId> ChildrenAtAny(NodeId n, Timestamp t) const override {
    std::vector<NodeId> out;
    for (const OutArc& a : d_.ArcsLiveAt(n, t)) out.push_back(a.child);
    return out;
  }

  Value ValueAt(NodeId n, Timestamp t) const override {
    return d_.ValueAt(n, t);
  }

  const DoemDatabase& doem() const { return d_; }

 private:
  std::vector<std::pair<Timestamp, NodeId>> AnyLabel(
      NodeId n, Annotation::Kind kind) const {
    std::vector<std::pair<Timestamp, NodeId>> out;
    for (const OutArc& a : d_.graph().OutArcs(n)) {
      for (const Annotation& ann : d_.ArcAnnotations(n, a.label, a.child)) {
        if (ann.kind == kind) out.emplace_back(ann.time, a.child);
      }
    }
    return out;
  }

  const DoemDatabase& d_;
  const AnnotationIndex* index_;
};

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_DOEM_VIEW_H_
