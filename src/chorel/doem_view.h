#ifndef DOEM_CHOREL_DOEM_VIEW_H_
#define DOEM_CHOREL_DOEM_VIEW_H_

#include <string>
#include <utility>
#include <vector>

#include "doem/doem.h"
#include "lorel/view.h"

namespace doem {
namespace chorel {

/// A GraphView over a DOEM database, implementing the "extend the kernel"
/// strategy of Section 5: plain Lorel steps see the current snapshot
/// (Section 4.2.1's default), annotation accessors expose the DOEM
/// annotations to Chorel annotation expressions, and virtual <at T>
/// annotations time-travel via the snapshot rules of Section 3.2.
class DoemView : public lorel::GraphView {
 public:
  explicit DoemView(const DoemDatabase& d) : d_(d) {}

  NodeId root() const override { return d_.root(); }
  bool HasNode(NodeId n) const override { return d_.graph().HasNode(n); }
  const Value& value(NodeId n) const override { return d_.CurrentValue(n); }

  std::vector<NodeId> Children(NodeId n,
                               const std::string& label) const override {
    std::vector<NodeId> out;
    for (const OutArc& a : d_.graph().OutArcs(n)) {
      if (a.label == label && d_.ArcCurrentlyLive(n, a.label, a.child)) {
        out.push_back(a.child);
      }
    }
    return out;
  }

  std::vector<OutArc> LiveOutArcs(NodeId n) const override {
    return d_.LiveArcs(n);
  }

  NodeId IdFloor() const override { return d_.graph().PeekNextId(); }

  bool SupportsAnnotations() const override { return true; }

  std::optional<Timestamp> CreTime(NodeId n) const override {
    return d_.CreTime(n);
  }

  std::vector<lorel::UpdEntry> UpdEntries(NodeId n) const override {
    std::vector<lorel::UpdEntry> out;
    for (const UpdRecord& u : d_.UpdRecords(n)) {
      out.push_back(lorel::UpdEntry{u.time, u.old_value, u.new_value});
    }
    return out;
  }

  std::vector<std::pair<Timestamp, NodeId>> AddAnnotated(
      NodeId n, const std::string& label) const override {
    return d_.AddAnnotated(n, label);
  }

  std::vector<std::pair<Timestamp, NodeId>> RemAnnotated(
      NodeId n, const std::string& label) const override {
    return d_.RemAnnotated(n, label);
  }

  std::vector<std::pair<Timestamp, NodeId>> AddAnnotatedAny(
      NodeId n) const override {
    return AnyLabel(n, Annotation::Kind::kAdd);
  }

  std::vector<std::pair<Timestamp, NodeId>> RemAnnotatedAny(
      NodeId n) const override {
    return AnyLabel(n, Annotation::Kind::kRem);
  }

  bool SupportsTimeTravel() const override { return true; }

  std::vector<NodeId> ChildrenAt(NodeId n, const std::string& label,
                                 Timestamp t) const override {
    std::vector<NodeId> out;
    for (const OutArc& a : d_.ArcsLiveAt(n, t)) {
      if (a.label == label) out.push_back(a.child);
    }
    return out;
  }

  std::vector<NodeId> ChildrenAtAny(NodeId n, Timestamp t) const override {
    std::vector<NodeId> out;
    for (const OutArc& a : d_.ArcsLiveAt(n, t)) out.push_back(a.child);
    return out;
  }

  Value ValueAt(NodeId n, Timestamp t) const override {
    return d_.ValueAt(n, t);
  }

  const DoemDatabase& doem() const { return d_; }

 private:
  std::vector<std::pair<Timestamp, NodeId>> AnyLabel(
      NodeId n, Annotation::Kind kind) const {
    std::vector<std::pair<Timestamp, NodeId>> out;
    for (const OutArc& a : d_.graph().OutArcs(n)) {
      for (const Annotation& ann : d_.ArcAnnotations(n, a.label, a.child)) {
        if (ann.kind == kind) out.emplace_back(ann.time, a.child);
      }
    }
    return out;
  }

  const DoemDatabase& d_;
};

}  // namespace chorel
}  // namespace doem

#endif  // DOEM_CHOREL_DOEM_VIEW_H_
