#include "chorel/update.h"

#include <vector>

#include "chorel/doem_view.h"
#include "common/strings.h"
#include "lorel/lexer.h"
#include "lorel/lorel.h"

namespace doem {
namespace chorel {

namespace {

using lorel::Lex;
using lorel::Token;
using lorel::TokenKind;

/// An atomic or object literal, parsed from the statement.
struct Literal {
  Value value;                     // atomic, or C for objects
  std::vector<std::pair<std::string, Literal>> children;  // objects only
};

class UpdateParser {
 public:
  UpdateParser(std::vector<Token> tokens, const std::string& text)
      : tokens_(std::move(tokens)), text_(text) {}

  enum class Kind { kInsert, kSet, kRemove };

  Kind kind = Kind::kInsert;
  std::vector<std::string> path;  // plain label chain
  Literal literal;                // insert/set payload
  std::string condition;          // raw text after 'where' ("" if none)

  Status Parse() {
    const Token& head = Peek();
    if (head.kind != TokenKind::kIdent) {
      return Err("expected insert/set/remove");
    }
    std::string verb = ToLower(head.text);
    if (verb == "insert") {
      kind = Kind::kInsert;
    } else if (verb == "set") {
      kind = Kind::kSet;
    } else if (verb == "remove") {
      kind = Kind::kRemove;
    } else {
      return Err("expected insert/set/remove, got '" + head.text + "'");
    }
    ++pos_;
    DOEM_RETURN_IF_ERROR(ParsePath());
    if (kind != Kind::kRemove) {
      if (!(Eat(TokenKind::kColon) && Eat(TokenKind::kEq))) {
        return Err("expected ':=' after the path");
      }
      DOEM_RETURN_IF_ERROR(ParseLiteral(&literal));
      if (kind == Kind::kSet && literal.value.is_complex()) {
        return Err("set takes an atomic value; use insert for objects");
      }
    }
    if (Peek().kind == TokenKind::kIdent &&
        EqualsIgnoreCase(Peek().text, "where")) {
      // The condition is handed to the query engine verbatim.
      size_t offset = Peek().offset;
      condition = std::string(
          StripWhitespace(text_.substr(offset + 5)));
      if (condition.empty()) return Err("empty where clause");
      return Status::OK();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    return Status::OK();
  }

 private:
  const Token& Peek() const {
    return tokens_[pos_ < tokens_.size() ? pos_ : tokens_.size() - 1];
  }
  bool Eat(TokenKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("update statement, offset " +
                              std::to_string(Peek().offset) + ": " + msg);
  }

  Status ParsePath() {
    while (true) {
      if (Peek().kind != TokenKind::kIdent ||
          EqualsIgnoreCase(Peek().text, "where")) {
        return Err("updates target plain label paths");
      }
      path.push_back(Peek().text);
      ++pos_;
      if (!Eat(TokenKind::kDot)) break;
    }
    return Status::OK();
  }

  Status ParseLiteral(Literal* out) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt:
        out->value = Value::Int(t.int_value);
        ++pos_;
        return Status::OK();
      case TokenKind::kReal:
        out->value = Value::Real(t.real_value);
        ++pos_;
        return Status::OK();
      case TokenKind::kString:
        out->value = Value::String(t.text);
        ++pos_;
        return Status::OK();
      case TokenKind::kDate:
        out->value = Value::Time(t.date_value);
        ++pos_;
        return Status::OK();
      case TokenKind::kMinus: {
        ++pos_;
        if (Peek().kind == TokenKind::kInt) {
          out->value = Value::Int(-Peek().int_value);
        } else if (Peek().kind == TokenKind::kReal) {
          out->value = Value::Real(-Peek().real_value);
        } else {
          return Err("expected a number after '-'");
        }
        ++pos_;
        return Status::OK();
      }
      case TokenKind::kIdent:
        if (EqualsIgnoreCase(t.text, "true") ||
            EqualsIgnoreCase(t.text, "false")) {
          out->value = Value::Bool(EqualsIgnoreCase(t.text, "true"));
          ++pos_;
          return Status::OK();
        }
        return Err("bad literal '" + t.text + "'");
      case TokenKind::kLBrace: {
        ++pos_;
        out->value = Value::Complex();
        if (Eat(TokenKind::kRBrace)) return Status::OK();
        while (true) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected a label in object literal");
          }
          std::string label = Peek().text;
          ++pos_;
          if (!Eat(TokenKind::kColon)) return Err("expected ':'");
          Literal child;
          DOEM_RETURN_IF_ERROR(ParseLiteral(&child));
          out->children.emplace_back(std::move(label), std::move(child));
          if (Eat(TokenKind::kComma)) continue;
          if (Eat(TokenKind::kRBrace)) return Status::OK();
          return Err("expected ',' or '}' in object literal");
        }
      }
      default:
        return Err("expected a literal");
    }
  }

  std::vector<Token> tokens_;
  const std::string& text_;
  size_t pos_ = 0;
};

std::string JoinPath(const std::vector<std::string>& path, size_t n) {
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ".";
    out += path[i];
  }
  return out;
}

// Emits creNode/addArc ops materializing `lit` under (parent, label);
// fresh ids come from *next_id.
void EmitLiteral(const Literal& lit, NodeId parent, const std::string& label,
                 NodeId* next_id, ChangeSet* ops) {
  NodeId node = (*next_id)++;
  ops->push_back(ChangeOp::CreNode(node, lit.value));
  ops->push_back(ChangeOp::AddArc(parent, label, node));
  for (const auto& [child_label, child] : lit.children) {
    EmitLiteral(child, node, child_label, next_id, ops);
  }
}

// Runs a generated selection query against the current snapshot.
Result<std::vector<std::vector<lorel::RtVal>>> Select(
    const DoemDatabase& d, const std::string& query) {
  DoemView view(d);
  lorel::EvalOptions opts;
  opts.package_results = false;
  auto r = lorel::RunQuery(query, view, opts);
  if (!r.ok()) return r.status();
  return std::move(r->rows);
}

}  // namespace

Result<ChangeSet> CompileUpdate(const DoemDatabase& d,
                                const std::string& statement) {
  auto tokens = Lex(statement);
  if (!tokens.ok()) return tokens.status();
  UpdateParser p(std::move(tokens).value(), statement);
  DOEM_RETURN_IF_ERROR(p.Parse());
  const std::string where =
      p.condition.empty() ? "" : " where " + p.condition;

  ChangeSet ops;
  NodeId next_id = d.graph().PeekNextId();
  switch (p.kind) {
    case UpdateParser::Kind::kInsert: {
      std::vector<NodeId> parents;
      if (p.path.size() == 1) {
        if (!p.condition.empty()) {
          return Status::Unsupported(
              "a condition on a root-level insert has nothing to filter");
        }
        parents.push_back(d.root());
      } else {
        auto rows = Select(
            d, "select _p from " + JoinPath(p.path, p.path.size() - 1) +
                   " _p" + where);
        if (!rows.ok()) return rows.status();
        for (const auto& row : *rows) parents.push_back(row[0].node);
      }
      for (NodeId parent : parents) {
        EmitLiteral(p.literal, parent, p.path.back(), &next_id, &ops);
      }
      return ops;
    }
    case UpdateParser::Kind::kSet: {
      auto rows = Select(d, "select _t from " +
                                JoinPath(p.path, p.path.size()) + " _t" +
                                where);
      if (!rows.ok()) return rows.status();
      for (const auto& row : *rows) {
        ops.push_back(ChangeOp::UpdNode(row[0].node, p.literal.value));
      }
      return ops;
    }
    case UpdateParser::Kind::kRemove: {
      // Both from-items use full textual paths so that condition paths
      // correlate with the removal target via Lorel's prefix sharing —
      // "remove guide.restaurant where guide.restaurant.name = ..." must
      // remove exactly the restaurants whose own name matches.
      std::string query;
      if (p.path.size() == 1) {
        query = "select _c from " + p.path[0] + " _c" + where;
      } else {
        query = "select _p, _c from " +
                JoinPath(p.path, p.path.size() - 1) + " _p, " +
                JoinPath(p.path, p.path.size()) + " _c" + where;
      }
      auto rows = Select(d, query);
      if (!rows.ok()) return rows.status();
      for (const auto& row : *rows) {
        NodeId parent = p.path.size() == 1 ? d.root() : row[0].node;
        NodeId child = p.path.size() == 1 ? row[0].node : row[1].node;
        ops.push_back(ChangeOp::RemArc(parent, p.path.back(), child));
      }
      return ops;
    }
  }
  return Status::Internal("unreachable");
}

Status ApplyUpdate(DoemDatabase* d, Timestamp t,
                   const std::string& statement) {
  auto ops = CompileUpdate(*d, statement);
  if (!ops.ok()) return ops.status();
  return d->ApplyChangeSet(t, *ops);
}

}  // namespace chorel
}  // namespace doem
