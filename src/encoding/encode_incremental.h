#ifndef DOEM_ENCODING_ENCODE_INCREMENTAL_H_
#define DOEM_ENCODING_ENCODE_INCREMENTAL_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "doem/doem.h"
#include "encoding/encode.h"
#include "oem/change.h"
#include "oem/oem.h"

namespace doem {

/// Incremental maintenance of the Section 5.1 DOEM-in-OEM encoding: the
/// encoding is built once and then *patched* with each poll's change set,
/// so per-poll encoding cost is O(|delta|) instead of O(|history|).
///
/// Auxiliary nodes (value atoms, upd records, history objects) are
/// allocated in a reserved high id band (>= kAuxIdBase) so that source
/// node ids handed out later can never collide with auxiliary ids. As a
/// consequence a maintained encoding has *different auxiliary ids* than a
/// fresh EncodeDoem(d) — the two are equal up to auxiliary-node renaming:
/// DecodeDoem of either yields the same DoemDatabase, and graph_compare's
/// Isomorphic holds. Query results are unaffected because answers expose
/// encoding-object ids (DOEM ids, shared by construction) and atomic
/// values, never auxiliary ids.
class IncrementalEncoder {
 public:
  /// Auxiliary ids live at or above this floor. Source/DOEM ids (QSS
  /// wrapper nodes use 1<<62) stay far below it.
  static constexpr NodeId kAuxIdBase = NodeId{1} << 63;

  /// Cumulative maintenance tallies since Create (DESIGN.md §6d): every
  /// change op patched in, and every auxiliary node (value atom, upd
  /// record, history object, timestamp atom) the patches allocated. The
  /// initial full encode is not counted — these measure the *patching*
  /// work the incremental path does per poll.
  struct PatchStats {
    size_t patch_ops = 0;
    size_t aux_allocations = 0;
  };

  /// Builds the full encoding of `d` plus the lookup tables used for
  /// O(delta) patching. Fails if `d` has node ids at or above kAuxIdBase.
  static Result<IncrementalEncoder> Create(const DoemDatabase& d);

  /// Patches the encoding with one change set. Call *after* the change
  /// set has been applied to `d` (i.e. `d` is the post-state of
  /// `d.ApplyChangeSet(t, ops)`). Ops whose node/arc was stillborn-pruned
  /// from `d` are skipped, matching what a fresh encode of `d` would
  /// produce. On error the encoding is unusable; rebuild via Create.
  Status ApplyDelta(const DoemDatabase& d, Timestamp t, const ChangeSet& ops);

  const OemDatabase& encoding() const { return enc_; }

  const PatchStats& stats() const { return stats_; }

 private:
  IncrementalEncoder() = default;

  Status PatchCreNode(const DoemDatabase& d, Timestamp t, const ChangeOp& op);
  Status PatchUpdNode(const DoemDatabase& d, Timestamp t, const ChangeOp& op);
  Status PatchAddArc(const DoemDatabase& d, Timestamp t, const ChangeOp& op);
  Status PatchRemArc(Timestamp t, const ChangeOp& op);

  /// Allocates an auxiliary atom/complex node, counting it in stats_.
  NodeId NewAux(const Value& v);
  NodeId NewAuxComplex();

  OemDatabase enc_;
  PatchStats stats_;
  // (parent, label, child) -> &l-history object id, so re-adds and
  // removals reach their history object without scanning same-label
  // siblings.
  std::unordered_map<std::string, NodeId> arc_history_;
};

}  // namespace doem

#endif  // DOEM_ENCODING_ENCODE_INCREMENTAL_H_
