#include "encoding/doem_text.h"

#include "encoding/encode.h"
#include "oem/oem_text.h"

namespace doem {

std::string WriteDoemText(const DoemDatabase& d) {
  auto enc = EncodeDoem(d);
  if (!enc.ok()) return std::string();
  return WriteOemText(*enc);
}

Result<DoemDatabase> ParseDoemText(const std::string& text) {
  auto enc = ParseOemText(text);
  if (!enc.ok()) return enc.status();
  return DecodeDoem(*enc);
}

}  // namespace doem
