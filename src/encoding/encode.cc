#include "encoding/encode.h"

#include <algorithm>
#include <map>

namespace doem {

bool IsEncodingLabel(const std::string& label) {
  return !label.empty() && label[0] == '&';
}

std::string HistoryLabelFor(const std::string& label) {
  return "&" + label + "-history";
}

bool LabelFromHistory(const std::string& encoded, std::string* label) {
  constexpr std::string_view kSuffix = "-history";
  if (encoded.size() <= 1 + kSuffix.size() || encoded[0] != '&') {
    return false;
  }
  if (encoded.compare(encoded.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) != 0) {
    return false;
  }
  *label = encoded.substr(1, encoded.size() - 1 - kSuffix.size());
  return true;
}

std::string EncodeArcKey(NodeId p, const std::string& l, NodeId c) {
  return std::to_string(p) + "\x1f" + l + "\x1f" + std::to_string(c);
}

Result<OemDatabase> EncodeDoem(const DoemDatabase& d) {
  return EncodeDoem(d, 0, nullptr);
}

Result<OemDatabase> EncodeDoem(const DoemDatabase& d, NodeId aux_floor,
                               EncodeTables* tables) {
  const OemDatabase& g = d.graph();
  if (g.root() == kInvalidNode) {
    return Status::InvalidArgument("EncodeDoem: database has no root");
  }
  OemDatabase out;
  // Encoding objects reuse the DOEM ids; auxiliary ids start above them
  // (or above aux_floor, when the caller reserves an id band so future
  // DOEM ids cannot collide with auxiliary ids).
  for (NodeId n : g.NodeIds()) {
    if (n >= aux_floor && aux_floor != 0) {
      return Status::InvalidArgument(
          "EncodeDoem: node id " + std::to_string(n) +
          " at or above the auxiliary id floor");
    }
    DOEM_RETURN_IF_ERROR(out.CreNode(n, Value::Complex()));
  }
  out.ReserveIdsBelow(std::max(g.PeekNextId(), aux_floor));

  for (NodeId n : g.NodeIds()) {
    // &val.
    const Value& v = d.CurrentValue(n);
    if (v.is_complex()) {
      DOEM_RETURN_IF_ERROR(out.AddArc(n, "&val", n));
    } else {
      DOEM_RETURN_IF_ERROR(out.AddArc(n, "&val", out.NewNode(v)));
    }
    // &cre.
    if (auto t = d.CreTime(n)) {
      DOEM_RETURN_IF_ERROR(
          out.AddArc(n, "&cre", out.NewNode(Value::Time(*t))));
    }
    // &upd records.
    for (const UpdRecord& u : d.UpdRecords(n)) {
      NodeId rec = out.NewComplex();
      DOEM_RETURN_IF_ERROR(out.AddArc(n, "&upd", rec));
      DOEM_RETURN_IF_ERROR(
          out.AddArc(rec, "&time", out.NewNode(Value::Time(u.time))));
      DOEM_RETURN_IF_ERROR(
          out.AddArc(rec, "&ov", out.NewNode(u.old_value)));
      DOEM_RETURN_IF_ERROR(
          out.AddArc(rec, "&nv", out.NewNode(u.new_value)));
    }
    // Arcs: current snapshot arcs by their own label, plus one history
    // object per physical arc.
    for (const OutArc& a : g.OutArcs(n)) {
      if (IsEncodingLabel(a.label)) {
        return Status::InvalidArgument(
            "EncodeDoem: source label '" + a.label +
            "' uses the reserved '&' prefix");
      }
      if (d.ArcCurrentlyLive(n, a.label, a.child)) {
        DOEM_RETURN_IF_ERROR(out.AddArc(n, a.label, a.child));
      }
      NodeId hist = out.NewComplex();
      if (tables != nullptr) {
        tables->arc_history[EncodeArcKey(n, a.label, a.child)] = hist;
      }
      DOEM_RETURN_IF_ERROR(out.AddArc(n, HistoryLabelFor(a.label), hist));
      DOEM_RETURN_IF_ERROR(out.AddArc(hist, "&target", a.child));
      for (const Annotation& ann : d.ArcAnnotations(n, a.label, a.child)) {
        const char* label =
            ann.kind == Annotation::Kind::kAdd ? "&add" : "&rem";
        DOEM_RETURN_IF_ERROR(
            out.AddArc(hist, label, out.NewNode(Value::Time(ann.time))));
      }
    }
  }
  DOEM_RETURN_IF_ERROR(out.SetRoot(g.root()));
  // Deleted DOEM objects are unreachable from the root in the DOEM graph
  // but their encodings remain reachable only if some history object
  // points at them; both are retained in the encoding, matching the DOEM
  // graph's physical content. Sanity: nothing should be dangling.
  out.CollectGarbage();
  return out;
}

namespace {

Status Err(const std::string& msg) {
  return Status::InvalidArgument("DecodeDoem: " + msg);
}

}  // namespace

Result<DoemDatabase> DecodeDoem(const OemDatabase& enc) {
  if (enc.root() == kInvalidNode) {
    return Err("encoding has no root");
  }
  // Encoding objects are exactly the nodes with a &val arc.
  std::vector<NodeId> objects;
  for (NodeId n : enc.NodeIds()) {
    if (!enc.Children(n, "&val").empty()) objects.push_back(n);
  }

  OemDatabase graph;
  std::unordered_map<NodeId, AnnotationList> node_annots;
  std::vector<std::pair<Arc, AnnotationList>> arc_annots;

  // Pass 1: values and node annotations.
  for (NodeId n : objects) {
    std::vector<NodeId> vals = enc.Children(n, "&val");
    if (vals.size() != 1) return Err("node with multiple &val arcs");
    Value value;
    if (vals[0] == n) {
      value = Value::Complex();
    } else {
      const Value* v = enc.GetValue(vals[0]);
      if (v == nullptr || v->is_complex()) {
        return Err("&val target is not atomic");
      }
      value = *v;
    }
    DOEM_RETURN_IF_ERROR(graph.CreNode(n, value));

    AnnotationList annots;
    std::vector<NodeId> cres = enc.Children(n, "&cre");
    if (cres.size() > 1) return Err("node with multiple &cre arcs");
    if (cres.size() == 1) {
      const Value* t = enc.GetValue(cres[0]);
      if (t == nullptr || t->kind() != Value::Kind::kTimestamp) {
        return Err("&cre value is not a timestamp");
      }
      annots.push_back(Annotation::Cre(t->AsTime()));
    }
    std::vector<Annotation> upds;
    for (NodeId rec : enc.Children(n, "&upd")) {
      NodeId tn = enc.Child(rec, "&time");
      NodeId ovn = enc.Child(rec, "&ov");
      if (tn == kInvalidNode || ovn == kInvalidNode) {
        return Err("&upd record missing &time or &ov");
      }
      const Value* t = enc.GetValue(tn);
      const Value* ov = enc.GetValue(ovn);
      if (t == nullptr || t->kind() != Value::Kind::kTimestamp) {
        return Err("&upd &time is not a timestamp");
      }
      upds.push_back(Annotation::Upd(t->AsTime(), *ov));
    }
    std::sort(upds.begin(), upds.end(),
              [](const Annotation& a, const Annotation& b) {
                return a.time < b.time;
              });
    annots.insert(annots.end(), upds.begin(), upds.end());
    if (!annots.empty()) node_annots[n] = std::move(annots);
  }

  // Pass 2: arcs from history objects; cross-check current arcs.
  for (NodeId n : objects) {
    std::map<std::pair<std::string, NodeId>, bool> current;  // live arcs
    for (const OutArc& a : enc.OutArcs(n)) {
      if (!IsEncodingLabel(a.label)) {
        current[{a.label, a.child}] = false;  // seen, not yet matched
      }
    }
    for (const OutArc& a : enc.OutArcs(n)) {
      std::string label;
      if (!LabelFromHistory(a.label, &label)) {
        // The reserved '&' namespace on an encoding object is closed:
        // &val/&cre/&upd structure plus &<label>-history objects. Anything
        // else is a malformed encoding; silently dropping it would decode
        // to a database that does not re-encode to the same text.
        if (IsEncodingLabel(a.label) && a.label != "&val" &&
            a.label != "&cre" && a.label != "&upd") {
          return Err("unknown reserved label '" + a.label +
                     "' on encoding object");
        }
        continue;
      }
      if (IsEncodingLabel(label)) {
        // E.g. "&&x-history": the decoded arc label would itself sit in
        // the reserved namespace, which no DOEM database can round-trip.
        return Err("history label '" + a.label +
                   "' decodes to reserved arc label '" + label + "'");
      }
      NodeId hist = a.child;
      NodeId target = enc.Child(hist, "&target");
      if (target == kInvalidNode) return Err("history object lacks &target");
      if (!graph.HasNode(target)) {
        return Err("history &target is not an encoding object");
      }
      AnnotationList annots;
      for (const OutArc& ha : enc.OutArcs(hist)) {
        Annotation::Kind kind;
        if (ha.label == "&add") {
          kind = Annotation::Kind::kAdd;
        } else if (ha.label == "&rem") {
          kind = Annotation::Kind::kRem;
        } else {
          continue;
        }
        const Value* t = enc.GetValue(ha.child);
        if (t == nullptr || t->kind() != Value::Kind::kTimestamp) {
          return Err("history timestamp is not a timestamp value");
        }
        annots.push_back(Annotation{kind, t->AsTime(), Value()});
      }
      std::sort(annots.begin(), annots.end(),
                [](const Annotation& a1, const Annotation& a2) {
                  return a1.time < a2.time;
                });
      // AddArcForce: the decoded node may be atomic *now* while its
      // removed arcs remain in the raw graph.
      DOEM_RETURN_IF_ERROR(graph.AddArcForce(n, label, target));
      bool live = annots.empty() ||
                  annots.back().kind == Annotation::Kind::kAdd;
      auto it = current.find({label, target});
      if (live != (it != current.end())) {
        return Err("current arc (" + std::to_string(n) + ", " + label +
                   ", " + std::to_string(target) +
                   ") inconsistent with its history annotations");
      }
      if (it != current.end()) it->second = true;
      arc_annots.emplace_back(Arc{n, label, target}, std::move(annots));
    }
    for (const auto& [key, matched] : current) {
      if (!matched) {
        return Err("current arc (" + std::to_string(n) + ", " + key.first +
                   ") has no history object");
      }
    }
  }

  DOEM_RETURN_IF_ERROR(graph.SetRoot(enc.root()));
  // The decoded database's id space is exactly its real objects; CreNode
  // above already advanced the watermark past the largest one. Inheriting
  // enc.PeekNextId() here would also absorb the encoder's synthetic aux
  // ids, so an encode -> decode -> encode round trip would allocate aux
  // ids at a higher floor each cycle and the re-encoded text would not be
  // byte-stable (EncodeDoem keeps aux ids collision-free on its own via
  // aux_floor).
  return DoemDatabase::FromParts(std::move(graph), std::move(node_annots),
                                 std::move(arc_annots));
}

}  // namespace doem
