#ifndef DOEM_ENCODING_ENCODE_H_
#define DOEM_ENCODING_ENCODE_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "doem/doem.h"
#include "oem/oem.h"

namespace doem {

/// The DOEM-in-OEM encoding of Section 5.1 (Figure 5).
///
/// Every DOEM object o becomes an encoding object o' (same node id). All
/// encoding objects are complex; special labels start with '&':
///
///   &val          o atomic: arc to an atomic node holding the current
///                 value. o complex: arc from o' to itself.
///   &cre          (if o has cre(t)) arc to an atomic timestamp node.
///   &upd          one complex subobject per upd(t, ov), with &time, &ov,
///                 and the redundant-but-convenient &nv (Section 5.1).
///   l             for each *currently live* DOEM arc (o, l, p): an arc
///                 labeled l from o' to p'.
///   &l-history    for each DOEM arc (o, l, p), live or removed: a complex
///                 history object with &target (arc to p') and one atomic
///                 timestamp subobject per add/rem annotation, labeled
///                 &add / &rem.
///
/// Source labels must not start with '&' (the paper reserves the prefix).

/// True if `label` is one of the encoding's reserved labels or starts
/// with '&'.
bool IsEncodingLabel(const std::string& label);

/// "&" + label + "-history".
std::string HistoryLabelFor(const std::string& label);

/// Inverse of HistoryLabelFor; empty optional-like: returns false if
/// `encoded` is not a history label.
bool LabelFromHistory(const std::string& encoded, std::string* label);

/// Encodes `d` as a plain OEM database. Encoding objects keep their DOEM
/// node ids; auxiliary nodes (value atoms, upd records, history objects)
/// get fresh ids above them.
Result<OemDatabase> EncodeDoem(const DoemDatabase& d);

/// Side tables produced while encoding, for O(delta) incremental
/// maintenance (encode_incremental.h).
struct EncodeTables {
  /// (parent, label, child) — keyed as DoemDatabase's internal arc key —
  /// to the id of the arc's &l-history object.
  std::unordered_map<std::string, NodeId> arc_history;
};

/// As EncodeDoem, with two extensions used by the incremental maintainer:
/// auxiliary node ids are allocated at or above `aux_floor` (pass 0 for
/// the default just-above-the-DOEM-ids placement), and when `tables` is
/// non-null it receives the arc-history lookup table.
Result<OemDatabase> EncodeDoem(const DoemDatabase& d, NodeId aux_floor,
                               EncodeTables* tables);

/// The arc-history table key for (p, l, c).
std::string EncodeArcKey(NodeId p, const std::string& l, NodeId c);

/// Reconstructs the DOEM database from its encoding. Validates structural
/// consistency (every encoding object has exactly one &val; current arcs
/// agree with the liveness implied by the history annotations) and
/// returns a database satisfying DecodeDoem(EncodeDoem(d)) == d.
Result<DoemDatabase> DecodeDoem(const OemDatabase& encoded);

}  // namespace doem

#endif  // DOEM_ENCODING_ENCODE_H_
