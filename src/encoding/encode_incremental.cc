#include "encoding/encode_incremental.h"

namespace doem {

Result<IncrementalEncoder> IncrementalEncoder::Create(const DoemDatabase& d) {
  IncrementalEncoder e;
  EncodeTables tables;
  auto enc = EncodeDoem(d, kAuxIdBase, &tables);
  if (!enc.ok()) return enc.status();
  e.enc_ = std::move(enc).value();
  e.arc_history_ = std::move(tables.arc_history);
  return e;
}

Status IncrementalEncoder::ApplyDelta(const DoemDatabase& d, Timestamp t,
                                      const ChangeSet& ops) {
  for (const ChangeOp& op : CanonicalOrder(ops)) {
    ++stats_.patch_ops;
    Status s;
    switch (op.kind) {
      case ChangeOp::Kind::kCreNode:
        s = PatchCreNode(d, t, op);
        break;
      case ChangeOp::Kind::kUpdNode:
        s = PatchUpdNode(d, t, op);
        break;
      case ChangeOp::Kind::kAddArc:
        s = PatchAddArc(d, t, op);
        break;
      case ChangeOp::Kind::kRemArc:
        s = PatchRemArc(t, op);
        break;
    }
    if (!s.ok()) {
      return Status(s.code(),
                    "ApplyDelta: " + op.ToString() + ": " + s.message());
    }
  }
  return Status::OK();
}

Status IncrementalEncoder::PatchCreNode(const DoemDatabase& d, Timestamp t,
                                        const ChangeOp& op) {
  // Stillborn nodes were physically pruned from the post-state; a fresh
  // encode never sees them, so neither do we.
  if (!d.graph().HasNode(op.node)) return Status::OK();
  if (op.node >= kAuxIdBase) {
    return Status::InvalidArgument("node id in the auxiliary id band");
  }
  DOEM_RETURN_IF_ERROR(enc_.CreNode(op.node, Value::Complex()));
  const Value& v = d.CurrentValue(op.node);
  if (v.is_complex()) {
    DOEM_RETURN_IF_ERROR(enc_.AddArc(op.node, "&val", op.node));
  } else {
    DOEM_RETURN_IF_ERROR(enc_.AddArc(op.node, "&val", NewAux(v)));
  }
  return enc_.AddArc(op.node, "&cre", NewAux(Value::Time(t)));
}

Status IncrementalEncoder::PatchUpdNode(const DoemDatabase& d, Timestamp t,
                                        const ChangeOp& op) {
  if (!d.graph().HasNode(op.node)) return Status::OK();
  const AnnotationList& annots = d.NodeAnnotations(op.node);
  if (annots.empty() || annots.back().kind != Annotation::Kind::kUpd ||
      annots.back().time != t) {
    return Status::Internal("post-state lacks the upd annotation");
  }
  const Value& ov = annots.back().old_value;
  const Value& nv = d.CurrentValue(op.node);

  // Re-point &val. The predecessor upd record's &nv already holds ov (it
  // was the then-current value), so only this arc and the new record
  // change.
  NodeId cur = enc_.Child(op.node, "&val");
  if (cur == kInvalidNode) {
    return Status::Internal("encoding object lacks &val");
  }
  if (cur != op.node && !nv.is_complex()) {
    // Atomic -> atomic: update the value atom in place.
    DOEM_RETURN_IF_ERROR(enc_.UpdNode(cur, nv));
  } else {
    DOEM_RETURN_IF_ERROR(enc_.RemArc(op.node, "&val", cur));
    if (cur != op.node) DOEM_RETURN_IF_ERROR(enc_.EraseNodeForce(cur));
    if (nv.is_complex()) {
      DOEM_RETURN_IF_ERROR(enc_.AddArc(op.node, "&val", op.node));
    } else {
      DOEM_RETURN_IF_ERROR(enc_.AddArc(op.node, "&val", NewAux(nv)));
    }
  }

  NodeId rec = NewAuxComplex();
  DOEM_RETURN_IF_ERROR(enc_.AddArc(op.node, "&upd", rec));
  DOEM_RETURN_IF_ERROR(
      enc_.AddArc(rec, "&time", NewAux(Value::Time(t))));
  DOEM_RETURN_IF_ERROR(enc_.AddArc(rec, "&ov", NewAux(ov)));
  return enc_.AddArc(rec, "&nv", NewAux(nv));
}

Status IncrementalEncoder::PatchAddArc(const DoemDatabase& d, Timestamp t,
                                       const ChangeOp& op) {
  const Arc& a = op.arc;
  // Arcs incident to a stillborn node were pruned with it.
  if (!d.graph().HasArc(a.parent, a.label, a.child)) return Status::OK();
  if (IsEncodingLabel(a.label)) {
    return Status::InvalidArgument("source label '" + a.label +
                                   "' uses the reserved '&' prefix");
  }
  DOEM_RETURN_IF_ERROR(enc_.AddArc(a.parent, a.label, a.child));
  const AnnotationList& annots =
      d.ArcAnnotations(a.parent, a.label, a.child);
  if (annots.size() == 1) {
    // First annotation ever: a brand-new physical arc, new history object.
    NodeId hist = NewAuxComplex();
    arc_history_[EncodeArcKey(a.parent, a.label, a.child)] = hist;
    DOEM_RETURN_IF_ERROR(
        enc_.AddArc(a.parent, HistoryLabelFor(a.label), hist));
    DOEM_RETURN_IF_ERROR(enc_.AddArc(hist, "&target", a.child));
    return enc_.AddArc(hist, "&add", NewAux(Value::Time(t)));
  }
  // Re-add of a previously removed arc: append to its history object.
  auto it = arc_history_.find(EncodeArcKey(a.parent, a.label, a.child));
  if (it == arc_history_.end()) {
    return Status::Internal("re-added arc has no history object");
  }
  return enc_.AddArc(it->second, "&add", NewAux(Value::Time(t)));
}

NodeId IncrementalEncoder::NewAux(const Value& v) {
  ++stats_.aux_allocations;
  return enc_.NewNode(v);
}

NodeId IncrementalEncoder::NewAuxComplex() {
  ++stats_.aux_allocations;
  return enc_.NewComplex();
}

Status IncrementalEncoder::PatchRemArc(Timestamp t, const ChangeOp& op) {
  const Arc& a = op.arc;
  // Create indexed every physical arc's history object, and PatchAddArc
  // indexes new ones, so a live arc always has an entry.
  auto it = arc_history_.find(EncodeArcKey(a.parent, a.label, a.child));
  if (it == arc_history_.end()) {
    return Status::Internal("removed arc has no history object");
  }
  DOEM_RETURN_IF_ERROR(enc_.RemArc(a.parent, a.label, a.child));
  return enc_.AddArc(it->second, "&rem", NewAux(Value::Time(t)));
}

}  // namespace doem
