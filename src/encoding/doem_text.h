#ifndef DOEM_ENCODING_DOEM_TEXT_H_
#define DOEM_ENCODING_DOEM_TEXT_H_

#include <string>

#include "common/result.h"
#include "doem/doem.h"

namespace doem {

/// Text persistence for DOEM databases, composed exactly the way the
/// paper stores DOEM in Lore: serialize the Section 5.1 OEM encoding in
/// the OEM text format (oem/oem_text.h), and decode on load. The
/// round trip ParseDoemText(WriteDoemText(d)) reproduces `d` exactly,
/// including node identifiers, annotations, and the deleted set.
std::string WriteDoemText(const DoemDatabase& d);

Result<DoemDatabase> ParseDoemText(const std::string& text);

}  // namespace doem

#endif  // DOEM_ENCODING_DOEM_TEXT_H_
