#ifndef DOEM_COMMON_RESULT_H_
#define DOEM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace doem {

/// Holder for either a value of type T or an error Status (never both).
/// Analogous to arrow::Result / absl::StatusOr.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the common error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating a non-OK status to the
/// caller; otherwise moves the value into `lhs`.
#define DOEM_ASSIGN_OR_RETURN(lhs, expr)              \
  auto DOEM_CONCAT_(_doem_result_, __LINE__) = (expr);             \
  if (!DOEM_CONCAT_(_doem_result_, __LINE__).ok())                 \
    return DOEM_CONCAT_(_doem_result_, __LINE__).status();         \
  lhs = std::move(DOEM_CONCAT_(_doem_result_, __LINE__)).value()

#define DOEM_CONCAT_INNER_(a, b) a##b
#define DOEM_CONCAT_(a, b) DOEM_CONCAT_INNER_(a, b)

}  // namespace doem

#endif  // DOEM_COMMON_RESULT_H_
