#ifndef DOEM_COMMON_STATUS_H_
#define DOEM_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace doem {

/// Error categories used across the library. Public APIs never throw;
/// fallible operations return a Status or a Result<T> (see result.h).
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument violated a documented precondition.
  kInvalidArgument,
  /// A referenced node, arc, or named entity does not exist.
  kNotFound,
  /// An entity that must be fresh (node id, arc, subscription name)
  /// already exists.
  kAlreadyExists,
  /// A change operation or history is not valid for the database it is
  /// applied to (Definitions 2.1 and 2.2 of the paper).
  kInvalidChange,
  /// A query or serialized database failed to parse.
  kParseError,
  /// A well-formed query uses a feature in an unsupported position.
  kUnsupported,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// An autonomous information source failed to produce a usable
  /// snapshot (connection refused, malformed/truncated result, ...).
  /// Typically transient; QSS retries and eventually quarantines.
  kUnavailable,
  /// An operation exceeded its (simulated) deadline.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// Cheap to copy in the OK case (no allocation). Error statuses carry a
/// message describing what failed; messages are intended for humans and are
/// not part of the API contract.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidChange(std::string msg) {
    return Status(StatusCode::kInvalidChange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status.
#define DOEM_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::doem::Status _doem_status = (expr);         \
    if (!_doem_status.ok()) return _doem_status;  \
  } while (false)

}  // namespace doem

#endif  // DOEM_COMMON_STATUS_H_
