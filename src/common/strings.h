#ifndef DOEM_COMMON_STRINGS_H_
#define DOEM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace doem {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII case-insensitive equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// SQL LIKE match: '%' matches any sequence (including empty), '_' matches
/// exactly one character; everything else matches literally.
/// This is the semantics of the Lorel `like` operator used in the paper's
/// polling-query example (Section 6).
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Escapes a string for inclusion in double quotes in the OEM text format
/// and in query literals ("\\", "\"", "\n", "\t").
std::string EscapeString(std::string_view s);

/// True if `s` is a valid bare identifier in the OEM text format / query
/// syntax: [A-Za-z_][A-Za-z0-9_-]*.
bool IsBareIdentifier(std::string_view s);

}  // namespace doem

#endif  // DOEM_COMMON_STRINGS_H_
