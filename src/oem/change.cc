#include "oem/change.h"

#include <algorithm>
#include <map>
#include <set>

namespace doem {

Status ChangeOp::ApplyTo(OemDatabase* db) const {
  switch (kind) {
    case Kind::kCreNode:
      return db->CreNode(node, value);
    case Kind::kUpdNode:
      return db->UpdNode(node, value);
    case Kind::kAddArc:
      return db->AddArc(arc.parent, arc.label, arc.child);
    case Kind::kRemArc:
      return db->RemArc(arc.parent, arc.label, arc.child);
  }
  return Status::Internal("unknown ChangeOp kind");
}

std::string ChangeOp::ToString() const {
  switch (kind) {
    case Kind::kCreNode:
      return "creNode(" + std::to_string(node) + ", " + value.ToString() +
             ")";
    case Kind::kUpdNode:
      return "updNode(" + std::to_string(node) + ", " + value.ToString() +
             ")";
    case Kind::kAddArc:
      return "addArc" + arc.ToString();
    case Kind::kRemArc:
      return "remArc" + arc.ToString();
  }
  return "?";
}

Status CheckChangeSetConflicts(const ChangeSet& ops) {
  std::set<NodeId> cre_nodes;
  std::set<NodeId> upd_nodes;
  std::map<std::tuple<NodeId, std::string, NodeId>, ChangeOp::Kind> arcs;
  for (const ChangeOp& op : ops) {
    switch (op.kind) {
      case ChangeOp::Kind::kCreNode:
        if (!cre_nodes.insert(op.node).second) {
          return Status::InvalidChange("two creNode operations on node " +
                                       std::to_string(op.node));
        }
        break;
      case ChangeOp::Kind::kUpdNode:
        if (!upd_nodes.insert(op.node).second) {
          return Status::InvalidChange("two updNode operations on node " +
                                       std::to_string(op.node));
        }
        break;
      case ChangeOp::Kind::kAddArc:
      case ChangeOp::Kind::kRemArc: {
        auto key = std::make_tuple(op.arc.parent, op.arc.label, op.arc.child);
        auto [it, inserted] = arcs.emplace(key, op.kind);
        if (!inserted) {
          if (it->second != op.kind) {
            return Status::InvalidChange(
                "addArc and remArc of the same arc " + op.arc.ToString() +
                " in one change set (forbidden by Definition 2.2)");
          }
          return Status::InvalidChange("duplicate operation on arc " +
                                       op.arc.ToString());
        }
        break;
      }
    }
  }
  for (NodeId n : cre_nodes) {
    if (upd_nodes.contains(n)) {
      return Status::InvalidChange(
          "creNode and updNode on node " + std::to_string(n) +
          " in one change set; fold the update into the creation value");
    }
  }
  return Status::OK();
}

ChangeSet CanonicalOrder(const ChangeSet& ops) {
  ChangeSet ordered;
  ordered.reserve(ops.size());
  for (ChangeOp::Kind phase :
       {ChangeOp::Kind::kCreNode, ChangeOp::Kind::kRemArc,
        ChangeOp::Kind::kUpdNode, ChangeOp::Kind::kAddArc}) {
    for (const ChangeOp& op : ops) {
      if (op.kind == phase) ordered.push_back(op);
    }
  }
  return ordered;
}

Status ApplyChangeSet(OemDatabase* db, const ChangeSet& ops,
                      std::vector<NodeId>* deleted) {
  DOEM_RETURN_IF_ERROR(CheckChangeSetConflicts(ops));
  OemDatabase scratch = *db;
  for (const ChangeOp& op : CanonicalOrder(ops)) {
    DOEM_RETURN_IF_ERROR(op.ApplyTo(&scratch));
  }
  std::vector<NodeId> removed = scratch.CollectGarbage();
  if (deleted != nullptr) {
    deleted->insert(deleted->end(), removed.begin(), removed.end());
  }
  *db = std::move(scratch);
  return Status::OK();
}

namespace {
// Deterministic sort key for multiset comparison.
bool OpLess(const ChangeOp& a, const ChangeOp& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.node != b.node) return a.node < b.node;
  if (a.arc.parent != b.arc.parent) return a.arc.parent < b.arc.parent;
  if (a.arc.label != b.arc.label) return a.arc.label < b.arc.label;
  if (a.arc.child != b.arc.child) return a.arc.child < b.arc.child;
  return a.value < b.value;
}
}  // namespace

bool ChangeSetEquals(const ChangeSet& a, const ChangeSet& b) {
  if (a.size() != b.size()) return false;
  ChangeSet sa = a, sb = b;
  std::sort(sa.begin(), sa.end(), OpLess);
  std::sort(sb.begin(), sb.end(), OpLess);
  return sa == sb;
}

std::string ChangeSetToString(const ChangeSet& ops) {
  std::string out = "{";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out += ", ";
    out += ops[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace doem
