#include "oem/oem_text.h"

#include <cctype>
#include <charconv>
#include <unordered_set>
#include <vector>

#include "common/strings.h"

namespace doem {

namespace {

// The parser recurses per nesting level; beyond this depth it reports an
// error instead of risking the stack. (The writer below is iterative and
// handles any depth.)
constexpr int kMaxParseDepth = 5000;

void WriteLabel(const std::string& label, std::string* out) {
  if (IsBareIdentifier(label)) {
    out->append(label);
  } else {
    out->append("\"").append(EscapeString(label)).append("\"");
  }
}

// Iterative pre-order writer with an explicit stack, so arbitrarily deep
// databases serialize without exhausting the call stack.
void WriteGraph(const OemDatabase& db, NodeId root, std::string* out) {
  struct Frame {
    NodeId node;
    size_t next_arc = 0;
  };
  std::unordered_set<NodeId> defined;
  std::vector<Frame> stack;

  // Emits "&id" plus the value head; returns true if a complex body was
  // opened (caller pushes a frame).
  auto emit_head = [&](NodeId n) {
    out->append("&").append(std::to_string(n));
    if (!defined.insert(n).second) return false;  // back-reference
    const Value& v = *db.GetValue(n);
    if (v.is_atomic()) {
      out->append(" ").append(v.ToString());
      return false;
    }
    if (db.OutArcs(n).empty()) {
      out->append(" {}");
      return false;
    }
    out->append(" {\n");
    return true;
  };
  // After a child (inline or closed block) finishes: comma if the parent
  // has more arcs, newline either way.
  auto after_child = [&]() {
    if (stack.empty()) {
      out->append("\n");
      return;
    }
    const Frame& p = stack.back();
    out->append(p.next_arc < db.OutArcs(p.node).size() ? ",\n" : "\n");
  };

  if (emit_head(root)) {
    stack.push_back(Frame{root});
  } else {
    after_child();
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& arcs = db.OutArcs(f.node);
    if (f.next_arc == arcs.size()) {
      out->append(std::string((stack.size() - 1) * 2, ' ')).append("}");
      stack.pop_back();
      after_child();
      continue;
    }
    const OutArc& a = arcs[f.next_arc++];
    out->append(std::string(stack.size() * 2, ' '));
    WriteLabel(a.label, out);
    out->append(": ");
    if (emit_head(a.child)) {
      stack.push_back(Frame{a.child});
    } else {
      after_child();
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseSingleValue() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == 'C' &&
        (pos_ + 1 == text_.size() ||
         !std::isalnum(static_cast<unsigned char>(text_[pos_ + 1])))) {
      ++pos_;
      SkipSpace();
      if (pos_ != text_.size()) return Err("trailing input after value");
      return Value::Complex();
    }
    Value v;
    DOEM_RETURN_IF_ERROR(ParseAtomic(&v));
    SkipSpace();
    if (pos_ != text_.size()) return Err("trailing input after value");
    return v;
  }

  Result<OemDatabase> Parse() {
    OemDatabase db;
    NodeId root;
    Status s = ParseNode(&db, &root);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input after root object");
    }
    // Undefined references are nodes we never gave a value.
    for (NodeId n : pending_) {
      if (!defined_.contains(n)) {
        return Status::ParseError("node &" + std::to_string(n) +
                                  " referenced but never defined");
      }
    }
    DOEM_RETURN_IF_ERROR(db.SetRoot(root));
    return db;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status ParseUInt(NodeId* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected node id digits after '&'");
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, *out);
    (void)ptr;
    if (ec != std::errc() || *out == kInvalidNode) {
      return Err("bad node id");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    // Assumes opening quote already consumed.
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\n') ++line_;
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '"':
            out->push_back('"');
            break;
          default:
            return Err(std::string("bad escape '\\") + e + "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Err("unterminated string");
  }

  // Parses an atomic literal (number, string, bool, timestamp).
  Status ParseAtomic(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("expected a value");
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string s;
      DOEM_RETURN_IF_ERROR(ParseString(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    if (c == '@') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != ',' &&
             text_[pos_] != '}' && text_[pos_] != '\n' &&
             !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      Timestamp t;
      if (!Timestamp::Parse(text_.substr(start, pos_ - start), &t)) {
        return Err("bad timestamp literal");
      }
      *out = Value::Time(t);
      return Status::OK();
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_real = false;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' || d == 'e' || d == 'E' ||
                   ((d == '+' || d == '-') && is_real)) {
          is_real = true;
          ++pos_;
        } else {
          break;
        }
      }
      std::string num = text_.substr(start, pos_ - start);
      if (is_real) {
        try {
          *out = Value::Real(std::stod(num));
        } catch (...) {
          return Err("bad real literal '" + num + "'");
        }
      } else {
        int64_t v;
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
        (void)p;
        if (ec != std::errc()) return Err("bad integer literal '" + num + "'");
        *out = Value::Int(v);
      }
      return Status::OK();
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string word = text_.substr(start, pos_ - start);
      if (word == "true") {
        *out = Value::Bool(true);
        return Status::OK();
      }
      if (word == "false") {
        *out = Value::Bool(false);
        return Status::OK();
      }
      return Err("unexpected word '" + word + "' (expected a value)");
    }
    return Err(std::string("unexpected character '") + c + "'");
  }

  Status ParseLabel(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("expected a label");
    if (text_[pos_] == '"') {
      ++pos_;
      return ParseString(out);
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a label");
    *out = text_.substr(start, pos_ - start);
    return Status::OK();
  }

  Status ParseNode(OemDatabase* db, NodeId* out) {
    if (depth_ > kMaxParseDepth) {
      return Err("nesting deeper than " + std::to_string(kMaxParseDepth));
    }
    if (!Eat('&')) return Err("expected '&' starting a node");
    NodeId id;
    DOEM_RETURN_IF_ERROR(ParseUInt(&id));
    *out = id;
    char c = Peek();
    if (c == '{') {
      if (defined_.contains(id)) {
        return Err("node &" + std::to_string(id) + " defined twice");
      }
      defined_.insert(id);
      if (!pending_.contains(id)) {
        DOEM_RETURN_IF_ERROR(db->CreNode(id, Value::Complex()));
      } else {
        // Forward-referenced node: already created as a placeholder.
        DOEM_RETURN_IF_ERROR(db->UpdNode(id, Value::Complex()));
      }
      Eat('{');
      if (Peek() == '}') {
        Eat('}');
        return Status::OK();
      }
      while (true) {
        std::string label;
        DOEM_RETURN_IF_ERROR(ParseLabel(&label));
        if (!Eat(':')) return Err("expected ':' after label");
        NodeId child;
        DOEM_RETURN_IF_ERROR(ParseChild(db, &child));
        DOEM_RETURN_IF_ERROR(db->AddArc(id, label, child));
        if (Eat(',')) continue;
        if (Eat('}')) break;
        return Err("expected ',' or '}' in object body");
      }
      return Status::OK();
    }
    if (c == ',' || c == '}' || c == '\0') {
      // Pure reference.
      if (!defined_.contains(id) && !pending_.contains(id)) {
        // Forward reference: create placeholder.
        DOEM_RETURN_IF_ERROR(db->CreNode(id, Value::Complex()));
        pending_.insert(id);
      }
      return Status::OK();
    }
    // Atomic definition.
    if (defined_.contains(id)) {
      return Err("node &" + std::to_string(id) + " defined twice");
    }
    Value v;
    DOEM_RETURN_IF_ERROR(ParseAtomic(&v));
    defined_.insert(id);
    if (pending_.contains(id)) {
      DOEM_RETURN_IF_ERROR(db->UpdNode(id, v));
    } else {
      DOEM_RETURN_IF_ERROR(db->CreNode(id, v));
    }
    return Status::OK();
  }

  // A child position: node, possibly a reference to a not-yet-defined id
  // (cycles). Distinguishing reference from definition: a definition is
  // followed by a value or '{'.
  Status ParseChild(OemDatabase* db, NodeId* out) {
    ++depth_;
    Status s = ParseNode(db, out);
    --depth_;
    return s;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
  std::unordered_set<NodeId> defined_;
  std::unordered_set<NodeId> pending_;
};

}  // namespace

std::string WriteOemText(const OemDatabase& db) {
  std::string out;
  if (db.root() == kInvalidNode) return out;
  WriteGraph(db, db.root(), &out);
  return out;
}

Result<OemDatabase> ParseOemText(const std::string& text) {
  return Parser(text).Parse();
}

Result<Value> ParseValueLiteral(const std::string& text) {
  return Parser(text).ParseSingleValue();
}

}  // namespace doem
