#ifndef DOEM_OEM_TIMESTAMP_H_
#define DOEM_OEM_TIMESTAMP_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace doem {

/// An element of the paper's discrete, totally ordered time domain
/// (Section 2.2).
///
/// The representation is a count of days since 1970-01-01 when the
/// timestamp was written as a calendar date, but any int64 tick value is
/// permitted — QSS and the benchmarks use small integer ticks. In keeping
/// with Lorel's "any recognizable format is allowed and converted
/// automatically" (paper Section 4.2), Parse accepts:
///   - the paper's compact form:  8Jan97, 30Dec1996
///   - ISO dates:                 1997-01-08
///   - raw tick integers:         42, -3
struct Timestamp {
  int64_t ticks = 0;

  constexpr Timestamp() = default;
  constexpr explicit Timestamp(int64_t t) : ticks(t) {}

  /// The minimum representable time; QSS uses this for t[-i] before the
  /// i-th poll ("negative infinity" in the paper's Section 6).
  static constexpr Timestamp NegativeInfinity() {
    return Timestamp(INT64_MIN);
  }

  /// The maximum representable time; SnapshotAt(PositiveInfinity())
  /// yields the current snapshot.
  static constexpr Timestamp PositiveInfinity() {
    return Timestamp(INT64_MAX);
  }

  /// Builds a timestamp from a calendar date (proleptic Gregorian).
  static Timestamp FromDate(int year, int month, int day);

  /// Parses any recognized textual form; returns false on failure.
  static bool Parse(std::string_view text, Timestamp* out);

  /// Renders as a compact date (8Jan1997) when the tick count corresponds
  /// to a plausible calendar date, otherwise as the raw integer.
  std::string ToString() const;

  auto operator<=>(const Timestamp&) const = default;
};

}  // namespace doem

#endif  // DOEM_OEM_TIMESTAMP_H_
