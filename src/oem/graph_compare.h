#ifndef DOEM_OEM_GRAPH_COMPARE_H_
#define DOEM_OEM_GRAPH_COMPARE_H_

#include <cstdint>
#include <unordered_map>

#include "oem/oem.h"

namespace doem {

/// Structural equality of two OEM databases up to renaming of node
/// identifiers (rooted graph isomorphism respecting values and arc labels).
///
/// The check runs Weisfeiler-Leman-style hash refinement and then attempts
/// to build an explicit bijection from the roots, pairing same-label
/// children with equal refinement hashes; the candidate bijection is
/// verified arc-by-arc. A `true` answer is always sound. A `false` answer
/// can in principle be spurious for highly symmetric graphs where hash ties
/// hide distinct valid pairings; such graphs do not arise from this
/// project's generators, and the diff tests that rely on this predicate
/// construct asymmetric values.
bool Isomorphic(const OemDatabase& a, const OemDatabase& b);

/// Like Isomorphic, and on success fills `*mapping` with the node bijection
/// from `a`'s ids to `b`'s ids.
bool FindIsomorphism(const OemDatabase& a, const OemDatabase& b,
                     std::unordered_map<NodeId, NodeId>* mapping);

/// The stable refinement hash of each node (value + neighborhood
/// structure). Exposed for the structural diff's matching heuristics.
std::unordered_map<NodeId, uint64_t> RefinementHashes(const OemDatabase& db,
                                                      int rounds);

}  // namespace doem

#endif  // DOEM_OEM_GRAPH_COMPARE_H_
