#include "oem/history_text.h"

#include <cctype>
#include <charconv>

#include "common/strings.h"
#include "oem/oem_text.h"

namespace doem {

namespace {

void WriteLabelToken(const std::string& label, std::string* out) {
  if (IsBareIdentifier(label)) {
    out->append(label);
  } else {
    out->append("\"").append(EscapeString(label)).append("\"");
  }
}

void WriteOpLine(const ChangeOp& op, std::string* out) {
  switch (op.kind) {
    case ChangeOp::Kind::kCreNode:
      out->append("cre ").append(std::to_string(op.node)).append(" ");
      out->append(op.value.ToString());
      break;
    case ChangeOp::Kind::kUpdNode:
      out->append("upd ").append(std::to_string(op.node)).append(" ");
      out->append(op.value.ToString());
      break;
    case ChangeOp::Kind::kAddArc:
    case ChangeOp::Kind::kRemArc:
      out->append(op.kind == ChangeOp::Kind::kAddArc ? "add " : "rem ");
      out->append(std::to_string(op.arc.parent)).append(" ");
      WriteLabelToken(op.arc.label, out);
      out->append(" ").append(std::to_string(op.arc.child));
      break;
  }
  out->push_back('\n');
}

Status ParseErrAt(size_t line_no, const std::string& msg) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " + msg);
}

// Parses "<digits>" into id; advances *pos past it and any whitespace.
bool TakeId(const std::string& s, size_t* pos, NodeId* out) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
  size_t start = *pos;
  while (*pos < s.size() && std::isdigit(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
  if (*pos == start) return false;
  auto [p, ec] = std::from_chars(s.data() + start, s.data() + *pos, *out);
  (void)p;
  return ec == std::errc() && *out != kInvalidNode;
}

// Parses a bare or quoted label; advances *pos.
bool TakeLabel(const std::string& s, size_t* pos, std::string* out) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
  if (*pos >= s.size()) return false;
  out->clear();
  if (s[*pos] == '"') {
    ++*pos;
    while (*pos < s.size()) {
      char c = s[(*pos)++];
      if (c == '"') return true;
      if (c == '\\' && *pos < s.size()) {
        char e = s[(*pos)++];
        switch (e) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }
  while (*pos < s.size() &&
         !std::isspace(static_cast<unsigned char>(s[*pos]))) {
    out->push_back(s[(*pos)++]);
  }
  return !out->empty();
}

Result<ChangeOp> ParseOpLine(const std::string& line, size_t line_no) {
  size_t pos = 0;
  std::string verb;
  if (!TakeLabel(line, &pos, &verb)) {
    return ParseErrAt(line_no, "expected an operation");
  }
  if (verb == "cre" || verb == "upd") {
    NodeId id;
    if (!TakeId(line, &pos, &id)) {
      return ParseErrAt(line_no, "expected a node id after '" + verb + "'");
    }
    auto value = ParseValueLiteral(line.substr(pos));
    if (!value.ok()) {
      return ParseErrAt(line_no, "bad value: " + value.status().message());
    }
    return verb == "cre" ? ChangeOp::CreNode(id, std::move(value).value())
                         : ChangeOp::UpdNode(id, std::move(value).value());
  }
  if (verb == "add" || verb == "rem") {
    NodeId parent, child;
    std::string label;
    if (!TakeId(line, &pos, &parent) || !TakeLabel(line, &pos, &label) ||
        !TakeId(line, &pos, &child)) {
      return ParseErrAt(line_no,
                        "expected '<parent> <label> <child>' after '" +
                            verb + "'");
    }
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos != line.size()) {
      return ParseErrAt(line_no, "trailing input after arc operation");
    }
    return verb == "add" ? ChangeOp::AddArc(parent, label, child)
                         : ChangeOp::RemArc(parent, label, child);
  }
  return ParseErrAt(line_no, "unknown operation '" + verb + "'");
}

}  // namespace

std::string WriteChangeSetText(const ChangeSet& ops) {
  std::string out;
  for (const ChangeOp& op : ops) WriteOpLine(op, &out);
  return out;
}

std::string WriteHistoryText(const OemHistory& history) {
  std::string out;
  for (const HistoryStep& step : history.steps()) {
    out.append("@").append(step.time.ToString()).append("\n");
    out.append(WriteChangeSetText(step.changes));
  }
  return out;
}

Result<ChangeSet> ParseChangeSetText(const std::string& text) {
  ChangeSet ops;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '@') {
      return ParseErrAt(line_no,
                        "timestamp header in a change set; use "
                        "ParseHistoryText for histories");
    }
    auto op = ParseOpLine(line, line_no);
    if (!op.ok()) return op.status();
    ops.push_back(std::move(op).value());
  }
  return ops;
}

Result<OemHistory> ParseHistoryText(const std::string& text) {
  OemHistory history;
  ChangeSet current;
  Timestamp current_time;
  bool open = false;
  size_t line_no = 0;
  auto flush = [&]() -> Status {
    if (!open) return Status::OK();
    return history.Append(current_time, std::move(current));
  };
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '@') {
      DOEM_RETURN_IF_ERROR(flush());
      current = ChangeSet();
      if (!Timestamp::Parse(line.substr(1), &current_time)) {
        return ParseErrAt(line_no, "bad timestamp '" + line + "'");
      }
      open = true;
      continue;
    }
    if (!open) {
      return ParseErrAt(line_no,
                        "operation before the first '@<time>' header");
    }
    auto op = ParseOpLine(line, line_no);
    if (!op.ok()) return op.status();
    current.push_back(std::move(op).value());
  }
  DOEM_RETURN_IF_ERROR(flush());
  return history;
}

}  // namespace doem
