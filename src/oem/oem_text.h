#ifndef DOEM_OEM_OEM_TEXT_H_
#define DOEM_OEM_OEM_TEXT_H_

#include <string>

#include "common/result.h"
#include "oem/oem.h"

namespace doem {

/// Human-readable text format for OEM databases, close to the Lore papers'
/// notation. The first occurrence of a node defines it; later occurrences
/// are references, which is how shared subobjects and cycles are written:
///
///   &1 {
///     restaurant: &2 {
///       name: &3 "Bangkok Cuisine",
///       price: &4 10,
///       parking: &7 "Lytton lot 2"
///     },
///     restaurant: &5 {
///       parking: &7          # reference: shared subobject
///     }
///   }
///
/// Atomic literals are integers (10), reals (3.5), strings ("x"), booleans
/// (true/false), and timestamps (@8Jan1997). Labels are bare identifiers or
/// quoted strings. '#' starts a comment to end of line.
///
/// Round trip: ParseOemText(WriteOemText(db)) reproduces `db` exactly,
/// including node identifiers, for any well-formed database.

/// Serializes `db` (which must have a root) deterministically.
std::string WriteOemText(const OemDatabase& db);

/// Parses the text format. The outermost node becomes the root; it must be
/// complex. All parse errors carry a line number.
Result<OemDatabase> ParseOemText(const std::string& text);

/// Parses a single value literal in the same syntax the node values use:
/// 42, 3.5, "s", true, @8Jan1997, or C (the reserved complex marker).
/// The whole string must be consumed.
Result<Value> ParseValueLiteral(const std::string& text);

}  // namespace doem

#endif  // DOEM_OEM_OEM_TEXT_H_
