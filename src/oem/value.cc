#include "oem/value.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/strings.h"

namespace doem {

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kComplex:
      return "C";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kReal: {
      std::ostringstream os;
      double v = AsReal();
      os << v;
      std::string s = os.str();
      // Ensure reals are distinguishable from ints in the text format.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Kind::kString:
      return "\"" + EscapeString(AsString()) + "\"";
    case Kind::kBool:
      return AsBool() ? "true" : "false";
    case Kind::kTimestamp:
      return "@" + AsTime().ToString();
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ull;
  auto mix = [&seed](size_t h) {
    seed ^= h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  };
  switch (kind()) {
    case Kind::kComplex:
      break;
    case Kind::kInt:
      mix(std::hash<int64_t>()(AsInt()));
      break;
    case Kind::kReal:
      mix(std::hash<double>()(AsReal()));
      break;
    case Kind::kString:
      mix(std::hash<std::string>()(AsString()));
      break;
    case Kind::kBool:
      mix(std::hash<bool>()(AsBool()));
      break;
    case Kind::kTimestamp:
      mix(std::hash<int64_t>()(AsTime().ticks));
      break;
  }
  return seed;
}

}  // namespace doem
