#ifndef DOEM_OEM_HISTORY_H_
#define DOEM_OEM_HISTORY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "oem/change.h"
#include "oem/timestamp.h"

namespace doem {

/// One element (t_i, U_i) of an OEM history.
struct HistoryStep {
  Timestamp time;
  ChangeSet changes;

  bool operator==(const HistoryStep&) const = default;
};

/// An OEM history H = (t1, U1), ..., (tn, Un) with strictly increasing
/// timestamps (Definition 2.2). A history is *valid* for a database O if
/// each U_i is valid for the state produced by the previous steps.
class OemHistory {
 public:
  OemHistory() = default;
  explicit OemHistory(std::vector<HistoryStep> steps)
      : steps_(std::move(steps)) {}

  /// Appends (time, changes); time must exceed the last step's time.
  Status Append(Timestamp time, ChangeSet changes);

  const std::vector<HistoryStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  size_t size() const { return steps_.size(); }

  /// Checks monotone timestamps and validity for `base` (applies the
  /// history to a scratch copy).
  Status ValidateFor(const OemDatabase& base) const;

  /// Applies the entire history to `db` (L(O) in the paper). Transactional
  /// per change set: fails on the first invalid set, with earlier sets
  /// already applied; use ValidateFor first if atomicity over the whole
  /// history is needed.
  Status ApplyTo(OemDatabase* db) const;

  /// Multiset equality of change sets, per timestamp, in order.
  bool Equals(const OemHistory& other) const;

  std::string ToString() const;

 private:
  std::vector<HistoryStep> steps_;
};

}  // namespace doem

#endif  // DOEM_OEM_HISTORY_H_
