#ifndef DOEM_OEM_CHANGE_H_
#define DOEM_OEM_CHANGE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "oem/oem.h"
#include "oem/value.h"

namespace doem {

/// One of the four basic change operations of Section 2.1:
/// creNode(n, v), updNode(n, v), addArc(p, l, c), remArc(p, l, c).
struct ChangeOp {
  enum class Kind { kCreNode, kUpdNode, kAddArc, kRemArc };

  Kind kind = Kind::kCreNode;
  /// Target node for creNode/updNode.
  NodeId node = kInvalidNode;
  /// New value for creNode/updNode.
  Value value;
  /// The arc for addArc/remArc.
  Arc arc;

  static ChangeOp CreNode(NodeId n, Value v) {
    return ChangeOp{Kind::kCreNode, n, std::move(v), {}};
  }
  static ChangeOp UpdNode(NodeId n, Value v) {
    return ChangeOp{Kind::kUpdNode, n, std::move(v), {}};
  }
  static ChangeOp AddArc(NodeId p, std::string l, NodeId c) {
    return ChangeOp{Kind::kAddArc, kInvalidNode, Value(),
                    Arc{p, std::move(l), c}};
  }
  static ChangeOp RemArc(NodeId p, std::string l, NodeId c) {
    return ChangeOp{Kind::kRemArc, kInvalidNode, Value(),
                    Arc{p, std::move(l), c}};
  }

  /// Applies this single operation to `db`, validating its precondition.
  Status ApplyTo(OemDatabase* db) const;

  bool operator==(const ChangeOp& o) const = default;
  std::string ToString() const;
};

/// An unordered set U of basic change operations (Definition 2.2's valid
/// sets). Represented as a vector; set semantics are enforced by
/// CheckChangeSetConflicts.
using ChangeSet = std::vector<ChangeOp>;

/// Rejects change sets whose outcome could depend on operation order, the
/// conditions under which Definition 2.2's "all valid sequences agree"
/// could fail or the DOEM representation would be ambiguous:
///   - two creNode, two updNode, or a creNode and an updNode on one node;
///   - addArc and remArc of the same (p, l, c) (explicitly forbidden by
///     Definition 2.2);
///   - duplicate identical operations.
Status CheckChangeSetConflicts(const ChangeSet& ops);

/// Reorders `ops` into the canonical application order
///   creNode -> remArc -> updNode -> addArc
/// preserving relative order within each phase.
///
/// For every change set that passes CheckChangeSetConflicts and admits
/// *some* valid ordering, this ordering is valid: creations must precede
/// uses of the node; an update that turns a complex object atomic needs its
/// arcs removed first (remArc before updNode); an update that turns an
/// atomic object complex must precede arcs added under it (updNode before
/// addArc); and no valid set ever needs addArc before remArc or updNode
/// before remArc, since removals only require that the arc exists
/// beforehand, which earlier phases cannot establish (add/rem of the same
/// arc in one set is forbidden).
ChangeSet CanonicalOrder(const ChangeSet& ops);

/// Applies the set U to `db` transactionally: on any error `db` is left
/// unchanged and the paper-level reason is reported. On success,
/// unreachable objects are deleted ("persistence is by reachability",
/// applied at change-set boundaries per Section 2.2); their ids are
/// appended to `*deleted` if non-null.
Status ApplyChangeSet(OemDatabase* db, const ChangeSet& ops,
                      std::vector<NodeId>* deleted = nullptr);

/// True if `a` and `b` contain the same operations, ignoring order and
/// multiplicity-preserving (multiset equality).
bool ChangeSetEquals(const ChangeSet& a, const ChangeSet& b);

std::string ChangeSetToString(const ChangeSet& ops);

}  // namespace doem

#endif  // DOEM_OEM_CHANGE_H_
