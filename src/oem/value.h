#ifndef DOEM_OEM_VALUE_H_
#define DOEM_OEM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "oem/timestamp.h"

namespace doem {

/// The value of an OEM object (Definition 2.1 of the paper).
///
/// A node's value is either an atomic value — integer, real, string,
/// boolean, or timestamp — or the reserved value C ("complex"), meaning the
/// node is a complex object whose content is given by its outgoing arcs.
/// Timestamps appear as first-class atomic values because Chorel binds
/// annotation timestamps to variables that then flow through ordinary Lorel
/// comparisons and select clauses (paper Examples 4.3-4.4).
class Value {
 public:
  enum class Kind { kComplex, kInt, kReal, kString, kBool, kTimestamp };

  /// Default-constructed value is the reserved complex marker C.
  Value() : rep_(ComplexTag{}) {}

  static Value Complex() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Time(Timestamp t) { return Value(Rep(t)); }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_complex() const { return kind() == Kind::kComplex; }
  bool is_atomic() const { return !is_complex(); }

  /// Accessors; calling the wrong one is a programming error (asserts via
  /// std::get in debug builds, undefined otherwise).
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsReal() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }
  Timestamp AsTime() const { return std::get<Timestamp>(rep_); }

  /// Exact (same kind, same content) equality. Note this is *storage*
  /// equality: Int(1) != Real(1.0). Query-level comparisons use the coercing
  /// comparators in lorel/coerce.h instead.
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Deterministic total order across kinds (kind index first); used to
  /// canonicalize structures in tests and the isomorphism check.
  bool operator<(const Value& other) const { return rep_ < other.rep_; }

  /// Renders the value in OEM text syntax: C, 42, 3.5, "s", true,
  /// @1Jan1997.
  std::string ToString() const;

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  struct ComplexTag {
    bool operator==(const ComplexTag&) const { return true; }
    bool operator<(const ComplexTag&) const { return false; }
  };
  using Rep = std::variant<ComplexTag, int64_t, double, std::string, bool,
                           Timestamp>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace doem

#endif  // DOEM_OEM_VALUE_H_
