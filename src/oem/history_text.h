#ifndef DOEM_OEM_HISTORY_TEXT_H_
#define DOEM_OEM_HISTORY_TEXT_H_

#include <string>

#include "common/result.h"
#include "oem/history.h"

namespace doem {

/// A line-oriented text format for change sets and histories — replayable
/// edit scripts. One operation per line; '@<time>' opens a change set;
/// '#' starts a comment:
///
///   # the Example 2.2 modifications
///   @1Jan1997
///   upd 1 20
///   cre 2 C
///   cre 3 "Hakata"
///   add 4 restaurant 2
///   add 2 name 3
///   @5Jan1997
///   cre 5 "need info"
///   add 2 comment 5
///   @8Jan1997
///   rem 6 parking 7
///
/// Values use the OEM text literal syntax (42, 3.5, "s", true, @8Jan1997,
/// C); labels are bare identifiers or quoted strings.
///
/// Round trip: ParseHistoryText(WriteHistoryText(h)) equals h.
std::string WriteHistoryText(const OemHistory& history);

Result<OemHistory> ParseHistoryText(const std::string& text);

/// A single change set without a timestamp header (the same op lines).
std::string WriteChangeSetText(const ChangeSet& ops);
Result<ChangeSet> ParseChangeSetText(const std::string& text);

}  // namespace doem

#endif  // DOEM_OEM_HISTORY_TEXT_H_
