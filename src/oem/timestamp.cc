#include "oem/timestamp.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/strings.h"

namespace doem {

namespace {

constexpr std::array<const char*, 12> kMonthNames = {
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec"};

constexpr std::array<const char*, 12> kMonthDisplay = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

// Howard Hinnant's days_from_civil algorithm (public domain).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

bool ParseInt(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

int MonthFromName(std::string_view name) {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < kMonthNames.size(); ++i) {
    if (lower == kMonthNames[i]) return static_cast<int>(i) + 1;
  }
  return 0;
}

}  // namespace

Timestamp Timestamp::FromDate(int year, int month, int day) {
  return Timestamp(DaysFromCivil(year, static_cast<unsigned>(month),
                                 static_cast<unsigned>(day)));
}

bool Timestamp::Parse(std::string_view text, Timestamp* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;

  // Raw integer ticks.
  int64_t ticks = 0;
  if (ParseInt(text, &ticks)) {
    *out = Timestamp(ticks);
    return true;
  }

  // ISO date: YYYY-MM-DD.
  {
    std::vector<std::string> parts = Split(text, '-');
    if (parts.size() == 3) {
      int64_t y, m, d;
      if (ParseInt(parts[0], &y) && ParseInt(parts[1], &m) &&
          ParseInt(parts[2], &d) && m >= 1 && m <= 12 && d >= 1 && d <= 31) {
        *out = FromDate(static_cast<int>(y), static_cast<int>(m),
                        static_cast<int>(d));
        return true;
      }
    }
  }

  // Compact form: <day><MonthName><2-or-4-digit-year>, e.g. 8Jan97.
  {
    size_t i = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t j = i;
    while (j < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (i > 0 && j > i && j < text.size()) {
      int64_t day = 0, year = 0;
      int month = MonthFromName(text.substr(i, j - i));
      if (month != 0 && ParseInt(text.substr(0, i), &day) &&
          ParseInt(text.substr(j), &year) && day >= 1 && day <= 31) {
        // Two-digit years are 19xx, matching the paper's 1Jan97 examples.
        if (year < 100) year += 1900;
        *out = FromDate(static_cast<int>(year), month,
                        static_cast<int>(day));
        return true;
      }
    }
  }
  return false;
}

std::string Timestamp::ToString() const {
  if (ticks == INT64_MIN) return "-inf";
  if (ticks == INT64_MAX) return "+inf";
  // Render as a date only when in a window where dates are plausible
  // (years 1800..2200); benchmark tick counters stay integers.
  constexpr int64_t kLo = -62091;   // 1800-01-01
  constexpr int64_t kHi = 84369;    // 2200-12-31
  if (ticks < kLo || ticks > kHi) return std::to_string(ticks);
  int64_t y;
  unsigned m, d;
  CivilFromDays(ticks, &y, &m, &d);
  return std::to_string(d) + kMonthDisplay[m - 1] + std::to_string(y);
}

}  // namespace doem
