#include "oem/oem.h"

#include <algorithm>
#include <deque>

namespace doem {

std::string Arc::ToString() const {
  return "(" + std::to_string(parent) + ", " + label + ", " +
         std::to_string(child) + ")";
}

std::string OemDatabase::ArcKey(const std::string& label, NodeId child) {
  return label + "\x1f" + std::to_string(child);
}

NodeId OemDatabase::NewNode(const Value& value) {
  while (burned_ids_.contains(next_id_)) ++next_id_;
  NodeId id = next_id_++;
  values_.emplace(id, value);
  burned_ids_.insert(id);
  return id;
}

Status OemDatabase::SetRoot(NodeId root) {
  const Value* v = GetValue(root);
  if (v == nullptr) {
    return Status::NotFound("SetRoot: no node " + std::to_string(root));
  }
  if (!v->is_complex()) {
    return Status::InvalidArgument("SetRoot: root must be a complex object");
  }
  root_ = root;
  return Status::OK();
}

Status OemDatabase::CreNode(NodeId node, const Value& value) {
  if (node == kInvalidNode) {
    return Status::InvalidArgument("creNode: id 0 is reserved");
  }
  if (burned_ids_.contains(node)) {
    return Status::InvalidChange("creNode: identifier " +
                                 std::to_string(node) +
                                 " already used (ids are never reused)");
  }
  values_.emplace(node, value);
  burned_ids_.insert(node);
  if (node >= next_id_) next_id_ = node + 1;
  return Status::OK();
}

Status OemDatabase::UpdNode(NodeId node, const Value& value) {
  auto it = values_.find(node);
  if (it == values_.end()) {
    return Status::NotFound("updNode: no node " + std::to_string(node));
  }
  if (!OutArcs(node).empty()) {
    return Status::InvalidChange(
        "updNode: node " + std::to_string(node) +
        " has subobjects; remove them before updating its value");
  }
  it->second = value;
  return Status::OK();
}

Status OemDatabase::SetValueForce(NodeId node, const Value& value) {
  auto it = values_.find(node);
  if (it == values_.end()) {
    return Status::NotFound("SetValueForce: no node " + std::to_string(node));
  }
  it->second = value;
  return Status::OK();
}

Status OemDatabase::EraseNodeForce(NodeId node) {
  if (!values_.contains(node)) {
    return Status::NotFound("EraseNodeForce: no node " +
                            std::to_string(node));
  }
  if (!OutArcs(node).empty()) {
    return Status::InvalidArgument("EraseNodeForce: node " +
                                   std::to_string(node) + " has out-arcs");
  }
  out_.erase(node);
  arc_keys_.erase(node);
  by_label_.erase(node);
  values_.erase(node);
  return Status::OK();
}

Status OemDatabase::AddArc(NodeId parent, const std::string& label,
                           NodeId child) {
  const Value* pv = GetValue(parent);
  if (pv != nullptr && !pv->is_complex()) {
    return Status::InvalidChange("addArc: parent " + std::to_string(parent) +
                                 " is atomic");
  }
  return AddArcForce(parent, label, child);
}

Status OemDatabase::AddArcForce(NodeId parent, const std::string& label,
                                NodeId child) {
  if (!HasNode(parent)) {
    return Status::NotFound("addArc: no parent node " +
                            std::to_string(parent));
  }
  if (!HasNode(child)) {
    return Status::NotFound("addArc: no child node " + std::to_string(child));
  }
  auto [it, inserted] = arc_keys_[parent].insert(ArcKey(label, child));
  if (!inserted) {
    return Status::InvalidChange("addArc: arc " +
                                 Arc{parent, label, child}.ToString() +
                                 " already exists");
  }
  out_[parent].push_back(OutArc{label, child});
  by_label_[parent][label].push_back(child);
  ++label_counts_[label];
  ++arc_count_;
  return Status::OK();
}

Status OemDatabase::RemArc(NodeId parent, const std::string& label,
                           NodeId child) {
  auto keys_it = arc_keys_.find(parent);
  if (keys_it == arc_keys_.end() ||
      keys_it->second.erase(ArcKey(label, child)) == 0) {
    return Status::NotFound("remArc: no arc " +
                            Arc{parent, label, child}.ToString());
  }
  auto& arcs = out_[parent];
  arcs.erase(std::find(arcs.begin(), arcs.end(), OutArc{label, child}));
  auto& bucket = by_label_[parent][label];
  bucket.erase(std::find(bucket.begin(), bucket.end(), child));
  if (bucket.empty()) {
    by_label_[parent].erase(label);
    if (by_label_[parent].empty()) by_label_.erase(parent);
  }
  auto lc = label_counts_.find(label);
  if (lc != label_counts_.end() && --lc->second == 0) label_counts_.erase(lc);
  --arc_count_;
  return Status::OK();
}

bool OemDatabase::HasArc(NodeId parent, const std::string& label,
                         NodeId child) const {
  auto it = arc_keys_.find(parent);
  return it != arc_keys_.end() &&
         it->second.contains(ArcKey(label, child));
}

const Value* OemDatabase::GetValue(NodeId node) const {
  auto it = values_.find(node);
  return it == values_.end() ? nullptr : &it->second;
}

const std::vector<OutArc>& OemDatabase::OutArcs(NodeId node) const {
  static const std::vector<OutArc> kEmpty;
  auto it = out_.find(node);
  return it == out_.end() ? kEmpty : it->second;
}

std::vector<NodeId> OemDatabase::Children(NodeId node,
                                          const std::string& label) const {
  auto it = by_label_.find(node);
  if (it == by_label_.end()) return {};
  auto lit = it->second.find(label);
  if (lit == it->second.end()) return {};
  return lit->second;
}

const std::vector<NodeId>* OemDatabase::ChildBucket(
    NodeId node, const std::string& label) const {
  auto it = by_label_.find(node);
  if (it == by_label_.end()) return nullptr;
  auto lit = it->second.find(label);
  return lit == it->second.end() ? nullptr : &lit->second;
}

size_t OemDatabase::LabelChildCount(NodeId node,
                                    const std::string& label) const {
  const std::vector<NodeId>* bucket = ChildBucket(node, label);
  return bucket == nullptr ? 0 : bucket->size();
}

size_t OemDatabase::ArcCountForLabel(const std::string& label) const {
  auto it = label_counts_.find(label);
  return it == label_counts_.end() ? 0 : it->second;
}

NodeId OemDatabase::Child(NodeId node, const std::string& label) const {
  auto it = by_label_.find(node);
  if (it == by_label_.end()) return kInvalidNode;
  auto lit = it->second.find(label);
  if (lit == it->second.end() || lit->second.empty()) return kInvalidNode;
  return lit->second.front();
}

std::vector<NodeId> OemDatabase::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(values_.size());
  for (const auto& [id, v] : values_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<Arc> OemDatabase::AllArcs() const {
  std::vector<Arc> arcs;
  arcs.reserve(arc_count_);
  for (NodeId p : NodeIds()) {
    for (const OutArc& a : OutArcs(p)) {
      arcs.push_back(Arc{p, a.label, a.child});
    }
  }
  return arcs;
}

std::unordered_set<NodeId> OemDatabase::ReachableFromRoot() const {
  std::unordered_set<NodeId> seen;
  if (root_ == kInvalidNode || !HasNode(root_)) return seen;
  std::deque<NodeId> queue{root_};
  seen.insert(root_);
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    for (const OutArc& a : OutArcs(n)) {
      if (seen.insert(a.child).second) queue.push_back(a.child);
    }
  }
  return seen;
}

std::vector<NodeId> OemDatabase::CollectGarbage() {
  std::unordered_set<NodeId> live = ReachableFromRoot();
  std::vector<NodeId> removed;
  for (const auto& [id, v] : values_) {
    if (!live.contains(id)) removed.push_back(id);
  }
  std::sort(removed.begin(), removed.end());
  for (NodeId id : removed) {
    auto it = out_.find(id);
    if (it != out_.end()) {
      arc_count_ -= it->second.size();
      for (const OutArc& a : it->second) {
        auto lc = label_counts_.find(a.label);
        if (lc != label_counts_.end() && --lc->second == 0) {
          label_counts_.erase(lc);
        }
      }
      out_.erase(it);
    }
    arc_keys_.erase(id);
    by_label_.erase(id);
    values_.erase(id);
    // id stays in burned_ids_: deleted ids are never reused.
  }
  // Arcs from live nodes to dead nodes cannot exist: a dead target would
  // make the target reachable. So only dead parents' arcs were removed.
  return removed;
}

Status OemDatabase::Validate() const {
  if (root_ == kInvalidNode || !HasNode(root_)) {
    return Status::InvalidArgument("Validate: database has no root");
  }
  if (!GetValue(root_)->is_complex()) {
    return Status::InvalidArgument("Validate: root is not complex");
  }
  for (const auto& [p, arcs] : out_) {
    if (arcs.empty()) continue;
    const Value* pv = GetValue(p);
    if (pv == nullptr) {
      return Status::Internal("Validate: arcs from unknown node " +
                              std::to_string(p));
    }
    if (!pv->is_complex()) {
      return Status::InvalidArgument("Validate: atomic node " +
                                     std::to_string(p) + " has out-arcs");
    }
    for (const OutArc& a : arcs) {
      if (!HasNode(a.child)) {
        return Status::InvalidArgument(
            "Validate: arc to unknown node " + std::to_string(a.child));
      }
    }
  }
  std::unordered_set<NodeId> live = ReachableFromRoot();
  if (live.size() != values_.size()) {
    return Status::InvalidArgument(
        "Validate: " + std::to_string(values_.size() - live.size()) +
        " node(s) unreachable from the root");
  }
  return Status::OK();
}

bool OemDatabase::Equals(const OemDatabase& other) const {
  if (root_ != other.root_ || values_.size() != other.values_.size() ||
      arc_count_ != other.arc_count_) {
    return false;
  }
  for (const auto& [id, v] : values_) {
    const Value* ov = other.GetValue(id);
    if (ov == nullptr || !(*ov == v)) return false;
  }
  for (const auto& [p, arcs] : out_) {
    for (const OutArc& a : arcs) {
      if (!other.HasArc(p, a.label, a.child)) return false;
    }
  }
  return true;
}

void OemDatabase::ReserveIdsBelow(NodeId floor) {
  if (floor > next_id_) next_id_ = floor;
}

}  // namespace doem
