#ifndef DOEM_OEM_OEM_H_
#define DOEM_OEM_OEM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "oem/value.h"

namespace doem {

/// Opaque object identifier. Identifiers of deleted objects are never
/// reused (paper Section 2.2). 0 is reserved as "invalid".
using NodeId = uint64_t;
constexpr NodeId kInvalidNode = 0;

/// A labeled outgoing arc (l, c) of some parent object: "the object with
/// identifier c is an l-labeled subobject of the parent".
struct OutArc {
  std::string label;
  NodeId child = kInvalidNode;

  bool operator==(const OutArc& o) const = default;
};

/// A fully qualified arc (p, l, c), as in Definition 2.1.
struct Arc {
  NodeId parent = kInvalidNode;
  std::string label;
  NodeId child = kInvalidNode;

  bool operator==(const Arc& o) const = default;
  std::string ToString() const;
};

/// An OEM database (Definition 2.1): a rooted, labeled, directed graph of
/// objects. Nodes carry a Value; complex nodes (value C) may have outgoing
/// labeled arcs; atomic nodes may not. The graph may contain cycles and
/// nodes with multiple parents.
///
/// Mutations go through the four basic change operations of Section 2.1
/// (CreNode / UpdNode / AddArc / RemArc) plus the convenience constructors
/// NewNode/SetRoot used when building a database from scratch. All
/// mutators validate their preconditions and return an error Status
/// instead of corrupting the graph.
///
/// The paper's "persistence is by reachability" rule is *not* enforced
/// eagerly — within a set of changes objects may be temporarily
/// unreachable (Section 2.2). Call CollectGarbage() at change-set
/// boundaries to delete unreachable objects, or Validate() to check full
/// well-formedness including reachability.
class OemDatabase {
 public:
  OemDatabase() = default;

  // Copyable (snapshots are passed around by value in QSS) and movable.
  OemDatabase(const OemDatabase&) = default;
  OemDatabase& operator=(const OemDatabase&) = default;
  OemDatabase(OemDatabase&&) = default;
  OemDatabase& operator=(OemDatabase&&) = default;

  // ---- Construction helpers ------------------------------------------

  /// Creates a node with a fresh identifier and the given value.
  NodeId NewNode(const Value& value);

  /// Convenience wrappers for building literal databases in tests and
  /// examples. NewComplex() then AddArc(...) mirrors the figures.
  NodeId NewComplex() { return NewNode(Value::Complex()); }
  NodeId NewString(std::string s) {
    return NewNode(Value::String(std::move(s)));
  }
  NodeId NewInt(int64_t v) { return NewNode(Value::Int(v)); }

  /// Designates `root` as the distinguished root object. The node must
  /// exist and be complex.
  Status SetRoot(NodeId root);

  // ---- The four basic change operations (Section 2.1) ----------------

  /// creNode(n, v): creates object n with value v. n must be fresh; fresh
  /// means never used before in this database (deleted ids stay used).
  Status CreNode(NodeId node, const Value& value);

  /// updNode(n, v): changes the value of n. n must be atomic, or complex
  /// with no outgoing arcs.
  Status UpdNode(NodeId node, const Value& value);

  /// addArc(p, l, c): adds arc (p, l, c). p and c must exist, p must be
  /// complex, and the arc must not already exist.
  Status AddArc(NodeId parent, const std::string& label, NodeId child);

  /// remArc(p, l, c): removes arc (p, l, c), which must exist.
  Status RemArc(NodeId parent, const std::string& label, NodeId child);

  /// Sets the value of `node` without checking for outgoing arcs.
  ///
  /// For DoemDatabase only: a DOEM graph keeps removed arcs in place
  /// (annotated `rem`), so a node whose *live* out-arcs are all removed is
  /// a legal updNode target even though physical arcs remain. Plain OEM
  /// code must use UpdNode.
  Status SetValueForce(NodeId node, const Value& value);

  /// Erases `node` outright, for DoemDatabase's stillborn-node pruning.
  /// The node must have no incident arcs. The id stays burned.
  Status EraseNodeForce(NodeId node);

  /// Adds an arc without requiring the parent to be complex, for
  /// reconstructing a raw DOEM graph where removed arcs may hang off a
  /// node whose current value is atomic. Duplicate/endpoint checks still
  /// apply. Plain OEM code must use AddArc.
  Status AddArcForce(NodeId parent, const std::string& label, NodeId child);

  // ---- Lookup ---------------------------------------------------------

  NodeId root() const { return root_; }
  bool HasNode(NodeId node) const { return values_.contains(node); }
  bool HasArc(NodeId parent, const std::string& label, NodeId child) const;

  /// Value of `node`; null if the node does not exist.
  const Value* GetValue(NodeId node) const;

  /// Outgoing arcs of `node` in insertion order; empty if none/unknown.
  const std::vector<OutArc>& OutArcs(NodeId node) const;

  /// Children of `node` reachable via arcs labeled `label`, in insertion
  /// order.
  std::vector<NodeId> Children(NodeId node, const std::string& label) const;

  /// A stable reference to the `label`-children bucket of `node`, or null
  /// if there are none. Valid until the next mutation; lets read paths
  /// (the bytecode VM's OpStepLabel) iterate without copying the bucket.
  const std::vector<NodeId>* ChildBucket(NodeId node,
                                         const std::string& label) const;

  /// First child via `label`, or kInvalidNode. Convenience for tests.
  NodeId Child(NodeId node, const std::string& label) const;

  size_t node_count() const { return values_.size(); }
  size_t arc_count() const { return arc_count_; }

  // ---- Cardinality statistics (bytecode-VM cost model; DESIGN.md §6f) --

  /// Number of `label`-children of `node` — the by_label_ bucket size.
  size_t LabelChildCount(NodeId node, const std::string& label) const;

  /// Total arcs labeled `label` anywhere in the graph, maintained
  /// incrementally by the arc mutators.
  size_t ArcCountForLabel(const std::string& label) const;

  /// Number of distinct arc labels currently in use.
  size_t DistinctLabelCount() const { return label_counts_.size(); }

  /// All node ids, sorted ascending (deterministic iteration).
  std::vector<NodeId> NodeIds() const;

  /// All arcs, ordered by (parent id, insertion order). Deterministic.
  std::vector<Arc> AllArcs() const;

  // ---- Reachability & integrity ---------------------------------------

  /// Set of nodes reachable from the root by directed paths.
  std::unordered_set<NodeId> ReachableFromRoot() const;

  /// Deletes all nodes unreachable from the root (and their arcs),
  /// implementing "persistence by reachability". Returns the ids removed,
  /// sorted. Removed ids remain burned: they can never be re-created.
  std::vector<NodeId> CollectGarbage();

  /// Checks full well-formedness: a complex root exists, every arc's
  /// endpoints exist, only complex nodes have out-arcs, and every node is
  /// reachable from the root (Definition 2.1).
  Status Validate() const;

  /// Exact equality: same root, same node ids with equal values, same
  /// arcs (order-insensitive). See graph_compare.h for isomorphism.
  bool Equals(const OemDatabase& other) const;

  /// Ensures that identifiers >= `floor` are never handed out by NewNode
  /// with a value below `floor`. Used when merging databases.
  void ReserveIdsBelow(NodeId floor);

  /// The next identifier NewNode would hand out.
  NodeId PeekNextId() const { return next_id_; }

 private:
  static std::string ArcKey(const std::string& label, NodeId child);

  std::unordered_map<NodeId, Value> values_;
  std::unordered_map<NodeId, std::vector<OutArc>> out_;
  // Fast (label, child) membership per parent, for AddArc/HasArc on
  // high-fanout nodes.
  std::unordered_map<NodeId, std::unordered_set<std::string>> arc_keys_;
  // Per-parent, per-label child lists (insertion order), so Children() is
  // a hash probe instead of a scan over all out-arcs. Kept alongside
  // arc_keys_: the set answers HasArc in O(1) even when one label has many
  // children, the buckets answer Children without touching other labels.
  std::unordered_map<NodeId,
                     std::unordered_map<std::string, std::vector<NodeId>>>
      by_label_;
  // Global per-label arc tallies for the VM cost model's cardinality
  // estimates. Derived state, maintained by AddArcForce / RemArc /
  // CollectGarbage; entries are erased when they reach zero.
  std::unordered_map<std::string, size_t> label_counts_;
  // Ids ever used, including deleted ones: "identifiers of deleted nodes
  // are not reused" (Section 2.2).
  std::unordered_set<NodeId> burned_ids_;
  NodeId root_ = kInvalidNode;
  NodeId next_id_ = 1;
  size_t arc_count_ = 0;
};

}  // namespace doem

#endif  // DOEM_OEM_OEM_H_
