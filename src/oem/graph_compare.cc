#include "oem/graph_compare.h"

#include <algorithm>
#include <string>
#include <vector>

namespace doem {

namespace {

uint64_t MixHash(uint64_t seed, uint64_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  return seed;
}

uint64_t HashString(const std::string& s) {
  return std::hash<std::string>()(s);
}

}  // namespace

std::unordered_map<NodeId, uint64_t> RefinementHashes(const OemDatabase& db,
                                                      int rounds) {
  std::unordered_map<NodeId, uint64_t> h;
  for (NodeId n : db.NodeIds()) {
    uint64_t base = db.GetValue(n)->Hash();
    if (n == db.root()) base = MixHash(base, 0x526f6f74ull);  // "Root"
    h[n] = base;
  }
  for (int round = 0; round < rounds; ++round) {
    std::unordered_map<NodeId, uint64_t> next;
    for (const auto& [n, hn] : h) {
      std::vector<uint64_t> child_sigs;
      for (const OutArc& a : db.OutArcs(n)) {
        child_sigs.push_back(MixHash(HashString(a.label), h.at(a.child)));
      }
      std::sort(child_sigs.begin(), child_sigs.end());
      uint64_t acc = MixHash(hn, 0xabcdefull);
      for (uint64_t cs : child_sigs) acc = MixHash(acc, cs);
      next[n] = acc;
    }
    h = std::move(next);
  }
  return h;
}

namespace {

// Attempts to extend the partial mapping with na -> nb, recursing into
// children. Returns false on any inconsistency.
bool Match(const OemDatabase& a, const OemDatabase& b,
           const std::unordered_map<NodeId, uint64_t>& ha,
           const std::unordered_map<NodeId, uint64_t>& hb, NodeId na,
           NodeId nb, std::unordered_map<NodeId, NodeId>* fwd,
           std::unordered_map<NodeId, NodeId>* rev) {
  auto it = fwd->find(na);
  if (it != fwd->end()) return it->second == nb;
  if (rev->contains(nb)) return false;
  if (!(*a.GetValue(na) == *b.GetValue(nb))) return false;
  (*fwd)[na] = nb;
  (*rev)[nb] = na;

  // Group children by label on both sides.
  std::unordered_map<std::string, std::vector<NodeId>> ca, cb;
  for (const OutArc& arc : a.OutArcs(na)) ca[arc.label].push_back(arc.child);
  for (const OutArc& arc : b.OutArcs(nb)) cb[arc.label].push_back(arc.child);
  if (ca.size() != cb.size()) return false;
  for (auto& [label, achildren] : ca) {
    auto bit = cb.find(label);
    if (bit == cb.end() || bit->second.size() != achildren.size()) {
      return false;
    }
    std::vector<NodeId>& bchildren = bit->second;
    // Pair children with equal refinement hashes. Sort both by
    // (hash, already-mapped-target) so forced pairs line up first.
    auto by_hash_a = [&](NodeId x, NodeId y) { return ha.at(x) < ha.at(y); };
    auto by_hash_b = [&](NodeId x, NodeId y) { return hb.at(x) < hb.at(y); };
    std::stable_sort(achildren.begin(), achildren.end(), by_hash_a);
    std::stable_sort(bchildren.begin(), bchildren.end(), by_hash_b);
    // Within equal-hash runs, honor pairs already forced by the mapping.
    for (size_t i = 0; i < achildren.size(); ++i) {
      NodeId want = kInvalidNode;
      auto fit = fwd->find(achildren[i]);
      if (fit != fwd->end()) want = fit->second;
      if (want != kInvalidNode) {
        auto pos = std::find(bchildren.begin() + i, bchildren.end(), want);
        if (pos == bchildren.end()) return false;
        std::swap(*pos, bchildren[i]);
      }
    }
    for (size_t i = 0; i < achildren.size(); ++i) {
      if (ha.at(achildren[i]) != hb.at(bchildren[i])) return false;
      if (!Match(a, b, ha, hb, achildren[i], bchildren[i], fwd, rev)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool FindIsomorphism(const OemDatabase& a, const OemDatabase& b,
                     std::unordered_map<NodeId, NodeId>* mapping) {
  if (a.node_count() != b.node_count() || a.arc_count() != b.arc_count()) {
    return false;
  }
  if (a.root() == kInvalidNode && b.root() == kInvalidNode) {
    if (mapping) mapping->clear();
    return a.node_count() == 0;
  }
  if (a.root() == kInvalidNode || b.root() == kInvalidNode) return false;

  const int rounds =
      std::min<int>(24, static_cast<int>(a.node_count()) + 1);
  auto ha = RefinementHashes(a, rounds);
  auto hb = RefinementHashes(b, rounds);

  std::unordered_map<NodeId, NodeId> fwd, rev;
  if (!Match(a, b, ha, hb, a.root(), b.root(), &fwd, &rev)) return false;

  // Every node must be matched (both databases are fully reachable from
  // their roots when well-formed; unreachable leftovers break equality).
  if (fwd.size() != a.node_count()) return false;

  // Verify arcs under the mapping.
  for (const Arc& arc : a.AllArcs()) {
    if (!b.HasArc(fwd.at(arc.parent), arc.label, fwd.at(arc.child))) {
      return false;
    }
  }
  if (mapping) *mapping = std::move(fwd);
  return true;
}

bool Isomorphic(const OemDatabase& a, const OemDatabase& b) {
  return FindIsomorphism(a, b, nullptr);
}

}  // namespace doem
