#include "oem/history.h"

namespace doem {

Status OemHistory::Append(Timestamp time, ChangeSet changes) {
  if (!steps_.empty() && time <= steps_.back().time) {
    return Status::InvalidArgument(
        "history timestamps must be strictly increasing: " +
        time.ToString() + " after " + steps_.back().time.ToString());
  }
  steps_.push_back(HistoryStep{time, std::move(changes)});
  return Status::OK();
}

Status OemHistory::ValidateFor(const OemDatabase& base) const {
  for (size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].time <= steps_[i - 1].time) {
      return Status::InvalidArgument("history timestamps not increasing at "
                                     "step " +
                                     std::to_string(i));
    }
  }
  OemDatabase scratch = base;
  return ApplyTo(&scratch);
}

Status OemHistory::ApplyTo(OemDatabase* db) const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    Status s = ApplyChangeSet(db, steps_[i].changes);
    if (!s.ok()) {
      return Status(s.code(), "at history step " + std::to_string(i) +
                                  " (t=" + steps_[i].time.ToString() +
                                  "): " + s.message());
    }
  }
  return Status::OK();
}

bool OemHistory::Equals(const OemHistory& other) const {
  if (steps_.size() != other.steps_.size()) return false;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].time != other.steps_[i].time) return false;
    if (!ChangeSetEquals(steps_[i].changes, other.steps_[i].changes)) {
      return false;
    }
  }
  return true;
}

std::string OemHistory::ToString() const {
  std::string out;
  for (const HistoryStep& step : steps_) {
    out += "(" + step.time.ToString() + ", " +
           ChangeSetToString(step.changes) + ")\n";
  }
  return out;
}

}  // namespace doem
