#include "oem/subgraph.h"

#include <deque>

namespace doem {

Result<std::unordered_map<NodeId, NodeId>> CopyReachable(
    const OemDatabase& src, const std::vector<NodeId>& roots,
    OemDatabase* dst, bool preserve_ids) {
  std::unordered_map<NodeId, NodeId> map;
  std::deque<NodeId> queue;
  for (NodeId r : roots) {
    if (!src.HasNode(r)) {
      return Status::NotFound("CopyReachable: no node " + std::to_string(r));
    }
    if (!map.contains(r)) {
      map.emplace(r, kInvalidNode);
      queue.push_back(r);
    }
  }
  // First pass: create all nodes.
  std::vector<NodeId> order;
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    order.push_back(n);
    for (const OutArc& a : src.OutArcs(n)) {
      if (!map.contains(a.child)) {
        map.emplace(a.child, kInvalidNode);
        queue.push_back(a.child);
      }
    }
  }
  for (NodeId n : order) {
    const Value& v = *src.GetValue(n);
    if (preserve_ids) {
      DOEM_RETURN_IF_ERROR(dst->CreNode(n, v));
      map[n] = n;
    } else {
      map[n] = dst->NewNode(v);
    }
  }
  // Second pass: arcs.
  for (NodeId n : order) {
    for (const OutArc& a : src.OutArcs(n)) {
      DOEM_RETURN_IF_ERROR(dst->AddArc(map[n], a.label, map[a.child]));
    }
  }
  return map;
}

}  // namespace doem
