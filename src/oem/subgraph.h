#ifndef DOEM_OEM_SUBGRAPH_H_
#define DOEM_OEM_SUBGRAPH_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "oem/oem.h"

namespace doem {

/// Copies into `dst` the subgraph of `src` reachable from `roots`
/// (recursively including all subobjects, preserving structure sharing and
/// cycles). Returns the mapping from src ids to dst ids.
///
/// If `preserve_ids` is true the copied nodes keep their source
/// identifiers; the copy fails if any such id is already used in `dst`.
/// Otherwise fresh ids are allocated from `dst`.
///
/// This implements the paper's "the result of a polling query includes
/// (recursively) all subobjects of the objects in the query answer"
/// packaging (Section 6), and the deep-copy used when Lorel results are
/// packaged as an OEM database.
Result<std::unordered_map<NodeId, NodeId>> CopyReachable(
    const OemDatabase& src, const std::vector<NodeId>& roots,
    OemDatabase* dst, bool preserve_ids);

}  // namespace doem

#endif  // DOEM_OEM_SUBGRAPH_H_
