#include "diff/diff.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "oem/graph_compare.h"

namespace doem {

namespace {

// ------------------------------------------------------------- keyed mode

Result<ChangeSet> KeyedDiff(const OemDatabase& from, const OemDatabase& to) {
  ChangeSet ops;
  // Creations and updates.
  for (NodeId n : to.NodeIds()) {
    const Value& tv = *to.GetValue(n);
    const Value* fv = from.GetValue(n);
    if (fv == nullptr) {
      ops.push_back(ChangeOp::CreNode(n, tv));
    } else if (!(*fv == tv)) {
      ops.push_back(ChangeOp::UpdNode(n, tv));
    }
  }
  // Arc additions.
  for (const Arc& a : to.AllArcs()) {
    if (!from.HasArc(a.parent, a.label, a.child)) {
      ops.push_back(ChangeOp::AddArc(a.parent, a.label, a.child));
    }
  }
  // Arc removals. Arcs whose parent disappears are skipped: deletion is
  // by unreachability, so removing the incoming arcs of the dead region
  // (which ARE emitted, since their parents survive) suffices.
  for (const Arc& a : from.AllArcs()) {
    if (!to.HasNode(a.parent)) continue;
    if (!to.HasArc(a.parent, a.label, a.child)) {
      ops.push_back(ChangeOp::RemArc(a.parent, a.label, a.child));
    }
  }
  return ops;
}

// -------------------------------------------------------- structural mode

class StructuralMatcher {
 public:
  StructuralMatcher(const OemDatabase& from, const OemDatabase& to)
      : from_(from), to_(to) {}

  // Computes a partial injective mapping from-node -> to-node, rooted at
  // the two roots.
  std::unordered_map<NodeId, NodeId> Match() {
    int rounds = static_cast<int>(
        std::min<size_t>(16, std::max(from_.node_count(), to_.node_count())));
    hf_ = RefinementHashes(from_, rounds);
    ht_ = RefinementHashes(to_, rounds);
    if (from_.root() != kInvalidNode && to_.root() != kInvalidNode) {
      MatchPair(from_.root(), to_.root());
    }
    return fwd_;
  }

 private:
  void MatchPair(NodeId a, NodeId b) {
    auto ita = fwd_.find(a);
    if (ita != fwd_.end()) return;  // already matched (shared node/cycle)
    if (rev_.contains(b)) return;
    fwd_[a] = b;
    rev_[b] = a;

    // Group children by label on both sides and pair within groups.
    std::unordered_map<std::string, std::vector<NodeId>> ca, cb;
    for (const OutArc& arc : from_.OutArcs(a)) {
      ca[arc.label].push_back(arc.child);
    }
    for (const OutArc& arc : to_.OutArcs(b)) {
      cb[arc.label].push_back(arc.child);
    }
    for (auto& [label, fc] : ca) {
      auto it = cb.find(label);
      if (it == cb.end()) continue;
      PairChildren(fc, it->second);
    }
  }

  // Pairs same-label child lists: exact signature matches first, then
  // same-value atomics / best-overlap complex nodes.
  void PairChildren(const std::vector<NodeId>& fc,
                    const std::vector<NodeId>& tc) {
    std::vector<NodeId> fleft, tleft;
    for (NodeId f : fc) {
      if (!fwd_.contains(f)) fleft.push_back(f);
    }
    std::unordered_set<NodeId> tused;
    for (NodeId t : tc) {
      if (rev_.contains(t)) tused.insert(t);
    }
    // Phase 1: exact refinement-hash matches (identical subtrees).
    for (NodeId f : fleft) {
      for (NodeId t : tc) {
        if (tused.contains(t) || rev_.contains(t)) continue;
        if (hf_.at(f) == ht_.at(t)) {
          tused.insert(t);
          MatchPair(f, t);
          break;
        }
      }
    }
    // Phase 2: remaining pairs by similarity score.
    for (NodeId f : fleft) {
      if (fwd_.contains(f)) continue;
      NodeId best = kInvalidNode;
      double best_score = 0;
      for (NodeId t : tc) {
        if (tused.contains(t) || rev_.contains(t)) continue;
        double s = Similarity(f, t);
        if (s > best_score) {
          best_score = s;
          best = t;
        }
      }
      // A minimum similarity avoids matching wholly unrelated nodes,
      // which would turn one update into a cascade of arc surgery.
      if (best != kInvalidNode && best_score >= 0.3) {
        tused.insert(best);
        MatchPair(f, best);
      }
    }
  }

  double Similarity(NodeId f, NodeId t) {
    const Value& fv = *from_.GetValue(f);
    const Value& tv = *to_.GetValue(t);
    if (fv.is_atomic() != tv.is_atomic()) return 0.1;
    if (fv.is_atomic()) return fv == tv ? 1.0 : 0.5;
    // Complex: overlap of (label, child-signature) multisets.
    std::unordered_map<uint64_t, int> sig;
    size_t fa = 0, ta = 0;
    for (const OutArc& a : from_.OutArcs(f)) {
      ++sig[Mix(a.label, hf_.at(a.child))];
      ++fa;
    }
    int common = 0;
    for (const OutArc& a : to_.OutArcs(t)) {
      auto it = sig.find(Mix(a.label, ht_.at(a.child)));
      if (it != sig.end() && it->second > 0) {
        --it->second;
        ++common;
      }
      ++ta;
    }
    if (fa == 0 && ta == 0) return 0.9;  // both empty complex objects
    return 0.3 + 0.7 * (2.0 * common / static_cast<double>(fa + ta));
  }

  static uint64_t Mix(const std::string& label, uint64_t h) {
    return std::hash<std::string>()(label) * 0x9e3779b97f4a7c15ull ^ h;
  }

  const OemDatabase& from_;
  const OemDatabase& to_;
  std::unordered_map<NodeId, uint64_t> hf_, ht_;
  std::unordered_map<NodeId, NodeId> fwd_, rev_;
};

Result<ChangeSet> StructuralDiff(const OemDatabase& from,
                                 const OemDatabase& to) {
  std::unordered_map<NodeId, NodeId> fwd =
      StructuralMatcher(from, to).Match();
  std::unordered_map<NodeId, NodeId> rev;  // to -> from-space id
  for (const auto& [f, t] : fwd) rev[t] = f;

  ChangeSet ops;
  // Fresh ids for unmatched to-nodes, safely above both id spaces.
  NodeId next_fresh = std::max(from.PeekNextId(), to.PeekNextId());
  for (NodeId t : to.NodeIds()) {
    if (!rev.contains(t)) {
      NodeId fresh = next_fresh++;
      rev[t] = fresh;
      ops.push_back(ChangeOp::CreNode(fresh, *to.GetValue(t)));
    }
  }
  // Updates on matched nodes whose values differ.
  for (const auto& [f, t] : fwd) {
    if (!(*from.GetValue(f) == *to.GetValue(t))) {
      ops.push_back(ChangeOp::UpdNode(f, *to.GetValue(t)));
    }
  }
  // Arcs of `to`, mapped into from-space.
  for (const Arc& a : to.AllArcs()) {
    NodeId p = rev.at(a.parent);
    NodeId c = rev.at(a.child);
    if (!from.HasNode(p) || !from.HasNode(c) ||
        !from.HasArc(p, a.label, c)) {
      ops.push_back(ChangeOp::AddArc(p, a.label, c));
    }
  }
  // Arcs of `from` with no counterpart in `to`.
  for (const Arc& a : from.AllArcs()) {
    auto fp = fwd.find(a.parent);
    if (fp == fwd.end()) continue;  // parent dies; deletion by reachability
    auto fc = fwd.find(a.child);
    bool kept = fc != fwd.end() &&
                to.HasArc(fp->second, a.label, fc->second);
    if (!kept) {
      ops.push_back(ChangeOp::RemArc(a.parent, a.label, a.child));
    }
  }
  return ops;
}

}  // namespace

Result<ChangeSet> DiffSnapshots(const OemDatabase& from,
                                const OemDatabase& to, DiffMode mode) {
  DOEM_RETURN_IF_ERROR(from.Validate());
  DOEM_RETURN_IF_ERROR(to.Validate());
  Result<ChangeSet> ops = mode == DiffMode::kKeyed ? KeyedDiff(from, to)
                                                   : StructuralDiff(from, to);
  if (!ops.ok()) return ops;
  DOEM_RETURN_IF_ERROR(CheckChangeSetConflicts(*ops));
  return ops;
}

DiffStats SummarizeChanges(const ChangeSet& ops) {
  DiffStats s;
  for (const ChangeOp& op : ops) {
    switch (op.kind) {
      case ChangeOp::Kind::kCreNode:
        ++s.creations;
        break;
      case ChangeOp::Kind::kUpdNode:
        ++s.updates;
        break;
      case ChangeOp::Kind::kAddArc:
        ++s.arc_additions;
        break;
      case ChangeOp::Kind::kRemArc:
        ++s.arc_removals;
        break;
    }
  }
  return s;
}

std::string DiffStats::ToString() const {
  return std::to_string(creations) + " creations, " +
         std::to_string(updates) + " updates, " +
         std::to_string(arc_additions) + " arc additions, " +
         std::to_string(arc_removals) + " arc removals";
}

}  // namespace doem
