#ifndef DOEM_DIFF_DIFF_H_
#define DOEM_DIFF_DIFF_H_

#include "common/result.h"
#include "oem/change.h"
#include "oem/oem.h"

namespace doem {

/// OEMdiff (paper Section 6, Figure 7): given two snapshots R_{i-1} and
/// R_i of a polling query's result, infer a set of basic change
/// operations U with U(R_{i-1}) = R_i. This is the snapshot-differencing
/// role the paper fills with the algorithms of [CRGMW96, CGM97].
///
/// Two modes:
///
///   kKeyed      — the source preserves object identifiers across
///                 snapshots (a Tsimmis wrapper exporting stable OIDs).
///                 The diff is exact: ApplyChangeSet(from, U) == to.
///
///   kStructural — identifiers are NOT comparable across snapshots (each
///                 poll re-packages the result with fresh ids). Nodes are
///                 matched top-down by label context, values, and subtree
///                 signatures — a simplification of the CRGMW96 matching.
///                 Unmatched `to` nodes become creations with fresh ids;
///                 the guarantee is ApplyChangeSet(from, U) isomorphic to
///                 `to`. An ambiguous matching can cost extra operations
///                 (delete+create instead of update) but never
///                 correctness.
enum class DiffMode { kKeyed, kStructural };

/// Computes the change set. Both databases must be well-formed
/// (Validate() passes). The returned set is conflict-free and valid for
/// `from`.
Result<ChangeSet> DiffSnapshots(const OemDatabase& from,
                                const OemDatabase& to, DiffMode mode);

/// Summary counters for reporting (htmldiff markup, QSS logs, benches).
struct DiffStats {
  size_t creations = 0;
  size_t updates = 0;
  size_t arc_additions = 0;
  size_t arc_removals = 0;

  std::string ToString() const;
};

DiffStats SummarizeChanges(const ChangeSet& ops);

}  // namespace doem

#endif  // DOEM_DIFF_DIFF_H_
