#ifndef DOEM_TESTING_GUIDE_H_
#define DOEM_TESTING_GUIDE_H_

#include "oem/history.h"
#include "oem/oem.h"

namespace doem {
namespace testing {

/// The paper's running example: the restaurant-guide OEM database of
/// Figure 2 (Example 2.1), with the node identifiers n1..n7 used by
/// Example 2.3:
///   n4 = the guide root, n1 = Bangkok Cuisine's price (10),
///   n6 = the Janta restaurant, n7 = the shared parking object,
///   n2/n3/n5 = reserved for the Hakata objects the history creates.
///
/// The database exhibits every irregularity the paper calls out: a price
/// that is an integer for one restaurant and a string for another, an
/// address that is a plain string for one and a complex object for the
/// other, a node with multiple incoming arcs (n7), and a cycle
/// (bangkok --parking--> n7 --nearby-eats--> bangkok).
/// The database root is an anonymous complex node with a single arc
/// labeled "guide" to n4 — Lorel path expressions such as
/// guide.restaurant.name start at the root, so "guide" is an entry name.
struct Guide {
  OemDatabase db;
  NodeId guide = 4;          // n4
  NodeId bangkok_price = 1;  // n1
  NodeId janta = 6;          // n6
  NodeId parking = 7;        // n7
  NodeId bangkok = 0;        // assigned by BuildGuide
  NodeId janta_address = 0;  // the complex address object
};

/// Builds Figure 2.
Guide BuildGuide();

/// The history of Example 2.3 (valid for BuildGuide().db):
///   t1 = 1Jan97:  updNode(n1, 20), creNode(n2, C),
///                 creNode(n3, "Hakata"), addArc(n4, restaurant, n2),
///                 addArc(n2, name, n3)
///   t2 = 5Jan97:  creNode(n5, "need info"), addArc(n2, comment, n5)
///   t3 = 8Jan97:  remArc(n6, parking, n7)
OemHistory GuideHistory();

/// Timestamps t1, t2, t3 of GuideHistory.
Timestamp GuideT1();
Timestamp GuideT2();
Timestamp GuideT3();

}  // namespace testing
}  // namespace doem

#endif  // DOEM_TESTING_GUIDE_H_
