#include "testing/generators.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace doem {
namespace testing {

namespace {

void Must(const Status& s) {
  assert(s.ok());
  (void)s;
}

std::string Label(size_t i) { return "l" + std::to_string(i); }

Value RandomAtomicValue(std::mt19937* rng) {
  switch ((*rng)() % 4) {
    case 0:
      return Value::Int(static_cast<int64_t>((*rng)() % 1000));
    case 1:
      return Value::Real(static_cast<double>((*rng)() % 1000) / 4.0);
    case 2:
      return Value::String("s" + std::to_string((*rng)() % 1000));
    default:
      return Value::Bool((*rng)() % 2 == 0);
  }
}

template <typename T>
const T& Pick(const std::vector<T>& v, std::mt19937* rng) {
  return v[(*rng)() % v.size()];
}

}  // namespace

OemDatabase RandomDatabase(const DatabaseOptions& opts) {
  std::mt19937 rng(opts.seed);
  OemDatabase db;
  NodeId root = db.NewComplex();
  Must(db.SetRoot(root));
  std::vector<NodeId> complexes{root};
  std::vector<NodeId> all{root};

  auto label = [&]() { return Label(rng() % opts.label_alphabet); };

  for (size_t i = 1; i < opts.node_count; ++i) {
    bool atomic =
        std::uniform_real_distribution<>(0, 1)(rng) < opts.atomic_fraction;
    NodeId n = db.NewNode(atomic ? RandomAtomicValue(&rng) : Value::Complex());
    Must(db.AddArc(Pick(complexes, &rng), label(), n));
    all.push_back(n);
    if (!atomic) complexes.push_back(n);
  }
  // Extra arcs: sharing and cycles.
  size_t extras = static_cast<size_t>(complexes.size() * opts.extra_arc_rate);
  for (size_t i = 0; i < extras; ++i) {
    NodeId p = Pick(complexes, &rng);
    NodeId c = Pick(all, &rng);
    std::string l = label();
    if (!db.HasArc(p, l, c)) Must(db.AddArc(p, l, c));
  }
  assert(db.Validate().ok());
  return db;
}

OemHistory RandomHistory(const OemDatabase& base,
                         const HistoryOptions& opts) {
  std::mt19937 rng(opts.seed);
  OemDatabase scratch = base;
  OemHistory history;
  // Labels seen in the base, for plausible arcs.
  std::set<std::string> label_set;
  for (const Arc& a : scratch.AllArcs()) label_set.insert(a.label);
  if (label_set.empty()) label_set.insert("l0");
  std::vector<std::string> labels(label_set.begin(), label_set.end());

  for (size_t step = 0; step < opts.steps; ++step) {
    Timestamp t(opts.start.ticks + opts.stride * static_cast<int64_t>(step));
    ChangeSet ops;
    // Per-step conflict bookkeeping.
    std::set<NodeId> upd_targets;
    std::set<std::tuple<NodeId, std::string, NodeId>> touched_arcs;

    std::vector<NodeId> complexes, atomics, all;
    for (NodeId n : scratch.NodeIds()) {
      all.push_back(n);
      if (scratch.GetValue(n)->is_complex()) {
        complexes.push_back(n);
      } else {
        atomics.push_back(n);
      }
    }
    std::vector<Arc> arcs = scratch.AllArcs();

    NodeId next_new = std::max<NodeId>(scratch.PeekNextId(), 1);
    std::vector<NodeId> created_this_step;

    for (size_t k = 0; k < opts.ops_per_step; ++k) {
      switch (rng() % 10) {
        case 0:
        case 1:
        case 2: {  // create a leaf under an existing complex node
          if (complexes.empty()) break;
          NodeId n = next_new++;
          NodeId p = Pick(complexes, &rng);
          std::string l = Pick(labels, &rng);
          if (touched_arcs.contains({p, l, n})) break;
          ops.push_back(ChangeOp::CreNode(n, RandomAtomicValue(&rng)));
          ops.push_back(ChangeOp::AddArc(p, l, n));
          touched_arcs.insert({p, l, n});
          created_this_step.push_back(n);
          break;
        }
        case 3: {  // create a complex node with one leaf child
          if (complexes.empty()) break;
          NodeId n = next_new++;
          NodeId leaf = next_new++;
          NodeId p = Pick(complexes, &rng);
          std::string l = Pick(labels, &rng);
          if (touched_arcs.contains({p, l, n})) break;
          ops.push_back(ChangeOp::CreNode(n, Value::Complex()));
          ops.push_back(ChangeOp::CreNode(leaf, RandomAtomicValue(&rng)));
          ops.push_back(ChangeOp::AddArc(p, l, n));
          ops.push_back(
              ChangeOp::AddArc(n, Pick(labels, &rng), leaf));
          touched_arcs.insert({p, l, n});
          break;
        }
        case 4:
        case 5:
        case 6: {  // update an atomic node
          if (atomics.empty()) break;
          NodeId n = Pick(atomics, &rng);
          if (!upd_targets.insert(n).second) break;
          ops.push_back(ChangeOp::UpdNode(n, RandomAtomicValue(&rng)));
          break;
        }
        case 7: {  // add a sharing arc between existing nodes
          if (complexes.empty() || all.empty()) break;
          NodeId p = Pick(complexes, &rng);
          NodeId c = Pick(all, &rng);
          std::string l = Pick(labels, &rng);
          if (scratch.HasArc(p, l, c) || touched_arcs.contains({p, l, c})) {
            break;
          }
          ops.push_back(ChangeOp::AddArc(p, l, c));
          touched_arcs.insert({p, l, c});
          break;
        }
        default: {  // remove an existing arc
          if (arcs.empty()) break;
          const Arc& a = arcs[rng() % arcs.size()];
          if (touched_arcs.contains({a.parent, a.label, a.child})) break;
          ops.push_back(ChangeOp::RemArc(a.parent, a.label, a.child));
          touched_arcs.insert({a.parent, a.label, a.child});
          break;
        }
      }
    }
    (void)created_this_step;
    Status s = ApplyChangeSet(&scratch, ops);
    assert(s.ok());
    (void)s;
    Must(history.Append(t, std::move(ops)));
  }
  return history;
}

std::vector<std::string> ChorelQueryCorpus(size_t label_alphabet) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < std::min<size_t>(label_alphabet, 4); ++i) {
    std::string a = Label(i);
    std::string b = Label((i + 1) % label_alphabet);
    queries.push_back("select " + a);
    queries.push_back("select " + a + "." + b);
    queries.push_back("select " + a + ".#." + b);
    queries.push_back("select " + a + ".%");
    queries.push_back("select " + a + ".<add>" + b);
    queries.push_back("select " + a + ".<add at T>" + b +
                      " where T > 120");
    queries.push_back("select X from " + a + ".<rem at T>" + b +
                      " X where T > 0");
    queries.push_back("select " + a + "." + b + "<cre at T> where T > 110");
    queries.push_back("select T, OV, NV from " + a + "." + b +
                      "<upd at T from OV to NV> where T >= 100");
    queries.push_back("select X from " + a + " X where X." + b + " = 5");
    queries.push_back("select X from " + a + " X where exists Y in X." + b +
                      " : Y = Y");
    queries.push_back("select X, T from " + a + " X, X.<add at T>" + b +
                      " Y where not T < 100");
  }
  return queries;
}

OemDatabase SyntheticGuide(size_t restaurants, uint32_t seed) {
  std::mt19937 rng(seed);
  OemDatabase db;
  NodeId root = db.NewComplex();
  Must(db.SetRoot(root));
  NodeId guide = db.NewComplex();
  Must(db.AddArc(root, "guide", guide));

  static const char* kCuisines[] = {"Indian",  "Thai",    "Italian",
                                    "Mexican", "Chinese", "French"};
  static const char* kStreets[] = {"Lytton", "Castro", "University",
                                   "Hamilton", "Emerson"};
  std::vector<NodeId> parkings;
  std::vector<NodeId> entries;
  for (size_t i = 0; i < restaurants; ++i) {
    NodeId r = db.NewComplex();
    Must(db.AddArc(guide, "restaurant", r));
    entries.push_back(r);
    Must(db.AddArc(r, "name", db.NewString("Restaurant " +
                                           std::to_string(i))));
    // Irregular price: int, string, or absent.
    switch (rng() % 3) {
      case 0:
        Must(db.AddArc(r, "price",
                       db.NewInt(static_cast<int64_t>(5 + rng() % 40))));
        break;
      case 1:
        Must(db.AddArc(r, "price",
                       db.NewString(rng() % 2 ? "moderate" : "cheap")));
        break;
      default:
        break;  // no price subobject
    }
    // Irregular address: plain string or complex.
    const char* street = kStreets[rng() % 5];
    if (rng() % 2 == 0) {
      Must(db.AddArc(r, "address",
                     db.NewString(std::to_string(100 + rng() % 900) + " " +
                                  street)));
    } else {
      NodeId addr = db.NewComplex();
      Must(db.AddArc(r, "address", addr));
      Must(db.AddArc(addr, "street", db.NewString(street)));
      Must(db.AddArc(addr, "city", db.NewString("Palo Alto")));
    }
    Must(db.AddArc(r, "cuisine", db.NewString(kCuisines[rng() % 6])));
    // Shared parking objects with a nearby-eats cycle back to a
    // restaurant. A new parking object is always linked to the current
    // restaurant (reachability); otherwise an existing one is shared.
    NodeId p;
    if (parkings.empty() || rng() % 3 == 0) {
      p = db.NewComplex();
      Must(db.AddArc(p, "lot",
                     db.NewString(std::string(street) + " lot " +
                                  std::to_string(parkings.size()))));
      Must(db.AddArc(p, "nearby-eats", r));
      parkings.push_back(p);
    } else {
      p = parkings[rng() % parkings.size()];
    }
    if (!db.HasArc(r, "parking", p)) {
      Must(db.AddArc(r, "parking", p));
    }
  }
  assert(db.Validate().ok());
  return db;
}

OemHistory SyntheticGuideHistory(const OemDatabase& guide, size_t steps,
                                 size_t ops_per_step, uint32_t seed) {
  std::mt19937 rng(seed);
  OemDatabase scratch = guide;
  OemHistory history;
  NodeId groot = scratch.Child(scratch.root(), "guide");
  size_t serial = 0;

  for (size_t step = 0; step < steps; ++step) {
    Timestamp t = Timestamp(Timestamp::FromDate(1997, 1, 1).ticks +
                            static_cast<int64_t>(step));
    ChangeSet ops;
    std::set<NodeId> upd_targets;
    std::set<std::tuple<NodeId, std::string, NodeId>> touched;
    std::vector<NodeId> entries = scratch.Children(groot, "restaurant");
    NodeId next_new = scratch.PeekNextId();

    for (size_t k = 0; k < ops_per_step && !entries.empty(); ++k) {
      NodeId r = entries[rng() % entries.size()];
      switch (rng() % 5) {
        case 0: {  // price change
          NodeId price = scratch.Child(r, "price");
          if (price == kInvalidNode || !upd_targets.insert(price).second) {
            break;
          }
          ops.push_back(ChangeOp::UpdNode(
              price, Value::Int(static_cast<int64_t>(5 + rng() % 40))));
          break;
        }
        case 1: {  // new restaurant with a name
          NodeId nr = next_new++;
          NodeId nm = next_new++;
          ops.push_back(ChangeOp::CreNode(nr, Value::Complex()));
          ops.push_back(ChangeOp::CreNode(
              nm, Value::String("New Place " + std::to_string(serial++))));
          ops.push_back(ChangeOp::AddArc(groot, "restaurant", nr));
          ops.push_back(ChangeOp::AddArc(nr, "name", nm));
          touched.insert({groot, "restaurant", nr});
          break;
        }
        case 2: {  // comment added
          NodeId c = next_new++;
          if (touched.contains({r, "comment", c})) break;
          ops.push_back(ChangeOp::CreNode(
              c, Value::String("comment " + std::to_string(serial++))));
          ops.push_back(ChangeOp::AddArc(r, "comment", c));
          touched.insert({r, "comment", c});
          break;
        }
        case 3: {  // parking arc removed
          NodeId p = scratch.Child(r, "parking");
          if (p == kInvalidNode || touched.contains({r, "parking", p})) {
            break;
          }
          ops.push_back(ChangeOp::RemArc(r, "parking", p));
          touched.insert({r, "parking", p});
          break;
        }
        default: {  // restaurant delisted
          if (entries.size() < 4) break;  // keep the guide populated
          if (touched.contains({groot, "restaurant", r})) break;
          ops.push_back(ChangeOp::RemArc(groot, "restaurant", r));
          touched.insert({groot, "restaurant", r});
          entries.erase(std::find(entries.begin(), entries.end(), r));
          break;
        }
      }
    }
    Status s = ApplyChangeSet(&scratch, ops);
    assert(s.ok());
    (void)s;
    Must(history.Append(t, std::move(ops)));
  }
  return history;
}

OemHistory SyntheticGuideChurn(const OemDatabase& guide, size_t steps,
                               size_t ops_per_step, uint32_t seed) {
  std::mt19937 rng(seed);
  OemHistory history;
  NodeId groot = guide.Child(guide.root(), "guide");
  // Prices never move or disappear in a churn history, so collect once.
  std::vector<NodeId> prices;
  for (NodeId r : guide.Children(groot, "restaurant")) {
    NodeId price = guide.Child(r, "price");
    if (price != kInvalidNode) prices.push_back(price);
  }
  for (size_t step = 0; step < steps; ++step) {
    Timestamp t = Timestamp(Timestamp::FromDate(1997, 1, 1).ticks +
                            static_cast<int64_t>(step));
    ChangeSet ops;
    std::set<NodeId> upd_targets;
    for (size_t k = 0; k < ops_per_step && !prices.empty(); ++k) {
      NodeId price = prices[rng() % prices.size()];
      if (!upd_targets.insert(price).second) continue;
      ops.push_back(ChangeOp::UpdNode(
          price, Value::Int(static_cast<int64_t>(5 + rng() % 40))));
    }
    Must(history.Append(t, std::move(ops)));
  }
  return history;
}

qss::FrequencySpec RandomFrequencySpec(std::mt19937* rng,
                                       int64_t max_interval_ticks) {
  if (max_interval_ticks < 1) max_interval_ticks = 1;
  int64_t interval =
      1 + static_cast<int64_t>((*rng)() % static_cast<uint64_t>(
                                              max_interval_ticks));
  auto spec = qss::FrequencySpec::Parse("every " + std::to_string(interval) +
                                        " ticks");
  assert(spec.ok());
  return *spec;
}

std::vector<qss::FaultSpec> RandomFaultSchedule(
    const std::vector<std::string>& scopes, std::mt19937* rng,
    const FaultScheduleOptions& opts) {
  std::vector<qss::FaultSpec> out;
  for (const std::string& scope : scopes) {
    for (size_t i = 0; i < opts.specs_per_scope; ++i) {
      qss::FaultSpec spec;
      spec.query_contains = scope;
      spec.skip = (*rng)() % (opts.max_skip + 1);
      spec.count = 1 + (*rng)() % opts.max_count;
      switch ((*rng)() % 3) {
        case 0:
          spec.kind = qss::FaultKind::kError;
          spec.error = Status::Unavailable("injected outage on '" + scope +
                                           "' #" + std::to_string(i));
          break;
        case 1:
          spec.kind = qss::FaultKind::kSlowPoll;
          spec.duration_ticks =
              1 + static_cast<int64_t>(
                      (*rng)() % static_cast<uint64_t>(opts.max_slow_ticks));
          break;
        default:
          spec.kind = qss::FaultKind::kGarbage;
          break;
      }
      out.push_back(std::move(spec));
    }
  }
  return out;
}

}  // namespace testing
}  // namespace doem
