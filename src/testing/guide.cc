#include "testing/guide.h"

#include <cassert>

namespace doem {
namespace testing {

namespace {
void Must(const Status& s) { assert(s.ok()); (void)s; }
}  // namespace

Guide BuildGuide() {
  Guide g;
  OemDatabase& db = g.db;

  // Paper-numbered nodes first so their ids match Example 2.3.
  Must(db.CreNode(1, Value::Int(10)));        // n1: Bangkok price
  Must(db.CreNode(4, Value::Complex()));      // n4: guide root
  Must(db.CreNode(6, Value::Complex()));      // n6: Janta restaurant
  Must(db.CreNode(7, Value::Complex()));      // n7: shared parking object
  // Burn n2, n3, n5 so NewNode below never hands them out; the history
  // creates them later.
  db.ReserveIdsBelow(8);

  // Lorel path expressions start at the database root; "guide" is the
  // name of the top-level object, i.e. a label on an arc from an
  // anonymous root (the free-floating "guide" arrow of Figure 2).
  NodeId root = db.NewComplex();
  Must(db.SetRoot(root));
  Must(db.AddArc(root, "guide", 4));

  // Bangkok Cuisine.
  g.bangkok = db.NewComplex();
  Must(db.AddArc(4, "restaurant", g.bangkok));
  Must(db.AddArc(g.bangkok, "name", db.NewString("Bangkok Cuisine")));
  Must(db.AddArc(g.bangkok, "price", 1));
  Must(db.AddArc(g.bangkok, "address", db.NewString("120 Lytton")));
  Must(db.AddArc(g.bangkok, "cuisine", db.NewString("Indian")));
  Must(db.AddArc(g.bangkok, "parking", 7));

  // Janta.
  Must(db.AddArc(4, "restaurant", 6));
  Must(db.AddArc(6, "name", db.NewString("Janta")));
  Must(db.AddArc(6, "price", db.NewString("moderate")));
  g.janta_address = db.NewComplex();
  Must(db.AddArc(6, "address", g.janta_address));
  Must(db.AddArc(g.janta_address, "street", db.NewString("Lytton")));
  Must(db.AddArc(g.janta_address, "city", db.NewString("Palo Alto")));
  Must(db.AddArc(6, "parking", 7));  // n7 has two incoming arcs

  // The parking object: a leaf description, a comment, and a cycle back to
  // a restaurant via nearby-eats.
  Must(db.AddArc(7, "lot", db.NewString("Lytton lot 2")));
  Must(db.AddArc(7, "comment", db.NewString("usually full")));
  Must(db.AddArc(7, "nearby-eats", g.bangkok));

  assert(db.Validate().ok());
  return g;
}

Timestamp GuideT1() { return Timestamp::FromDate(1997, 1, 1); }
Timestamp GuideT2() { return Timestamp::FromDate(1997, 1, 5); }
Timestamp GuideT3() { return Timestamp::FromDate(1997, 1, 8); }

OemHistory GuideHistory() {
  OemHistory h;
  Must(h.Append(GuideT1(),
                {ChangeOp::UpdNode(1, Value::Int(20)),
                 ChangeOp::CreNode(2, Value::Complex()),
                 ChangeOp::CreNode(3, Value::String("Hakata")),
                 ChangeOp::AddArc(4, "restaurant", 2),
                 ChangeOp::AddArc(2, "name", 3)}));
  Must(h.Append(GuideT2(), {ChangeOp::CreNode(5, Value::String("need info")),
                            ChangeOp::AddArc(2, "comment", 5)}));
  Must(h.Append(GuideT3(), {ChangeOp::RemArc(6, "parking", 7)}));
  return h;
}

}  // namespace testing
}  // namespace doem
