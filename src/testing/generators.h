#ifndef DOEM_TESTING_GENERATORS_H_
#define DOEM_TESTING_GENERATORS_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "oem/history.h"
#include "oem/oem.h"
#include "qss/fault.h"
#include "qss/frequency.h"

namespace doem {
namespace testing {

/// Parameters for random OEM database generation. The generated databases
/// exhibit the paper's semistructured irregularities: mixed atomic value
/// types under the same label, shared subobjects, and cycles.
struct DatabaseOptions {
  uint32_t seed = 42;
  size_t node_count = 100;
  /// Labels are drawn from l0..l<alphabet-1>.
  size_t label_alphabet = 8;
  /// Fraction of nodes that are atomic.
  double atomic_fraction = 0.6;
  /// Expected number of extra arcs (sharing/cycles) per complex node.
  double extra_arc_rate = 0.15;
};

/// Builds a random well-formed database (Validate() passes).
OemDatabase RandomDatabase(const DatabaseOptions& opts);

/// Parameters for random valid history generation.
struct HistoryOptions {
  uint32_t seed = 43;
  size_t steps = 10;
  size_t ops_per_step = 8;
  Timestamp start = Timestamp(100);
  int64_t stride = 10;
};

/// Generates a history valid for `base` (and for DOEM application: every
/// created node is linked within its change set, deleted objects are
/// never touched again, and change sets are conflict-free).
OemHistory RandomHistory(const OemDatabase& base, const HistoryOptions& opts);

/// A deterministic batch of Chorel queries over the generated label
/// alphabet, exercising plain paths, wildcards, each annotation kind, and
/// where-clause filters. Used by the direct-vs-translated differential
/// property test and the strategy benchmarks.
std::vector<std::string> ChorelQueryCorpus(size_t label_alphabet);

/// A scaled-up restaurant guide in the shape of Figure 2 (entry name
/// "guide", restaurants with name/price/address/parking irregularities,
/// shared parking objects and nearby-eats cycles). Used by examples and
/// benchmarks.
OemDatabase SyntheticGuide(size_t restaurants, uint32_t seed = 7);

/// A history of realistic guide edits (price updates, new restaurants,
/// removed parking arcs) valid for SyntheticGuide(restaurants, seed).
OemHistory SyntheticGuideHistory(const OemDatabase& guide, size_t steps,
                                 size_t ops_per_step, uint32_t seed = 11);

/// A fixed-shape churn history for SyntheticGuide(restaurants, seed):
/// every step updates up to `ops_per_step` existing prices and nothing
/// else, so the graph never grows while accumulated annotation history
/// grows linearly in `steps`. This isolates history-length effects: a
/// query over the current snapshot costs the same at every step, so any
/// per-poll slowdown is attributable to history-proportional work (the
/// from-scratch encoding rebuild the incremental maintainer eliminates).
OemHistory SyntheticGuideChurn(const OemDatabase& guide, size_t steps,
                               size_t ops_per_step, uint32_t seed = 13);

/// A random "every N ticks" frequency spec with
/// 1 <= N <= max_interval_ticks, for QSS scheduling stress tests.
qss::FrequencySpec RandomFrequencySpec(std::mt19937* rng,
                                       int64_t max_interval_ticks = 4);

/// Parameters for random fault-schedule generation (QSS stress tests).
struct FaultScheduleOptions {
  /// Specs per scope entry (each scope gets its own independent faults).
  size_t specs_per_scope = 2;
  size_t max_skip = 6;
  size_t max_count = 3;
  /// kSlowPoll durations are drawn from [1, max_slow_ticks].
  int64_t max_slow_ticks = 8;
};

/// A random mix of error/slow/garbage FaultSpecs, each pinned via
/// `query_contains` to one entry of `scopes` (a distinct substring of one
/// poll group's polling query). Scoped specs keep fault injection
/// deterministic under a parallel executor — see
/// qss::FaultInjectingSource.
std::vector<qss::FaultSpec> RandomFaultSchedule(
    const std::vector<std::string>& scopes, std::mt19937* rng,
    const FaultScheduleOptions& opts = {});

}  // namespace testing
}  // namespace doem

#endif  // DOEM_TESTING_GENERATORS_H_
