#ifndef DOEM_VM_BYTECODE_H_
#define DOEM_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "lorel/ast.h"
#include "lorel/eval.h"
#include "oem/timestamp.h"
#include "oem/value.h"

namespace doem {
namespace vm {

/// Opcodes of the query VM (DESIGN.md §6f). A compiled program is a flat
/// array of fixed-size instructions executed by a dispatch loop over a
/// register file — the SQLite-VDBE shape — instead of the tree-walking
/// evaluator's virtual AST recursion.
///
/// Loop-open opcodes materialize one range definition's candidate list
/// into its slot; the kLoopNext that follows advances the slot cursor and
/// writes the bound registers, jumping outward on exhaustion. Each open
/// opcode mirrors one enumeration shape of lorel::Evaluate's MatchStep
/// bit for bit, including its EvalStats accounting.
enum class Op : uint8_t {
  kHalt = 0,
  // ---- loop opens (a = slot index) ----
  kStepLabel,  // plain label step (optionally <at T>-decorated endpoint)
  kStepAny,    // '%': one arc, any label
  kStepWild,   // '#': any path of length >= 0
  kSeedAnn,    // plain label + <cre/upd> node annotation; index-seeded
               // when the time variable is range-bounded, scan fallback
  kSeedArc,    // <add/rem at T> arc annotation; index-seeded, scan fallback
  kLiveAt,     // <at T> arc annotation: children live at time T
  // ---- iteration ----
  kLoopNext,  // a = slot, b = jump target on exhaustion
  // ---- predicates ----
  kCmpJump,  // sub = BinOp, operands (u1,a)/(u2,b), c = true pc, d = false pc
  kJump,     // a = target pc
  // ---- output ----
  kEmit,  // project select args into a row; a = jump target (innermost next)
};

/// Where an operand of kCmpJump — or a select-projection / at-time
/// argument — comes from.
enum class ArgSrc : uint8_t {
  kReg = 0,    // register (an RtVal bound by a loop)
  kConst,      // literal pool
  kTimeSlot,   // t[i], resolved once per run from the polling times
};

struct Instr {
  Op op = Op::kHalt;
  uint8_t sub = 0;          // kCmpJump: the lorel::BinOp
  uint8_t u1 = 0, u2 = 0;   // kCmpJump: lhs / rhs ArgSrc
  int32_t a = 0, b = 0, c = 0, d = 0;
};

/// An <at T> time operand, resolved at slot-open time.
struct AtTimeArg {
  enum class Kind : uint8_t { kNone, kConst, kTimeSlot, kReg };
  Kind kind = Kind::kNone;
  int32_t index = 0;
};

/// Compile-time plan for one range definition (one loop slot).
struct SlotPlan {
  Op open = Op::kStepLabel;
  int32_t source_reg = -1;  // -1 = database root
  int32_t source_slot = -1; // slot defining the source variable, -1 = root
  int32_t end_reg = -1;
  bool bind_value = false;
  lorel::PathStep step;  // label / wildcards / annotation shapes
  // Annotation-variable registers (-1 = variable not written).
  int32_t arc_time_reg = -1;
  int32_t node_time_reg = -1;
  int32_t from_reg = -1;
  int32_t to_reg = -1;
  // <at T> operands (arc position / node position).
  AtTimeArg at_arc, at_node;
  /// Name of the seedable, where-bounded time variable driving
  /// annotation-index seeding for this slot; empty = never seeds.
  std::string seed_var;
};

/// One top-level where conjunct, compiled to kCmpJump/kJump instructions.
/// Internal jump targets are conjunct-relative offsets; kTargetPass /
/// kTargetFail are patched when the run program is assembled (pass =
/// fall through to the enclosing loop body, fail = advance the loop).
struct Conjunct {
  static constexpr int32_t kTargetPass = -1;
  static constexpr int32_t kTargetFail = -2;

  std::vector<Instr> code;
  /// Slots whose registers the conjunct reads — it is placed just inside
  /// the deepest of them in the chosen loop order (predicate push-down).
  std::vector<uint32_t> dep_slots;
};

/// One select-clause projection.
struct SelectArg {
  ArgSrc src = ArgSrc::kReg;
  int32_t index = 0;
};

/// A symbolic record of one where-conjunct time bound (the compile-time
/// half of lorel's CollectConjunctBounds). The numeric fold is replayed
/// per run because t[i] bounds depend on the polling times.
struct BoundTerm {
  std::string var;
  lorel::BinOp op = lorel::BinOp::kEq;  // oriented as var-op-bound
  bool is_time_ref = false;
  int32_t time_slot = 0;  // when is_time_ref: index into the run's times
  Timestamp literal;      // otherwise, pre-coerced to a timestamp
};

/// A compiled query program: slot plans in original definition order,
/// predicate/projection bytecode, constant pools, and the assembled
/// instruction stream for the identity (left-to-right) step order.
/// Reordered plans are assembled per run from the same parts.
struct Program {
  std::vector<SlotPlan> slots;
  std::vector<Conjunct> conjuncts;
  std::vector<SelectArg> select;
  std::vector<std::string> labels;  // result labels (NormQuery::labels)
  std::vector<Value> const_pool;
  std::vector<int> time_refs;  // time slot -> the i of t[i]
  std::vector<BoundTerm> bound_terms;
  std::unordered_set<std::string> seedable_vars;
  uint32_t reg_count = 0;
  /// Step reordering is sound only when no step can fail per context —
  /// i.e. no <at T> virtual annotations anywhere (DESIGN.md §6f).
  bool reorderable = false;
  bool needs_annotations = false;
  bool needs_time_travel = false;
  /// Instruction stream for the identity order (the common linear-chain
  /// case), assembled once at compile time.
  std::vector<Instr> identity_code;

  /// Human-readable instruction listing (tests, debugging).
  std::string Disassemble() const;
};

/// Assembles the instruction stream for `order` — a permutation of slot
/// indices giving the loop nesting, outermost first. Where conjuncts are
/// pushed down to the deepest loop that binds all their inputs.
std::vector<Instr> AssembleCode(const Program& p,
                                const std::vector<uint32_t>& order);

const char* OpName(Op op);

}  // namespace vm
}  // namespace doem

#endif  // DOEM_VM_BYTECODE_H_
