#ifndef DOEM_VM_VM_H_
#define DOEM_VM_VM_H_

#include <vector>

#include "common/result.h"
#include "lorel/eval.h"
#include "lorel/view.h"
#include "vm/bytecode.h"

namespace doem {
namespace vm {

/// Diagnostics about one VM run (tests, metrics).
struct RunInfo {
  /// The cost model chose a non-identity loop nesting.
  bool reordered = false;
  /// Slot execution order, outermost first.
  std::vector<uint32_t> order;
};

/// Executes a compiled program against a view. Produces byte-identical
/// results to lorel::Evaluate on the same NormQuery — including row
/// order, dedup, max_rows behavior, answer packaging, and EvalStats for
/// identity-order runs. Any error (unsupported view capability, time
/// operand failure, max_rows) should be handled by falling back to the
/// tree walker, whose result is authoritative.
Result<lorel::QueryResult> Run(const Program& p, const lorel::GraphView& view,
                               const lorel::EvalOptions& opts = {},
                               RunInfo* info = nullptr);

}  // namespace vm
}  // namespace doem

#endif  // DOEM_VM_VM_H_
