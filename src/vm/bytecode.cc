#include "vm/bytecode.h"

#include <algorithm>

namespace doem {
namespace vm {

const char* OpName(Op op) {
  switch (op) {
    case Op::kHalt: return "Halt";
    case Op::kStepLabel: return "StepLabel";
    case Op::kStepAny: return "StepAny";
    case Op::kStepWild: return "StepWild";
    case Op::kSeedAnn: return "SeedAnn";
    case Op::kSeedArc: return "SeedArc";
    case Op::kLiveAt: return "LiveAt";
    case Op::kLoopNext: return "LoopNext";
    case Op::kCmpJump: return "CmpJump";
    case Op::kJump: return "Jump";
    case Op::kEmit: return "Emit";
  }
  return "?";
}

std::vector<Instr> AssembleCode(const Program& p,
                                const std::vector<uint32_t>& order) {
  size_t n = order.size();
  // Position of each slot in the nesting.
  std::vector<int32_t> pos(p.slots.size(), -1);
  for (size_t k = 0; k < n; ++k) pos[order[k]] = static_cast<int32_t>(k);
  // Conjunct placement: just inside the deepest loop binding one of its
  // inputs; input-free conjuncts run once, before any loop opens.
  std::vector<std::vector<uint32_t>> at_depth(n + 1);
  for (uint32_t ci = 0; ci < p.conjuncts.size(); ++ci) {
    int32_t d = -1;
    for (uint32_t s : p.conjuncts[ci].dep_slots) d = std::max(d, pos[s]);
    at_depth[static_cast<size_t>(d + 1)].push_back(ci);
  }

  // First pass: lay out program-counter positions.
  size_t pc = 0;
  for (uint32_t ci : at_depth[0]) pc += p.conjuncts[ci].code.size();
  std::vector<size_t> open_pc(n), next_pc(n);
  for (size_t k = 0; k < n; ++k) {
    open_pc[k] = pc++;
    next_pc[k] = pc++;
    for (uint32_t ci : at_depth[k + 1]) pc += p.conjuncts[ci].code.size();
  }
  ++pc;  // emit
  size_t halt_pc = pc;

  // Second pass: emit with all targets known.
  std::vector<Instr> code;
  code.reserve(halt_pc + 1);
  auto emit_conjunct = [&](uint32_t ci, size_t fail_pc) {
    const Conjunct& cj = p.conjuncts[ci];
    int32_t base = static_cast<int32_t>(code.size());
    int32_t pass_pc = base + static_cast<int32_t>(cj.code.size());
    auto fix = [&](int32_t t) -> int32_t {
      if (t == Conjunct::kTargetPass) return pass_pc;
      if (t == Conjunct::kTargetFail) return static_cast<int32_t>(fail_pc);
      return base + t;  // conjunct-local offset
    };
    for (Instr ins : cj.code) {
      if (ins.op == Op::kCmpJump) {
        ins.c = fix(ins.c);
        ins.d = fix(ins.d);
      } else if (ins.op == Op::kJump) {
        ins.a = fix(ins.a);
      }
      code.push_back(ins);
    }
  };

  for (uint32_t ci : at_depth[0]) emit_conjunct(ci, halt_pc);
  for (size_t k = 0; k < n; ++k) {
    Instr open;
    open.op = p.slots[order[k]].open;
    open.a = static_cast<int32_t>(order[k]);
    code.push_back(open);
    Instr next;
    next.op = Op::kLoopNext;
    next.a = static_cast<int32_t>(order[k]);
    next.b = static_cast<int32_t>(k == 0 ? halt_pc : next_pc[k - 1]);
    code.push_back(next);
    for (uint32_t ci : at_depth[k + 1]) emit_conjunct(ci, next_pc[k]);
  }
  Instr emit;
  emit.op = Op::kEmit;
  emit.a = static_cast<int32_t>(n == 0 ? halt_pc : next_pc[n - 1]);
  code.push_back(emit);
  code.push_back(Instr{});  // kHalt
  return code;
}

std::string Program::Disassemble() const {
  std::string out;
  for (size_t i = 0; i < identity_code.size(); ++i) {
    const Instr& ins = identity_code[i];
    out += std::to_string(i) + "\t" + OpName(ins.op);
    switch (ins.op) {
      case Op::kStepLabel:
      case Op::kStepAny:
      case Op::kStepWild:
      case Op::kSeedAnn:
      case Op::kSeedArc:
      case Op::kLiveAt: {
        const SlotPlan& sp = slots[static_cast<size_t>(ins.a)];
        out += " slot=" + std::to_string(ins.a) + " step=" +
               sp.step.ToString() + " -> r" + std::to_string(sp.end_reg);
        if (!sp.seed_var.empty()) out += " seed=" + sp.seed_var;
        break;
      }
      case Op::kLoopNext:
        out += " slot=" + std::to_string(ins.a) + " exhausted->" +
               std::to_string(ins.b);
        break;
      case Op::kCmpJump:
        out += " " + std::string(lorel::BinOpToString(
                         static_cast<lorel::BinOp>(ins.sub))) +
               " t->" + std::to_string(ins.c) + " f->" +
               std::to_string(ins.d);
        break;
      case Op::kJump:
      case Op::kEmit:
        out += " ->" + std::to_string(ins.a);
        break;
      case Op::kHalt:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace vm
}  // namespace doem
