#include "vm/vm.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lorel/coerce.h"
#include "vm/cost.h"

namespace doem {
namespace vm {

namespace {

using lorel::AnnotExpr;
using lorel::AnnotKind;
using lorel::EvalOptions;
using lorel::EvalStats;
using lorel::GraphView;
using lorel::QueryResult;
using lorel::RtVal;
using lorel::UpdEntry;

/// One match of an annotated step: the endpoint node plus the annotation
/// payloads its registers bind (arc time for add/rem, node time and
/// old/new values for cre/upd). Matches are stored in the tree walker's
/// candidate order so slot cursors double as emission ranks.
struct RichMatch {
  NodeId node = kInvalidNode;
  bool has_arc_time = false;
  Timestamp arc_time;
  bool has_node_time = false;
  Timestamp node_time;
  bool has_vals = false;
  Value old_value, new_value;
};

struct SlotState {
  // Node-list mode: candidates are bare nodes, either referenced in
  // place (OemView label buckets) or materialized into own_nodes.
  const std::vector<NodeId>* nodes = nullptr;
  std::vector<NodeId> own_nodes;
  // Rich mode: annotation matches.
  bool rich_mode = false;
  std::vector<RichMatch> rich;
  // Node <at T>: endpoints bind as NodeAt(n, as_of).
  bool has_as_of = false;
  Timestamp as_of;
  size_t size = 0;
  size_t pos = 0;
  uint32_t cur = 0;

  void Reset() {
    nodes = nullptr;
    own_nodes.clear();
    rich_mode = false;
    rich.clear();
    has_as_of = false;
    size = 0;
    pos = 0;
    cur = 0;
  }
};

class Machine {
 public:
  Machine(const Program& p, const GraphView& view, const EvalOptions& opts)
      : p_(p), view_(view), opts_(opts) {}

  Result<QueryResult> Run(RunInfo* info) {
    // Capability and time-operand preconditions, hoisted to run start.
    // The tree walker only fails when the offending step executes with a
    // non-empty context, so an error here must trigger fallback rather
    // than surface to the caller.
    if (p_.needs_annotations && !view_.SupportsAnnotations()) {
      return Status::Unsupported("vm: view has no annotations");
    }
    if (p_.needs_time_travel && !view_.SupportsTimeTravel()) {
      return Status::Unsupported("vm: view has no time travel");
    }
    if (!p_.time_refs.empty()) {
      if (opts_.polling_times == nullptr) {
        return Status::Unsupported("vm: t[i] without polling times");
      }
      for (int i : p_.time_refs) {
        Timestamp t = ResolveTimeRef(i);
        times_.push_back(t);
        time_values_.push_back(Value::Time(t));
      }
    }
    bounds_ = ReplayBounds(p_, times_);

    std::vector<uint32_t> order(p_.slots.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    bool reordered = false;
    if (p_.reorderable) {
      std::vector<uint32_t> planned = PlanOrder(p_, view_, bounds_);
      reordered = planned != order;
      order = std::move(planned);
    }
    if (info != nullptr) {
      info->reordered = reordered;
      info->order = order;
    }

    QueryResult result;
    result.labels = p_.labels;
    regs_.assign(p_.reg_count, RtVal{});
    slots_.assign(p_.slots.size(), SlotState{});

    Status s;
    if (!reordered) {
      s = Exec(p_.identity_code, /*ranked=*/false, &result);
    } else {
      std::vector<Instr> code = AssembleCode(p_, order);
      s = Exec(code, /*ranked=*/true, &result);
      if (s.ok()) {
        // Restore the tree walker's emission order: ranks are per-slot
        // candidate cursors at original definition positions, so their
        // lexicographic order is exactly the original nesting order.
        std::sort(pending_.begin(), pending_.end(),
                  [](const Pending& a, const Pending& b) {
                    return a.rank < b.rank;
                  });
        result.rows.reserve(pending_.size());
        for (Pending& pe : pending_) result.rows.push_back(std::move(pe.row));
      }
    }
    if (!s.ok()) return s;
    if (opts_.package_results) {
      DOEM_RETURN_IF_ERROR(
          lorel::PackageResult(view_, p_.select.size(), &result));
    }
    // Stats flush only on success; on failure the fallback interpreter
    // run contributes its own counters instead.
    if (opts_.stats != nullptr) {
      opts_.stats->nodes_visited += stats_.nodes_visited;
      opts_.stats->arcs_expanded += stats_.arcs_expanded;
      opts_.stats->steps_index_seeded += stats_.steps_index_seeded;
      opts_.stats->steps_scanned += stats_.steps_scanned;
      opts_.stats->postings_scanned += stats_.postings_scanned;
    }
    return result;
  }

 private:
  struct Pending {
    std::vector<uint32_t> rank;
    std::vector<RtVal> row;
  };

  Timestamp ResolveTimeRef(int i) const {
    const auto& times = *opts_.polling_times;
    int64_t idx = static_cast<int64_t>(times.size()) - 1 + i;
    if (idx < 0 || times.empty()) return Timestamp::NegativeInfinity();
    return times[static_cast<size_t>(idx)];
  }

  // ---- dispatch loop ---------------------------------------------------

  Status Exec(const std::vector<Instr>& code, bool ranked,
              QueryResult* result) {
    size_t pc = 0;
    Value lscratch, rscratch;
    while (true) {
      const Instr& ins = code[pc];
      switch (ins.op) {
        case Op::kHalt:
          return Status::OK();
        case Op::kStepLabel:
        case Op::kStepAny:
        case Op::kStepWild:
        case Op::kSeedAnn:
        case Op::kSeedArc:
        case Op::kLiveAt:
          DOEM_RETURN_IF_ERROR(OpenSlot(static_cast<uint32_t>(ins.a)));
          ++pc;
          break;
        case Op::kLoopNext: {
          SlotState& st = slots_[static_cast<size_t>(ins.a)];
          if (st.pos >= st.size) {
            pc = static_cast<size_t>(ins.b);
            break;
          }
          st.cur = static_cast<uint32_t>(st.pos++);
          BindSlot(static_cast<uint32_t>(ins.a));
          ++pc;
          break;
        }
        case Op::kCmpJump: {
          const Value& l = CmpArg(ins.u1, ins.a, &lscratch);
          const Value& r = CmpArg(ins.u2, ins.b, &rscratch);
          bool t =
              lorel::CompareValues(l, static_cast<lorel::BinOp>(ins.sub), r);
          pc = static_cast<size_t>(t ? ins.c : ins.d);
          break;
        }
        case Op::kJump:
          pc = static_cast<size_t>(ins.a);
          break;
        case Op::kEmit:
          DOEM_RETURN_IF_ERROR(Emit(ranked, result));
          pc = static_cast<size_t>(ins.a);
          break;
      }
    }
  }

  // ---- slot opening ----------------------------------------------------

  Status OpenSlot(uint32_t si) {
    const SlotPlan& sp = p_.slots[si];
    SlotState& st = slots_[si];
    st.Reset();
    switch (sp.open) {
      case Op::kStepLabel: return OpenStepLabel(sp, st);
      case Op::kStepAny: return OpenStepAny(sp, st);
      case Op::kStepWild: return OpenStepWild(sp, st);
      case Op::kSeedAnn: return OpenSeedAnn(sp, st);
      case Op::kSeedArc: return OpenSeedArc(sp, st);
      case Op::kLiveAt: return OpenLiveAt(sp, st);
      default: return Status::Internal("vm: bad open opcode");
    }
  }

  /// Resolves the slot's source node. False = no source (unbound root or
  /// a value binding): the slot is empty and, matching the tree walker's
  /// early return, contributes nothing to the stats.
  bool SlotSource(const SlotPlan& sp, NodeId* src) const {
    if (sp.source_reg < 0) {
      *src = view_.root();
      return *src != kInvalidNode;
    }
    const RtVal& v = regs_[static_cast<size_t>(sp.source_reg)];
    if (v.kind != RtVal::Kind::kNode) return false;
    *src = v.node;
    return true;
  }

  Status OpenStepLabel(const SlotPlan& sp, SlotState& st) {
    NodeId src;
    if (!SlotSource(sp, &src)) return Status::OK();
    const std::vector<NodeId>* kids = view_.ChildrenRef(src, sp.step.label);
    if (kids == nullptr) {
      st.own_nodes = view_.Children(src, sp.step.label);
      kids = &st.own_nodes;
    }
    stats_.arcs_expanded += kids->size();
    stats_.nodes_visited += kids->size();
    st.nodes = kids;
    st.size = kids->size();
    if (sp.step.node_annot) {
      // Only <at T> lands here (cre/upd plain-label steps are kSeedAnn);
      // an annotated step that scanned counts as scanned.
      ++stats_.steps_scanned;
      if (st.size > 0) {
        DOEM_RETURN_IF_ERROR(ResolveAt(sp.at_node, &st.as_of));
        st.has_as_of = true;
      }
    }
    return Status::OK();
  }

  Status OpenStepAny(const SlotPlan& sp, SlotState& st) {
    NodeId src;
    if (!SlotSource(sp, &src)) return Status::OK();
    bool skip_amp = view_.SkipEncodingLabelsInWildcard();
    for (const OutArc& a : view_.LiveOutArcs(src)) {
      ++stats_.arcs_expanded;
      if (skip_amp && !a.label.empty() && a.label[0] == '&') continue;
      st.own_nodes.push_back(a.child);
    }
    stats_.nodes_visited += st.own_nodes.size();
    if (sp.step.node_annot) ++stats_.steps_scanned;
    return ExpandNodeAnnot(sp, st);
  }

  Status OpenStepWild(const SlotPlan& sp, SlotState& st) {
    NodeId src;
    if (!SlotSource(sp, &src)) return Status::OK();
    // BFS closure in the tree walker's visit order.
    st.own_nodes.push_back(src);
    std::unordered_set<NodeId> seen{src};
    std::deque<NodeId> queue{src};
    bool skip_amp = view_.SkipEncodingLabelsInWildcard();
    while (!queue.empty()) {
      NodeId n = queue.front();
      queue.pop_front();
      for (const OutArc& a : view_.LiveOutArcs(n)) {
        ++stats_.arcs_expanded;
        if (skip_amp && !a.label.empty() && a.label[0] == '&') continue;
        if (seen.insert(a.child).second) {
          st.own_nodes.push_back(a.child);
          queue.push_back(a.child);
        }
      }
    }
    stats_.nodes_visited += st.own_nodes.size();
    if (sp.step.node_annot) ++stats_.steps_scanned;
    return ExpandNodeAnnot(sp, st);
  }

  Status OpenSeedAnn(const SlotPlan& sp, SlotState& st) {
    NodeId src;
    if (!SlotSource(sp, &src)) return Status::OK();
    const AnnotExpr& a = *sp.step.node_annot;
    bool seeded = false;
    if (!sp.seed_var.empty()) {
      auto b = bounds_.find(sp.seed_var);
      if (b != bounds_.end()) {
        auto in_range = a.kind == AnnotKind::kCre
                            ? view_.CreatedInRange(b->second.first,
                                                   b->second.second)
                            : view_.UpdatedInRange(b->second.first,
                                                   b->second.second);
        if (in_range) {
          seeded = true;
          stats_.postings_scanned += in_range->size();
          for (NodeId c : *in_range) {
            if (view_.HasLiveArc(src, sp.step.label, c)) {
              st.own_nodes.push_back(c);
            }
          }
        }
      }
    }
    if (!seeded) {
      for (NodeId c : view_.Children(src, sp.step.label)) {
        ++stats_.arcs_expanded;
        st.own_nodes.push_back(c);
      }
    }
    stats_.nodes_visited += st.own_nodes.size();
    if (seeded) {
      ++stats_.steps_index_seeded;
    } else {
      ++stats_.steps_scanned;
    }
    return ExpandNodeAnnot(sp, st);
  }

  Status OpenSeedArc(const SlotPlan& sp, SlotState& st) {
    NodeId src;
    if (!SlotSource(sp, &src)) return Status::OK();
    const AnnotExpr& a = *sp.step.arc_annot;
    bool seeded = false;
    std::vector<std::pair<Timestamp, NodeId>> pairs;
    if (!sp.seed_var.empty()) {
      auto b = bounds_.find(sp.seed_var);
      if (b != bounds_.end()) {
        auto in_range = a.kind == AnnotKind::kAdd
                            ? view_.AddedInRange(b->second.first,
                                                 b->second.second)
                            : view_.RemovedInRange(b->second.first,
                                                   b->second.second);
        if (in_range) {
          seeded = true;
          stats_.postings_scanned += in_range->size();
          for (const auto& [t, arc] : *in_range) {
            if (arc.parent != src) continue;
            if (!sp.step.wildcard_one && arc.label != sp.step.label) continue;
            pairs.emplace_back(t, arc.child);
          }
        }
      }
    }
    if (!seeded) {
      if (sp.step.wildcard_one) {
        pairs = a.kind == AnnotKind::kAdd ? view_.AddAnnotatedAny(src)
                                          : view_.RemAnnotatedAny(src);
      } else {
        pairs = a.kind == AnnotKind::kAdd
                    ? view_.AddAnnotated(src, sp.step.label)
                    : view_.RemAnnotated(src, sp.step.label);
      }
      stats_.arcs_expanded += pairs.size();
    }
    stats_.nodes_visited += pairs.size();
    if (seeded) {
      ++stats_.steps_index_seeded;
    } else {
      ++stats_.steps_scanned;
    }

    st.rich_mode = true;
    if (!sp.step.node_annot) {
      for (const auto& [t, c] : pairs) {
        RichMatch m;
        m.node = c;
        m.has_arc_time = true;
        m.arc_time = t;
        st.rich.push_back(m);
      }
    } else {
      const AnnotExpr& na = *sp.step.node_annot;
      switch (na.kind) {
        case AnnotKind::kCre: {
          for (const auto& [t, c] : pairs) {
            auto ct = view_.CreTime(c);
            if (!ct) continue;
            RichMatch m;
            m.node = c;
            m.has_arc_time = true;
            m.arc_time = t;
            m.has_node_time = true;
            m.node_time = *ct;
            st.rich.push_back(m);
          }
          break;
        }
        case AnnotKind::kUpd: {
          for (const auto& [t, c] : pairs) {
            for (const UpdEntry& u : view_.UpdEntries(c)) {
              RichMatch m;
              m.node = c;
              m.has_arc_time = true;
              m.arc_time = t;
              m.has_node_time = true;
              m.node_time = u.time;
              m.has_vals = true;
              m.old_value = u.old_value;
              m.new_value = u.new_value;
              st.rich.push_back(m);
            }
          }
          break;
        }
        case AnnotKind::kAt: {
          if (!pairs.empty()) {
            DOEM_RETURN_IF_ERROR(ResolveAt(sp.at_node, &st.as_of));
            st.has_as_of = true;
          }
          for (const auto& [t, c] : pairs) {
            RichMatch m;
            m.node = c;
            m.has_arc_time = true;
            m.arc_time = t;
            st.rich.push_back(m);
          }
          break;
        }
        default:
          return Status::Internal("vm: arc annotation in node position");
      }
    }
    st.size = st.rich.size();
    return Status::OK();
  }

  Status OpenLiveAt(const SlotPlan& sp, SlotState& st) {
    NodeId src;
    if (!SlotSource(sp, &src)) return Status::OK();
    // The walker evaluates the arc at-time before enumeration,
    // unconditionally.
    Timestamp t;
    DOEM_RETURN_IF_ERROR(ResolveAt(sp.at_arc, &t));
    st.own_nodes = sp.step.wildcard_one
                       ? view_.ChildrenAtAny(src, t)
                       : view_.ChildrenAt(src, sp.step.label, t);
    stats_.arcs_expanded += st.own_nodes.size();
    stats_.nodes_visited += st.own_nodes.size();
    ++stats_.steps_scanned;  // annotated, never index-seeded
    return ExpandNodeAnnot(sp, st);
  }

  /// Applies the node annotation (if any) to a node-list candidate set,
  /// in the tree walker's per-candidate order. Stats are already counted.
  Status ExpandNodeAnnot(const SlotPlan& sp, SlotState& st) {
    if (!sp.step.node_annot) {
      st.nodes = &st.own_nodes;
      st.size = st.own_nodes.size();
      return Status::OK();
    }
    const AnnotExpr& a = *sp.step.node_annot;
    switch (a.kind) {
      case AnnotKind::kCre: {
        st.rich_mode = true;
        for (NodeId c : st.own_nodes) {
          auto t = view_.CreTime(c);
          if (!t) continue;  // no cre annotation: no match
          RichMatch m;
          m.node = c;
          m.has_node_time = true;
          m.node_time = *t;
          st.rich.push_back(m);
        }
        st.size = st.rich.size();
        return Status::OK();
      }
      case AnnotKind::kUpd: {
        st.rich_mode = true;
        for (NodeId c : st.own_nodes) {
          for (const UpdEntry& u : view_.UpdEntries(c)) {
            RichMatch m;
            m.node = c;
            m.has_node_time = true;
            m.node_time = u.time;
            m.has_vals = true;
            m.old_value = u.old_value;
            m.new_value = u.new_value;
            st.rich.push_back(m);
          }
        }
        st.size = st.rich.size();
        return Status::OK();
      }
      case AnnotKind::kAt: {
        // Per-candidate in the walker, but context-invariant within one
        // slot opening: resolve once, only when candidates exist (an
        // empty slot never evaluates the time there either).
        if (!st.own_nodes.empty()) {
          DOEM_RETURN_IF_ERROR(ResolveAt(sp.at_node, &st.as_of));
          st.has_as_of = true;
        }
        st.nodes = &st.own_nodes;
        st.size = st.own_nodes.size();
        return Status::OK();
      }
      default:
        return Status::Internal("vm: arc annotation in node position");
    }
  }

  // ---- operand resolution ----------------------------------------------

  /// The walker's EvalTime coercion over a single resolved value.
  Status CoerceTime(const Value& v, Timestamp* out) const {
    switch (v.kind()) {
      case Value::Kind::kTimestamp:
        *out = v.AsTime();
        return Status::OK();
      case Value::Kind::kInt:
        *out = Timestamp(v.AsInt());
        return Status::OK();
      case Value::Kind::kString: {
        if (Timestamp::Parse(v.AsString(), out)) return Status::OK();
        break;
      }
      default:
        break;
    }
    return Status::InvalidArgument("vm: value is not a timestamp");
  }

  Status ResolveAt(const AtTimeArg& arg, Timestamp* out) const {
    switch (arg.kind) {
      case AtTimeArg::Kind::kConst:
        return CoerceTime(p_.const_pool[static_cast<size_t>(arg.index)], out);
      case AtTimeArg::Kind::kTimeSlot:
        *out = times_[static_cast<size_t>(arg.index)];
        return Status::OK();
      case AtTimeArg::Kind::kReg:
        return CoerceTime(RtValue(regs_[static_cast<size_t>(arg.index)]),
                          out);
      default:
        return Status::Internal("vm: <at> operand missing");
    }
  }

  /// The comparable value of a register (the walker's RtValue).
  Value RtValue(const RtVal& v) const {
    if (v.kind == RtVal::Kind::kValue) return v.value;
    if (v.as_of) return view_.ValueAt(v.node, *v.as_of);
    return view_.value(v.node);
  }

  const Value& CmpArg(uint8_t src, int32_t idx, Value* scratch) const {
    switch (static_cast<ArgSrc>(src)) {
      case ArgSrc::kConst:
        return p_.const_pool[static_cast<size_t>(idx)];
      case ArgSrc::kTimeSlot:
        return time_values_[static_cast<size_t>(idx)];
      case ArgSrc::kReg: {
        const RtVal& v = regs_[static_cast<size_t>(idx)];
        if (v.kind == RtVal::Kind::kValue) return v.value;
        *scratch =
            v.as_of ? view_.ValueAt(v.node, *v.as_of) : view_.value(v.node);
        return *scratch;
      }
    }
    return *scratch;
  }

  // ---- binding & emission ----------------------------------------------

  RtVal MakeEnd(const SlotPlan& sp, const SlotState& st, NodeId n) const {
    // bind_value converts through the *current* value even under <at T>,
    // exactly like the walker's EnumDefs conversion.
    if (sp.bind_value) return RtVal::Val(view_.value(n));
    if (st.has_as_of) return RtVal::NodeAt(n, st.as_of);
    return RtVal::Node(n);
  }

  void BindSlot(uint32_t si) {
    const SlotPlan& sp = p_.slots[si];
    SlotState& st = slots_[si];
    if (!st.rich_mode) {
      regs_[static_cast<size_t>(sp.end_reg)] =
          MakeEnd(sp, st, (*st.nodes)[st.cur]);
      return;
    }
    const RichMatch& m = st.rich[st.cur];
    // Walker binding order: arc time, node time, from, to, endpoint last
    // (aliased names resolve last-write-wins).
    if (sp.arc_time_reg >= 0 && m.has_arc_time) {
      regs_[static_cast<size_t>(sp.arc_time_reg)] =
          RtVal::Val(Value::Time(m.arc_time));
    }
    if (sp.node_time_reg >= 0 && m.has_node_time) {
      regs_[static_cast<size_t>(sp.node_time_reg)] =
          RtVal::Val(Value::Time(m.node_time));
    }
    if (sp.from_reg >= 0 && m.has_vals) {
      regs_[static_cast<size_t>(sp.from_reg)] = RtVal::Val(m.old_value);
    }
    if (sp.to_reg >= 0 && m.has_vals) {
      regs_[static_cast<size_t>(sp.to_reg)] = RtVal::Val(m.new_value);
    }
    regs_[static_cast<size_t>(sp.end_reg)] = MakeEnd(sp, st, m.node);
  }

  Status Emit(bool ranked, QueryResult* result) {
    std::vector<RtVal> row;
    row.reserve(p_.select.size());
    for (const SelectArg& sa : p_.select) {
      switch (sa.src) {
        case ArgSrc::kReg:
          row.push_back(regs_[static_cast<size_t>(sa.index)]);
          break;
        case ArgSrc::kConst:
          row.push_back(
              RtVal::Val(p_.const_pool[static_cast<size_t>(sa.index)]));
          break;
        case ArgSrc::kTimeSlot:
          row.push_back(
              RtVal::Val(time_values_[static_cast<size_t>(sa.index)]));
          break;
      }
    }
    std::string key = lorel::RowDedupKey(row);
    if (!ranked) {
      if (!seen_.insert(std::move(key)).second) return Status::OK();
      result->rows.push_back(std::move(row));
      if (opts_.max_rows != 0 && result->rows.size() > opts_.max_rows) {
        return Status::InvalidArgument("query exceeded max_rows limit");
      }
      return Status::OK();
    }
    std::vector<uint32_t> rank(p_.slots.size());
    for (size_t i = 0; i < rank.size(); ++i) rank[i] = slots_[i].cur;
    auto [it, fresh] = seen_ranked_.try_emplace(std::move(key),
                                                pending_.size());
    if (fresh) {
      pending_.push_back(Pending{std::move(rank), std::move(row)});
      // max_rows counts distinct rows, so the crossing point is
      // order-independent.
      if (opts_.max_rows != 0 && pending_.size() > opts_.max_rows) {
        return Status::InvalidArgument("query exceeded max_rows limit");
      }
    } else if (rank < pending_[it->second].rank) {
      // Keep the occurrence the walker would have seen first.
      pending_[it->second].rank = std::move(rank);
      pending_[it->second].row = std::move(row);
    }
    return Status::OK();
  }

  const Program& p_;
  const GraphView& view_;
  const EvalOptions& opts_;
  std::vector<RtVal> regs_;
  std::vector<SlotState> slots_;
  std::vector<Timestamp> times_;
  std::vector<Value> time_values_;
  BoundsMap bounds_;
  EvalStats stats_;
  // Identity-order emission.
  std::unordered_set<std::string> seen_;
  // Reordered emission: rows held back with their ranks until halt.
  std::vector<Pending> pending_;
  std::unordered_map<std::string, size_t> seen_ranked_;
};

}  // namespace

Result<QueryResult> Run(const Program& p, const GraphView& view,
                        const EvalOptions& opts, RunInfo* info) {
  return Machine(p, view, opts).Run(info);
}

}  // namespace vm
}  // namespace doem
