#include "vm/compile.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace doem {
namespace vm {

namespace {

using lorel::AnnotExpr;
using lorel::AnnotKind;
using lorel::BinOp;
using lorel::Expr;
using lorel::ExprPtr;
using lorel::NormQuery;
using lorel::RangeDef;
using lorel::SelectItem;

Status Unsup(const std::string& what) {
  return Status::Unsupported("vm: " + what);
}

/// Jump-target encoding during conjunct generation: targets are either
/// the pass/fail sentinels or a label id offset by kLabelBase; labels are
/// rewritten to conjunct-local instruction offsets once all code is laid
/// out (offsets and label ids would otherwise collide).
constexpr int32_t kLabelBase = 1 << 20;

class Compiler {
 public:
  explicit Compiler(const NormQuery& q) : q_(q) {}

  Result<Program> Compile() {
    CollectSeedable();
    for (uint32_t i = 0; i < q_.defs.size(); ++i) {
      DOEM_RETURN_IF_ERROR(CompileSlot(q_.defs[i], i));
    }
    DOEM_RETURN_IF_ERROR(CompileWhere());
    DOEM_RETURN_IF_ERROR(CompileSelect());
    CollectBoundTerms(q_.where);
    p_.labels = q_.labels;
    p_.reg_count = next_reg_;
    // Reordering is sound only when no step resolves an <at T> operand:
    // a pruned outer loop could then skip the context in which the tree
    // walker's per-step time evaluation fails, turning an error into a
    // success that fallback cannot repair (DESIGN.md §6f).
    p_.reorderable = !p_.needs_time_travel && p_.slots.size() > 1;
    std::vector<uint32_t> identity(p_.slots.size());
    for (uint32_t i = 0; i < identity.size(); ++i) identity[i] = i;
    p_.identity_code = AssembleCode(p_, identity);
    return std::move(p_);
  }

 private:
  struct RegInfo {
    int32_t reg = -1;
    int32_t slot = -1;  // defining slot
  };

  /// Mirrors the tree walker's PrepareSeeding eligibility rule: a
  /// variable qualifies only if bound by exactly one top-level def (def
  /// vars count double so any collision disqualifies).
  void CollectSeedable() {
    std::unordered_map<std::string, int> counts;
    for (const RangeDef& def : q_.defs) {
      counts[def.var] += 2;
      for (const AnnotExpr* annot :
           {def.step.arc_annot ? &*def.step.arc_annot : nullptr,
            def.step.node_annot ? &*def.step.node_annot : nullptr}) {
        if (annot == nullptr) continue;
        for (const std::string* v :
             {&annot->time_var, &annot->from_var, &annot->to_var}) {
          if (!v->empty()) counts[*v] += 1;
        }
      }
    }
    for (const auto& [name, n] : counts) {
      if (n == 1) p_.seedable_vars.insert(name);
    }
  }

  /// Binds `name` to a register owned by `slot`. The tree walker's
  /// env-erase discipline makes variables reused across definitions
  /// behave in ways a flat register file cannot reproduce, so those are
  /// rejected; within one definition, aliased names share a register and
  /// the bind order (annotation variables first, endpoint last) yields
  /// the walker's last-write-wins value.
  Result<int32_t> Bind(const std::string& name, uint32_t slot) {
    auto it = regs_.find(name);
    if (it != regs_.end()) {
      if (it->second.slot != static_cast<int32_t>(slot)) {
        return Unsup("variable '" + name +
                     "' is bound by more than one definition");
      }
      return it->second.reg;
    }
    int32_t reg = next_reg_++;
    regs_.emplace(name, RegInfo{reg, static_cast<int32_t>(slot)});
    return reg;
  }

  int32_t AddConst(const Value& v) {
    p_.const_pool.push_back(v);
    return static_cast<int32_t>(p_.const_pool.size()) - 1;
  }

  int32_t TimeSlotFor(int i) {
    auto it = time_slots_.find(i);
    if (it != time_slots_.end()) return it->second;
    int32_t slot = static_cast<int32_t>(p_.time_refs.size());
    p_.time_refs.push_back(i);
    time_slots_.emplace(i, slot);
    return slot;
  }

  /// An <at T> operand. Variables must come from an *earlier* definition:
  /// the walker evaluates at-times against the enclosing environment, in
  /// which the current step's own annotation variables are not yet bound.
  Result<AtTimeArg> CompileAtTime(const ExprPtr& e, uint32_t slot) {
    AtTimeArg arg;
    if (e == nullptr) return Unsup("<at> without a time operand");
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        arg.kind = AtTimeArg::Kind::kConst;
        arg.index = AddConst(e->literal);
        return arg;
      case Expr::Kind::kTimeRef:
        arg.kind = AtTimeArg::Kind::kTimeSlot;
        arg.index = TimeSlotFor(e->time_ref);
        return arg;
      case Expr::Kind::kVar: {
        auto it = regs_.find(e->var);
        if (it == regs_.end() ||
            it->second.slot >= static_cast<int32_t>(slot)) {
          return Unsup("<at> variable '" + e->var +
                       "' is not bound by an earlier definition");
        }
        arg.kind = AtTimeArg::Kind::kReg;
        arg.index = it->second.reg;
        return arg;
      }
      default:
        return Unsup("<at> operand '" + e->ToString() + "'");
    }
  }

  Status CompileSlot(const RangeDef& def, uint32_t idx) {
    SlotPlan sp;
    const lorel::PathStep& st = def.step;
    sp.step = st;
    sp.bind_value = def.bind_value;
    if (!def.source_var.empty()) {
      auto it = regs_.find(def.source_var);
      if (it == regs_.end()) {
        return Unsup("source variable '" + def.source_var +
                     "' is not bound by an earlier definition");
      }
      sp.source_reg = it->second.reg;
      sp.source_slot = it->second.slot;
    }

    if (st.arc_annot) {
      const AnnotExpr& a = *st.arc_annot;
      switch (a.kind) {
        case AnnotKind::kAt: {
          sp.open = Op::kLiveAt;
          p_.needs_time_travel = true;
          DOEM_ASSIGN_OR_RETURN(sp.at_arc, CompileAtTime(a.at_time, idx));
          break;
        }
        case AnnotKind::kAdd:
        case AnnotKind::kRem: {
          sp.open = Op::kSeedArc;
          p_.needs_annotations = true;
          if (!a.time_var.empty()) {
            DOEM_ASSIGN_OR_RETURN(sp.arc_time_reg, Bind(a.time_var, idx));
          }
          break;
        }
        default:
          return Unsup("cre/upd annotation in arc position");
      }
    } else if (st.wildcard) {
      sp.open = Op::kStepWild;
    } else if (st.wildcard_one) {
      sp.open = Op::kStepAny;
    } else {
      sp.open = Op::kStepLabel;
    }

    if (st.node_annot) {
      const AnnotExpr& a = *st.node_annot;
      switch (a.kind) {
        case AnnotKind::kCre: {
          p_.needs_annotations = true;
          if (!a.time_var.empty()) {
            DOEM_ASSIGN_OR_RETURN(sp.node_time_reg, Bind(a.time_var, idx));
          }
          break;
        }
        case AnnotKind::kUpd: {
          p_.needs_annotations = true;
          if (!a.time_var.empty()) {
            DOEM_ASSIGN_OR_RETURN(sp.node_time_reg, Bind(a.time_var, idx));
          }
          if (!a.from_var.empty()) {
            DOEM_ASSIGN_OR_RETURN(sp.from_reg, Bind(a.from_var, idx));
          }
          if (!a.to_var.empty()) {
            DOEM_ASSIGN_OR_RETURN(sp.to_reg, Bind(a.to_var, idx));
          }
          break;
        }
        case AnnotKind::kAt: {
          p_.needs_time_travel = true;
          DOEM_ASSIGN_OR_RETURN(sp.at_node, CompileAtTime(a.at_time, idx));
          break;
        }
        default:
          return Unsup("add/rem annotation in node position");
      }
      // Plain-label steps with a cre/upd node annotation try the
      // annotation index before scanning.
      if (sp.open == Op::kStepLabel &&
          (a.kind == AnnotKind::kCre || a.kind == AnnotKind::kUpd)) {
        sp.open = Op::kSeedAnn;
      }
    }

    // Seed-variable eligibility (the walker's BoundsFor preconditions);
    // the presence of actual bounds is a per-run question.
    if (sp.open == Op::kSeedAnn || sp.open == Op::kSeedArc) {
      const AnnotExpr& a =
          sp.open == Op::kSeedArc ? *st.arc_annot : *st.node_annot;
      if (!a.time_var.empty() && p_.seedable_vars.contains(a.time_var)) {
        sp.seed_var = a.time_var;
      }
    }

    DOEM_ASSIGN_OR_RETURN(sp.end_reg, Bind(def.var, idx));
    p_.slots.push_back(std::move(sp));
    return Status::OK();
  }

  // ---- where clause ----------------------------------------------------

  Status CompileWhere() {
    if (q_.where == nullptr) return Status::OK();
    return SplitConjuncts(q_.where);
  }

  Status SplitConjuncts(const ExprPtr& e) {
    if (e->kind == Expr::Kind::kBinary && e->op == BinOp::kAnd) {
      DOEM_RETURN_IF_ERROR(SplitConjuncts(e->lhs));
      return SplitConjuncts(e->rhs);
    }
    Conjunct cj;
    std::vector<int32_t> labels;
    std::vector<uint32_t> deps;
    DOEM_RETURN_IF_ERROR(GenBool(e, Conjunct::kTargetPass,
                                 Conjunct::kTargetFail, &cj, &labels, &deps));
    // Rewrite label ids to conjunct-local offsets.
    for (Instr& ins : cj.code) {
      for (int32_t* t : {&ins.a, &ins.b, &ins.c, &ins.d}) {
        if (ins.op == Op::kCmpJump && (t == &ins.a || t == &ins.b)) continue;
        if (ins.op == Op::kJump && t != &ins.a) continue;
        if (*t >= kLabelBase) *t = labels[*t - kLabelBase];
      }
    }
    // Dedup + sort dep slots.
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    cj.dep_slots = std::move(deps);
    p_.conjuncts.push_back(std::move(cj));
    return Status::OK();
  }

  Status GenBool(const ExprPtr& e, int32_t tt, int32_t ft, Conjunct* cj,
                 std::vector<int32_t>* labels, std::vector<uint32_t>* deps) {
    switch (e->kind) {
      case Expr::Kind::kBinary: {
        if (e->op == BinOp::kAnd) {
          int32_t mid = NewLabel(labels);
          DOEM_RETURN_IF_ERROR(
              GenBool(e->lhs, kLabelBase + mid, ft, cj, labels, deps));
          (*labels)[mid] = static_cast<int32_t>(cj->code.size());
          return GenBool(e->rhs, tt, ft, cj, labels, deps);
        }
        if (e->op == BinOp::kOr) {
          int32_t mid = NewLabel(labels);
          DOEM_RETURN_IF_ERROR(
              GenBool(e->lhs, tt, kLabelBase + mid, cj, labels, deps));
          (*labels)[mid] = static_cast<int32_t>(cj->code.size());
          return GenBool(e->rhs, tt, ft, cj, labels, deps);
        }
        Instr ins;
        ins.op = Op::kCmpJump;
        ins.sub = static_cast<uint8_t>(e->op);
        ArgSrc lsrc, rsrc;
        int32_t lidx, ridx;
        DOEM_RETURN_IF_ERROR(CompileArg(e->lhs, &lsrc, &lidx, deps));
        DOEM_RETURN_IF_ERROR(CompileArg(e->rhs, &rsrc, &ridx, deps));
        ins.u1 = static_cast<uint8_t>(lsrc);
        ins.u2 = static_cast<uint8_t>(rsrc);
        ins.a = lidx;
        ins.b = ridx;
        ins.c = tt;
        ins.d = ft;
        cj->code.push_back(ins);
        return Status::OK();
      }
      case Expr::Kind::kNot:
        return GenBool(e->child, ft, tt, cj, labels, deps);
      case Expr::Kind::kLiteral: {
        if (e->literal.kind() != Value::Kind::kBool) {
          return Unsup("non-boolean literal as a condition");
        }
        Instr ins;
        ins.op = Op::kJump;
        ins.a = e->literal.AsBool() ? tt : ft;
        cj->code.push_back(ins);
        return Status::OK();
      }
      default:
        // exists / bare paths / bare variables as conditions stay on the
        // tree walker.
        return Unsup("condition '" + e->ToString() + "'");
    }
  }

  int32_t NewLabel(std::vector<int32_t>* labels) {
    labels->push_back(-1);
    return static_cast<int32_t>(labels->size()) - 1;
  }

  Status CompileArg(const ExprPtr& e, ArgSrc* src, int32_t* idx,
                    std::vector<uint32_t>* deps) {
    switch (e->kind) {
      case Expr::Kind::kVar: {
        auto it = regs_.find(e->var);
        if (it == regs_.end()) {
          return Unsup("unbound variable '" + e->var + "'");
        }
        *src = ArgSrc::kReg;
        *idx = it->second.reg;
        if (deps != nullptr) {
          deps->push_back(static_cast<uint32_t>(it->second.slot));
        }
        return Status::OK();
      }
      case Expr::Kind::kLiteral:
        *src = ArgSrc::kConst;
        *idx = AddConst(e->literal);
        return Status::OK();
      case Expr::Kind::kTimeRef:
        *src = ArgSrc::kTimeSlot;
        *idx = TimeSlotFor(e->time_ref);
        return Status::OK();
      default:
        // Path operands have existential multi-value semantics the VM
        // does not implement.
        return Unsup("operand '" + e->ToString() + "'");
    }
  }

  Status CompileSelect() {
    for (const SelectItem& item : q_.select) {
      SelectArg sa;
      DOEM_RETURN_IF_ERROR(
          CompileArg(item.expr, &sa.src, &sa.index, nullptr));
      p_.select.push_back(sa);
    }
    return Status::OK();
  }

  // ---- symbolic bound terms (the walker's CollectConjunctBounds) -------

  void CollectBoundTerms(const ExprPtr& e) {
    if (e == nullptr || e->kind != Expr::Kind::kBinary) return;
    if (e->op == BinOp::kAnd) {
      CollectBoundTerms(e->lhs);
      CollectBoundTerms(e->rhs);
      return;
    }
    BinOp op = e->op;
    const Expr* var = nullptr;
    const Expr* bound = nullptr;
    if (e->lhs->kind == Expr::Kind::kVar) {
      var = e->lhs.get();
      bound = e->rhs.get();
    } else if (e->rhs->kind == Expr::Kind::kVar) {
      var = e->rhs.get();
      bound = e->lhs.get();
      switch (op) {
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    } else {
      return;
    }
    BoundTerm bt;
    bt.var = var->var;
    bt.op = op;
    if (bound->kind == Expr::Kind::kTimeRef) {
      bt.is_time_ref = true;
      bt.time_slot = TimeSlotFor(bound->time_ref);
    } else if (bound->kind == Expr::Kind::kLiteral) {
      switch (bound->literal.kind()) {
        case Value::Kind::kTimestamp:
          bt.literal = bound->literal.AsTime();
          break;
        case Value::Kind::kInt:
          bt.literal = Timestamp(bound->literal.AsInt());
          break;
        case Value::Kind::kString:
          if (!Timestamp::Parse(bound->literal.AsString(), &bt.literal)) {
            return;
          }
          break;
        default:
          return;
      }
    } else {
      return;
    }
    p_.bound_terms.push_back(std::move(bt));
  }

  const NormQuery& q_;
  Program p_;
  std::unordered_map<std::string, RegInfo> regs_;
  std::unordered_map<int, int32_t> time_slots_;
  uint32_t next_reg_ = 0;
};

}  // namespace

Result<Program> Compile(const lorel::NormQuery& q) {
  return Compiler(q).Compile();
}

}  // namespace vm
}  // namespace doem
