#include "vm/cost.h"

#include <algorithm>
#include <limits>

namespace doem {
namespace vm {

using lorel::BinOp;
using lorel::GraphView;

BoundsMap ReplayBounds(const Program& p, const std::vector<Timestamp>& times) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  BoundsMap m;
  for (const BoundTerm& bt : p.bound_terms) {
    Timestamp t = bt.is_time_ref ? times[static_cast<size_t>(bt.time_slot)]
                                 : bt.literal;
    auto it = m.find(bt.var);
    if (it == m.end()) {
      it = m.emplace(bt.var,
                     std::make_pair(Timestamp(kMin), Timestamp(kMax)))
               .first;
    }
    auto& [lo, hi] = it->second;
    switch (bt.op) {
      case BinOp::kGt:
        // Strict bounds saturate at the tick limits — a sound widening,
        // same as the tree walker.
        lo = std::max(lo, Timestamp(t.ticks == kMax ? kMax : t.ticks + 1));
        break;
      case BinOp::kGe:
        lo = std::max(lo, t);
        break;
      case BinOp::kLt:
        hi = std::min(hi, Timestamp(t.ticks == kMin ? kMin : t.ticks - 1));
        break;
      case BinOp::kLe:
        hi = std::min(hi, t);
        break;
      case BinOp::kEq:
        lo = std::max(lo, t);
        hi = std::min(hi, t);
        break;
      default:
        // kNe / kLike constrain nothing; drop the entry if this term was
        // the only mention.
        if (it->second == std::make_pair(Timestamp(kMin), Timestamp(kMax))) {
          m.erase(it);
        }
        break;
    }
  }
  return m;
}

size_t EstimateSlot(const Program& p, uint32_t slot,
                    const lorel::GraphView& view, const BoundsMap& bounds) {
  const SlotPlan& sp = p.slots[slot];
  // A step that will seed from the annotation index costs its posting
  // count in the bound range.
  if (!sp.seed_var.empty()) {
    auto b = bounds.find(sp.seed_var);
    if (b != bounds.end()) {
      GraphView::AnnotStat kind;
      if (sp.open == Op::kSeedArc) {
        kind = sp.step.arc_annot->kind == lorel::AnnotKind::kAdd
                   ? GraphView::AnnotStat::kAdd
                   : GraphView::AnnotStat::kRem;
      } else {
        kind = sp.step.node_annot->kind == lorel::AnnotKind::kCre
                   ? GraphView::AnnotStat::kCre
                   : GraphView::AnnotStat::kUpd;
      }
      auto c = view.AnnotCountInRange(kind, b->second.first, b->second.second);
      if (c) return *c;
    }
  }
  switch (sp.open) {
    case Op::kStepLabel:
    case Op::kSeedAnn:
      if (sp.source_slot < 0) {
        // Root-sourced: the child count is exact.
        NodeId r = view.root();
        if (r == kInvalidNode) return 0;
        return view.ChildCountEstimate(r, sp.step.label);
      }
      return view.LabelArcEstimate(sp.step.label);
    case Op::kStepAny:
    case Op::kStepWild:
      return view.TotalNodeEstimate();
    case Op::kSeedArc:
      return sp.step.wildcard_one ? view.TotalNodeEstimate()
                                  : view.LabelArcEstimate(sp.step.label);
    default:
      return GraphView::kUnknownCardinality;
  }
}

std::vector<uint32_t> PlanOrder(const Program& p, const lorel::GraphView& view,
                                const BoundsMap& bounds) {
  size_t n = p.slots.size();
  std::vector<size_t> est(n);
  for (uint32_t i = 0; i < n; ++i) est[i] = EstimateSlot(p, i, view, bounds);
  std::vector<bool> done(n, false);
  std::vector<uint32_t> order;
  order.reserve(n);
  while (order.size() < n) {
    int best = -1;
    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      int32_t src = p.slots[i].source_slot;
      if (src >= 0 && !done[static_cast<size_t>(src)]) continue;
      // Ascending scan: a later slot wins only with a strictly smaller
      // estimate, so ties (and all-unknown views) keep original order.
      if (best < 0 || est[i] < est[static_cast<size_t>(best)]) {
        best = static_cast<int>(i);
      }
    }
    done[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<uint32_t>(best));
  }
  return order;
}

}  // namespace vm
}  // namespace doem
