#ifndef DOEM_VM_COST_H_
#define DOEM_VM_COST_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lorel/view.h"
#include "oem/timestamp.h"
#include "vm/bytecode.h"

namespace doem {
namespace vm {

/// Per-run [lo, hi] time bounds of seedable annotation variables.
using BoundsMap =
    std::unordered_map<std::string, std::pair<Timestamp, Timestamp>>;

/// Replays the program's where-derived time bounds for one run — the
/// runtime half of the tree walker's CollectConjunctBounds, folding the
/// same terms in the same order. `times` holds the run's resolved time
/// slots (t[i] values).
BoundsMap ReplayBounds(const Program& p, const std::vector<Timestamp>& times);

/// Estimated candidate cardinality of one slot: annotation-index posting
/// counts for seeded steps, per-label arc statistics for plain steps,
/// node count for wildcards; GraphView::kUnknownCardinality when the view
/// has no statistics for the shape.
size_t EstimateSlot(const Program& p, uint32_t slot,
                    const lorel::GraphView& view, const BoundsMap& bounds);

/// Chooses the loop nesting (outermost first) by greedily scheduling the
/// cheapest dependency-ready slot; ties — including the all-unknown
/// case — resolve to the original left-to-right order, so statistics-free
/// views keep the tree walker's nesting exactly.
std::vector<uint32_t> PlanOrder(const Program& p, const lorel::GraphView& view,
                                const BoundsMap& bounds);

}  // namespace vm
}  // namespace doem

#endif  // DOEM_VM_COST_H_
