#ifndef DOEM_VM_COMPILE_H_
#define DOEM_VM_COMPILE_H_

#include "common/result.h"
#include "lorel/normalize.h"
#include "vm/bytecode.h"

namespace doem {
namespace vm {

/// Compiles a normalized query to a bytecode program. Fails with
/// Unsupported for constructs the VM does not cover (exists / path
/// operands in the where clause, variables reused across definitions,
/// non-comparison conditions); callers fall back to the tree-walking
/// evaluator, which handles everything.
Result<Program> Compile(const lorel::NormQuery& q);

/// Lazily compiled program attached to a cached query. kUnsupported is
/// sticky: once compilation fails, the query keeps using the tree walker
/// without retrying.
struct ProgramCache {
  enum class State { kUnknown, kReady, kUnsupported };
  State state = State::kUnknown;
  Program program;
};

}  // namespace vm
}  // namespace doem

#endif  // DOEM_VM_COMPILE_H_
