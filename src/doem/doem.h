#ifndef DOEM_DOEM_DOEM_H_
#define DOEM_DOEM_DOEM_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "doem/annotation.h"
#include "oem/change.h"
#include "oem/history.h"
#include "oem/oem.h"

namespace doem {

/// A (time, old value, new value) record for one upd annotation. The new
/// value is not stored in the DOEM model; it is derived per Section 4.2:
/// the old value of the temporally next upd annotation, or the current
/// value if none follows.
struct UpdRecord {
  Timestamp time;
  Value old_value;
  Value new_value;

  bool operator==(const UpdRecord&) const = default;
};

/// A DOEM database D = (O, fN, fA) (Definition 3.1): an OEM graph whose
/// nodes and arcs carry annotation sets encoding the history of basic
/// change operations.
///
/// Unlike a plain OemDatabase, the underlying graph is a *superset* of any
/// single state: removed arcs stay in the graph with a `rem` annotation,
/// and objects that became unreachable ("deleted") stay physically present.
/// Consequently the raw graph() may violate plain-OEM invariants — e.g. a
/// node updated to an atomic value can still have (removed) out-arcs.
/// All snapshot accessors apply liveness filtering.
///
/// Construction follows Section 3.1: start from a base snapshot
/// (FromSnapshot) and apply history steps (ApplyHistory / ApplyChangeSet),
/// which performs the change and attaches the corresponding annotation.
class DoemDatabase {
 public:
  DoemDatabase() = default;

  /// Wraps a base snapshot O with empty annotation sets (D_0 in the
  /// paper's inductive construction). The snapshot must be well-formed
  /// (Validate() must pass). A minimal base is a single complex root —
  /// this is what the QSS uses as its "empty" result database, so that
  /// reachability-based deletion has an anchor.
  static Result<DoemDatabase> FromSnapshot(OemDatabase base);

  /// Builds D(O, H): FromSnapshot(O) then ApplyHistory(H).
  static Result<DoemDatabase> Build(OemDatabase base, const OemHistory& h);

  /// Assembles a DOEM database directly from an annotated graph — the
  /// decoder's entry point (Section 5.1), also usable to construct
  /// *infeasible* databases for testing IsFeasible. `graph` is the raw
  /// superset graph; `arc_annots` entries must reference arcs present in
  /// it. Annotation lists must be time-ordered; the deleted set is
  /// recomputed from current-liveness reachability.
  static Result<DoemDatabase> FromParts(
      OemDatabase graph,
      std::unordered_map<NodeId, AnnotationList> node_annots,
      std::vector<std::pair<Arc, AnnotationList>> arc_annots);

  // ---- Mutation (Section 3.1) ----------------------------------------

  /// Applies the set U at time t, attaching annotations. Transactional:
  /// on error the database is unchanged. t must exceed every timestamp
  /// already present. Validity of U is checked against the *current
  /// snapshot*, mirroring Definition 2.2.
  Status ApplyChangeSet(Timestamp t, const ChangeSet& ops);

  /// Applies all steps of `h` in order.
  Status ApplyHistory(const OemHistory& h);

  // ---- Raw annotated graph --------------------------------------------

  /// The full annotated graph, including removed arcs and deleted nodes.
  const OemDatabase& graph() const { return graph_; }
  NodeId root() const { return graph_.root(); }

  /// fN(n): annotations on node n (time-ordered). Empty if none.
  const AnnotationList& NodeAnnotations(NodeId n) const;
  /// fA(p,l,c): annotations on the arc (time-ordered). Empty if none.
  const AnnotationList& ArcAnnotations(NodeId p, const std::string& l,
                                       NodeId c) const;

  // ---- Liveness & time travel ------------------------------------------

  /// The node's value at time t (Section 3.2, step 1).
  Value ValueAt(NodeId n, Timestamp t) const;
  /// The node's current value, v(n).
  const Value& CurrentValue(NodeId n) const;

  /// Whether the arc existed at time t: the latest annotation at or
  /// before t is an add; or there is no such annotation and the arc is
  /// original (no annotations, or earliest is rem). Section 3.2, step 2 —
  /// with the refinement that arcs first added *after* t did not exist
  /// at t.
  bool ArcLiveAt(NodeId p, const std::string& l, NodeId c,
                 Timestamp t) const;
  bool ArcCurrentlyLive(NodeId p, const std::string& l, NodeId c) const {
    return ArcLiveAt(p, l, c, Timestamp::PositiveInfinity());
  }

  /// Out-arcs of n that existed at time t / exist now.
  std::vector<OutArc> ArcsLiveAt(NodeId n, Timestamp t) const;
  std::vector<OutArc> LiveArcs(NodeId n) const {
    return ArcsLiveAt(n, Timestamp::PositiveInfinity());
  }

  /// True if the object was deleted (became unreachable at some change-set
  /// boundary). Deleted objects stay in graph() but no longer participate
  /// in history (Section 2.2).
  bool IsDeleted(NodeId n) const { return deleted_.contains(n); }

  // ---- Snapshots (Section 3.2) ----------------------------------------

  /// O_t(D): the snapshot at time t, with original node identifiers.
  OemDatabase SnapshotAt(Timestamp t) const;
  /// O_0(D): the original snapshot.
  OemDatabase OriginalSnapshot() const {
    return SnapshotAt(Timestamp::NegativeInfinity());
  }
  /// The current snapshot.
  OemDatabase CurrentSnapshot() const {
    return SnapshotAt(Timestamp::PositiveInfinity());
  }

  // ---- History extraction & feasibility (Section 3.2) ------------------

  /// All timestamps occurring in annotations, sorted ascending.
  std::vector<Timestamp> AllTimestamps() const;

  /// H(D): the encoded history.
  OemHistory ExtractHistory() const;

  /// Whether D is feasible: D(O_0(D), H(D)) == D. Every database built via
  /// FromSnapshot/ApplyHistory is feasible; hand-assembled annotation sets
  /// may not be.
  bool IsFeasible() const;

  /// Structural equality: same graph (ids, values, arcs, root), same
  /// annotation sets, same deleted set.
  bool Equals(const DoemDatabase& other) const;

  // ---- Chorel support ---------------------------------------------------

  /// creFun(n): the cre timestamp, if any (at most one per node).
  std::optional<Timestamp> CreTime(NodeId n) const;

  /// updFun(n): (t, ov, nv) triples for each upd annotation on n.
  std::vector<UpdRecord> UpdRecords(NodeId n) const;

  /// addFun(n, l): (t, c) pairs such that arc (n, l, c) has an add(t)
  /// annotation — regardless of whether the arc is currently live.
  std::vector<std::pair<Timestamp, NodeId>> AddAnnotated(
      NodeId n, const std::string& label) const;
  /// remFun(n, l): analogous for rem annotations.
  std::vector<std::pair<Timestamp, NodeId>> RemAnnotated(
      NodeId n, const std::string& label) const;

  /// All arcs (p,l,c) of the raw graph, plus liveness filtering helpers,
  /// used by the encoder.
  std::string ToString() const;

 private:
  static std::string ArcKey(NodeId p, const std::string& l, NodeId c);

  /// Recomputes the deleted set: non-deleted nodes unreachable from the
  /// root via currently-live arcs become deleted. Nodes created in the
  /// change set that just ended and already unreachable ("stillborn" —
  /// they never existed in any snapshot) are physically pruned together
  /// with their incident arcs and annotations; `t` is that set's
  /// timestamp.
  void RefreshDeleted(std::optional<Timestamp> t = std::nullopt);

  Status ApplyOne(Timestamp t, const ChangeOp& op);

  OemDatabase graph_;
  std::unordered_map<NodeId, AnnotationList> node_annots_;
  std::unordered_map<std::string, AnnotationList> arc_annots_;
  std::unordered_set<NodeId> deleted_;
  // Largest timestamp applied so far (annotation timestamps are strictly
  // increasing across change sets).
  std::optional<Timestamp> last_time_;
};

}  // namespace doem

#endif  // DOEM_DOEM_DOEM_H_
