#include "doem/doem.h"

#include <algorithm>
#include <deque>
#include <set>

#include "oem/oem_text.h"

namespace doem {

namespace {
const AnnotationList kNoAnnotations;
}  // namespace

std::string DoemDatabase::ArcKey(NodeId p, const std::string& l, NodeId c) {
  return std::to_string(p) + "\x1f" + l + "\x1f" + std::to_string(c);
}

Result<DoemDatabase> DoemDatabase::FromSnapshot(OemDatabase base) {
  Status s = base.Validate();
  if (!s.ok()) {
    return Status(s.code(), "DoemDatabase::FromSnapshot: " + s.message());
  }
  DoemDatabase d;
  d.graph_ = std::move(base);
  return d;
}

Result<DoemDatabase> DoemDatabase::Build(OemDatabase base,
                                         const OemHistory& h) {
  auto d = FromSnapshot(std::move(base));
  if (!d.ok()) return d.status();
  DOEM_RETURN_IF_ERROR(d->ApplyHistory(h));
  return std::move(d).value();
}

Result<DoemDatabase> DoemDatabase::FromParts(
    OemDatabase graph,
    std::unordered_map<NodeId, AnnotationList> node_annots,
    std::vector<std::pair<Arc, AnnotationList>> arc_annots) {
  DoemDatabase d;
  if (graph.root() == kInvalidNode) {
    return Status::InvalidArgument("FromParts: graph has no root");
  }
  auto check_ordered = [](const AnnotationList& annots) {
    for (size_t i = 1; i < annots.size(); ++i) {
      if (annots[i].time <= annots[i - 1].time) return false;
    }
    return true;
  };
  std::optional<Timestamp> last;
  for (const auto& [n, annots] : node_annots) {
    if (!graph.HasNode(n)) {
      return Status::InvalidArgument("FromParts: annotations on unknown "
                                     "node " +
                                     std::to_string(n));
    }
    if (!check_ordered(annots)) {
      return Status::InvalidArgument("FromParts: node annotations not "
                                     "time-ordered");
    }
    for (size_t i = 0; i < annots.size(); ++i) {
      const Annotation& a = annots[i];
      if (a.kind == Annotation::Kind::kAdd ||
          a.kind == Annotation::Kind::kRem) {
        return Status::InvalidArgument("FromParts: arc annotation on node");
      }
      if (a.kind == Annotation::Kind::kCre && i != 0) {
        return Status::InvalidArgument("FromParts: cre must be earliest");
      }
      if (!last || a.time > *last) last = a.time;
    }
  }
  for (const auto& [arc, annots] : arc_annots) {
    if (!graph.HasArc(arc.parent, arc.label, arc.child)) {
      return Status::InvalidArgument("FromParts: annotations on unknown "
                                     "arc " +
                                     arc.ToString());
    }
    if (!check_ordered(annots)) {
      return Status::InvalidArgument("FromParts: arc annotations not "
                                     "time-ordered");
    }
    for (const Annotation& a : annots) {
      if (a.kind == Annotation::Kind::kCre ||
          a.kind == Annotation::Kind::kUpd) {
        return Status::InvalidArgument("FromParts: node annotation on arc");
      }
      if (!last || a.time > *last) last = a.time;
    }
  }
  d.graph_ = std::move(graph);
  d.node_annots_ = std::move(node_annots);
  for (auto& [arc, annots] : arc_annots) {
    if (!annots.empty()) {
      d.arc_annots_[ArcKey(arc.parent, arc.label, arc.child)] =
          std::move(annots);
    }
  }
  d.last_time_ = last;
  d.RefreshDeleted();
  return d;
}

const AnnotationList& DoemDatabase::NodeAnnotations(NodeId n) const {
  auto it = node_annots_.find(n);
  return it == node_annots_.end() ? kNoAnnotations : it->second;
}

const AnnotationList& DoemDatabase::ArcAnnotations(NodeId p,
                                                   const std::string& l,
                                                   NodeId c) const {
  auto it = arc_annots_.find(ArcKey(p, l, c));
  return it == arc_annots_.end() ? kNoAnnotations : it->second;
}

Status DoemDatabase::ApplyChangeSet(Timestamp t, const ChangeSet& ops) {
  if (last_time_.has_value() && t <= *last_time_) {
    return Status::InvalidChange(
        "change-set timestamps must be strictly increasing: " +
        t.ToString() + " after " + last_time_->ToString());
  }
  DOEM_RETURN_IF_ERROR(CheckChangeSetConflicts(ops));
  DoemDatabase scratch = *this;
  for (const ChangeOp& op : CanonicalOrder(ops)) {
    Status s = scratch.ApplyOne(t, op);
    if (!s.ok()) {
      return Status(s.code(), op.ToString() + ": " + s.message());
    }
  }
  scratch.RefreshDeleted(t);
  scratch.last_time_ = t;
  *this = std::move(scratch);
  return Status::OK();
}

Status DoemDatabase::ApplyHistory(const OemHistory& h) {
  for (const HistoryStep& step : h.steps()) {
    DOEM_RETURN_IF_ERROR(ApplyChangeSet(step.time, step.changes));
  }
  return Status::OK();
}

Status DoemDatabase::ApplyOne(Timestamp t, const ChangeOp& op) {
  switch (op.kind) {
    case ChangeOp::Kind::kCreNode: {
      DOEM_RETURN_IF_ERROR(graph_.CreNode(op.node, op.value));
      node_annots_[op.node].push_back(Annotation::Cre(t));
      return Status::OK();
    }
    case ChangeOp::Kind::kUpdNode: {
      if (!graph_.HasNode(op.node)) {
        return Status::NotFound("no node " + std::to_string(op.node));
      }
      if (deleted_.contains(op.node)) {
        return Status::InvalidChange("node " + std::to_string(op.node) +
                                     " was deleted");
      }
      if (!LiveArcs(op.node).empty()) {
        return Status::InvalidChange(
            "node " + std::to_string(op.node) +
            " has live subobjects; remove them before updating");
      }
      Value old = CurrentValue(op.node);
      DOEM_RETURN_IF_ERROR(graph_.SetValueForce(op.node, op.value));
      node_annots_[op.node].push_back(Annotation::Upd(t, std::move(old)));
      return Status::OK();
    }
    case ChangeOp::Kind::kAddArc: {
      const Arc& a = op.arc;
      if (!graph_.HasNode(a.parent) || !graph_.HasNode(a.child)) {
        return Status::NotFound("missing endpoint of " + a.ToString());
      }
      if (deleted_.contains(a.parent) || deleted_.contains(a.child)) {
        return Status::InvalidChange("endpoint of " + a.ToString() +
                                     " was deleted");
      }
      if (!CurrentValue(a.parent).is_complex()) {
        return Status::InvalidChange("parent of " + a.ToString() +
                                     " is atomic");
      }
      if (ArcCurrentlyLive(a.parent, a.label, a.child)) {
        return Status::InvalidChange("arc " + a.ToString() +
                                     " already exists");
      }
      if (!graph_.HasArc(a.parent, a.label, a.child)) {
        DOEM_RETURN_IF_ERROR(graph_.AddArc(a.parent, a.label, a.child));
      }
      arc_annots_[ArcKey(a.parent, a.label, a.child)].push_back(
          Annotation::Add(t));
      return Status::OK();
    }
    case ChangeOp::Kind::kRemArc: {
      const Arc& a = op.arc;
      if (!ArcCurrentlyLive(a.parent, a.label, a.child)) {
        return Status::InvalidChange("arc " + a.ToString() +
                                     " does not exist");
      }
      // The arc is not physically removed; it gets a rem annotation
      // (Section 3.1).
      arc_annots_[ArcKey(a.parent, a.label, a.child)].push_back(
          Annotation::Rem(t));
      return Status::OK();
    }
  }
  return Status::Internal("unknown ChangeOp kind");
}

void DoemDatabase::RefreshDeleted(std::optional<Timestamp> t) {
  std::unordered_set<NodeId> live;
  NodeId root = graph_.root();
  if (root != kInvalidNode && graph_.HasNode(root)) {
    std::deque<NodeId> queue{root};
    live.insert(root);
    while (!queue.empty()) {
      NodeId n = queue.front();
      queue.pop_front();
      for (const OutArc& a : graph_.OutArcs(n)) {
        if (!ArcCurrentlyLive(n, a.label, a.child)) continue;
        if (live.insert(a.child).second) queue.push_back(a.child);
      }
    }
  }
  // Stillborn nodes: created in the set that just ended (cre at time t)
  // and already unreachable. They never existed in any snapshot, so they
  // are erased physically rather than kept as history (keeping them would
  // make the Section 5.1 encoding unreachable from its root). Arcs touching
  // a stillborn node were necessarily added in the same set and are erased
  // with their annotations.
  std::unordered_set<NodeId> stillborn;
  if (t.has_value()) {
    for (NodeId n : graph_.NodeIds()) {
      if (live.contains(n)) continue;
      auto cre = CreTime(n);
      if (cre.has_value() && *cre == *t) stillborn.insert(n);
    }
    if (!stillborn.empty()) {
      for (const Arc& arc : graph_.AllArcs()) {
        if (stillborn.contains(arc.parent) ||
            stillborn.contains(arc.child)) {
          Status s = graph_.RemArc(arc.parent, arc.label, arc.child);
          (void)s;
          arc_annots_.erase(ArcKey(arc.parent, arc.label, arc.child));
        }
      }
      for (NodeId n : stillborn) {
        node_annots_.erase(n);
        // Physically drop the node: route through a scratch GC-free path
        // by rebuilding values; OemDatabase has no raw erase, so mark via
        // CollectGarbage below would be unsafe (it would also drop kept
        // deleted nodes). Instead we remove it directly.
        graph_.EraseNodeForce(n);
      }
    }
  }
  for (NodeId n : graph_.NodeIds()) {
    if (!live.contains(n)) deleted_.insert(n);
  }
}

Value DoemDatabase::ValueAt(NodeId n, Timestamp t) const {
  const Value* current = graph_.GetValue(n);
  if (current == nullptr) return Value();
  // Section 3.2: if the last upd is at or before t, the value is v(n);
  // otherwise it is the old value of the earliest upd strictly after t.
  // Annotation lists are time-ordered, so the earliest annotation strictly
  // after t is found by binary search.
  const AnnotationList& annots = NodeAnnotations(n);
  auto it = std::upper_bound(
      annots.begin(), annots.end(), t,
      [](Timestamp lhs, const Annotation& a) { return lhs < a.time; });
  for (; it != annots.end(); ++it) {
    if (it->kind == Annotation::Kind::kUpd) return it->old_value;
  }
  return *current;
}

const Value& DoemDatabase::CurrentValue(NodeId n) const {
  static const Value kComplex;
  const Value* v = graph_.GetValue(n);
  return v == nullptr ? kComplex : *v;
}

bool DoemDatabase::ArcLiveAt(NodeId p, const std::string& l, NodeId c,
                             Timestamp t) const {
  if (!graph_.HasArc(p, l, c)) return false;
  const AnnotationList& annots = ArcAnnotations(p, l, c);
  // Time-ordered list: the latest annotation at or before t is the one
  // just before the first annotation strictly after t.
  auto it = std::upper_bound(
      annots.begin(), annots.end(), t,
      [](Timestamp lhs, const Annotation& a) { return lhs < a.time; });
  if (it != annots.begin()) {
    return std::prev(it)->kind == Annotation::Kind::kAdd;
  }
  // No annotation at or before t: the arc existed at t iff it is an
  // original arc — no annotations at all, or the earliest annotation is a
  // removal (an arc whose first event is `add` did not exist before that
  // add).
  return annots.empty() || annots.front().kind == Annotation::Kind::kRem;
}

std::vector<OutArc> DoemDatabase::ArcsLiveAt(NodeId n, Timestamp t) const {
  std::vector<OutArc> out;
  for (const OutArc& a : graph_.OutArcs(n)) {
    if (ArcLiveAt(n, a.label, a.child, t)) out.push_back(a);
  }
  return out;
}

OemDatabase DoemDatabase::SnapshotAt(Timestamp t) const {
  OemDatabase snap;
  NodeId root = graph_.root();
  if (root == kInvalidNode) return snap;

  // Discover nodes reachable at time t. Arcs are traversed only out of
  // nodes that are complex at t; in a feasible database a node with live
  // out-arcs is necessarily complex, so this is defensive.
  std::unordered_set<NodeId> seen{root};
  std::deque<NodeId> queue{root};
  std::vector<NodeId> order;
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    order.push_back(n);
    if (!ValueAt(n, t).is_complex()) continue;
    for (const OutArc& a : ArcsLiveAt(n, t)) {
      if (seen.insert(a.child).second) queue.push_back(a.child);
    }
  }
  for (NodeId n : order) {
    Status s = snap.CreNode(n, ValueAt(n, t));
    (void)s;
  }
  for (NodeId n : order) {
    if (!ValueAt(n, t).is_complex()) continue;
    for (const OutArc& a : ArcsLiveAt(n, t)) {
      Status s = snap.AddArc(n, a.label, a.child);
      (void)s;
    }
  }
  // Preserve the id allocator position so snapshots can be extended
  // without clashing with ids the DOEM graph already burned.
  snap.ReserveIdsBelow(graph_.PeekNextId());
  Status s = snap.SetRoot(root);
  (void)s;
  return snap;
}

std::vector<Timestamp> DoemDatabase::AllTimestamps() const {
  std::set<Timestamp> times;
  for (const auto& [n, annots] : node_annots_) {
    for (const Annotation& a : annots) times.insert(a.time);
  }
  for (const auto& [key, annots] : arc_annots_) {
    for (const Annotation& a : annots) times.insert(a.time);
  }
  return {times.begin(), times.end()};
}

std::optional<Timestamp> DoemDatabase::CreTime(NodeId n) const {
  for (const Annotation& a : NodeAnnotations(n)) {
    if (a.kind == Annotation::Kind::kCre) return a.time;
  }
  return std::nullopt;
}

std::vector<UpdRecord> DoemDatabase::UpdRecords(NodeId n) const {
  std::vector<UpdRecord> out;
  const AnnotationList& annots = NodeAnnotations(n);
  for (size_t i = 0; i < annots.size(); ++i) {
    if (annots[i].kind != Annotation::Kind::kUpd) continue;
    // The new value is the old value of the next upd, or the current
    // value if this is the last update (Section 4.2).
    Value nv = CurrentValue(n);
    for (size_t j = i + 1; j < annots.size(); ++j) {
      if (annots[j].kind == Annotation::Kind::kUpd) {
        nv = annots[j].old_value;
        break;
      }
    }
    out.push_back(UpdRecord{annots[i].time, annots[i].old_value,
                            std::move(nv)});
  }
  return out;
}

std::vector<std::pair<Timestamp, NodeId>> DoemDatabase::AddAnnotated(
    NodeId n, const std::string& label) const {
  std::vector<std::pair<Timestamp, NodeId>> out;
  for (NodeId c : graph_.Children(n, label)) {
    for (const Annotation& ann : ArcAnnotations(n, label, c)) {
      if (ann.kind == Annotation::Kind::kAdd) {
        out.emplace_back(ann.time, c);
      }
    }
  }
  return out;
}

std::vector<std::pair<Timestamp, NodeId>> DoemDatabase::RemAnnotated(
    NodeId n, const std::string& label) const {
  std::vector<std::pair<Timestamp, NodeId>> out;
  for (NodeId c : graph_.Children(n, label)) {
    for (const Annotation& ann : ArcAnnotations(n, label, c)) {
      if (ann.kind == Annotation::Kind::kRem) {
        out.emplace_back(ann.time, c);
      }
    }
  }
  return out;
}

OemHistory DoemDatabase::ExtractHistory() const {
  OemHistory history;
  for (Timestamp t : AllTimestamps()) {
    ChangeSet ops;
    for (NodeId n : graph_.NodeIds()) {
      const AnnotationList& annots = NodeAnnotations(n);
      for (size_t i = 0; i < annots.size(); ++i) {
        if (annots[i].time != t) continue;
        // Value right after time t: the old value of the next upd
        // annotation, or the current value (Section 3.2, cases 2-3).
        Value v_after = CurrentValue(n);
        for (size_t j = i + 1; j < annots.size(); ++j) {
          if (annots[j].kind == Annotation::Kind::kUpd) {
            v_after = annots[j].old_value;
            break;
          }
        }
        if (annots[i].kind == Annotation::Kind::kCre) {
          ops.push_back(ChangeOp::CreNode(n, std::move(v_after)));
        } else if (annots[i].kind == Annotation::Kind::kUpd) {
          ops.push_back(ChangeOp::UpdNode(n, std::move(v_after)));
        }
      }
    }
    for (const Arc& arc : graph_.AllArcs()) {
      for (const Annotation& ann :
           ArcAnnotations(arc.parent, arc.label, arc.child)) {
        if (ann.time != t) continue;
        if (ann.kind == Annotation::Kind::kAdd) {
          ops.push_back(ChangeOp::AddArc(arc.parent, arc.label, arc.child));
        } else if (ann.kind == Annotation::Kind::kRem) {
          ops.push_back(ChangeOp::RemArc(arc.parent, arc.label, arc.child));
        }
      }
    }
    Status s = history.Append(t, std::move(ops));
    (void)s;  // Timestamps come sorted from AllTimestamps.
  }
  return history;
}

bool DoemDatabase::IsFeasible() const {
  OemDatabase original = OriginalSnapshot();
  if (!original.Validate().ok()) return false;
  auto rebuilt = FromSnapshot(std::move(original));
  if (!rebuilt.ok()) return false;
  if (!rebuilt->ApplyHistory(ExtractHistory()).ok()) return false;
  return Equals(*rebuilt);
}

bool DoemDatabase::Equals(const DoemDatabase& other) const {
  if (!graph_.Equals(other.graph_)) return false;
  if (deleted_ != other.deleted_) return false;
  auto nonempty = [](const auto& m) {
    size_t n = 0;
    for (const auto& [k, v] : m) {
      if (!v.empty()) ++n;
    }
    return n;
  };
  if (nonempty(node_annots_) != nonempty(other.node_annots_)) return false;
  for (const auto& [n, annots] : node_annots_) {
    if (annots.empty()) continue;
    if (other.NodeAnnotations(n) != annots) return false;
  }
  if (nonempty(arc_annots_) != nonempty(other.arc_annots_)) return false;
  for (const auto& [key, annots] : arc_annots_) {
    if (annots.empty()) continue;
    auto it = other.arc_annots_.find(key);
    if (it == other.arc_annots_.end() || it->second != annots) return false;
  }
  return true;
}

std::string DoemDatabase::ToString() const {
  std::string out = WriteOemText(graph_);
  out += "-- node annotations --\n";
  for (NodeId n : graph_.NodeIds()) {
    const AnnotationList& annots = NodeAnnotations(n);
    if (annots.empty()) continue;
    out += "&" + std::to_string(n) + ": " + AnnotationListToString(annots);
    if (deleted_.contains(n)) out += " (deleted)";
    out += "\n";
  }
  out += "-- arc annotations --\n";
  for (const Arc& arc : graph_.AllArcs()) {
    const AnnotationList& annots =
        ArcAnnotations(arc.parent, arc.label, arc.child);
    if (annots.empty()) continue;
    out += arc.ToString() + ": " + AnnotationListToString(annots) + "\n";
  }
  return out;
}

}  // namespace doem
