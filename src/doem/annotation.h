#ifndef DOEM_DOEM_ANNOTATION_H_
#define DOEM_DOEM_ANNOTATION_H_

#include <string>
#include <vector>

#include "oem/timestamp.h"
#include "oem/value.h"

namespace doem {

/// An annotation on a node or arc of a DOEM graph (Section 3). There is a
/// one-to-one correspondence with the basic change operations:
///   cre(t)      node created at t
///   upd(t, ov)  node value updated at t; ov is the value *before* t
///   add(t)      arc added at t
///   rem(t)      arc removed at t
///
/// cre/upd annotate nodes; add/rem annotate arcs.
struct Annotation {
  enum class Kind { kCre, kUpd, kAdd, kRem };

  Kind kind = Kind::kCre;
  Timestamp time;
  /// The pre-update value; meaningful only for kUpd.
  Value old_value;

  static Annotation Cre(Timestamp t) {
    return Annotation{Kind::kCre, t, Value()};
  }
  static Annotation Upd(Timestamp t, Value ov) {
    return Annotation{Kind::kUpd, t, std::move(ov)};
  }
  static Annotation Add(Timestamp t) {
    return Annotation{Kind::kAdd, t, Value()};
  }
  static Annotation Rem(Timestamp t) {
    return Annotation{Kind::kRem, t, Value()};
  }

  bool operator==(const Annotation&) const = default;
  std::string ToString() const;
};

/// Annotations attached to one node or arc, maintained in increasing
/// timestamp order (at most one annotation per timestamp per node/arc,
/// since a change set contains at most one operation per target).
using AnnotationList = std::vector<Annotation>;

std::string AnnotationListToString(const AnnotationList& annots);

}  // namespace doem

#endif  // DOEM_DOEM_ANNOTATION_H_
