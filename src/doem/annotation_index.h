#ifndef DOEM_DOEM_ANNOTATION_INDEX_H_
#define DOEM_DOEM_ANNOTATION_INDEX_H_

#include <vector>

#include "doem/doem.h"

namespace doem {

/// An index over the annotations of a DOEM database, keyed by annotation
/// kind and timestamp — the paper's Section 7 future-work item
/// ("designing indexes on annotations (based on their types and
/// timestamps)").
///
/// The index answers "which nodes/arcs were created/updated/added/removed
/// in [from, to]?" by binary search over per-kind, time-sorted postings,
/// instead of scanning every node and arc of the graph. Chorel queries of
/// the QSS shape — "changes since the last poll" — are exactly such range
/// probes; bench_annotation_index quantifies the gain.
///
/// The index is a companion structure: build it from a DoemDatabase in
/// one pass, then keep it current with Apply(...) after each change set
/// (valid because change-set timestamps are strictly increasing, so new
/// annotations always append at the time-sorted tail). Postings are kept
/// in canonical order — (time, node) for node entries, (time, parent,
/// label, child) for arc entries — so a fresh build and an incrementally
/// maintained index are bit-for-bit identical.
class AnnotationIndex {
 public:
  struct NodeEntry {
    Timestamp time;
    NodeId node;

    bool operator==(const NodeEntry&) const = default;
  };
  struct ArcEntry {
    Timestamp time;
    Arc arc;

    bool operator==(const ArcEntry&) const = default;
  };

  /// Builds the index in one pass over the database.
  explicit AnnotationIndex(const DoemDatabase& d);

  /// Incrementally appends the postings of one change set that was just
  /// applied to `d` at time `t` (i.e. call `d.ApplyChangeSet(t, ops)`
  /// first, then `index.Apply(d, t, ops)`). Ops whose node/arc is no
  /// longer physically present in `d` — stillborn nodes pruned by
  /// RefreshDeleted and their incident arcs — are skipped, exactly as a
  /// fresh build over `d` would never see them. `t` must exceed every
  /// timestamp already indexed.
  Status Apply(const DoemDatabase& d, Timestamp t, const ChangeSet& ops);

  /// Nodes with a cre annotation in [from, to], time-ascending.
  std::vector<NodeEntry> CreatedIn(Timestamp from, Timestamp to) const;
  /// Nodes with an upd annotation in [from, to]; a node appears once per
  /// matching update.
  std::vector<NodeEntry> UpdatedIn(Timestamp from, Timestamp to) const;
  /// Arcs with an add / rem annotation in [from, to].
  std::vector<ArcEntry> AddedIn(Timestamp from, Timestamp to) const;
  std::vector<ArcEntry> RemovedIn(Timestamp from, Timestamp to) const;

  size_t entry_count() const {
    return cre_.size() + upd_.size() + add_.size() + rem_.size();
  }

  // ---- Per-kind posting sizes (VM cost model + chorel.* gauges) --------

  size_t cre_count() const { return cre_.size(); }
  size_t upd_count() const { return upd_.size(); }
  size_t add_count() const { return add_.size(); }
  size_t rem_count() const { return rem_.size(); }

  /// Number of postings in [from, to] without materializing them — two
  /// binary searches. The bytecode VM's cost model uses these to estimate
  /// seeded-step cardinality before choosing a step order.
  size_t CountCreatedIn(Timestamp from, Timestamp to) const;
  size_t CountUpdatedIn(Timestamp from, Timestamp to) const;
  size_t CountAddedIn(Timestamp from, Timestamp to) const;
  size_t CountRemovedIn(Timestamp from, Timestamp to) const;

  /// Postings appended by Apply since construction (stillborn-pruned ops
  /// excluded) — the incremental maintenance work done, for the
  /// observability layer (DESIGN.md §6d). A fresh build starts at 0.
  size_t applied_ops() const { return applied_ops_; }

  /// Exact posting equality — with canonical ordering this holds between
  /// a fresh build and an incrementally maintained index. Maintenance
  /// tallies (applied_ops) are bookkeeping, not index content, and are
  /// deliberately excluded.
  bool operator==(const AnnotationIndex& o) const {
    return cre_ == o.cre_ && upd_ == o.upd_ && add_ == o.add_ &&
           rem_ == o.rem_;
  }

 private:
  template <typename Entry>
  static std::vector<Entry> Range(const std::vector<Entry>& postings,
                                  Timestamp from, Timestamp to);

  std::vector<NodeEntry> cre_, upd_;
  std::vector<ArcEntry> add_, rem_;
  size_t applied_ops_ = 0;
};

/// The scan-based equivalents, for correctness tests and the ablation
/// benchmark: walk every node / arc and filter annotations by hand.
std::vector<AnnotationIndex::NodeEntry> ScanCreatedIn(const DoemDatabase& d,
                                                      Timestamp from,
                                                      Timestamp to);
std::vector<AnnotationIndex::ArcEntry> ScanAddedIn(const DoemDatabase& d,
                                                   Timestamp from,
                                                   Timestamp to);

}  // namespace doem

#endif  // DOEM_DOEM_ANNOTATION_INDEX_H_
