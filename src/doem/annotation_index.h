#ifndef DOEM_DOEM_ANNOTATION_INDEX_H_
#define DOEM_DOEM_ANNOTATION_INDEX_H_

#include <vector>

#include "doem/doem.h"

namespace doem {

/// An index over the annotations of a DOEM database, keyed by annotation
/// kind and timestamp — the paper's Section 7 future-work item
/// ("designing indexes on annotations (based on their types and
/// timestamps)").
///
/// The index answers "which nodes/arcs were created/updated/added/removed
/// in [from, to]?" by binary search over per-kind, time-sorted postings,
/// instead of scanning every node and arc of the graph. Chorel queries of
/// the QSS shape — "changes since the last poll" — are exactly such range
/// probes; bench_annotation_index quantifies the gain.
///
/// The index is a read-only companion: build it from a DoemDatabase and
/// rebuild (or Refresh with the new timestamp's entries) after mutations.
class AnnotationIndex {
 public:
  struct NodeEntry {
    Timestamp time;
    NodeId node;
  };
  struct ArcEntry {
    Timestamp time;
    Arc arc;
  };

  /// Builds the index in one pass over the database.
  explicit AnnotationIndex(const DoemDatabase& d);

  /// Nodes with a cre annotation in [from, to], time-ascending.
  std::vector<NodeEntry> CreatedIn(Timestamp from, Timestamp to) const;
  /// Nodes with an upd annotation in [from, to]; a node appears once per
  /// matching update.
  std::vector<NodeEntry> UpdatedIn(Timestamp from, Timestamp to) const;
  /// Arcs with an add / rem annotation in [from, to].
  std::vector<ArcEntry> AddedIn(Timestamp from, Timestamp to) const;
  std::vector<ArcEntry> RemovedIn(Timestamp from, Timestamp to) const;

  size_t entry_count() const {
    return cre_.size() + upd_.size() + add_.size() + rem_.size();
  }

 private:
  template <typename Entry>
  static std::vector<Entry> Range(const std::vector<Entry>& postings,
                                  Timestamp from, Timestamp to);

  std::vector<NodeEntry> cre_, upd_;
  std::vector<ArcEntry> add_, rem_;
};

/// The scan-based equivalents, for correctness tests and the ablation
/// benchmark: walk every node / arc and filter annotations by hand.
std::vector<AnnotationIndex::NodeEntry> ScanCreatedIn(const DoemDatabase& d,
                                                      Timestamp from,
                                                      Timestamp to);
std::vector<AnnotationIndex::ArcEntry> ScanAddedIn(const DoemDatabase& d,
                                                   Timestamp from,
                                                   Timestamp to);

}  // namespace doem

#endif  // DOEM_DOEM_ANNOTATION_INDEX_H_
