#include "doem/annotation.h"

namespace doem {

std::string Annotation::ToString() const {
  switch (kind) {
    case Kind::kCre:
      return "cre(" + time.ToString() + ")";
    case Kind::kUpd:
      return "upd(" + time.ToString() + ", " + old_value.ToString() + ")";
    case Kind::kAdd:
      return "add(" + time.ToString() + ")";
    case Kind::kRem:
      return "rem(" + time.ToString() + ")";
  }
  return "?";
}

std::string AnnotationListToString(const AnnotationList& annots) {
  std::string out = "[";
  for (size_t i = 0; i < annots.size(); ++i) {
    if (i > 0) out += ", ";
    out += annots[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace doem
