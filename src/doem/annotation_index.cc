#include "doem/annotation_index.h"

#include <algorithm>

namespace doem {

AnnotationIndex::AnnotationIndex(const DoemDatabase& d) {
  const OemDatabase& g = d.graph();
  for (NodeId n : g.NodeIds()) {
    for (const Annotation& a : d.NodeAnnotations(n)) {
      if (a.kind == Annotation::Kind::kCre) {
        cre_.push_back(NodeEntry{a.time, n});
      } else if (a.kind == Annotation::Kind::kUpd) {
        upd_.push_back(NodeEntry{a.time, n});
      }
    }
  }
  for (const Arc& arc : g.AllArcs()) {
    for (const Annotation& a :
         d.ArcAnnotations(arc.parent, arc.label, arc.child)) {
      if (a.kind == Annotation::Kind::kAdd) {
        add_.push_back(ArcEntry{a.time, arc});
      } else if (a.kind == Annotation::Kind::kRem) {
        rem_.push_back(ArcEntry{a.time, arc});
      }
    }
  }
  auto by_time = [](const auto& x, const auto& y) { return x.time < y.time; };
  std::stable_sort(cre_.begin(), cre_.end(), by_time);
  std::stable_sort(upd_.begin(), upd_.end(), by_time);
  std::stable_sort(add_.begin(), add_.end(), by_time);
  std::stable_sort(rem_.begin(), rem_.end(), by_time);
}

template <typename Entry>
std::vector<Entry> AnnotationIndex::Range(const std::vector<Entry>& postings,
                                          Timestamp from, Timestamp to) {
  auto lo = std::lower_bound(
      postings.begin(), postings.end(), from,
      [](const Entry& e, Timestamp t) { return e.time < t; });
  auto hi = std::upper_bound(
      postings.begin(), postings.end(), to,
      [](Timestamp t, const Entry& e) { return t < e.time; });
  if (lo >= hi) return {};  // empty or inverted range
  return std::vector<Entry>(lo, hi);
}

std::vector<AnnotationIndex::NodeEntry> AnnotationIndex::CreatedIn(
    Timestamp from, Timestamp to) const {
  return Range(cre_, from, to);
}

std::vector<AnnotationIndex::NodeEntry> AnnotationIndex::UpdatedIn(
    Timestamp from, Timestamp to) const {
  return Range(upd_, from, to);
}

std::vector<AnnotationIndex::ArcEntry> AnnotationIndex::AddedIn(
    Timestamp from, Timestamp to) const {
  return Range(add_, from, to);
}

std::vector<AnnotationIndex::ArcEntry> AnnotationIndex::RemovedIn(
    Timestamp from, Timestamp to) const {
  return Range(rem_, from, to);
}

std::vector<AnnotationIndex::NodeEntry> ScanCreatedIn(const DoemDatabase& d,
                                                      Timestamp from,
                                                      Timestamp to) {
  std::vector<AnnotationIndex::NodeEntry> out;
  for (NodeId n : d.graph().NodeIds()) {
    for (const Annotation& a : d.NodeAnnotations(n)) {
      if (a.kind == Annotation::Kind::kCre && a.time >= from &&
          a.time <= to) {
        out.push_back({a.time, n});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.time < y.time;
  });
  return out;
}

std::vector<AnnotationIndex::ArcEntry> ScanAddedIn(const DoemDatabase& d,
                                                   Timestamp from,
                                                   Timestamp to) {
  std::vector<AnnotationIndex::ArcEntry> out;
  for (const Arc& arc : d.graph().AllArcs()) {
    for (const Annotation& a :
         d.ArcAnnotations(arc.parent, arc.label, arc.child)) {
      if (a.kind == Annotation::Kind::kAdd && a.time >= from &&
          a.time <= to) {
        out.push_back({a.time, arc});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.time < y.time;
  });
  return out;
}

}  // namespace doem
