#include "doem/annotation_index.h"

#include <algorithm>

namespace doem {

namespace {

// Canonical posting orders: total, so a fresh build and an incremental
// Apply produce identical vectors regardless of discovery order.
bool NodeEntryLess(const AnnotationIndex::NodeEntry& x,
                   const AnnotationIndex::NodeEntry& y) {
  if (x.time != y.time) return x.time < y.time;
  return x.node < y.node;
}

bool ArcEntryLess(const AnnotationIndex::ArcEntry& x,
                  const AnnotationIndex::ArcEntry& y) {
  if (x.time != y.time) return x.time < y.time;
  if (x.arc.parent != y.arc.parent) return x.arc.parent < y.arc.parent;
  if (x.arc.label != y.arc.label) return x.arc.label < y.arc.label;
  return x.arc.child < y.arc.child;
}

}  // namespace

AnnotationIndex::AnnotationIndex(const DoemDatabase& d) {
  const OemDatabase& g = d.graph();
  for (NodeId n : g.NodeIds()) {
    for (const Annotation& a : d.NodeAnnotations(n)) {
      if (a.kind == Annotation::Kind::kCre) {
        cre_.push_back(NodeEntry{a.time, n});
      } else if (a.kind == Annotation::Kind::kUpd) {
        upd_.push_back(NodeEntry{a.time, n});
      }
    }
  }
  for (const Arc& arc : g.AllArcs()) {
    for (const Annotation& a :
         d.ArcAnnotations(arc.parent, arc.label, arc.child)) {
      if (a.kind == Annotation::Kind::kAdd) {
        add_.push_back(ArcEntry{a.time, arc});
      } else if (a.kind == Annotation::Kind::kRem) {
        rem_.push_back(ArcEntry{a.time, arc});
      }
    }
  }
  std::sort(cre_.begin(), cre_.end(), NodeEntryLess);
  std::sort(upd_.begin(), upd_.end(), NodeEntryLess);
  std::sort(add_.begin(), add_.end(), ArcEntryLess);
  std::sort(rem_.begin(), rem_.end(), ArcEntryLess);
}

Status AnnotationIndex::Apply(const DoemDatabase& d, Timestamp t,
                              const ChangeSet& ops) {
  auto last_time = [](const auto& postings) {
    return postings.empty() ? Timestamp::NegativeInfinity()
                            : postings.back().time;
  };
  Timestamp newest = std::max({last_time(cre_), last_time(upd_),
                               last_time(add_), last_time(rem_)});
  if (t <= newest) {
    return Status::InvalidChange(
        "AnnotationIndex::Apply: timestamp " + t.ToString() +
        " not after newest indexed timestamp " + newest.ToString());
  }
  std::vector<NodeEntry> cre_batch, upd_batch;
  std::vector<ArcEntry> add_batch, rem_batch;
  const OemDatabase& g = d.graph();
  for (const ChangeOp& op : ops) {
    switch (op.kind) {
      case ChangeOp::Kind::kCreNode:
        // Skip stillborn nodes: pruned physically, never indexed.
        if (g.HasNode(op.node)) cre_batch.push_back({t, op.node});
        break;
      case ChangeOp::Kind::kUpdNode:
        if (g.HasNode(op.node)) upd_batch.push_back({t, op.node});
        break;
      case ChangeOp::Kind::kAddArc:
        if (g.HasArc(op.arc.parent, op.arc.label, op.arc.child)) {
          add_batch.push_back({t, op.arc});
        }
        break;
      case ChangeOp::Kind::kRemArc:
        if (g.HasArc(op.arc.parent, op.arc.label, op.arc.child)) {
          rem_batch.push_back({t, op.arc});
        }
        break;
    }
  }
  // All batch entries share timestamp t > everything indexed, so sorting
  // each batch and appending preserves global canonical order.
  std::sort(cre_batch.begin(), cre_batch.end(), NodeEntryLess);
  std::sort(upd_batch.begin(), upd_batch.end(), NodeEntryLess);
  std::sort(add_batch.begin(), add_batch.end(), ArcEntryLess);
  std::sort(rem_batch.begin(), rem_batch.end(), ArcEntryLess);
  cre_.insert(cre_.end(), cre_batch.begin(), cre_batch.end());
  upd_.insert(upd_.end(), upd_batch.begin(), upd_batch.end());
  add_.insert(add_.end(), add_batch.begin(), add_batch.end());
  rem_.insert(rem_.end(), rem_batch.begin(), rem_batch.end());
  applied_ops_ += cre_batch.size() + upd_batch.size() + add_batch.size() +
                  rem_batch.size();
  return Status::OK();
}

template <typename Entry>
std::vector<Entry> AnnotationIndex::Range(const std::vector<Entry>& postings,
                                          Timestamp from, Timestamp to) {
  auto lo = std::lower_bound(
      postings.begin(), postings.end(), from,
      [](const Entry& e, Timestamp t) { return e.time < t; });
  auto hi = std::upper_bound(
      postings.begin(), postings.end(), to,
      [](Timestamp t, const Entry& e) { return t < e.time; });
  if (lo >= hi) return {};  // empty or inverted range
  return std::vector<Entry>(lo, hi);
}

namespace {

template <typename Entry>
size_t CountRange(const std::vector<Entry>& postings, Timestamp from,
                  Timestamp to) {
  auto lo = std::lower_bound(
      postings.begin(), postings.end(), from,
      [](const Entry& e, Timestamp t) { return e.time < t; });
  auto hi = std::upper_bound(
      postings.begin(), postings.end(), to,
      [](Timestamp t, const Entry& e) { return t < e.time; });
  return lo >= hi ? 0 : static_cast<size_t>(hi - lo);
}

}  // namespace

size_t AnnotationIndex::CountCreatedIn(Timestamp from, Timestamp to) const {
  return CountRange(cre_, from, to);
}

size_t AnnotationIndex::CountUpdatedIn(Timestamp from, Timestamp to) const {
  return CountRange(upd_, from, to);
}

size_t AnnotationIndex::CountAddedIn(Timestamp from, Timestamp to) const {
  return CountRange(add_, from, to);
}

size_t AnnotationIndex::CountRemovedIn(Timestamp from, Timestamp to) const {
  return CountRange(rem_, from, to);
}

std::vector<AnnotationIndex::NodeEntry> AnnotationIndex::CreatedIn(
    Timestamp from, Timestamp to) const {
  return Range(cre_, from, to);
}

std::vector<AnnotationIndex::NodeEntry> AnnotationIndex::UpdatedIn(
    Timestamp from, Timestamp to) const {
  return Range(upd_, from, to);
}

std::vector<AnnotationIndex::ArcEntry> AnnotationIndex::AddedIn(
    Timestamp from, Timestamp to) const {
  return Range(add_, from, to);
}

std::vector<AnnotationIndex::ArcEntry> AnnotationIndex::RemovedIn(
    Timestamp from, Timestamp to) const {
  return Range(rem_, from, to);
}

std::vector<AnnotationIndex::NodeEntry> ScanCreatedIn(const DoemDatabase& d,
                                                      Timestamp from,
                                                      Timestamp to) {
  std::vector<AnnotationIndex::NodeEntry> out;
  for (NodeId n : d.graph().NodeIds()) {
    for (const Annotation& a : d.NodeAnnotations(n)) {
      if (a.kind == Annotation::Kind::kCre && a.time >= from &&
          a.time <= to) {
        out.push_back({a.time, n});
      }
    }
  }
  std::sort(out.begin(), out.end(), NodeEntryLess);
  return out;
}

std::vector<AnnotationIndex::ArcEntry> ScanAddedIn(const DoemDatabase& d,
                                                   Timestamp from,
                                                   Timestamp to) {
  std::vector<AnnotationIndex::ArcEntry> out;
  for (const Arc& arc : d.graph().AllArcs()) {
    for (const Annotation& a :
         d.ArcAnnotations(arc.parent, arc.label, arc.child)) {
      if (a.kind == Annotation::Kind::kAdd && a.time >= from &&
          a.time <= to) {
        out.push_back({a.time, arc});
      }
    }
  }
  std::sort(out.begin(), out.end(), ArcEntryLess);
  return out;
}

}  // namespace doem
