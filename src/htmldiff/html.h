#ifndef DOEM_HTMLDIFF_HTML_H_
#define DOEM_HTMLDIFF_HTML_H_

#include <string>

#include "common/result.h"
#include "oem/oem.h"

namespace doem {
namespace htmldiff {

/// Parses an HTML subset into an OEM database, the first step of the
/// paper's htmldiff pipeline (Section 1.1): element tags become complex
/// objects whose label is the tag name, text runs become atomic string
/// subobjects under the label "text", and attributes become atomic string
/// subobjects under "@<name>". The database root is an anonymous complex
/// node with one arc per top-level element.
///
/// Supported subset: properly nested elements, void elements (br, hr,
/// img, meta, link, input), self-closing syntax, quoted/unquoted
/// attributes, comments, doctype, and the entities &amp; &lt; &gt;
/// &quot; &#NN; &nbsp;.
Result<OemDatabase> ParseHtml(const std::string& html);

/// Renders an OEM tree produced by ParseHtml back to HTML (used by the
/// marked-up diff renderer). Children render in arc insertion order.
std::string RenderHtml(const OemDatabase& db);

/// Escapes text content for inclusion in HTML.
std::string EscapeHtml(const std::string& text);

}  // namespace htmldiff
}  // namespace doem

#endif  // DOEM_HTMLDIFF_HTML_H_
