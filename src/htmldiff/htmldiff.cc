#include "htmldiff/htmldiff.h"

#include "htmldiff/html.h"

namespace doem {
namespace htmldiff {

namespace {

bool IsVoidTag(const std::string& tag) {
  return tag == "br" || tag == "hr" || tag == "img" || tag == "meta" ||
         tag == "link" || tag == "input";
}

// Renders one node of the annotated graph. `status` tells how the arc
// that led here fared: live original, newly added, or removed.
enum class ArcFate { kOriginal, kAdded, kRemoved };

void RenderAnnotated(const DoemDatabase& d, NodeId node,
                     const std::string& label, ArcFate fate,
                     std::string* out) {
  const char* open = nullptr;
  const char* close = nullptr;
  if (fate == ArcFate::kAdded) {
    open = "<ins class=\"hd-new\">";
    close = "</ins>";
  } else if (fate == ArcFate::kRemoved) {
    open = "<del class=\"hd-del\">";
    close = "</del>";
  }
  if (open != nullptr) out->append(open);

  if (label == "text") {
    const Value& v = d.CurrentValue(node);
    auto upds = d.UpdRecords(node);
    if (!upds.empty()) {
      out->append("<span class=\"hd-upd\" data-old=\"")
          .append(EscapeHtml(upds.front().old_value.kind() ==
                                     Value::Kind::kString
                                 ? upds.front().old_value.AsString()
                                 : upds.front().old_value.ToString()))
          .append("\">");
    }
    if (v.kind() == Value::Kind::kString) {
      out->append(EscapeHtml(v.AsString()));
    }
    if (!upds.empty()) out->append("</span>");
  } else {
    out->append("<").append(label);
    for (const OutArc& a : d.graph().OutArcs(node)) {
      if (a.label.size() > 1 && a.label[0] == '@' &&
          d.ArcCurrentlyLive(node, a.label, a.child)) {
        const Value& v = d.CurrentValue(a.child);
        out->append(" ").append(a.label.substr(1)).append("=\"");
        if (v.kind() == Value::Kind::kString) {
          out->append(EscapeHtml(v.AsString()));
        }
        out->append("\"");
      }
    }
    out->append(">");
    for (const OutArc& a : d.graph().OutArcs(node)) {
      if (!a.label.empty() && a.label[0] == '@') continue;
      ArcFate child_fate = ArcFate::kOriginal;
      const AnnotationList& annots =
          d.ArcAnnotations(node, a.label, a.child);
      if (!annots.empty()) {
        child_fate = annots.back().kind == Annotation::Kind::kRem
                         ? ArcFate::kRemoved
                         : ArcFate::kAdded;
      }
      // Inside an inserted or deleted region, nested arcs inherit the
      // region's fate; don't double-wrap.
      if (fate != ArcFate::kOriginal) child_fate = ArcFate::kOriginal;
      RenderAnnotated(d, a.child, a.label, child_fate, out);
    }
    if (!IsVoidTag(label)) {
      out->append("</").append(label).append(">");
    }
  }
  if (close != nullptr) out->append(close);
}

}  // namespace

std::string RenderMarkedUp(const DoemDatabase& d) {
  std::string out;
  NodeId root = d.root();
  if (root == kInvalidNode) return out;
  for (const OutArc& a : d.graph().OutArcs(root)) {
    ArcFate fate = ArcFate::kOriginal;
    const AnnotationList& annots = d.ArcAnnotations(root, a.label, a.child);
    if (!annots.empty()) {
      fate = annots.back().kind == Annotation::Kind::kRem
                 ? ArcFate::kRemoved
                 : ArcFate::kAdded;
    }
    RenderAnnotated(d, a.child, a.label, fate, &out);
  }
  return out;
}

Result<HtmlDiffResult> HtmlDiff(const std::string& old_html,
                                const std::string& new_html) {
  auto old_db = ParseHtml(old_html);
  if (!old_db.ok()) {
    return Status(old_db.status().code(),
                  "old version: " + old_db.status().message());
  }
  auto new_db = ParseHtml(new_html);
  if (!new_db.ok()) {
    return Status(new_db.status().code(),
                  "new version: " + new_db.status().message());
  }
  auto delta = DiffSnapshots(*old_db, *new_db, DiffMode::kStructural);
  if (!delta.ok()) return delta.status();

  HtmlDiffResult result;
  result.stats = SummarizeChanges(*delta);
  auto d = DoemDatabase::FromSnapshot(std::move(old_db).value());
  if (!d.ok()) return d.status();
  DOEM_RETURN_IF_ERROR(d->ApplyChangeSet(Timestamp(1), *delta));
  result.doem = std::move(d).value();
  result.markup = RenderMarkedUp(result.doem);
  return result;
}

}  // namespace htmldiff
}  // namespace doem
