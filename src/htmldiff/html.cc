#include "htmldiff/html.h"

#include <cctype>
#include <unordered_set>
#include <vector>

#include "common/strings.h"

namespace doem {
namespace htmldiff {

namespace {

const std::unordered_set<std::string>& VoidElements() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "br", "hr", "img", "meta", "link", "input"};
  return *kSet;
}

std::string DecodeEntities(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string::npos || semi - i > 8) {
      out.push_back(s[i++]);
      continue;
    }
    std::string ent = s.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "nbsp") {
      out.push_back(' ');
    } else if (!ent.empty() && ent[0] == '#') {
      int code = std::atoi(ent.c_str() + 1);
      if (code > 0 && code < 128) {
        out.push_back(static_cast<char>(code));
      } else {
        out.push_back('?');
      }
    } else {
      out.append(s, i, semi - i + 1);
    }
    i = semi + 1;
  }
  return out;
}

class HtmlParser {
 public:
  explicit HtmlParser(const std::string& html) : html_(html) {}

  Result<OemDatabase> Parse() {
    NodeId root = db_.NewComplex();
    DOEM_RETURN_IF_ERROR(db_.SetRoot(root));
    DOEM_RETURN_IF_ERROR(ParseChildren(root, ""));
    if (pos_ != html_.size()) {
      return Status::ParseError("unexpected closing tag at offset " +
                                std::to_string(pos_));
    }
    return std::move(db_);
  }

 private:
  // Parses element/text children of `parent` until a closing tag (whose
  // name must equal enclosing_tag) or end of input.
  Status ParseChildren(NodeId parent, const std::string& enclosing_tag) {
    std::string text;
    auto flush_text = [&]() -> Status {
      std::string_view stripped = StripWhitespace(text);
      if (!stripped.empty()) {
        NodeId t = db_.NewString(DecodeEntities(std::string(stripped)));
        DOEM_RETURN_IF_ERROR(db_.AddArc(parent, "text", t));
      }
      text.clear();
      return Status::OK();
    };
    while (pos_ < html_.size()) {
      if (html_[pos_] != '<') {
        text.push_back(html_[pos_++]);
        continue;
      }
      // Comment or doctype.
      if (html_.compare(pos_, 4, "<!--") == 0) {
        size_t end = html_.find("-->", pos_ + 4);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (pos_ + 1 < html_.size() && html_[pos_ + 1] == '!') {
        size_t end = html_.find('>', pos_);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated <! ... >");
        }
        pos_ = end + 1;
        continue;
      }
      if (pos_ + 1 < html_.size() && html_[pos_ + 1] == '/') {
        // Closing tag: hand control back to the enclosing element.
        DOEM_RETURN_IF_ERROR(flush_text());
        size_t end = html_.find('>', pos_);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated closing tag");
        }
        std::string name = ToLower(
            StripWhitespace(html_.substr(pos_ + 2, end - pos_ - 2)));
        if (name != enclosing_tag) {
          if (enclosing_tag.empty()) {
            return Status::OK();  // caller reports trailing input
          }
          return Status::ParseError("mismatched </" + name + ">, expected </" +
                                    enclosing_tag + ">");
        }
        pos_ = end + 1;
        closed_ = true;
        return Status::OK();
      }
      DOEM_RETURN_IF_ERROR(flush_text());
      DOEM_RETURN_IF_ERROR(ParseElement(parent));
    }
    DOEM_RETURN_IF_ERROR(flush_text());
    if (!enclosing_tag.empty()) {
      return Status::ParseError("missing </" + enclosing_tag + ">");
    }
    return Status::OK();
  }

  Status ParseElement(NodeId parent) {
    if (depth_ > 1000) {
      return Status::ParseError("elements nested deeper than 1000");
    }
    ++pos_;  // consume '<'
    size_t start = pos_;
    while (pos_ < html_.size() &&
           (std::isalnum(static_cast<unsigned char>(html_[pos_])) ||
            html_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("bad tag at offset " + std::to_string(start));
    }
    std::string tag = ToLower(html_.substr(start, pos_ - start));
    NodeId node = db_.NewComplex();
    DOEM_RETURN_IF_ERROR(db_.AddArc(parent, tag, node));

    // Attributes.
    bool self_closed = false;
    while (pos_ < html_.size() && html_[pos_] != '>') {
      if (std::isspace(static_cast<unsigned char>(html_[pos_]))) {
        ++pos_;
        continue;
      }
      if (html_[pos_] == '/') {
        self_closed = true;
        ++pos_;
        continue;
      }
      size_t nstart = pos_;
      while (pos_ < html_.size() && html_[pos_] != '=' &&
             html_[pos_] != '>' && html_[pos_] != '/' &&
             !std::isspace(static_cast<unsigned char>(html_[pos_]))) {
        ++pos_;
      }
      std::string name = ToLower(html_.substr(nstart, pos_ - nstart));
      if (name.empty()) {
        return Status::ParseError("bad attribute at offset " +
                                  std::to_string(nstart));
      }
      std::string value;
      if (pos_ < html_.size() && html_[pos_] == '=') {
        ++pos_;
        if (pos_ < html_.size() &&
            (html_[pos_] == '"' || html_[pos_] == '\'')) {
          char quote = html_[pos_++];
          size_t vstart = pos_;
          while (pos_ < html_.size() && html_[pos_] != quote) ++pos_;
          if (pos_ >= html_.size()) {
            return Status::ParseError("unterminated attribute value");
          }
          value = html_.substr(vstart, pos_ - vstart);
          ++pos_;
        } else {
          size_t vstart = pos_;
          while (pos_ < html_.size() && html_[pos_] != '>' &&
                 !std::isspace(static_cast<unsigned char>(html_[pos_]))) {
            ++pos_;
          }
          value = html_.substr(vstart, pos_ - vstart);
        }
      }
      NodeId attr = db_.NewString(DecodeEntities(value));
      DOEM_RETURN_IF_ERROR(db_.AddArc(node, "@" + name, attr));
    }
    if (pos_ >= html_.size()) {
      return Status::ParseError("unterminated <" + tag + ">");
    }
    ++pos_;  // consume '>'
    if (self_closed || VoidElements().contains(tag)) return Status::OK();
    closed_ = false;
    ++depth_;
    Status children = ParseChildren(node, tag);
    --depth_;
    DOEM_RETURN_IF_ERROR(children);
    if (!closed_) {
      return Status::ParseError("missing </" + tag + ">");
    }
    return Status::OK();
  }

  const std::string& html_;
  OemDatabase db_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool closed_ = false;
};

void RenderNode(const OemDatabase& db, NodeId node, const std::string& label,
                std::string* out) {
  if (label == "text") {
    const Value* v = db.GetValue(node);
    if (v != nullptr && v->kind() == Value::Kind::kString) {
      out->append(EscapeHtml(v->AsString()));
    }
    return;
  }
  out->append("<").append(label);
  for (const OutArc& a : db.OutArcs(node)) {
    if (a.label.size() > 1 && a.label[0] == '@') {
      const Value* v = db.GetValue(a.child);
      out->append(" ").append(a.label.substr(1)).append("=\"");
      if (v != nullptr && v->kind() == Value::Kind::kString) {
        out->append(EscapeHtml(v->AsString()));
      }
      out->append("\"");
    }
  }
  out->append(">");
  for (const OutArc& a : db.OutArcs(node)) {
    if (!a.label.empty() && a.label[0] == '@') continue;
    RenderNode(db, a.child, a.label, out);
  }
  if (!VoidElements().contains(label)) {
    out->append("</").append(label).append(">");
  }
}

}  // namespace

std::string EscapeHtml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<OemDatabase> ParseHtml(const std::string& html) {
  return HtmlParser(html).Parse();
}

std::string RenderHtml(const OemDatabase& db) {
  std::string out;
  if (db.root() == kInvalidNode) return out;
  for (const OutArc& a : db.OutArcs(db.root())) {
    RenderNode(db, a.child, a.label, &out);
  }
  return out;
}

}  // namespace htmldiff
}  // namespace doem
