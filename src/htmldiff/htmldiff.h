#ifndef DOEM_HTMLDIFF_HTMLDIFF_H_
#define DOEM_HTMLDIFF_HTMLDIFF_H_

#include <string>

#include "common/result.h"
#include "diff/diff.h"
#include "doem/doem.h"

namespace doem {
namespace htmldiff {

/// The htmldiff tool of Section 1.1 (Figure 1): takes two versions of a
/// page, diffs them on their semistructured content, and produces a
/// marked-up copy of the new version highlighting the differences:
///
///   inserted elements/text     <ins class="hd-new">...</ins>
///   deleted elements/text      <del class="hd-del">...</del> (kept in
///                              place, as the DOEM graph keeps removed
///                              arcs)
///   updated text               <span class="hd-upd" data-old="...">
///
/// Internally this is a showcase of the whole pipeline: parse both
/// versions to OEM, infer the change set with the structural OEMdiff,
/// build the DOEM database D(old, {(1, U)}), and render the annotated
/// graph.
struct HtmlDiffResult {
  /// The marked-up page.
  std::string markup;
  /// The DOEM database holding old page + changes (for change queries
  /// over the page, the paper's Section 1.1 motivation).
  DoemDatabase doem;
  /// Operation counts.
  DiffStats stats;
};

Result<HtmlDiffResult> HtmlDiff(const std::string& old_html,
                                const std::string& new_html);

/// Renders the marked-up page from any single-step DOEM database built
/// over an HTML-shaped OEM graph.
std::string RenderMarkedUp(const DoemDatabase& d);

}  // namespace htmldiff
}  // namespace doem

#endif  // DOEM_HTMLDIFF_HTMLDIFF_H_
