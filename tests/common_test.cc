#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace doem {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing missing");
  EXPECT_EQ(s.ToString(), "NotFound: thing missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kInvalidChange,
        StatusCode::kParseError, StatusCode::kUnsupported,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(c), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) {
    return fail ? Status::Internal("boom") : Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    DOEM_RETURN_IF_ERROR(inner(fail));
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
  EXPECT_EQ(outer(false).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("no int");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<std::string> {
    if (fail) return Status::ParseError("nope");
    return std::string("hi");
  };
  auto outer = [&](bool fail) -> Result<size_t> {
    DOEM_ASSIGN_OR_RETURN(std::string s, make(fail));
    return s.size();
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 2u);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(Join({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("selec", "select"));
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
}

TEST(StringsTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("120 Lytton", "%Lytton%"));
  EXPECT_TRUE(LikeMatch("Lytton", "%Lytton%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("anything", "%%"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_FALSE(LikeMatch("abc", ""));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(LikeMatch("mississippi", "%ss%ss%"));
  EXPECT_FALSE(LikeMatch("mississippi", "%ss%xx%"));
  // '%' backtracking across overlapping candidates.
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
}

TEST(StringsTest, EscapeString) {
  EXPECT_EQ(EscapeString("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(EscapeString("plain"), "plain");
}

TEST(StringsTest, BareIdentifier) {
  EXPECT_TRUE(IsBareIdentifier("nearby-eats"));
  EXPECT_TRUE(IsBareIdentifier("_x9"));
  EXPECT_FALSE(IsBareIdentifier(""));
  EXPECT_FALSE(IsBareIdentifier("9lives"));
  EXPECT_FALSE(IsBareIdentifier("&val"));
  EXPECT_FALSE(IsBareIdentifier("has space"));
}

}  // namespace
}  // namespace doem
