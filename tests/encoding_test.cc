#include <gtest/gtest.h>

#include "doem/doem.h"
#include "encoding/doem_text.h"
#include "encoding/encode.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::Guide;
using testing::GuideHistory;
using testing::GuideT1;
using testing::GuideT3;

DoemDatabase GuideDoem() {
  auto d = DoemDatabase::Build(BuildGuide().db, GuideHistory());
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

TEST(EncodingLabelTest, HistoryLabelRoundTrip) {
  EXPECT_EQ(HistoryLabelFor("price"), "&price-history");
  std::string label;
  ASSERT_TRUE(LabelFromHistory("&price-history", &label));
  EXPECT_EQ(label, "price");
  // A source label that itself ends in "-history" still round-trips.
  ASSERT_TRUE(LabelFromHistory(HistoryLabelFor("x-history"), &label));
  EXPECT_EQ(label, "x-history");
  EXPECT_FALSE(LabelFromHistory("price", &label));
  EXPECT_FALSE(LabelFromHistory("&upd", &label));
  EXPECT_TRUE(IsEncodingLabel("&val"));
  EXPECT_FALSE(IsEncodingLabel("val"));
}

TEST(EncodingTest, Figure5Structure) {
  DoemDatabase d = GuideDoem();
  auto enc = EncodeDoem(d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  const OemDatabase& e = *enc;
  EXPECT_TRUE(e.Validate().ok()) << e.Validate().ToString();
  EXPECT_EQ(e.root(), d.root());
  EXPECT_EQ(e.Child(e.root(), "guide"), NodeId{4});

  // Complex object: &val self-loop.
  EXPECT_EQ(e.Child(4, "&val"), NodeId{4});

  // Updated atomic object n1: &val holds the *current* value 20; one &upd
  // record with &time/&ov/&nv (Figure 5 left).
  NodeId val1 = e.Child(1, "&val");
  ASSERT_NE(val1, kInvalidNode);
  EXPECT_EQ(e.GetValue(val1)->AsInt(), 20);
  std::vector<NodeId> upds = e.Children(1, "&upd");
  ASSERT_EQ(upds.size(), 1u);
  EXPECT_EQ(e.GetValue(e.Child(upds[0], "&time"))->AsTime(), GuideT1());
  EXPECT_EQ(e.GetValue(e.Child(upds[0], "&ov"))->AsInt(), 10);
  EXPECT_EQ(e.GetValue(e.Child(upds[0], "&nv"))->AsInt(), 20);

  // Created node n2: &cre with t1.
  NodeId cre2 = e.Child(2, "&cre");
  ASSERT_NE(cre2, kInvalidNode);
  EXPECT_EQ(e.GetValue(cre2)->AsTime(), GuideT1());

  // Removed arc (6, parking, 7): NOT accessible via the label "parking"
  // (Figure 5 right / Section 5.2's point about current arcs), but its
  // history object exists with a &rem timestamp and &target n7.
  EXPECT_TRUE(e.Children(6, "parking").empty());
  std::vector<NodeId> hist = e.Children(6, "&parking-history");
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(e.Child(hist[0], "&target"), NodeId{7});
  NodeId rem = e.Child(hist[0], "&rem");
  ASSERT_NE(rem, kInvalidNode);
  EXPECT_EQ(e.GetValue(rem)->AsTime(), GuideT3());
  EXPECT_TRUE(e.Children(hist[0], "&add").empty());

  // Live original arc: present under its own label AND as history with no
  // annotations.
  ASSERT_EQ(e.Children(6, "name").size(), 1u);
  std::vector<NodeId> name_hist = e.Children(6, "&name-history");
  ASSERT_EQ(name_hist.size(), 1u);
  EXPECT_TRUE(e.Children(name_hist[0], "&add").empty());
  EXPECT_TRUE(e.Children(name_hist[0], "&rem").empty());

  // Added arc (4, restaurant, 2): current arc plus &add annotation.
  std::vector<NodeId> rests = e.Children(4, "restaurant");
  EXPECT_EQ(rests.size(), 3u);
  bool found_add = false;
  for (NodeId h : e.Children(4, "&restaurant-history")) {
    if (e.Child(h, "&target") == NodeId{2}) {
      NodeId add = e.Child(h, "&add");
      ASSERT_NE(add, kInvalidNode);
      EXPECT_EQ(e.GetValue(add)->AsTime(), GuideT1());
      found_add = true;
    }
  }
  EXPECT_TRUE(found_add);
}

TEST(EncodingTest, EncodingObjectsAreAllComplex) {
  auto enc = EncodeDoem(GuideDoem());
  ASSERT_TRUE(enc.ok());
  // Every node that was a DOEM object (has &val) is complex in the
  // encoding, even the ones encoding atomic objects.
  for (NodeId n : enc->NodeIds()) {
    if (!enc->Children(n, "&val").empty()) {
      EXPECT_TRUE(enc->GetValue(n)->is_complex());
    }
  }
}

TEST(EncodingTest, RoundTripGuide) {
  DoemDatabase d = GuideDoem();
  auto enc = EncodeDoem(d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  auto dec = DecodeDoem(*enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(dec->Equals(d)) << "decoded:\n"
                              << dec->ToString() << "original:\n"
                              << d.ToString();
}

TEST(EncodingTest, RoundTripNoHistory) {
  auto d = DoemDatabase::FromSnapshot(BuildGuide().db);
  ASSERT_TRUE(d.ok());
  auto enc = EncodeDoem(*d);
  ASSERT_TRUE(enc.ok());
  auto dec = DecodeDoem(*enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(dec->Equals(*d));
}

TEST(EncodingTest, RoundTripWithComplexToAtomicTransition) {
  DoemDatabase d = GuideDoem();
  Timestamp t(GuideT3().ticks + 1);
  ChangeSet ops;
  for (const OutArc& a : d.LiveArcs(7)) {
    ops.push_back(ChangeOp::RemArc(7, a.label, a.child));
  }
  ops.push_back(ChangeOp::UpdNode(7, Value::String("gone")));
  ASSERT_TRUE(d.ApplyChangeSet(t, ops).ok());
  auto enc = EncodeDoem(d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  // n7 is atomic now: &val points to an atom, yet history objects for its
  // removed arcs are still there.
  EXPECT_NE(enc->Child(7, "&val"), NodeId{7});
  EXPECT_FALSE(enc->Children(7, "&lot-history").empty());
  auto dec = DecodeDoem(*enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(dec->Equals(d));
}

TEST(EncodingTest, RoundTripWithDeletedSubtree) {
  DoemDatabase d = GuideDoem();
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp(GuideT3().ticks + 1),
                               {ChangeOp::RemArc(4, "restaurant", 6)})
                  .ok());
  ASSERT_TRUE(d.IsDeleted(6));
  auto enc = EncodeDoem(d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  // The deleted Janta encoding is still reachable via its history object.
  EXPECT_TRUE(enc->Validate().ok());
  EXPECT_TRUE(enc->HasNode(6));
  auto dec = DecodeDoem(*enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(dec->Equals(d));
  EXPECT_TRUE(dec->IsDeleted(6));
}

TEST(EncodingTest, RejectsReservedSourceLabels) {
  OemDatabase base;
  NodeId root = base.NewComplex();
  ASSERT_TRUE(base.SetRoot(root).ok());
  ASSERT_TRUE(base.AddArc(root, "&val", base.NewInt(1)).ok());
  auto d = DoemDatabase::FromSnapshot(base);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(EncodeDoem(*d).ok());
}

TEST(EncodingTest, DecodeRejectsCorruptEncodings) {
  DoemDatabase d = GuideDoem();
  auto enc = EncodeDoem(d);
  ASSERT_TRUE(enc.ok());

  {
    // Break consistency: expose the removed parking arc as current.
    OemDatabase bad = *enc;
    ASSERT_TRUE(bad.AddArc(6, "parking", 7).ok());
    EXPECT_FALSE(DecodeDoem(bad).ok());
  }
  {
    // A current arc without a history object.
    OemDatabase bad = *enc;
    ASSERT_TRUE(bad.AddArc(6, "extra", 7).ok());
    EXPECT_FALSE(DecodeDoem(bad).ok());
  }
  {
    // Remove a &val arc: node 1 stops being an encoding object, so the
    // history &target pointing at it dangles.
    OemDatabase bad = *enc;
    NodeId val1 = bad.Child(1, "&val");
    ASSERT_TRUE(bad.RemArc(1, "&val", val1).ok());
    EXPECT_FALSE(DecodeDoem(bad).ok());
  }
}

TEST(EncodingTest, DecodeFreshDatabaseIsFeasible) {
  auto dec = DecodeDoem(*EncodeDoem(GuideDoem()));
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->IsFeasible());
}

TEST(EncodingTest, EncodingGrowth) {
  // Documented size characteristics: every object gains a &val arc, every
  // arc gains a history object with a &target arc.
  Guide g = BuildGuide();
  size_t nodes = g.db.node_count();
  size_t arcs = g.db.arc_count();
  auto d = DoemDatabase::FromSnapshot(g.db);
  ASSERT_TRUE(d.ok());
  auto enc = EncodeDoem(*d);
  ASSERT_TRUE(enc.ok());
  // Nodes: original + one value atom per atomic object + one history
  // object per arc.
  size_t atomic = 0;
  for (NodeId n : g.db.NodeIds()) {
    if (g.db.GetValue(n)->is_atomic()) ++atomic;
  }
  EXPECT_EQ(enc->node_count(), nodes + atomic + arcs);
  // Arcs: &val per node, current arc + history arc + &target per arc.
  EXPECT_EQ(enc->arc_count(), nodes + 3 * arcs);
}

}  // namespace
}  // namespace doem
namespace doem {
namespace {

TEST(DoemTextTest, RoundTripsFullState) {
  auto d = DoemDatabase::Build(doem::testing::BuildGuide().db,
                               doem::testing::GuideHistory());
  ASSERT_TRUE(d.ok());
  // Delete a subtree so the deleted set is non-trivial.
  ASSERT_TRUE(d->ApplyChangeSet(Timestamp::FromDate(1997, 2, 1),
                                {ChangeOp::RemArc(4, "restaurant", 6)})
                  .ok());
  std::string text = WriteDoemText(*d);
  EXPECT_FALSE(text.empty());
  auto parsed = ParseDoemText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(*d));
  EXPECT_TRUE(parsed->IsDeleted(6));
  EXPECT_TRUE(parsed->IsFeasible());
}

TEST(DoemTextTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDoemText("not oem text").ok());
  EXPECT_FALSE(ParseDoemText("&1 { a: &2 5 }").ok())
      << "valid OEM text but not a DOEM encoding (no &val arcs)";
}

}  // namespace
}  // namespace doem
