#include <gtest/gtest.h>

#include "qss/qss.h"
#include "testing/guide.h"

namespace doem {
namespace qss {
namespace {

using doem::testing::BuildGuide;
using doem::testing::GuideHistory;
using doem::testing::GuideT1;

// ------------------------------------------------------------- Frequency

TEST(FrequencyTest, PaperExamples) {
  auto f1 = FrequencySpec::Parse("every 10 minutes", TickUnit::kMinute);
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  EXPECT_EQ(f1->interval_ticks, 10);

  auto f2 = FrequencySpec::Parse("every night at 11:30pm");
  ASSERT_TRUE(f2.ok()) << f2.status().ToString();
  EXPECT_EQ(f2->interval_ticks, 1);

  auto f3 = FrequencySpec::Parse("every 2 weeks");
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(f3->interval_ticks, 14);

  auto f4 = FrequencySpec::Parse("every 3 ticks", TickUnit::kMinute);
  ASSERT_TRUE(f4.ok());
  EXPECT_EQ(f4->interval_ticks, 3);

  auto f5 = FrequencySpec::Parse("every hour", TickUnit::kMinute);
  ASSERT_TRUE(f5.ok());
  EXPECT_EQ(f5->interval_ticks, 60);
}

TEST(FrequencyTest, Errors) {
  EXPECT_FALSE(FrequencySpec::Parse("daily").ok());
  EXPECT_FALSE(FrequencySpec::Parse("every 0 days").ok());
  EXPECT_FALSE(FrequencySpec::Parse("every fortnight").ok());
  EXPECT_FALSE(FrequencySpec::Parse("every 10 minutes", TickUnit::kDay).ok())
      << "minutes are finer than day ticks";
  EXPECT_FALSE(FrequencySpec::Parse("every day at").ok());
}

TEST(FrequencyTest, PollingTimes) {
  auto f = FrequencySpec::Parse("every 2 days");
  ASSERT_TRUE(f.ok());
  Timestamp start = Timestamp::FromDate(1996, 12, 30);
  EXPECT_EQ(f->FirstPoll(start), start);
  EXPECT_EQ(f->NextPoll(start).ticks, start.ticks + 2);
}

// ------------------------------------------------------------- Source

TEST(ScriptedSourceTest, AppliesScriptUpToPollTime) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  auto r1 = source.Poll("select guide.restaurant",
                        Timestamp::FromDate(1996, 12, 31));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->Children(r1->root(), "restaurant").size(), 2u);

  auto r2 = source.Poll("select guide.restaurant", GuideT1());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->Children(r2->root(), "restaurant").size(), 3u)
      << "Hakata appears at t1";
}

TEST(ScriptedSourceTest, FreshIdsWhenNotPreserving) {
  ScriptedSource source(BuildGuide().db, OemHistory(), false);
  auto r1 = source.Poll("select guide.restaurant", Timestamp(0));
  auto r2 = source.Poll("select guide.restaurant", Timestamp(1));
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Disjoint id spaces.
  for (NodeId n : r1->NodeIds()) {
    EXPECT_FALSE(r2->HasNode(n));
  }
}

// ----------------------------------------------- Example 6.1 end-to-end

class QssExample61 : public ::testing::TestWithParam<bool> {};
INSTANTIATE_TEST_SUITE_P(IdModes, QssExample61, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "KeyedSource"
                                             : "StructuralSource";
                         });

TEST_P(QssExample61, NewRestaurantNotifications) {
  // Example 6.1: subscription created Dec 30 1996; polls nightly; the
  // source changes per Example 2.2 on Jan 1.
  ScriptedSource source(BuildGuide().db, GuideHistory(),
                        /*preserve_ids=*/GetParam());
  Timestamp t1 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t1);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "Restaurants";
  auto freq = FrequencySpec::Parse("every night at 11:30pm");
  ASSERT_TRUE(freq.ok());
  sub.frequency = *freq;
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select Restaurants.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());

  // Poll t1 = 30Dec96: both initial restaurants are "created" relative to
  // the empty R0, and t[-1] is negative infinity, so the user gets both.
  ASSERT_TRUE(qss.AdvanceTo(t1).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_index, 1u);
  EXPECT_EQ(log[0].result.rows.size(), 2u);

  // Poll t2 = 31Dec96: source unchanged; annotations now fail T > t[-1];
  // no notification (the paper's t2 step).
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1996, 12, 31)).ok());
  EXPECT_EQ(log.size(), 1u);

  // Poll t3 = 1Jan97: Hakata was added; exactly one new restaurant.
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 1)).ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].poll_index, 3u);
  ASSERT_EQ(log[1].result.rows.size(), 1u);

  // Poll t4: quiet again.
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 2)).ok());
  EXPECT_EQ(log.size(), 2u);

  // The subscription's DOEM database has a full history.
  const DoemDatabase* d = qss.History("Restaurants");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible());
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 4u);
}

TEST(QssTest, LyttonFilterOnContent) {
  // The Section 6 polling query with a content filter: only restaurants
  // with Lytton in their address are tracked at all.
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "LyttonRestaurants";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query =
      "define polling query is plain text";  // placeholder replaced below
  sub.polling_query =
      "select guide.restaurant "
      "where guide.restaurant.address.# like \"%Lytton%\"";
  sub.filter_query =
      "select LyttonRestaurants.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 2)).ok());
  // First poll: the two Lytton restaurants. Hakata (no address) never
  // enters the polling result, so no further notifications.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].result.rows.size(), 2u);
}

TEST(QssTest, UpdateNotificationWithOldAndNewValue) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "Prices";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select N, OV, NV from Prices.restaurant R, R.name N, "
      "R.price<upd at T from OV to NV> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 3)).ok());
  // Only the Jan 1 price change triggers (10 -> 20 detected by the diff).
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_time, GuideT1());
  ASSERT_EQ(log[0].result.rows.size(), 1u);
  EXPECT_EQ(log[0].result.rows[0][1].value, Value::Int(10));
  EXPECT_EQ(log[0].result.rows[0][2].value, Value::Int(20));
}

TEST(QssTest, DeletionVisibleViaRemAnnotation) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "Parking";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select R from Parking.restaurant R, R.<rem at T>parking P "
      "where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_time, testing::GuideT3());
}

// ------------------------------------------------------ Service mechanics

TEST(QssTest, SubscribeValidation) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QuerySubscriptionService qss(&source, Timestamp(0));
  Subscription sub;
  sub.name = "S";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select S.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  EXPECT_EQ(qss.Subscribe(sub, nullptr).code(), StatusCode::kAlreadyExists);

  Subscription bad = sub;
  bad.name = "T";
  bad.polling_query = "select guide.<add>restaurant";
  EXPECT_FALSE(qss.Subscribe(bad, nullptr).ok())
      << "polling queries must be plain Lorel";

  bad.polling_query = "select guide.restaurant";
  bad.filter_query = "this is not a query";
  EXPECT_FALSE(qss.Subscribe(bad, nullptr).ok());

  EXPECT_EQ(qss.Unsubscribe("nope").code(), StatusCode::kNotFound);
  EXPECT_TRUE(qss.Unsubscribe("S").ok());
}

TEST(QssTest, MergedPollGroups) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QuerySubscriptionService qss(&source, Timestamp(0));
  auto make = [&](const std::string& name, const std::string& poll) {
    Subscription s;
    s.name = name;
    s.frequency = *FrequencySpec::Parse("every day");
    s.polling_query = poll;
    s.filter_query = "select " + name + ".restaurant<cre at T> "
                     "where T > t[-1]";
    return s;
  };
  int notified_a = 0, notified_b = 0, notified_c = 0;
  ASSERT_TRUE(qss.Subscribe(make("A", "select guide.restaurant"),
                            [&](const Notification&) { ++notified_a; })
                  .ok());
  ASSERT_TRUE(qss.Subscribe(make("B", "select guide.restaurant"),
                            [&](const Notification&) { ++notified_b; })
                  .ok());
  Subscription c = make("C", "select guide.restaurant.name");
  c.filter_query = "select C.name<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(c, [&](const Notification&) { ++notified_c; })
                  .ok());
  EXPECT_EQ(qss.GroupCount(), 2u)
      << "A and B share a poll group (Section 6.1 proposal (1))";
  ASSERT_TRUE(qss.AdvanceTo(Timestamp(0)).ok());
  EXPECT_EQ(notified_a, 1);
  EXPECT_EQ(notified_b, 1);
  EXPECT_EQ(notified_c, 1);
  EXPECT_EQ(qss.History("A"), qss.History("B"));
  EXPECT_NE(qss.History("A"), qss.History("C"));
}

TEST(QssTest, UnmergedWhenDisabled) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QssOptions opts;
  opts.merge_similar_polls = false;
  QuerySubscriptionService qss(&source, Timestamp(0), opts);
  Subscription a;
  a.name = "A";
  a.frequency = *FrequencySpec::Parse("every day");
  a.polling_query = "select guide.restaurant";
  a.filter_query = "select A.restaurant";
  Subscription b = a;
  b.name = "B";
  b.filter_query = "select B.restaurant";
  ASSERT_TRUE(qss.Subscribe(a, nullptr).ok());
  ASSERT_TRUE(qss.Subscribe(b, nullptr).ok());
  EXPECT_EQ(qss.GroupCount(), 2u);
}

TEST(QssTest, TwoSnapshotRetentionForgetsOldHistory) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  QssOptions opts;
  opts.retention = HistoryRetention::kTwoSnapshots;
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0, opts);
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  const DoemDatabase* d = qss.History("R");
  ASSERT_NE(d, nullptr);
  // Only the final (empty) delta's timestamps remain — older annotations
  // were compacted away.
  EXPECT_LE(d->AllTimestamps().size(), 1u);
  // Full retention keeps everything for comparison.
  ScriptedSource source2(BuildGuide().db, GuideHistory());
  QuerySubscriptionService qss2(&source2, t0);
  ASSERT_TRUE(qss2.Subscribe(sub, nullptr).ok());
  ASSERT_TRUE(qss2.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  EXPECT_GT(qss2.History("R")->AllTimestamps().size(), 1u);
}

TEST(QssTest, PollNowAndClockRules) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QuerySubscriptionService qss(&source, Timestamp(10));
  EXPECT_FALSE(qss.AdvanceTo(Timestamp(5)).ok()) << "no time travel";
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every 5 days");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  EXPECT_EQ(qss.PollNow("none").code(), StatusCode::kNotFound);
  ASSERT_TRUE(qss.PollNow("R").ok());
  EXPECT_EQ(qss.PollingTimes("R").size(), 1u);
  EXPECT_FALSE(qss.PollNow("R").ok()) << "same tick twice";
}

}  // namespace
}  // namespace qss
}  // namespace doem
namespace doem {
namespace qss {
namespace {

TEST(QssTest, SourceTriggerMode) {
  // Section 6's third snapshot-acquisition mode: the source fires a
  // trigger and QSS polls immediately instead of waiting for the
  // schedule.
  ScriptedSource source(doem::testing::BuildGuide().db,
                        doem::testing::GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);
  int notified = 0;
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every 2 weeks");  // slow schedule
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification&) { ++notified; })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(t0).ok());  // scheduled poll 1
  EXPECT_EQ(notified, 1);

  // The source changes on Jan 1; its trigger fires the same day — QSS
  // picks it up without waiting for the next scheduled poll (Jan 13).
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 1)).ok());
  EXPECT_EQ(notified, 1) << "nothing scheduled between the two weeks";
  ASSERT_TRUE(qss.NotifySourceChanged().ok());
  EXPECT_EQ(notified, 2) << "Hakata reported on the trigger-driven poll";
  // Idempotent within one tick.
  ASSERT_TRUE(qss.NotifySourceChanged().ok());
  EXPECT_EQ(notified, 2);
}

}  // namespace
}  // namespace qss
}  // namespace doem
namespace doem {
namespace qss {
namespace {

TEST(QssTest, KeyedSourceObjectResurrectionIsReportedNotCorrupted) {
  // Documented limitation (DESIGN.md / EXPERIMENTS.md): a keyed source
  // whose polling result drops an OID and later brings the SAME OID back
  // violates OEM's id-freshness rule; QSS reports an error rather than
  // corrupting the DOEM database. Structural sources handle such data.
  // The source hides Janta (id 6) on the middle poll only, so QSS sees
  // the OID disappear and then return.
  OemDatabase base = doem::testing::BuildGuide().db;
  class ResurrectingSource : public InformationSource {
   public:
    explicit ResurrectingSource(OemDatabase full) : full_(std::move(full)) {}
    Result<OemDatabase> Poll(const std::string& query,
                             Timestamp now) override {
      OemDatabase state = full_;
      if (now.ticks == Timestamp::FromDate(1996, 12, 31).ticks) {
        // Middle poll: Janta missing.
        Status s = state.RemArc(4, "restaurant", 6);
        (void)s;
        state.CollectGarbage();
      }
      lorel::OemView view(state);
      auto r = lorel::RunQuery(query, view);
      if (!r.ok()) return r.status();
      return std::move(r->answer);
    }
    bool PreservesIds() const override { return true; }

   private:
    OemDatabase full_;
  };

  ResurrectingSource source(base);
  QuerySubscriptionService qss(&source, Timestamp::FromDate(1996, 12, 30));
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1996, 12, 31)).ok());
  // Day 3: Janta (id 6) re-appears -> creNode on a burned id -> clean
  // error, database intact.
  Status s = qss.AdvanceTo(Timestamp::FromDate(1997, 1, 1));
  EXPECT_FALSE(s.ok());
  const DoemDatabase* d = qss.History("R");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible()) << "failed poll left the DOEM db intact";
  EXPECT_EQ(qss.PollingTimes("R").size(), 2u);
}

}  // namespace
}  // namespace qss
}  // namespace doem
