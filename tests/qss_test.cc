#include <gtest/gtest.h>

#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/guide.h"

namespace doem {
namespace qss {
namespace {

using doem::testing::BuildGuide;
using doem::testing::GuideHistory;
using doem::testing::GuideT1;

// ------------------------------------------------------------- Frequency

TEST(FrequencyTest, PaperExamples) {
  auto f1 = FrequencySpec::Parse("every 10 minutes", TickUnit::kMinute);
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  EXPECT_EQ(f1->interval_ticks, 10);

  auto f2 = FrequencySpec::Parse("every night at 11:30pm");
  ASSERT_TRUE(f2.ok()) << f2.status().ToString();
  EXPECT_EQ(f2->interval_ticks, 1);

  auto f3 = FrequencySpec::Parse("every 2 weeks");
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(f3->interval_ticks, 14);

  auto f4 = FrequencySpec::Parse("every 3 ticks", TickUnit::kMinute);
  ASSERT_TRUE(f4.ok());
  EXPECT_EQ(f4->interval_ticks, 3);

  auto f5 = FrequencySpec::Parse("every hour", TickUnit::kMinute);
  ASSERT_TRUE(f5.ok());
  EXPECT_EQ(f5->interval_ticks, 60);
}

TEST(FrequencyTest, Errors) {
  EXPECT_FALSE(FrequencySpec::Parse("daily").ok());
  EXPECT_FALSE(FrequencySpec::Parse("every 0 days").ok());
  EXPECT_FALSE(FrequencySpec::Parse("every fortnight").ok());
  EXPECT_FALSE(FrequencySpec::Parse("every 10 minutes", TickUnit::kDay).ok())
      << "minutes are finer than day ticks";
  EXPECT_FALSE(FrequencySpec::Parse("every day at").ok());
}

TEST(FrequencyTest, PollingTimes) {
  auto f = FrequencySpec::Parse("every 2 days");
  ASSERT_TRUE(f.ok());
  Timestamp start = Timestamp::FromDate(1996, 12, 30);
  EXPECT_EQ(f->FirstPoll(start), start);
  EXPECT_EQ(f->NextPoll(start).ticks, start.ticks + 2);
}

// ------------------------------------------------------------- Source

TEST(ScriptedSourceTest, AppliesScriptUpToPollTime) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  auto r1 = source.Poll("select guide.restaurant",
                        Timestamp::FromDate(1996, 12, 31));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->Children(r1->root(), "restaurant").size(), 2u);

  auto r2 = source.Poll("select guide.restaurant", GuideT1());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->Children(r2->root(), "restaurant").size(), 3u)
      << "Hakata appears at t1";
}

TEST(ScriptedSourceTest, FreshIdsWhenNotPreserving) {
  ScriptedSource source(BuildGuide().db, OemHistory(), false);
  auto r1 = source.Poll("select guide.restaurant", Timestamp(0));
  auto r2 = source.Poll("select guide.restaurant", Timestamp(1));
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Disjoint id spaces.
  for (NodeId n : r1->NodeIds()) {
    EXPECT_FALSE(r2->HasNode(n));
  }
}

// ----------------------------------------------- Example 6.1 end-to-end

class QssExample61 : public ::testing::TestWithParam<bool> {};
INSTANTIATE_TEST_SUITE_P(IdModes, QssExample61, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "KeyedSource"
                                             : "StructuralSource";
                         });

TEST_P(QssExample61, NewRestaurantNotifications) {
  // Example 6.1: subscription created Dec 30 1996; polls nightly; the
  // source changes per Example 2.2 on Jan 1.
  ScriptedSource source(BuildGuide().db, GuideHistory(),
                        /*preserve_ids=*/GetParam());
  Timestamp t1 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t1);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "Restaurants";
  auto freq = FrequencySpec::Parse("every night at 11:30pm");
  ASSERT_TRUE(freq.ok());
  sub.frequency = *freq;
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select Restaurants.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());

  // Poll t1 = 30Dec96: both initial restaurants are "created" relative to
  // the empty R0, and t[-1] is negative infinity, so the user gets both.
  ASSERT_TRUE(qss.AdvanceTo(t1).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_index, 1u);
  EXPECT_EQ(log[0].result.rows.size(), 2u);

  // Poll t2 = 31Dec96: source unchanged; annotations now fail T > t[-1];
  // no notification (the paper's t2 step).
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1996, 12, 31)).ok());
  EXPECT_EQ(log.size(), 1u);

  // Poll t3 = 1Jan97: Hakata was added; exactly one new restaurant.
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 1)).ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].poll_index, 3u);
  ASSERT_EQ(log[1].result.rows.size(), 1u);

  // Poll t4: quiet again.
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 2)).ok());
  EXPECT_EQ(log.size(), 2u);

  // The subscription's DOEM database has a full history.
  const DoemDatabase* d = qss.History("Restaurants");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible());
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 4u);
}

TEST(QssTest, LyttonFilterOnContent) {
  // The Section 6 polling query with a content filter: only restaurants
  // with Lytton in their address are tracked at all.
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "LyttonRestaurants";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query =
      "define polling query is plain text";  // placeholder replaced below
  sub.polling_query =
      "select guide.restaurant "
      "where guide.restaurant.address.# like \"%Lytton%\"";
  sub.filter_query =
      "select LyttonRestaurants.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 2)).ok());
  // First poll: the two Lytton restaurants. Hakata (no address) never
  // enters the polling result, so no further notifications.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].result.rows.size(), 2u);
}

TEST(QssTest, UpdateNotificationWithOldAndNewValue) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "Prices";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select N, OV, NV from Prices.restaurant R, R.name N, "
      "R.price<upd at T from OV to NV> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 3)).ok());
  // Only the Jan 1 price change triggers (10 -> 20 detected by the diff).
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_time, GuideT1());
  ASSERT_EQ(log[0].result.rows.size(), 1u);
  EXPECT_EQ(log[0].result.rows[0][1].value, Value::Int(10));
  EXPECT_EQ(log[0].result.rows[0][2].value, Value::Int(20));
}

TEST(QssTest, DeletionVisibleViaRemAnnotation) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);

  std::vector<Notification> log;
  Subscription sub;
  sub.name = "Parking";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select R from Parking.restaurant R, R.<rem at T>parking P "
      "where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification& n) {
                   log.push_back(n);
                 })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_time, testing::GuideT3());
}

// ------------------------------------------------------ Service mechanics

TEST(QssTest, SubscribeValidation) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QuerySubscriptionService qss(&source, Timestamp(0));
  Subscription sub;
  sub.name = "S";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select S.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  EXPECT_EQ(qss.Subscribe(sub, nullptr).code(), StatusCode::kAlreadyExists);

  Subscription bad = sub;
  bad.name = "T";
  bad.polling_query = "select guide.<add>restaurant";
  EXPECT_FALSE(qss.Subscribe(bad, nullptr).ok())
      << "polling queries must be plain Lorel";

  bad.polling_query = "select guide.restaurant";
  bad.filter_query = "this is not a query";
  EXPECT_FALSE(qss.Subscribe(bad, nullptr).ok());

  EXPECT_EQ(qss.Unsubscribe("nope").code(), StatusCode::kNotFound);
  EXPECT_TRUE(qss.Unsubscribe("S").ok());
}

TEST(QssTest, MergedPollGroups) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QuerySubscriptionService qss(&source, Timestamp(0));
  auto make = [&](const std::string& name, const std::string& poll) {
    Subscription s;
    s.name = name;
    s.frequency = *FrequencySpec::Parse("every day");
    s.polling_query = poll;
    s.filter_query = "select " + name + ".restaurant<cre at T> "
                     "where T > t[-1]";
    return s;
  };
  int notified_a = 0, notified_b = 0, notified_c = 0;
  ASSERT_TRUE(qss.Subscribe(make("A", "select guide.restaurant"),
                            [&](const Notification&) { ++notified_a; })
                  .ok());
  ASSERT_TRUE(qss.Subscribe(make("B", "select guide.restaurant"),
                            [&](const Notification&) { ++notified_b; })
                  .ok());
  Subscription c = make("C", "select guide.restaurant.name");
  c.filter_query = "select C.name<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(c, [&](const Notification&) { ++notified_c; })
                  .ok());
  EXPECT_EQ(qss.GroupCount(), 2u)
      << "A and B share a poll group (Section 6.1 proposal (1))";
  ASSERT_TRUE(qss.AdvanceTo(Timestamp(0)).ok());
  EXPECT_EQ(notified_a, 1);
  EXPECT_EQ(notified_b, 1);
  EXPECT_EQ(notified_c, 1);
  EXPECT_EQ(qss.History("A"), qss.History("B"));
  EXPECT_NE(qss.History("A"), qss.History("C"));
}

TEST(QssTest, UnmergedWhenDisabled) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QssOptions opts;
  opts.merge_similar_polls = false;
  QuerySubscriptionService qss(&source, Timestamp(0), opts);
  Subscription a;
  a.name = "A";
  a.frequency = *FrequencySpec::Parse("every day");
  a.polling_query = "select guide.restaurant";
  a.filter_query = "select A.restaurant";
  Subscription b = a;
  b.name = "B";
  b.filter_query = "select B.restaurant";
  ASSERT_TRUE(qss.Subscribe(a, nullptr).ok());
  ASSERT_TRUE(qss.Subscribe(b, nullptr).ok());
  EXPECT_EQ(qss.GroupCount(), 2u);
}

TEST(QssTest, TwoSnapshotRetentionForgetsOldHistory) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  QssOptions opts;
  opts.retention = HistoryRetention::kTwoSnapshots;
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0, opts);
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  const DoemDatabase* d = qss.History("R");
  ASSERT_NE(d, nullptr);
  // Only the final (empty) delta's timestamps remain — older annotations
  // were compacted away.
  EXPECT_LE(d->AllTimestamps().size(), 1u);
  // Full retention keeps everything for comparison.
  ScriptedSource source2(BuildGuide().db, GuideHistory());
  QuerySubscriptionService qss2(&source2, t0);
  ASSERT_TRUE(qss2.Subscribe(sub, nullptr).ok());
  ASSERT_TRUE(qss2.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  EXPECT_GT(qss2.History("R")->AllTimestamps().size(), 1u);
}

TEST(QssTest, PollNowAndClockRules) {
  ScriptedSource source(BuildGuide().db, OemHistory());
  QuerySubscriptionService qss(&source, Timestamp(10));
  EXPECT_FALSE(qss.AdvanceTo(Timestamp(5)).ok()) << "no time travel";
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every 5 days");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  EXPECT_EQ(qss.PollNow("none").code(), StatusCode::kNotFound);
  ASSERT_TRUE(qss.PollNow("R").ok());
  EXPECT_EQ(qss.PollingTimes("R").size(), 1u);
  EXPECT_FALSE(qss.PollNow("R").ok()) << "same tick twice";
}

}  // namespace
}  // namespace qss
}  // namespace doem
namespace doem {
namespace qss {
namespace {

TEST(QssTest, SourceTriggerMode) {
  // Section 6's third snapshot-acquisition mode: the source fires a
  // trigger and QSS polls immediately instead of waiting for the
  // schedule.
  ScriptedSource source(doem::testing::BuildGuide().db,
                        doem::testing::GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);
  int notified = 0;
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every 2 weeks");  // slow schedule
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant<cre at T> where T > t[-1]";
  ASSERT_TRUE(qss.Subscribe(sub, [&](const Notification&) { ++notified; })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(t0).ok());  // scheduled poll 1
  EXPECT_EQ(notified, 1);

  // The source changes on Jan 1; its trigger fires the same day — QSS
  // picks it up without waiting for the next scheduled poll (Jan 13).
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 1)).ok());
  EXPECT_EQ(notified, 1) << "nothing scheduled between the two weeks";
  ASSERT_TRUE(qss.NotifySourceChanged().ok());
  EXPECT_EQ(notified, 2) << "Hakata reported on the trigger-driven poll";
  // Idempotent within one tick.
  ASSERT_TRUE(qss.NotifySourceChanged().ok());
  EXPECT_EQ(notified, 2);
}

}  // namespace
}  // namespace qss
}  // namespace doem
namespace doem {
namespace qss {
namespace {

TEST(QssTest, KeyedSourceObjectResurrectionIsReportedNotCorrupted) {
  // Documented limitation (DESIGN.md / EXPERIMENTS.md): a keyed source
  // whose polling result drops an OID and later brings the SAME OID back
  // violates OEM's id-freshness rule; QSS reports an error rather than
  // corrupting the DOEM database. Structural sources handle such data.
  // The source hides Janta (id 6) on the middle poll only, so QSS sees
  // the OID disappear and then return.
  OemDatabase base = doem::testing::BuildGuide().db;
  class ResurrectingSource : public InformationSource {
   public:
    explicit ResurrectingSource(OemDatabase full) : full_(std::move(full)) {}
    Result<OemDatabase> Poll(const std::string& query,
                             Timestamp now) override {
      OemDatabase state = full_;
      if (now.ticks == Timestamp::FromDate(1996, 12, 31).ticks) {
        // Middle poll: Janta missing.
        Status s = state.RemArc(4, "restaurant", 6);
        (void)s;
        state.CollectGarbage();
      }
      lorel::OemView view(state);
      auto r = lorel::RunQuery(query, view);
      if (!r.ok()) return r.status();
      return std::move(r->answer);
    }
    bool PreservesIds() const override { return true; }

   private:
    OemDatabase full_;
  };

  ResurrectingSource source(base);
  QuerySubscriptionService qss(&source, Timestamp::FromDate(1996, 12, 30));
  Subscription sub;
  sub.name = "R";
  sub.frequency = *FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant";
  ASSERT_TRUE(qss.Subscribe(sub, nullptr).ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1996, 12, 31)).ok());
  // Day 3: Janta (id 6) re-appears -> creNode on a burned id -> clean
  // error, database intact.
  Status s = qss.AdvanceTo(Timestamp::FromDate(1997, 1, 1));
  EXPECT_FALSE(s.ok());
  const DoemDatabase* d = qss.History("R");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible()) << "failed poll left the DOEM db intact";
  EXPECT_EQ(qss.PollingTimes("R").size(), 2u);
}

}  // namespace
}  // namespace qss
}  // namespace doem
namespace doem {
namespace qss {
namespace {

using doem::testing::BuildGuide;
using doem::testing::GuideHistory;

// -------------------------------------------- Fault tolerance (Section 6
// autonomous sources: polls may fail; QSS retries, quarantines, reports)

Subscription MakeSub(const std::string& name, const std::string& poll,
                     const std::string& filter) {
  Subscription s;
  s.name = name;
  s.frequency = *FrequencySpec::Parse("every day");
  s.polling_query = poll;
  s.filter_query = filter;
  return s;
}

Subscription MakeCreSub(const std::string& name) {
  return MakeSub(name, "select guide.restaurant",
                 "select " + name + ".restaurant<cre at T> where T > t[-1]");
}

TEST(QssFaultTest, TransientFailureRetriedThenRecovered) {
  ScriptedSource inner(BuildGuide().db, GuideHistory());
  FaultInjectingSource source(&inner);
  // Poll 1 is clean; poll 2's first attempt fails, its retry succeeds.
  source.FailPolls(/*skip=*/1, /*count=*/1);

  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QssOptions opts;
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.retry.backoff_base_ticks = 3;
  QuerySubscriptionService qss(&source, t0, opts);
  int notified = 0;
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("R"),
                            [&](const Notification&) { ++notified; })
                  .ok());

  ASSERT_TRUE(qss.AdvanceTo(t0).ok());
  EXPECT_EQ(notified, 1);
  // The transient failure is absorbed by the retry: the caller sees OK.
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1996, 12, 31)).ok());

  PollHealth h = qss.Health("R");
  EXPECT_EQ(h.state, CircuitState::kClosed);
  EXPECT_EQ(h.polls_attempted, 2u);
  EXPECT_EQ(h.polls_succeeded, 2u);
  EXPECT_EQ(h.polls_failed, 0u);
  EXPECT_EQ(h.retries, 1u);
  EXPECT_EQ(h.backoff_ticks, 3);
  EXPECT_EQ(h.consecutive_failures, 0);
  EXPECT_EQ(h.last_error.code(), StatusCode::kUnavailable)
      << "the transient is kept as a diagnostic";
  EXPECT_TRUE(h.missed.empty());

  EXPECT_EQ(source.calls(), 3u);
  EXPECT_EQ(source.forwarded(), 2u);
  EXPECT_EQ(source.injected_errors(), 1u);
  EXPECT_EQ(qss.PollingTimes("R").size(), 2u) << "no poll was lost";
}

TEST(QssFaultTest, SlowPollExceedingDeadlineIsRetried) {
  ScriptedSource inner(BuildGuide().db, GuideHistory());
  FaultInjectingSource source(&inner);
  source.SlowPolls(/*skip=*/0, /*count=*/1, /*duration_ticks=*/10);

  QssOptions opts;
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.retry.poll_deadline_ticks = 5;
  QuerySubscriptionService qss(&source, Timestamp(0), opts);
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("R"), nullptr).ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp(0)).ok());

  PollHealth h = qss.Health("R");
  EXPECT_EQ(h.polls_succeeded, 1u);
  EXPECT_EQ(h.retries, 1u) << "the slow answer was discarded and retried";
  EXPECT_EQ(h.last_error.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(source.injected_slow(), 1u);
  EXPECT_EQ(source.calls(), 2u);
}

TEST(QssFaultTest, QuarantineAfterConsecutiveFailures) {
  ScriptedSource inner(BuildGuide().db, GuideHistory());
  FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/0, /*count=*/0);  // the source is down for good

  std::vector<PollError> errors;
  QssOptions opts;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 2;
  opts.fault_tolerance.on_error = [&](const PollError& e) { errors.push_back(e); };
  QuerySubscriptionService qss(&source, Timestamp(0), opts);
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("X"), nullptr).ok());

  // Day 0 and day 1 fail; the breaker opens until day 3. Day 2 is
  // recorded as missed; day 3's half-open probe fails and re-opens the
  // breaker until day 5; day 4 is missed again. With an error callback
  // configured, every AdvanceTo completes and returns OK.
  for (int64_t day = 0; day <= 4; ++day) {
    EXPECT_TRUE(qss.AdvanceTo(Timestamp(day)).ok()) << "day " << day;
    EXPECT_EQ(qss.now(), Timestamp(day)) << "the clock always advances";
  }

  PollHealth h = qss.Health("X");
  EXPECT_EQ(h.state, CircuitState::kOpen);
  EXPECT_EQ(h.polls_attempted, 3u);  // days 0, 1, and the probe on day 3
  EXPECT_EQ(h.polls_failed, 3u);
  EXPECT_EQ(h.polls_succeeded, 0u);
  EXPECT_EQ(h.consecutive_failures, 3);
  EXPECT_EQ(h.quarantined_until, Timestamp(5));
  ASSERT_EQ(h.missed.size(), 2u);
  EXPECT_EQ(h.missed[0].time, Timestamp(2));
  EXPECT_EQ(h.missed[1].time, Timestamp(4));
  EXPECT_NE(h.missed[0].reason.find("quarantined"), std::string::npos);

  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].kind, PollError::Kind::kPoll);
  EXPECT_EQ(errors[0].subject, "X");
  EXPECT_EQ(errors[0].status.code(), StatusCode::kUnavailable);

  // The DOEM history was never touched by the outage.
  const DoemDatabase* d = qss.History("X");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible());
  EXPECT_TRUE(qss.PollingTimes("X").empty());

  // Unknown names report default health.
  EXPECT_EQ(qss.Health("nope").polls_attempted, 0u);
  EXPECT_EQ(qss.Health("nope").state, CircuitState::kClosed);
}

TEST(QssFaultTest, HalfOpenProbeReopensAndResumesDiffing) {
  ScriptedSource inner(BuildGuide().db, GuideHistory());
  FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/0, /*count=*/2);  // down for two polls, then up

  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QssOptions opts;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 2;
  opts.fault_tolerance.on_error = [](const PollError&) {};
  QuerySubscriptionService qss(&source, t0, opts);
  std::vector<Notification> log;
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("R"),
                            [&](const Notification& n) { log.push_back(n); })
                  .ok());

  // 30Dec fails, 31Dec fails -> open until 2Jan. 1Jan is missed; the
  // 2Jan probe succeeds, closes the breaker, and the first real poll
  // diffs against R0 — catching up on everything, including Hakata
  // (added 1Jan while the group was dark).
  ASSERT_TRUE(qss.AdvanceTo(Timestamp::FromDate(1997, 1, 2)).ok());

  PollHealth h = qss.Health("R");
  EXPECT_EQ(h.state, CircuitState::kClosed);
  EXPECT_EQ(h.polls_attempted, 3u);
  EXPECT_EQ(h.polls_failed, 2u);
  EXPECT_EQ(h.polls_succeeded, 1u);
  EXPECT_EQ(h.consecutive_failures, 0);
  ASSERT_EQ(h.missed.size(), 1u);
  EXPECT_EQ(h.missed[0].time, Timestamp::FromDate(1997, 1, 1));

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].poll_time, Timestamp::FromDate(1997, 1, 2));
  ASSERT_EQ(log[0].result.rows.size(), 3u) << "all three restaurants new";
  const DoemDatabase* d = qss.History("R");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible());
}

TEST(QssFaultTest, MultiGroupTickOneGroupFailsOthersNotify) {
  ScriptedSource inner(BuildGuide().db, GuideHistory());
  FaultInjectingSource source(&inner);
  // Only the name-group's polls fail.
  source.FailPolls(/*skip=*/0, /*count=*/0, Status::Unavailable("down"),
                   /*query_contains=*/".name");

  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  QuerySubscriptionService qss(&source, t0);
  int a_notified = 0;
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("A"),
                            [&](const Notification&) { ++a_notified; })
                  .ok());
  ASSERT_TRUE(qss.Subscribe(MakeSub("C", "select guide.restaurant.name",
                                    "select C.name<cre at T> where T > t[-1]"),
                            nullptr)
                  .ok());
  ASSERT_EQ(qss.GroupCount(), 2u);

  PollReport report;
  ASSERT_TRUE(qss.AdvanceTo(t0, &report).ok())
      << "failures flow through the report, not the Status";
  EXPECT_EQ(report.polls_attempted, 2u);
  EXPECT_EQ(report.polls_ok, 1u);
  EXPECT_EQ(report.polls_failed, 1u);
  EXPECT_EQ(report.notifications, 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].kind, PollError::Kind::kPoll);
  EXPECT_EQ(report.errors[0].subject, "C");
  EXPECT_EQ(report.FirstError().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(a_notified, 1) << "the healthy group still notified";
  EXPECT_EQ(qss.Health("A").polls_failed, 0u);
  EXPECT_EQ(qss.Health("C").polls_failed, 1u);
}

// Regression (seed bug): one member's filter-query failure starved every
// remaining member of its poll group.
TEST(QssFaultTest, FilterErrorDoesNotStarveOtherMembers) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  std::vector<PollError> errors;
  QssOptions opts;
  // The translated strategy cannot evaluate annotated exists ranges
  // (translate.h), so A's filter parses at Subscribe time but fails at
  // evaluation time — exactly a runtime filter error.
  opts.strategy = chorel::Strategy::kTranslated;
  opts.fault_tolerance.on_error = [&](const PollError& e) { errors.push_back(e); };
  QuerySubscriptionService qss(&source, t0, opts);

  int b_notified = 0;
  ASSERT_TRUE(qss.Subscribe(
                     MakeSub("A", "select guide.restaurant",
                             "select R from A.restaurant R where "
                             "exists C in R.<add>comment : C = \"x\""),
                     nullptr)
                  .ok());
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("B"),
                            [&](const Notification&) { ++b_notified; })
                  .ok());
  ASSERT_EQ(qss.GroupCount(), 1u) << "A and B share one poll group";

  ASSERT_TRUE(qss.AdvanceTo(t0).ok());
  EXPECT_EQ(b_notified, 1)
      << "B's notification must survive A's filter error";
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].kind, PollError::Kind::kFilter);
  EXPECT_EQ(errors[0].subject, "A");
  EXPECT_EQ(errors[0].status.code(), StatusCode::kUnsupported);
  EXPECT_EQ(qss.PollingTimes("B").size(), 1u)
      << "the poll itself succeeded and is part of the history";
}

// Regression (seed bug): AdvanceTo advanced next_poll before polling and
// aborted on failure, losing the poll forever and leaving now() behind.
TEST(QssFaultTest, ClockAndScheduleStayConsistentUnderFailure) {
  ScriptedSource inner(BuildGuide().db, GuideHistory());
  FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/0, /*count=*/1);  // only the first poll fails

  int notified = 0;
  QuerySubscriptionService qss(&source, Timestamp(0));
  ASSERT_TRUE(qss.Subscribe(MakeCreSub("R"),
                            [&](const Notification&) { ++notified; })
                  .ok());

  // Three polls fall due; the first fails. Without a report or callback
  // the legacy surface still returns the failure — but only after the
  // whole tick ran: the clock reaches t and the later polls executed.
  Status s = qss.AdvanceTo(Timestamp(2));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(qss.now(), Timestamp(2)) << "the clock must not fall behind";
  EXPECT_EQ(qss.PollingTimes("R").size(), 2u)
      << "polls at ticks 1 and 2 ran despite the failure at tick 0";
  EXPECT_EQ(notified, 1);
  PollHealth h = qss.Health("R");
  EXPECT_EQ(h.polls_attempted, 3u);
  EXPECT_EQ(h.polls_failed, 1u) << "the failed poll is recorded, not lost";
  EXPECT_EQ(h.polls_succeeded, 2u);
}

// The acceptance scenario: a 3-subscription, 2-group service survives a
// source that fails two polls and recovers.
TEST(QssFaultTest, EndToEndOutageScenario) {
  // The source changes once, at day 4 — after the outage window — so the
  // faulty and faultless runs must build identical DOEM histories.
  OemDatabase base = BuildGuide().db;
  ChangeSet day4;
  day4.push_back(ChangeOp::CreNode(100, Value::Complex()));
  day4.push_back(ChangeOp::CreNode(101, Value::String("NewPlace")));
  day4.push_back(ChangeOp::AddArc(4, "restaurant", 100));
  day4.push_back(ChangeOp::AddArc(100, "name", 101));
  OemHistory script;
  ASSERT_TRUE(script.Append(Timestamp(4), day4).ok());

  QssOptions opts;
  opts.notify_empty = true;  // healthy members hear from every tick
  opts.fault_tolerance.retry.max_attempts = 2;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 2;

  auto subscribe_all = [](QuerySubscriptionService* qss, int* a, int* b,
                          std::vector<Notification>* c_log) {
    ASSERT_TRUE(qss->Subscribe(MakeCreSub("A"),
                               [a](const Notification&) { ++*a; })
                    .ok());
    ASSERT_TRUE(qss->Subscribe(MakeCreSub("B"),
                               [b](const Notification&) { ++*b; })
                    .ok());
    ASSERT_TRUE(
        qss->Subscribe(MakeSub("C", "select guide.restaurant.name",
                               "select C.name<cre at T> where T > t[-1]"),
                       [c_log](const Notification& n) {
                         c_log->push_back(n);
                       })
            .ok());
    ASSERT_EQ(qss->GroupCount(), 2u);
  };

  // --- Faulty run: C's group fails its day-1 and day-2 polls (each poll
  // is two attempts), is quarantined, misses day 3, and recovers via the
  // day-4 half-open probe.
  ScriptedSource inner(base, script);
  FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/1, /*count=*/4, Status::Unavailable("outage"),
                   /*query_contains=*/".name");
  QuerySubscriptionService qss(&source, Timestamp(0), opts);
  int a_notified = 0, b_notified = 0;
  std::vector<Notification> c_log;
  subscribe_all(&qss, &a_notified, &b_notified, &c_log);

  PollReport report;
  for (int64_t day = 0; day <= 6; ++day) {
    ASSERT_TRUE(qss.AdvanceTo(Timestamp(day), &report).ok()) << day;
  }

  // The unaffected group notified on every tick; no notification was
  // lost for healthy members.
  EXPECT_EQ(a_notified, 7);
  EXPECT_EQ(b_notified, 7);
  // C heard from every successful poll: days 0, 4 (probe), 5, 6 — with
  // real rows on day 0 (both initial names) and day 4 (the new name).
  ASSERT_EQ(c_log.size(), 4u);
  EXPECT_EQ(c_log[0].poll_time, Timestamp(0));
  EXPECT_EQ(c_log[0].result.rows.size(), 2u);
  EXPECT_EQ(c_log[1].poll_time, Timestamp(4));
  EXPECT_EQ(c_log[1].result.rows.size(), 1u)
      << "the change that happened at recovery time is seen exactly once";
  EXPECT_EQ(c_log[2].result.rows.size(), 0u);

  // Health reports the exact failure/retry/missed counts.
  PollHealth hc = qss.Health("C");
  EXPECT_EQ(hc.state, CircuitState::kClosed);
  EXPECT_EQ(hc.polls_attempted, 6u);  // days 0,1,2 + probe 4 + 5,6
  EXPECT_EQ(hc.polls_failed, 2u);
  EXPECT_EQ(hc.polls_succeeded, 4u);
  EXPECT_EQ(hc.retries, 2u);
  ASSERT_EQ(hc.missed.size(), 1u);
  EXPECT_EQ(hc.missed[0].time, Timestamp(3));
  PollHealth ha = qss.Health("A");
  EXPECT_EQ(ha.polls_attempted, 7u);
  EXPECT_EQ(ha.polls_failed, 0u);
  EXPECT_EQ(ha.retries, 0u);
  EXPECT_TRUE(ha.missed.empty());

  // The aggregated report saw the whole story.
  EXPECT_EQ(report.polls_attempted, 13u);
  EXPECT_EQ(report.polls_ok, 11u);
  EXPECT_EQ(report.polls_failed, 2u);
  EXPECT_EQ(report.polls_missed, 1u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.notifications, 18u);
  EXPECT_EQ(report.errors.size(), 2u);

  // --- Faultless twin run: identical except that no fault is injected.
  ScriptedSource clean_source(base, script);
  QuerySubscriptionService clean(&clean_source, Timestamp(0), opts);
  int ca = 0, cb = 0;
  std::vector<Notification> cc_log;
  subscribe_all(&clean, &ca, &cb, &cc_log);
  for (int64_t day = 0; day <= 6; ++day) {
    ASSERT_TRUE(clean.AdvanceTo(Timestamp(day)).ok());
  }

  // The recovered group's DOEM history equals the faultless one; only
  // the polling times differ, by exactly the failed + missed polls.
  const DoemDatabase* faulty_c = qss.History("C");
  const DoemDatabase* clean_c = clean.History("C");
  ASSERT_NE(faulty_c, nullptr);
  ASSERT_NE(clean_c, nullptr);
  EXPECT_TRUE(faulty_c->Equals(*clean_c))
      << "an outage must not corrupt or diverge the change history";
  EXPECT_EQ(clean.PollingTimes("C").size(), 7u);
  std::vector<Timestamp> faulty_polls = qss.PollingTimes("C");
  ASSERT_EQ(faulty_polls.size(), 4u);
  EXPECT_EQ(faulty_polls[0], Timestamp(0));
  EXPECT_EQ(faulty_polls[1], Timestamp(4));
  // 7 scheduled = 4 polled + 2 failed + 1 missed.
  EXPECT_EQ(faulty_polls.size() + hc.polls_failed + hc.missed.size(), 7u);
  EXPECT_TRUE(qss.History("A")->Equals(*clean.History("A")));
}

}  // namespace
}  // namespace qss
}  // namespace doem
