// The multiplexing server front-end (DESIGN.md §6g): the wire protocol
// round-trips every message type, FrameBuffer survives any fragmentation
// and poisons on corruption, and QssServer multiplexes per-connection
// subscription namespaces over one SubscriberRegistry — pushing
// notification frames whose rows are byte-identical to what an
// in-process subscriber sees.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "qss/qss.h"
#include "qss/server/protocol.h"
#include "qss/server/server.h"
#include "qss/server/transport.h"
#include "store/format.h"
#include "testing/generators.h"

namespace doem {
namespace qss {
namespace server {
namespace {

SubscribeMsg GuideSubscribe(const std::string& name, int64_t interval,
                            const std::string& leaf = "name") {
  SubscribeMsg msg;
  msg.name = name;
  msg.interval_ticks = interval;
  msg.polling_query = "select guide.restaurant." + leaf;
  msg.filter_query =
      "select " + name + "." + leaf + "<cre at T> where T > t[-1]";
  return msg;
}

// ------------------------------------------------------ Protocol codec

TEST(QssWireProtocolTest, EveryMessageTypeRoundTrips) {
  SubscribeMsg sub;
  sub.name = "Lytton";
  sub.entry = "Cohort";
  sub.interval_ticks = 3;
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select Cohort.restaurant<cre at T>";
  FrameBuffer buf;
  ASSERT_TRUE(buf.Feed(EncodeSubscribe(sub)).ok());
  WireFrame frame;
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, MsgType::kSubscribe);
  auto sub2 = DecodeSubscribe(frame.payload);
  ASSERT_TRUE(sub2.ok()) << sub2.status().ToString();
  EXPECT_EQ(sub2->name, sub.name);
  EXPECT_EQ(sub2->entry, sub.entry);
  EXPECT_EQ(sub2->interval_ticks, sub.interval_ticks);
  EXPECT_EQ(sub2->polling_query, sub.polling_query);
  EXPECT_EQ(sub2->filter_query, sub.filter_query);

  NotificationMsg note;
  note.name = "Lytton";
  note.poll_time = Timestamp(123456789);
  note.poll_index = 42;
  note.rows = std::string("row bytes with \0 inside", 23);
  ASSERT_TRUE(buf.Feed(EncodeNotification(note)).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(frame.type, MsgType::kNotification);
  auto note2 = DecodeNotification(frame.payload);
  ASSERT_TRUE(note2.ok()) << note2.status().ToString();
  EXPECT_EQ(note2->name, note.name);
  EXPECT_EQ(note2->poll_time, note.poll_time);
  EXPECT_EQ(note2->poll_index, note.poll_index);
  EXPECT_EQ(note2->rows, note.rows);

  ErrorMsg err{"Lytton", "bad-filter-query", "filter query: parse error"};
  ASSERT_TRUE(buf.Feed(EncodeError(err)).ok());
  ASSERT_TRUE(buf.Next(&frame));
  auto err2 = DecodeError(frame.payload);
  ASSERT_TRUE(err2.ok());
  EXPECT_EQ(err2->kind, "bad-filter-query");
  EXPECT_EQ(err2->message, "filter query: parse error");

  ASSERT_TRUE(buf.Feed(EncodeUnsubscribe(UnsubscribeMsg{"Lytton"})).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(DecodeUnsubscribe(frame.payload)->name, "Lytton");
  SubscribedMsg ok_msg;
  ok_msg.name = "Lytton";
  ok_msg.handle = 7;
  ASSERT_TRUE(buf.Feed(EncodeSubscribed(ok_msg)).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(DecodeSubscribed(frame.payload)->handle, 7u);
  ASSERT_TRUE(buf.Feed(EncodeUnsubscribed(UnsubscribedMsg{"Lytton"})).ok());
  ASSERT_TRUE(buf.Next(&frame));
  EXPECT_EQ(DecodeUnsubscribed(frame.payload)->name, "Lytton");
  EXPECT_FALSE(buf.Next(&frame));
  EXPECT_FALSE(buf.poisoned());
}

// Any fragmentation reassembles: the same three frames arrive whether
// the stream is chopped per byte, in odd chunks, or all at once.
TEST(QssWireProtocolTest, FrameBufferReassemblesAnyFragmentation) {
  std::string stream = EncodeSubscribe(GuideSubscribe("A", 1)) +
                       EncodeUnsubscribe(UnsubscribeMsg{"A"}) +
                       EncodeSubscribe(GuideSubscribe("B", 2, "price"));
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, stream.size()}) {
    FrameBuffer buf;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      ASSERT_TRUE(
          buf.Feed(std::string_view(stream).substr(off, chunk)).ok());
    }
    WireFrame frame;
    std::vector<MsgType> types;
    while (buf.Next(&frame)) types.push_back(frame.type);
    EXPECT_EQ(types, (std::vector<MsgType>{MsgType::kSubscribe,
                                           MsgType::kUnsubscribe,
                                           MsgType::kSubscribe}))
        << "chunk size " << chunk;
    EXPECT_FALSE(buf.poisoned());
  }
}

TEST(QssWireProtocolTest, CorruptFramePoisonsTheBuffer) {
  // A flipped payload byte breaks the checksum.
  std::string good = EncodeSubscribe(GuideSubscribe("A", 1));
  std::string bad = good;
  bad[bad.size() - 1] ^= 0x40;
  FrameBuffer buf;
  Status fed = buf.Feed(bad);
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(buf.poisoned());
  // A poisoned buffer stays poisoned; later good bytes are not decoded.
  EXPECT_FALSE(buf.Feed(good).ok());
  WireFrame frame;
  EXPECT_FALSE(buf.Next(&frame));

  // An unknown type byte is equally unrecoverable. The type byte lives
  // right after the length+crc words, so rebuild the frame via the store
  // codec with a bogus type.
  FrameBuffer buf2;
  std::string unknown = store::EncodeFrame(200, "payload");
  EXPECT_FALSE(buf2.Feed(unknown).ok());
  EXPECT_TRUE(buf2.poisoned());
}

// ------------------------------------------------------------ Server

struct Harness {
  OemDatabase base;
  ScriptedSource source;
  obs::MetricsRegistry metrics;
  QuerySubscriptionService qss;
  QssServer server;

  explicit Harness(size_t restaurants = 12, size_t steps = 8)
      : base(testing::SyntheticGuide(restaurants)),
        source(base, testing::SyntheticGuideHistory(base, steps, 3)),
        qss(&source, Timestamp::FromDate(1997, 1, 1), WithMetrics(&metrics)),
        server(&qss.registry()) {}

  static QssOptions WithMetrics(obs::MetricsRegistry* m) {
    QssOptions opts;
    opts.observability.metrics = m;
    return opts;
  }

  Timestamp start() const { return Timestamp::FromDate(1997, 1, 1); }
};

// Wires one client to the server through a LoopbackPipe.
struct WiredClient {
  LoopbackPipe pipe;
  QssServer::ConnectionId id = 0;
  QssClient client;

  explicit WiredClient(QssServer* server)
      : client([this](std::string_view bytes) { pipe.ClientSend(bytes); }) {
    id = server->Attach(
        [this](std::string_view bytes) { pipe.ServerSend(bytes); });
    pipe.set_server_sink(
        [this, server](std::string_view bytes) { server->OnBytes(id, bytes); });
    pipe.set_client_sink(
        [this](std::string_view bytes) { client.OnBytes(bytes); });
  }
};

TEST(QssServerTest, SubscribeUnsubscribeRoundTrip) {
  Harness h;
  WiredClient wire(&h.server);
  wire.client.Subscribe(GuideSubscribe("Names", 1));
  wire.pipe.PumpAll();

  auto events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kSubscribed);
  EXPECT_EQ(events[0].subscribed.name, "Names");
  EXPECT_NE(events[0].subscribed.handle, 0u);
  EXPECT_EQ(h.server.SubscriptionCount(wire.id), 1u);
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 1u);
  EXPECT_EQ(h.qss.GroupCount(), 1u);

  wire.client.Unsubscribe("Names");
  wire.pipe.PumpAll();
  events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kUnsubscribed);
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 0u);
  EXPECT_EQ(h.qss.GroupCount(), 0u);

  // Unsubscribing a name this connection never registered: an error
  // frame, connection stays up.
  wire.client.Unsubscribe("Nobody");
  wire.pipe.PumpAll();
  events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.kind, "not-found");
  EXPECT_TRUE(h.server.Connected(wire.id));
}

// Notifications pushed over the wire carry exactly the rows an
// in-process subscriber receives, in the same order.
TEST(QssServerTest, NotificationPushMatchesInProcessSubscriberByteForByte) {
  Harness h;

  // In-process twin, registered through the facade with the same shape
  // the wire client will use (distinct name → distinct filter text, so
  // give both the same entry label to share the group's history arc).
  std::vector<std::string> in_process;
  SubscribeMsg wire_shape = GuideSubscribe("Twin", 2);
  wire_shape.entry = "Twin";
  Subscription local;
  local.name = "Twin";  // facade namespace is separate from connections'
  local.entry = "Twin";
  local.frequency.interval_ticks = 2;
  local.polling_query = wire_shape.polling_query;
  local.filter_query = wire_shape.filter_query;
  // Register the wire subscription FIRST so its cohort position matches
  // registration order expectations, then the local twin.
  WiredClient wire(&h.server);
  wire.client.Subscribe(wire_shape);
  wire.pipe.PumpAll();
  ASSERT_EQ(wire.client.TakeEvents().size(), 1u);
  ASSERT_TRUE(h.qss.Subscribe(local, [&](const Notification& n) {
                 in_process.push_back(std::to_string(n.poll_time.ticks) + "#" +
                                      std::to_string(n.poll_index) + ":" +
                                      n.result.RowsToString());
               }).ok());

  ASSERT_TRUE(h.qss.AdvanceTo(Timestamp(h.start().ticks + 7)).ok());
  // The server pushed frames into the pipe during the ticks; deliver
  // them in deliberately awkward 5-byte fragments.
  while (wire.pipe.PumpToClient(5) > 0) {
  }
  ASSERT_TRUE(wire.client.error().ok()) << wire.client.error().ToString();

  std::vector<std::string> over_wire;
  for (const auto& event : wire.client.TakeEvents()) {
    ASSERT_EQ(event.type, MsgType::kNotification);
    EXPECT_EQ(event.notification.name, "Twin");
    over_wire.push_back(std::to_string(event.notification.poll_time.ticks) +
                        "#" + std::to_string(event.notification.poll_index) +
                        ":" + event.notification.rows);
  }
  EXPECT_FALSE(over_wire.empty());
  EXPECT_EQ(over_wire, in_process);
  EXPECT_EQ(h.metrics.CounterValue("qss.server.notifications"),
            over_wire.size());
}

TEST(QssServerTest, PerConnectionNamespacesAreIndependent) {
  Harness h;
  WiredClient a(&h.server);
  WiredClient b(&h.server);
  EXPECT_EQ(h.server.ConnectionCount(), 2u);

  // Both connections own "Mine"; within one connection it is a duplicate.
  a.client.Subscribe(GuideSubscribe("Mine", 1));
  b.client.Subscribe(GuideSubscribe("Mine", 1, "price"));
  a.pipe.PumpAll();
  b.pipe.PumpAll();
  EXPECT_EQ(a.client.TakeEvents()[0].type, MsgType::kSubscribed);
  EXPECT_EQ(b.client.TakeEvents()[0].type, MsgType::kSubscribed);
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 2u);

  a.client.Subscribe(GuideSubscribe("Mine", 3));
  a.pipe.PumpAll();
  auto events = a.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.kind, "duplicate-subscription");
  EXPECT_TRUE(h.server.Connected(a.id));
  EXPECT_EQ(h.metrics.CounterValue("qss.server.subscribes_rejected"), 1u);

  // Detaching a connection releases only its own registrations.
  h.server.Detach(a.id);
  EXPECT_EQ(h.server.ConnectionCount(), 1u);
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 1u);
  EXPECT_EQ(h.metrics.GaugeValue("qss.server.connections"), 1);
}

TEST(QssServerTest, BadQueriesAreRejectedWithTypedKinds) {
  Harness h;
  WiredClient wire(&h.server);

  SubscribeMsg bad_poll = GuideSubscribe("P", 1);
  bad_poll.polling_query = "select guide.restaurant<cre at T>";
  wire.client.Subscribe(bad_poll);
  SubscribeMsg bad_filter = GuideSubscribe("F", 1);
  bad_filter.filter_query = "select ((";
  wire.client.Subscribe(bad_filter);
  wire.pipe.PumpAll();

  auto events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.name, "P");
  EXPECT_EQ(events[0].error.kind, "bad-polling-query");
  EXPECT_EQ(events[1].error.name, "F");
  EXPECT_EQ(events[1].error.kind, "bad-filter-query");
  // Rejected subscriptions left nothing behind.
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 0u);
  EXPECT_EQ(h.qss.GroupCount(), 0u);
  EXPECT_TRUE(h.server.Connected(wire.id));
}

// A corrupt frame cannot be resynchronized: the server answers with a
// final "protocol" error frame, closes the connection, and releases its
// subscriptions.
TEST(QssServerTest, CorruptFrameDropsConnectionAndReleasesSubscriptions) {
  Harness h;
  WiredClient wire(&h.server);
  wire.client.Subscribe(GuideSubscribe("Doomed", 1));
  wire.pipe.PumpAll();
  ASSERT_EQ(wire.client.TakeEvents()[0].type, MsgType::kSubscribed);
  ASSERT_EQ(h.qss.registry().SubscriberCount(), 1u);

  std::string garbage = EncodeUnsubscribe(UnsubscribeMsg{"Doomed"});
  garbage[garbage.size() - 1] ^= 0xff;
  wire.pipe.ClientSend(garbage);
  wire.pipe.PumpAll();

  EXPECT_FALSE(h.server.Connected(wire.id));
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 0u);
  EXPECT_EQ(h.qss.GroupCount(), 0u);
  EXPECT_EQ(h.metrics.CounterValue("qss.server.protocol_errors"), 1u);
  auto events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.kind, "protocol");
  // The dead connection ignores further bytes.
  h.server.OnBytes(wire.id, EncodeSubscribe(GuideSubscribe("After", 1)));
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 0u);
}

// A client sending a server-to-client frame type is a protocol error.
TEST(QssServerTest, ServerTypeFrameFromClientIsAProtocolError) {
  Harness h;
  WiredClient wire(&h.server);
  SubscribedMsg forged;
  forged.name = "X";
  forged.handle = 9;
  wire.pipe.ClientSend(EncodeSubscribed(forged));
  wire.pipe.PumpAll();
  EXPECT_FALSE(h.server.Connected(wire.id));
  auto events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].error.kind, "protocol");
}

// Three connections multiplexed over one registry: per-group histories
// are shared, notifications route to the owning connection only, and
// detach mid-run stops one client's pushes without disturbing the rest.
TEST(QssServerTest, MultiplexesManyConnectionsOverOneRegistry) {
  Harness h(16, 10);
  WiredClient a(&h.server);
  WiredClient b(&h.server);
  WiredClient c(&h.server);

  // a and b join the same cohort (same entry + filter text + group); c
  // watches a different leaf.
  SubscribeMsg cohort = GuideSubscribe("Cohort", 1);
  cohort.entry = "Cohort";
  cohort.name = "MineA";
  // No where-clause: matches every accumulated cre annotation, so the
  // filter fires at every poll and notification counts are exact.
  cohort.filter_query = "select Cohort.name<cre at T>";
  a.client.Subscribe(cohort);
  cohort.name = "MineB";
  b.client.Subscribe(cohort);
  SubscribeMsg prices = GuideSubscribe("Prices", 2, "price");
  prices.filter_query = "select Prices.price<cre at T>";
  c.client.Subscribe(prices);
  a.pipe.PumpAll();
  b.pipe.PumpAll();
  c.pipe.PumpAll();
  ASSERT_EQ(a.client.TakeEvents()[0].type, MsgType::kSubscribed);
  ASSERT_EQ(b.client.TakeEvents()[0].type, MsgType::kSubscribed);
  ASSERT_EQ(c.client.TakeEvents()[0].type, MsgType::kSubscribed);
  EXPECT_EQ(h.qss.GroupCount(), 2u);
  EXPECT_EQ(h.qss.registry().SubscriberCount(), 3u);

  ASSERT_TRUE(h.qss.AdvanceTo(Timestamp(h.start().ticks + 3)).ok());
  b.client.Unsubscribe("MineB");
  b.pipe.PumpToServer();  // the unsubscribe must land before more ticks
  ASSERT_TRUE(h.qss.AdvanceTo(Timestamp(h.start().ticks + 6)).ok());
  a.pipe.PumpAll();
  b.pipe.PumpAll();
  c.pipe.PumpAll();

  auto count_notes = [](std::vector<QssClient::Event> events,
                        const std::string& name) {
    size_t n = 0;
    for (const auto& e : events) {
      if (e.type == MsgType::kNotification) {
        EXPECT_EQ(e.notification.name, name);
        ++n;
      }
    }
    return n;
  };
  size_t a_notes = count_notes(a.client.TakeEvents(), "MineA");
  size_t b_notes = count_notes(b.client.TakeEvents(), "MineB");
  size_t c_notes = count_notes(c.client.TakeEvents(), "Prices");
  // a kept hearing after b left; b heard only the first window; the
  // cohort's shared group survived b's exit.
  EXPECT_GT(a_notes, b_notes);
  EXPECT_GT(b_notes, 0u);
  EXPECT_GT(c_notes, 0u);
  EXPECT_EQ(h.qss.GroupCount(), 2u);
  EXPECT_EQ(h.metrics.GaugeValue("qss.server.connections"), 3);
  EXPECT_EQ(h.metrics.CounterValue("qss.server.subscribes_ok"), 3u);
  EXPECT_EQ(h.metrics.CounterValue("qss.server.unsubscribes"), 1u);
}

// ------------------------------------------- Admin frames (DESIGN.md §6h)

// The introspection replies are ordinary frames: a multi-kilobyte
// Prometheus exposition reassembles from arbitrarily fragmented bytes,
// interleaved with the notification stream.
TEST(QssServerTest, AdminRepliesSurviveByteFragmentation) {
  Harness h;
  WiredClient wire(&h.server);
  wire.client.Subscribe(GuideSubscribe("Names", 1));
  wire.pipe.PumpAll();
  ASSERT_EQ(wire.client.TakeEvents()[0].type, MsgType::kSubscribed);
  ASSERT_TRUE(h.qss.AdvanceTo(Timestamp(h.start().ticks + 5)).ok());

  wire.client.RequestStats(StatsFormat::kPrometheus);
  wire.client.RequestHealth();
  // Deliver notifications + both admin replies in 3-byte fragments.
  while (wire.pipe.PumpToServer(3) > 0 || wire.pipe.PumpToClient(3) > 0) {
  }
  ASSERT_TRUE(wire.client.error().ok()) << wire.client.error().ToString();

  size_t notifications = 0;
  bool saw_stats = false, saw_health = false;
  for (const auto& e : wire.client.TakeEvents()) {
    if (e.type == MsgType::kNotification) {
      ++notifications;
    } else if (e.type == MsgType::kStatsReply) {
      saw_stats = true;
      EXPECT_NE(e.stats.body.find("# TYPE qss_polls_ok counter"),
                std::string::npos);
      EXPECT_NE(e.stats.rates_json.find("\"counter_deltas\""),
                std::string::npos);
    } else if (e.type == MsgType::kHealthReply) {
      saw_health = true;
      ASSERT_EQ(e.health.groups.size(), 1u);
      EXPECT_EQ(e.health.groups[0].subscribers, 1u);
      EXPECT_EQ(e.health.groups[0].circuit, CircuitState::kClosed);
      EXPECT_EQ(e.health.groups[0].polls_committed,
                h.metrics.CounterValue("qss.polls_ok"));
    }
  }
  EXPECT_GT(notifications, 0u);
  EXPECT_TRUE(saw_stats);
  EXPECT_TRUE(saw_health);
  EXPECT_EQ(h.metrics.CounterValue("qss.server.stats_requests"), 1u);
  EXPECT_EQ(h.metrics.CounterValue("qss.server.health_requests"), 1u);

  // No trace recorder configured: the dump is refused, the connection
  // survives, and the refusal is still counted.
  wire.client.RequestTraceDump();
  wire.pipe.PumpAll();
  auto events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.kind, "unavailable");
  EXPECT_TRUE(h.server.Connected(wire.id));
  EXPECT_EQ(h.metrics.CounterValue("qss.server.trace_dumps"), 1u);
}

// Admin replies are server-to-client only; a client sending one is as
// much a protocol violation as a forged Subscribed frame.
TEST(QssServerTest, ClientSentAdminReplyIsAProtocolError) {
  Harness h;
  WiredClient wire(&h.server);
  StatsReplyMsg forged;
  forged.body = "qss_polls_ok 999\n";
  wire.pipe.ClientSend(EncodeStatsReply(forged));
  wire.pipe.PumpAll();
  EXPECT_FALSE(h.server.Connected(wire.id));
  auto events = wire.client.TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, MsgType::kError);
  EXPECT_EQ(events[0].error.kind, "protocol");
  EXPECT_EQ(h.metrics.CounterValue("qss.server.protocol_errors"), 1u);
}

// Symmetrically, a server pushing a client-to-server request kills the
// client's stream.
TEST(QssServerTest, ServerSentAdminRequestPoisonsTheClientStream) {
  QssClient client([](std::string_view) {});
  client.OnBytes(EncodeStatsRequest(StatsRequestMsg{}));
  EXPECT_FALSE(client.error().ok());
  // Later frames are ignored — the stream is dead, not resynchronized.
  client.OnBytes(EncodeStatsReply(StatsReplyMsg{}));
  EXPECT_TRUE(client.TakeEvents().empty());
}

}  // namespace
}  // namespace server
}  // namespace qss
}  // namespace doem
