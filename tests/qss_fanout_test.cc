// The poll-group / subscriber-registry split (DESIGN.md §6g): the
// layered API (PollGroupManager + SubscriberRegistry) and the name-keyed
// QuerySubscriptionService facade must be byte-identical in everything
// observable — histories, polling times, notification bytes and order —
// under any executor; subscriber cohorts sharing a filter entry share
// one compiled filter and one evaluation per poll; registration errors
// carry typed PollError kinds; and Unsubscribe is safe both re-entrantly
// from a notification callback and from another thread mid-tick.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "encoding/doem_text.h"
#include "obs/metrics.h"
#include "qss/executor.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace qss {
namespace {

std::string NotificationText(const Notification& n) {
  return n.subscription + "@" + std::to_string(n.poll_time.ticks) + "#" +
         std::to_string(n.poll_index) + ":" + n.result.RowsToString();
}

Subscription GuideSub(const std::string& name, const std::string& entry,
                      int64_t interval, const std::string& leaf = "name") {
  Subscription sub;
  sub.name = name;
  sub.entry = entry;
  sub.frequency =
      *FrequencySpec::Parse("every " + std::to_string(interval) + " ticks");
  sub.polling_query = "select guide.restaurant." + leaf;
  const std::string& label = entry.empty() ? name : entry;
  sub.filter_query =
      "select " + label + "." + leaf + "<cre at T> where T > t[-1]";
  return sub;
}

// ------------------------------------------------- Layered vs. facade

// One scenario, two drivers: the facade, and the layers it is made of.
// Everything observable must match byte for byte.
TEST(QssFanoutTest, LayeredApiMatchesFacadeByteForByte) {
  OemDatabase base = testing::SyntheticGuide(16);
  OemHistory script = testing::SyntheticGuideHistory(base, 10, 3);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);

  // Facade run.
  std::vector<std::string> facade_notes;
  std::string facade_history;
  std::vector<Timestamp> facade_polls;
  {
    ScriptedSource source(base, script);
    QuerySubscriptionService qss(&source, start);
    for (int i = 0; i < 3; ++i) {
      std::string name = "Sub" + std::to_string(i);
      ASSERT_TRUE(qss.Subscribe(GuideSub(name, "", 2),
                                [&facade_notes](const Notification& n) {
                                  facade_notes.push_back(NotificationText(n));
                                })
                      .ok());
    }
    ASSERT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 9)).ok());
    const DoemDatabase* d = qss.History("Sub0");
    ASSERT_NE(d, nullptr);
    auto text = WriteDoemText(*d);
    facade_history = text;
    facade_polls = qss.PollingTimes("Sub0");
  }

  // Layered run: same subscriptions, driven through the manager and the
  // registry directly, keyed by handles instead of names.
  std::vector<std::string> layered_notes;
  {
    ScriptedSource source(base, script);
    PollGroupManager manager(&source, start);
    SubscriberRegistry registry(&manager);
    std::vector<SubscriptionHandle> handles;
    for (int i = 0; i < 3; ++i) {
      std::string name = "Sub" + std::to_string(i);
      auto h = registry.Subscribe(GuideSub(name, "", 2),
                                  [&layered_notes](const Notification& n) {
                                    layered_notes.push_back(
                                        NotificationText(n));
                                  });
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      EXPECT_TRUE(static_cast<bool>(*h));
      handles.push_back(*h);
    }
    EXPECT_EQ(registry.SubscriberCount(), 3u);
    ASSERT_TRUE(manager.AdvanceTo(Timestamp(start.ticks + 9)).ok());
    PollGroup* group = registry.GroupOf(handles[0]);
    ASSERT_NE(group, nullptr);
    EXPECT_EQ(WriteDoemText(group->doem), facade_history);
    EXPECT_EQ(manager.GroupPollingTimes(group), facade_polls);
  }
  EXPECT_FALSE(facade_notes.empty());
  EXPECT_EQ(facade_notes, layered_notes);
}

// The facade's Handle() bridges a name into the layered API; the
// registry resolves it to the same subscription and group the facade
// uses.
TEST(QssFanoutTest, FacadeHandleBridgesToRegistry) {
  OemDatabase base = testing::SyntheticGuide(8);
  ScriptedSource source(base, {});
  QuerySubscriptionService qss(&source, Timestamp(0));
  ASSERT_TRUE(qss.Subscribe(GuideSub("Bridge", "", 1), nullptr).ok());
  SubscriptionHandle handle = qss.Handle("Bridge");
  ASSERT_TRUE(static_cast<bool>(handle));
  const Subscription* sub = qss.registry().Find(handle);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->name, "Bridge");
  PollGroup* group = qss.registry().GroupOf(handle);
  ASSERT_NE(group, nullptr);
  ASSERT_TRUE(qss.AdvanceTo(Timestamp(2)).ok());
  EXPECT_EQ(qss.History("Bridge"), &group->doem);
  EXPECT_FALSE(static_cast<bool>(qss.Handle("Nobody")));
  ASSERT_TRUE(qss.Unsubscribe("Bridge").ok());
  EXPECT_EQ(qss.registry().Find(handle), nullptr);
}

// ------------------------------------------- Shared-entry cohorts

// A cohort registering the same entry + filter text on one group shares
// a single compiled filter and a single evaluation per poll: the
// canonical history carries ONE root arc (not one per subscriber), the
// pool interns one entry, and qss.group.filter_evals counts one
// evaluation per poll while every member still gets its own
// notification.
TEST(QssFanoutTest, SharedEntryCohortSharesCompiledFilterAndEvaluations) {
  constexpr int kCohort = 100;
  OemDatabase base = testing::SyntheticGuide(12);
  OemHistory script = testing::SyntheticGuideHistory(base, 6, 3);
  ScriptedSource source(base, script);
  obs::MetricsRegistry metrics;
  QssOptions opts;
  opts.observability.metrics = &metrics;
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  PollGroupManager manager(&source, start, opts);
  SubscriberRegistry registry(&manager);

  std::map<std::string, int> notified;
  Subscription proto = GuideSub("ignored", "Cohort", 1);
  for (int i = 0; i < kCohort; ++i) {
    Subscription sub = proto;
    sub.name = "Member" + std::to_string(i);
    auto h = registry.Subscribe(sub, [&notified, sub](const Notification& n) {
      EXPECT_EQ(n.subscription, sub.name);
      ++notified[sub.name];
    });
    ASSERT_TRUE(h.ok()) << h.status().ToString();
  }
  EXPECT_EQ(manager.GroupCount(), 1u);
  EXPECT_EQ(metrics.GaugeValue("qss.group.count"), 1);
  EXPECT_EQ(metrics.GaugeValue("qss.group.entries"), 1);
  EXPECT_EQ(metrics.GaugeValue("qss.group.subscribers"), kCohort);

  constexpr int kTicks = 4;
  ASSERT_TRUE(manager.AdvanceTo(Timestamp(start.ticks + kTicks - 1)).ok());

  SubscriptionHandle first{1};
  PollGroup* group = registry.GroupOf(first);
  ASSERT_NE(group, nullptr);
  // One compiled filter for the whole cohort...
  EXPECT_EQ(group->filters.size(), 1u);
  EXPECT_EQ(group->entries.size(), 1u);
  EXPECT_EQ(group->subscriber_count, static_cast<size_t>(kCohort));
  // ...one evaluation per poll, the rest served from the shared result.
  EXPECT_EQ(metrics.CounterValue("qss.group.filter_evals"),
            static_cast<uint64_t>(kTicks));
  EXPECT_EQ(metrics.CounterValue("qss.group.filter_shared"),
            static_cast<uint64_t>(kTicks * (kCohort - 1)));
  // The history's root has exactly one arc — the cohort's shared entry.
  OemDatabase snapshot = group->doem.CurrentSnapshot();
  EXPECT_EQ(snapshot.OutArcs(snapshot.root()).size(), 1u);
  // Every member still hears about every firing poll.
  ASSERT_EQ(notified.size(), static_cast<size_t>(kCohort));
  int first_count = notified.begin()->second;
  EXPECT_GT(first_count, 0);
  for (const auto& [name, count] : notified) {
    EXPECT_EQ(count, first_count) << name;
  }
  EXPECT_EQ(metrics.CounterValue("qss.notifications"),
            static_cast<uint64_t>(first_count * kCohort));
}

// ------------------------------- 1k subscribers × 4 groups twin runs

struct FanoutRun {
  std::vector<std::string> notifications;
  std::map<std::string, std::string> histories;  // group key → DOEM text
  uint64_t group_count = 0;
};

// 1000 subscribers over 4 poll groups (distinct polling-query leaves ×
// co-prime frequencies), each group a cohort sharing one entry, driven
// either through the facade or the layered API, serial or pooled.
FanoutRun RunFanoutScenario(bool layered, Executor* executor) {
  constexpr int kSubscribers = 1000;
  const struct {
    const char* leaf;
    int64_t interval;
  } kGroups[] = {{"name", 1}, {"price", 2}, {"address", 3}, {"rating", 5}};

  OemDatabase base = testing::SyntheticGuide(20);
  OemHistory script = testing::SyntheticGuideHistory(base, 12, 4);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  ScriptedSource source(base, script);

  QssOptions opts;
  opts.executor = executor;

  FanoutRun out;
  auto record = [&out](const Notification& n) {
    out.notifications.push_back(NotificationText(n));
  };
  auto make_sub = [&](int i) {
    const auto& g = kGroups[i % 4];
    Subscription sub = GuideSub("S" + std::to_string(i),
                                std::string("G") + g.leaf, g.interval,
                                g.leaf);
    return sub;
  };

  if (layered) {
    PollGroupManager manager(&source, start, opts);
    SubscriberRegistry registry(&manager);
    std::vector<SubscriptionHandle> handles;
    for (int i = 0; i < kSubscribers; ++i) {
      auto h = registry.Subscribe(make_sub(i), record);
      EXPECT_TRUE(h.ok()) << h.status().ToString();
      handles.push_back(h.ok() ? *h : SubscriptionHandle{});
    }
    EXPECT_TRUE(manager.AdvanceTo(Timestamp(start.ticks + 11)).ok());
    out.group_count = manager.GroupCount();
    for (int i = 0; i < 4; ++i) {
      PollGroup* group = registry.GroupOf(handles[i]);
      if (group != nullptr) out.histories[group->key] = WriteDoemText(group->doem);
    }
  } else {
    QuerySubscriptionService qss(&source, start, opts);
    for (int i = 0; i < kSubscribers; ++i) {
      EXPECT_TRUE(qss.Subscribe(make_sub(i), record).ok());
    }
    EXPECT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 11)).ok());
    out.group_count = qss.GroupCount();
    for (int i = 0; i < 4; ++i) {
      PollGroup* group = qss.registry().GroupOf(qss.Handle(make_sub(i).name));
      if (group != nullptr) out.histories[group->key] = WriteDoemText(group->doem);
    }
  }
  return out;
}

TEST(QssFanoutTest, ThousandSubscribersFourGroupsTwinRuns) {
  SerialExecutor serial;
  ThreadPoolExecutor pool(4);
  FanoutRun facade_serial = RunFanoutScenario(/*layered=*/false, &serial);
  FanoutRun layered_serial = RunFanoutScenario(/*layered=*/true, &serial);
  FanoutRun layered_pool = RunFanoutScenario(/*layered=*/true, &pool);
  FanoutRun facade_pool = RunFanoutScenario(/*layered=*/false, &pool);

  EXPECT_EQ(facade_serial.group_count, 4u);
  EXPECT_FALSE(facade_serial.notifications.empty());
  // Facade vs. layered: byte-identical notifications and histories.
  EXPECT_EQ(facade_serial.notifications, layered_serial.notifications);
  EXPECT_EQ(facade_serial.histories, layered_serial.histories);
  // Serial vs. thread pool: the executor must not be observable.
  EXPECT_EQ(layered_serial.notifications, layered_pool.notifications);
  EXPECT_EQ(layered_serial.histories, layered_pool.histories);
  EXPECT_EQ(facade_serial.notifications, facade_pool.notifications);
  EXPECT_EQ(facade_serial.histories, facade_pool.histories);
}

// ------------------------------------------------ Typed error kinds

TEST(QssFanoutTest, SubscribeErrorsCarryTypedKinds) {
  OemDatabase base = testing::SyntheticGuide(8);
  ScriptedSource source(base, {});
  std::vector<PollError> errors;
  QssOptions opts;
  opts.fault_tolerance.on_error = [&](const PollError& e) {
    errors.push_back(e);
  };
  QuerySubscriptionService qss(&source, Timestamp(0), opts);

  ASSERT_TRUE(qss.Subscribe(GuideSub("Taken", "", 1), nullptr).ok());
  EXPECT_TRUE(errors.empty());

  // Duplicate name: AlreadyExists + kDuplicateSubscription.
  Status dup = qss.Subscribe(GuideSub("Taken", "", 1), nullptr);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].kind, PollError::Kind::kDuplicateSubscription);
  EXPECT_EQ(errors[0].subject, "Taken");
  EXPECT_STREQ(PollErrorKindToString(errors[0].kind),
               "duplicate-subscription");

  // Annotated polling query: kBadPollingQuery.
  Subscription bad_poll = GuideSub("BadPoll", "", 1);
  bad_poll.polling_query = "select guide.restaurant<cre at T>";
  Status poll_status = qss.Subscribe(bad_poll, nullptr);
  EXPECT_FALSE(poll_status.ok());
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[1].kind, PollError::Kind::kBadPollingQuery);
  EXPECT_STREQ(PollErrorKindToString(errors[1].kind), "bad-polling-query");

  // Unparseable filter query: kBadFilterQuery, and no group was created
  // for it.
  Subscription bad_filter = GuideSub("BadFilter", "", 7);
  bad_filter.filter_query = "select ((";
  Status filter_status = qss.Subscribe(bad_filter, nullptr);
  EXPECT_FALSE(filter_status.ok());
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[2].kind, PollError::Kind::kBadFilterQuery);
  EXPECT_STREQ(PollErrorKindToString(errors[2].kind), "bad-filter-query");
  EXPECT_EQ(qss.GroupCount(), 1u);

  // The registry accepts duplicate names by design — only the facade's
  // namespace rejects them.
  auto h1 = qss.registry().Subscribe(GuideSub("Twin", "", 1), nullptr);
  auto h2 = qss.registry().Subscribe(GuideSub("Twin", "", 1), nullptr);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(h1->id, h2->id);
}

// ----------------------------------- Unsubscribe-during-poll safety

// A callback that unsubscribes its own subscription (and a peer's) while
// the poll that triggered it is still being fanned out: the snapshot
// iteration must skip the peer, retirement must be deferred past the
// tick, and the next tick must poll only the survivors.
TEST(QssFanoutTest, UnsubscribeFromCallbackDuringFanOutIsSafe) {
  OemDatabase base = testing::SyntheticGuide(12);
  OemHistory script = testing::SyntheticGuideHistory(base, 8, 3);
  ScriptedSource source(base, script);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  QuerySubscriptionService qss(&source, start);

  std::vector<std::string> notes;
  int a_fired = 0;
  ASSERT_TRUE(qss.Subscribe(GuideSub("A", "", 1),
                            [&](const Notification& n) {
                              ++a_fired;
                              notes.push_back(NotificationText(n));
                              // First firing tears down both A and C
                              // mid-fan-out.
                              if (a_fired == 1) {
                                EXPECT_TRUE(qss.Unsubscribe("A").ok());
                                EXPECT_TRUE(qss.Unsubscribe("C").ok());
                              }
                            })
                  .ok());
  ASSERT_TRUE(qss.Subscribe(GuideSub("B", "", 1), [&](const Notification& n) {
                 notes.push_back(NotificationText(n));
               }).ok());
  ASSERT_TRUE(qss.Subscribe(GuideSub("C", "", 1), [&](const Notification& n) {
                 notes.push_back(NotificationText(n));
               }).ok());
  EXPECT_EQ(qss.GroupCount(), 1u);

  ASSERT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 3)).ok());
  EXPECT_EQ(a_fired, 1);
  // C was unsubscribed while the first poll's fan-out was in flight: it
  // must not have been notified at that poll or any later one; B sees
  // every poll.
  int b_notes = 0;
  int c_notes = 0;
  for (const std::string& n : notes) {
    if (n.rfind("B@", 0) == 0) ++b_notes;
    if (n.rfind("C@", 0) == 0) ++c_notes;
  }
  EXPECT_EQ(c_notes, 0);
  EXPECT_GT(b_notes, 1);
  EXPECT_EQ(qss.GroupCount(), 1u);
  EXPECT_EQ(qss.registry().SubscriberCount(), 1u);
}

// The last subscriber leaving from inside its own callback retires the
// group mid-tick; the deferred erase must keep the in-flight poll's
// group alive until the tick unwinds.
TEST(QssFanoutTest, LastUnsubscribeFromCallbackRetiresGroupAfterTick) {
  OemDatabase base = testing::SyntheticGuide(12);
  OemHistory script = testing::SyntheticGuideHistory(base, 8, 3);
  ScriptedSource source(base, script);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  QuerySubscriptionService qss(&source, start);

  int fired = 0;
  ASSERT_TRUE(qss.Subscribe(GuideSub("Solo", "", 1),
                            [&](const Notification&) {
                              ++fired;
                              EXPECT_TRUE(qss.Unsubscribe("Solo").ok());
                            })
                  .ok());
  ASSERT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 5)).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(qss.GroupCount(), 0u);
  EXPECT_EQ(qss.registry().SubscriberCount(), 0u);
}

// Cross-thread registration churn against a polling thread: the service
// mutex serializes Subscribe/Unsubscribe against in-flight ticks, so
// this is exactly the interleaving TSan must find clean (the qss test
// label runs under the TSan lane; see scripts/check.sh).
TEST(QssFanoutTest, CrossThreadUnsubscribeDuringPollsIsSerialized) {
  OemDatabase base = testing::SyntheticGuide(16);
  OemHistory script = testing::SyntheticGuideHistory(base, 40, 3);
  ScriptedSource source(base, script);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);
  ThreadPoolExecutor pool(4);
  QssOptions opts;
  opts.executor = &pool;
  QuerySubscriptionService qss(&source, start, opts);

  std::atomic<int> notified{0};
  for (int g = 0; g < 4; ++g) {
    ASSERT_TRUE(qss.Subscribe(GuideSub("Keep" + std::to_string(g), "",
                                       1 + g,
                                       g % 2 ? "name" : "price"),
                              [&](const Notification&) { ++notified; })
                    .ok());
  }

  std::atomic<bool> done{false};
  std::thread churn([&] {
    for (int round = 0; !done.load(std::memory_order_relaxed); ++round) {
      std::string name = "Churn" + std::to_string(round % 8);
      Subscription sub =
          GuideSub(name, "", 1 + round % 3, round % 2 ? "address" : "rating");
      if (qss.Subscribe(sub, [&](const Notification&) { ++notified; }).ok()) {
        std::this_thread::yield();
        (void)qss.Unsubscribe(name);
      }
    }
  });
  for (int tick = 1; tick <= 30; ++tick) {
    ASSERT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + tick)).ok());
  }
  done.store(true);
  churn.join();

  // The four stable subscriptions survived the churn; every Keep group
  // polled every one of its scheduled ticks.
  EXPECT_EQ(qss.registry().SubscriberCount(), 4u);
  for (int g = 0; g < 4; ++g) {
    std::string name = "Keep" + std::to_string(g);
    EXPECT_EQ(qss.PollingTimes(name).size(),
              static_cast<size_t>(30 / (1 + g) + 1))
        << name;
  }
  EXPECT_GT(notified.load(), 0);
}

// ------------------------------------ Per-group fresh-id isolation

// Two poll groups sharing one polling-query TEXT (different frequencies)
// over a non-id-preserving source: each group's fresh-id sequence is
// keyed by group, so each history is byte-identical to a solo run of
// that group alone. (Keying by query text — the old behavior — would let
// the groups perturb each other's id sequences.)
TEST(QssFanoutTest, ScriptedSourceFreshIdsArePerPollGroup) {
  OemDatabase base = testing::SyntheticGuide(10);
  OemHistory script = testing::SyntheticGuideHistory(base, 8, 3);
  Timestamp start = Timestamp::FromDate(1997, 1, 1);

  auto run = [&](std::vector<int64_t> intervals) {
    std::map<int64_t, std::string> texts;
    ScriptedSource source(base, script, /*preserve_ids=*/false);
    QuerySubscriptionService qss(&source, start);
    for (int64_t interval : intervals) {
      std::string name = "I" + std::to_string(interval);
      Subscription sub = GuideSub(name, "", interval);
      EXPECT_TRUE(qss.Subscribe(sub, nullptr).ok());
    }
    EXPECT_TRUE(qss.AdvanceTo(Timestamp(start.ticks + 6)).ok());
    for (int64_t interval : intervals) {
      const DoemDatabase* d = qss.History("I" + std::to_string(interval));
      EXPECT_NE(d, nullptr);
      if (d != nullptr) texts[interval] = WriteDoemText(*d);
    }
    return texts;
  };

  auto joint = run({1, 2});
  auto solo1 = run({1});
  auto solo2 = run({2});
  EXPECT_EQ(joint.at(1), solo1.at(1));
  EXPECT_EQ(joint.at(2), solo2.at(2));
}

}  // namespace
}  // namespace qss
}  // namespace doem
