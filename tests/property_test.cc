#include <gtest/gtest.h>

#include "chorel/chorel.h"
#include "diff/diff.h"
#include "doem/doem.h"
#include "encoding/encode.h"
#include "oem/graph_compare.h"
#include "oem/oem_text.h"
#include "oem/subgraph.h"
#include "testing/generators.h"

namespace doem {
namespace {

using testing::ChorelQueryCorpus;
using testing::DatabaseOptions;
using testing::HistoryOptions;
using testing::RandomDatabase;
using testing::RandomHistory;

// Property tests, parameterized over random seeds. Each seed drives a
// distinct database/history shape; the properties are the paper's core
// claims (Section 3.2) plus this library's representation invariants.

class PropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  OemDatabase MakeDb() const {
    DatabaseOptions opts;
    opts.seed = GetParam();
    opts.node_count = 80 + GetParam() % 60;
    opts.label_alphabet = 5 + GetParam() % 4;
    return RandomDatabase(opts);
  }

  OemHistory MakeHistory(const OemDatabase& db) const {
    HistoryOptions opts;
    opts.seed = GetParam() * 7 + 1;
    opts.steps = 6 + GetParam() % 6;
    opts.ops_per_step = 5 + GetParam() % 5;
    return RandomHistory(db, opts);
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(1u, 21u));

TEST_P(PropertyTest, GeneratedDatabasesAreWellFormed) {
  OemDatabase db = MakeDb();
  EXPECT_TRUE(db.Validate().ok());
  EXPECT_GE(db.node_count(), 80u);
}

TEST_P(PropertyTest, GeneratedHistoriesAreValid) {
  OemDatabase db = MakeDb();
  OemHistory h = MakeHistory(db);
  EXPECT_TRUE(h.ValidateFor(db).ok());
}

TEST_P(PropertyTest, OriginalSnapshotRecoversBase) {
  // Section 3.2: "It is easy to obtain the original snapshot O_0(D)".
  OemDatabase db = MakeDb();
  OemHistory h = MakeHistory(db);
  auto d = DoemDatabase::Build(db, h);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->OriginalSnapshot().Equals(db));
}

TEST_P(PropertyTest, SnapshotAtEveryStepMatchesReplay) {
  // O_{t_i}(D) must equal the state after replaying U_1..U_i directly.
  OemDatabase db = MakeDb();
  OemHistory h = MakeHistory(db);
  auto d = DoemDatabase::Build(db, h);
  ASSERT_TRUE(d.ok());
  OemDatabase replay = db;
  for (const HistoryStep& step : h.steps()) {
    ASSERT_TRUE(ApplyChangeSet(&replay, step.changes).ok());
    OemDatabase snap = d->SnapshotAt(step.time);
    EXPECT_TRUE(snap.Equals(replay))
        << "divergence at " << step.time.ToString();
    // And just before the next step the state is unchanged.
    OemDatabase later = d->SnapshotAt(Timestamp(step.time.ticks + 1));
    EXPECT_TRUE(later.Equals(replay));
  }
  EXPECT_TRUE(d->CurrentSnapshot().Equals(replay));
}

TEST_P(PropertyTest, ExtractedHistoryRebuildsIdenticalDoem) {
  // Section 3.2's uniqueness/faithfulness: D(O_0(D), H(D)) == D, and the
  // extraction is a fixpoint.
  OemDatabase db = MakeDb();
  OemHistory h = MakeHistory(db);
  auto d = DoemDatabase::Build(db, h);
  ASSERT_TRUE(d.ok());
  OemHistory extracted = d->ExtractHistory();
  auto rebuilt = DoemDatabase::Build(d->OriginalSnapshot(), extracted);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(rebuilt->Equals(*d));
  EXPECT_TRUE(rebuilt->ExtractHistory().Equals(extracted));
  EXPECT_TRUE(d->IsFeasible());
}

TEST_P(PropertyTest, EncodingRoundTrips) {
  // Section 5.1: the OEM encoding fully represents the DOEM database.
  OemDatabase db = MakeDb();
  auto d = DoemDatabase::Build(db, MakeHistory(db));
  ASSERT_TRUE(d.ok());
  auto enc = EncodeDoem(*d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  EXPECT_TRUE(enc->Validate().ok());
  auto dec = DecodeDoem(*enc);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_TRUE(dec->Equals(*d));
}

TEST_P(PropertyTest, OemTextRoundTrips) {
  OemDatabase db = MakeDb();
  auto parsed = ParseOemText(WriteOemText(db));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(db));
}

TEST_P(PropertyTest, KeyedDiffReconstructsTarget) {
  OemDatabase from = MakeDb();
  OemDatabase to = from;
  ASSERT_TRUE(MakeHistory(from).ApplyTo(&to).ok());
  auto ops = DiffSnapshots(from, to, DiffMode::kKeyed);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  OemDatabase patched = from;
  ASSERT_TRUE(ApplyChangeSet(&patched, *ops).ok());
  EXPECT_TRUE(patched.Equals(to));
}

TEST_P(PropertyTest, StructuralDiffReconstructsUpToIsomorphism) {
  OemDatabase from = MakeDb();
  OemDatabase evolved = from;
  ASSERT_TRUE(MakeHistory(from).ApplyTo(&evolved).ok());
  // Remap the target into a fresh id space, as a non-id-preserving
  // wrapper would.
  OemDatabase to;
  to.ReserveIdsBelow(evolved.PeekNextId() + 1000);
  auto map = CopyReachable(evolved, {evolved.root()}, &to, false);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(to.SetRoot(map->at(evolved.root())).ok());

  auto ops = DiffSnapshots(from, to, DiffMode::kStructural);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  OemDatabase patched = from;
  Status s = ApplyChangeSet(&patched, *ops);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(Isomorphic(patched, to));
}

TEST_P(PropertyTest, DirectAndTranslatedChorelAgree) {
  // Both implementation strategies of Section 5 must return the same
  // rows for every supported query.
  DatabaseOptions dbo;
  dbo.seed = GetParam();
  dbo.node_count = 60;
  dbo.label_alphabet = 4;
  OemDatabase db = RandomDatabase(dbo);
  auto d = DoemDatabase::Build(db, MakeHistory(db));
  ASSERT_TRUE(d.ok());
  chorel::ChorelEngine engine(*d);
  for (const std::string& q : ChorelQueryCorpus(dbo.label_alphabet)) {
    auto direct = engine.Run(q, chorel::Strategy::kDirect);
    auto translated = engine.Run(q, chorel::Strategy::kTranslated);
    ASSERT_TRUE(direct.ok()) << q << "\n" << direct.status().ToString();
    ASSERT_TRUE(translated.ok()) << q << "\n"
                                 << translated.status().ToString();
    auto keys = [](const lorel::QueryResult& r) {
      std::vector<std::string> out;
      for (const auto& row : r.rows) {
        std::string k;
        for (const lorel::RtVal& v : row) k += v.Key() + "|";
        out.push_back(std::move(k));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(keys(*direct), keys(*translated)) << q;
  }
}

TEST_P(PropertyTest, SyntheticGuideIsWellFormed) {
  OemDatabase g = testing::SyntheticGuide(50, GetParam());
  EXPECT_TRUE(g.Validate().ok());
  OemHistory h = testing::SyntheticGuideHistory(g, 8, 6, GetParam());
  EXPECT_TRUE(h.ValidateFor(g).ok());
  auto d = DoemDatabase::Build(g, h);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_TRUE(d->IsFeasible());
}

}  // namespace
}  // namespace doem
