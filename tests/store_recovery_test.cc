// Recovery robustness: the crash matrix. Every byte offset of a full log
// is visited as a crash/truncation point, every byte as a corruption
// point, and recovery must always yield exactly the committed prefix —
// never a panic, never a state that diverges from some committed prefix.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "doem/doem.h"
#include "oem/graph_compare.h"
#include "oem/history.h"
#include "store/fault_file.h"
#include "store/file.h"
#include "store/format.h"
#include "store/log.h"
#include "store/recovery.h"
#include "store/store.h"
#include "testing/generators.h"

namespace doem {
namespace store {
namespace {

using ::doem::testing::DatabaseOptions;
using ::doem::testing::HistoryOptions;
using ::doem::testing::RandomDatabase;
using ::doem::testing::RandomHistory;

struct Fixture {
  OemDatabase base;
  OemHistory history;
  /// The final bytes of an uninterrupted run.
  std::string bytes;
  /// The final in-memory state of that run.
  DoemDatabase live;
};

// Drives `history` through a Store over `file`, stopping early if the
// store breaks (a crash fixture keeps going in memory — the crashed
// store simply stops persisting, like a real process about to die).
DoemDatabase Drive(File* file, const OemDatabase& base,
                   const OemHistory& history, size_t interval) {
  StoreOptions opts;
  opts.checkpoint_interval = interval;
  auto live = DoemDatabase::FromSnapshot(base);
  EXPECT_TRUE(live.ok());
  auto s = Store::Open(file, opts);
  if (s.ok()) {
    (void)(*s)->Start(*live);
    for (const auto& step : history.steps()) {
      EXPECT_TRUE(live->ApplyChangeSet(step.time, step.changes).ok());
      (void)(*s)->Append(step.time, step.changes, *live);
    }
  }
  return std::move(live).value();
}

Fixture MakeFixture(size_t interval, uint32_t seed = 21, size_t steps = 5,
                    size_t nodes = 10) {
  Fixture fx;
  DatabaseOptions dopts;
  dopts.seed = seed;
  dopts.node_count = nodes;
  fx.base = RandomDatabase(dopts);
  HistoryOptions hopts;
  hopts.seed = seed + 1;
  hopts.steps = steps;
  hopts.ops_per_step = 2;
  fx.history = RandomHistory(fx.base, hopts);
  MemoryFile file;
  fx.live = Drive(&file, fx.base, fx.history, interval);
  fx.bytes = file.data();
  return fx;
}

/// The expected recovery outcome after each committed record, rebuilt
/// independently of recovery.cc by walking the reference log with the
/// reader and the payload codecs directly.
struct RecordPoint {
  uint64_t end = 0;
  std::vector<Timestamp> times;
  DoemDatabase db;
};

std::vector<RecordPoint> ModelPoints(const std::string& bytes) {
  std::vector<RecordPoint> points;
  LogReader reader(bytes);
  DecodedRecord rec;
  std::vector<Timestamp> times;
  DoemDatabase db;
  while (reader.Next(&rec)) {
    if (rec.type == RecordType::kCheckpoint) {
      auto ckpt = DecodeCheckpointPayload(rec.payload);
      EXPECT_TRUE(ckpt.ok()) << ckpt.status().ToString();
      db = ckpt->db;
      times = ckpt->times;
    } else {
      auto delta = DecodeDeltaPayload(rec.payload);
      EXPECT_TRUE(delta.ok()) << delta.status().ToString();
      EXPECT_TRUE(db.ApplyChangeSet(delta->time, delta->ops).ok());
      times.push_back(delta->time);
    }
    points.push_back(RecordPoint{rec.end, times, db});
  }
  EXPECT_TRUE(reader.status().ok()) << reader.status().ToString();
  return points;
}

/// The model point for a prefix of `size` bytes: the last record whose
/// end fits, or nullptr when no record does.
const RecordPoint* PointFor(const std::vector<RecordPoint>& points,
                            uint64_t size) {
  const RecordPoint* best = nullptr;
  for (const RecordPoint& p : points) {
    if (p.end <= size) best = &p;
  }
  return best;
}

void ExpectMatchesModel(const RecoveryResult& got,
                        const std::vector<RecordPoint>& points,
                        uint64_t prefix_size, const std::string& context) {
  const RecordPoint* want = PointFor(points, prefix_size);
  if (want == nullptr) {
    EXPECT_FALSE(got.has_state) << context;
    EXPECT_LE(got.valid_size, kStoreHeaderSize) << context;
    return;
  }
  ASSERT_TRUE(got.has_state) << context;
  EXPECT_EQ(got.valid_size, want->end) << context;
  EXPECT_EQ(got.times, want->times) << context;
  EXPECT_TRUE(got.db.Equals(want->db)) << context;
}

// ---- Round-trip property across checkpoint intervals -----------------------

class RoundTripProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RoundTripProperty, RecoverEqualsOriginal) {
  const size_t interval = GetParam();
  for (uint32_t seed : {11u, 22u, 33u}) {
    Fixture fx = MakeFixture(interval, seed, /*steps=*/8, /*nodes=*/16);
    auto recovered = RecoverStoreBytes(fx.bytes);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_TRUE(recovered->has_state);
    EXPECT_FALSE(recovered->truncated);
    // Exact equality (same node ids, values, arcs, annotations) and —
    // the weaker but id-independent check — graph isomorphism of the
    // current snapshots.
    EXPECT_TRUE(recovered->db.Equals(fx.live)) << "seed " << seed;
    EXPECT_TRUE(Isomorphic(recovered->db.CurrentSnapshot(),
                           fx.live.CurrentSnapshot()));
    std::vector<Timestamp> want;
    for (const auto& step : fx.history.steps()) want.push_back(step.time);
    EXPECT_EQ(recovered->times, want);
    // Replay work is bounded by the interval.
    EXPECT_LT(recovered->replayed, interval);
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, RoundTripProperty,
                         ::testing::Values(1, 7, 64));

// ---- Crash matrix: truncation at every byte --------------------------------

TEST(CrashMatrix, TruncationAtEveryByteYieldsCommittedPrefix) {
  Fixture fx = MakeFixture(/*interval=*/2);
  std::vector<RecordPoint> points = ModelPoints(fx.bytes);
  ASSERT_FALSE(points.empty());
  for (uint64_t cut = 0; cut <= fx.bytes.size(); ++cut) {
    auto got = RecoverStoreBytes(std::string_view(fx.bytes).substr(0, cut));
    ASSERT_TRUE(got.ok()) << "cut=" << cut << ": " << got.status().ToString();
    ExpectMatchesModel(*got, points, cut, "cut=" + std::to_string(cut));
    // Truncated iff the cut left dangling bytes past the committed
    // prefix (i.e. it was not on a record boundary).
    bool clean = cut == 0 || got->valid_size == cut;
    EXPECT_EQ(got->truncated, !clean) << "cut=" << cut;
  }
}

// ---- Crash matrix: FaultInjectingFile crash at every byte ------------------

TEST(CrashMatrix, CrashOffsetSweepAcrossFullLog) {
  Fixture fx = MakeFixture(/*interval=*/2);
  std::vector<RecordPoint> points = ModelPoints(fx.bytes);
  for (uint64_t crash = 0; crash <= fx.bytes.size(); ++crash) {
    MemoryFile inner;
    FaultInjectingFile faulty(&inner);
    faulty.CrashAtOffset(crash);
    Drive(&faulty, fx.base, fx.history, /*interval=*/2);
    // The writes are deterministic, so what reached the inner file is a
    // prefix of the reference bytes.
    ASSERT_LE(inner.data().size(), fx.bytes.size());
    EXPECT_EQ(inner.data(), fx.bytes.substr(0, inner.data().size()))
        << "crash=" << crash;
    auto got = RecoverStoreBytes(inner.data());
    ASSERT_TRUE(got.ok()) << "crash=" << crash;
    ExpectMatchesModel(*got, points, inner.data().size(),
                       "crash=" + std::to_string(crash));
  }
}

// ---- Corruption matrix: bit flip in every byte -----------------------------

TEST(CrashMatrix, BitFlipInEveryByteNeverYieldsUncommittedState) {
  Fixture fx = MakeFixture(/*interval=*/2, /*seed=*/31, /*steps=*/4);
  std::vector<RecordPoint> points = ModelPoints(fx.bytes);
  for (uint64_t at = 0; at < fx.bytes.size(); ++at) {
    std::string bad = fx.bytes;
    bad[at] ^= static_cast<char>(1u << (at % 8));
    auto got = RecoverStoreBytes(bad);
    if (at < kStoreHeaderSize) {
      // A flipped magic byte makes the file "not ours": hard error.
      EXPECT_FALSE(got.ok()) << "at=" << at;
      continue;
    }
    ASSERT_TRUE(got.ok()) << "at=" << at << ": " << got.status().ToString();
    // The record containing the flipped byte (and everything after it)
    // must be discarded; everything before it must survive intact.
    uint64_t survive = kStoreHeaderSize;
    for (const RecordPoint& p : points) {
      if (p.end <= at) survive = p.end;
    }
    EXPECT_TRUE(got->truncated) << "at=" << at;
    ExpectMatchesModel(*got, points, survive, "at=" + std::to_string(at));
  }
}

// ---- Read-path corruption via the fault file -------------------------------

TEST(CrashMatrix, LatentMediaCorruptionCaughtAtOpen) {
  Fixture fx = MakeFixture(/*interval=*/4, /*seed=*/41, /*steps=*/3);
  MemoryFile inner(fx.bytes);
  FaultInjectingFile faulty(&inner);
  // Flip a bit inside the last record's payload.
  faulty.FlipBit(fx.bytes.size() - 3, 2);
  StoreOptions opts;
  auto s = Store::Open(&faulty, opts);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE((*s)->recovery().truncated);
  EXPECT_LT((*s)->recovery().valid_size, fx.bytes.size());
}

// ---- Dropped unsynced tail -------------------------------------------------

TEST(CrashMatrix, FailedSyncWithDroppedTailRecoversEarlierPrefix) {
  Fixture fx = MakeFixture(/*interval=*/64, /*seed=*/51, /*steps=*/6);
  std::vector<RecordPoint> points = ModelPoints(fx.bytes);
  // Fail the 4th sync (header, checkpoint, two deltas sync fine) and
  // drop what was never synced.
  MemoryFile inner;
  FaultInjectingFile faulty(&inner);
  faulty.FailSync(4, /*drop_unsynced=*/true);
  Drive(&faulty, fx.base, fx.history, /*interval=*/64);
  auto got = RecoverStoreBytes(inner.data());
  ASSERT_TRUE(got.ok());
  ExpectMatchesModel(*got, points, inner.data().size(), "fail-sync");
  // Strictly fewer commits than the reference run survived.
  ASSERT_TRUE(got->has_state);
  EXPECT_LT(got->times.size(), fx.history.steps().size());
}

// ---- Structural hostile inputs ---------------------------------------------

TEST(RecoveryTest, DeltaBeforeAnyCheckpointIsDiscarded) {
  std::string bytes = EncodeStoreHeader() +
                      EncodeRecord(RecordType::kDelta,
                                   EncodeDeltaPayload(Timestamp(1), {}));
  auto got = RecoverStoreBytes(bytes);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_state);
  EXPECT_TRUE(got->truncated);
  EXPECT_EQ(got->valid_size, kStoreHeaderSize);
}

TEST(RecoveryTest, ValidFramingWithGarbagePayloadIsTruncated) {
  // A record that passes its checksum but whose payload does not parse.
  std::string bytes = EncodeStoreHeader() +
                      EncodeRecord(RecordType::kCheckpoint, "not a payload");
  auto got = RecoverStoreBytes(bytes);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_state);
  EXPECT_TRUE(got->truncated);
  EXPECT_NE(got->truncation_reason.find("checkpoint"), std::string::npos);
}

TEST(RecoveryTest, NonMonotonicDeltaTimesAreTruncated) {
  DoemDatabase db;
  {
    OemDatabase base;
    ASSERT_TRUE(base.CreNode(NodeId{1}, Value::Complex()).ok());
    ASSERT_TRUE(base.SetRoot(NodeId{1}).ok());
    auto d = DoemDatabase::FromSnapshot(std::move(base));
    ASSERT_TRUE(d.ok());
    db = std::move(d).value();
  }
  auto ckpt = EncodeCheckpointPayload(db, {Timestamp(10)});
  ASSERT_TRUE(ckpt.ok());
  std::string bytes =
      EncodeStoreHeader() + EncodeRecord(RecordType::kCheckpoint, *ckpt) +
      EncodeRecord(RecordType::kDelta, EncodeDeltaPayload(Timestamp(10), {}));
  auto got = RecoverStoreBytes(bytes);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_state);
  EXPECT_TRUE(got->truncated);
  EXPECT_EQ(got->times, std::vector<Timestamp>{Timestamp(10)});
}

TEST(RecoveryTest, EmptyAndHeaderOnlyFiles) {
  auto empty = RecoverStoreBytes("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_state);
  EXPECT_FALSE(empty->truncated);

  auto header_only = RecoverStoreBytes(std::string(kStoreMagic));
  ASSERT_TRUE(header_only.ok());
  EXPECT_FALSE(header_only->has_state);
  EXPECT_FALSE(header_only->truncated);
  EXPECT_EQ(header_only->valid_size, kStoreHeaderSize);
}

}  // namespace
}  // namespace store
}  // namespace doem
