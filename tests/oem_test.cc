#include <gtest/gtest.h>

#include "oem/change.h"
#include "oem/graph_compare.h"
#include "oem/history.h"
#include "oem/oem.h"
#include "oem/subgraph.h"
#include "oem/timestamp.h"
#include "oem/value.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::Guide;
using testing::GuideHistory;

// ---------------------------------------------------------------- Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Complex().is_complex());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Time(Timestamp(7)).AsTime().ticks, 7);
}

TEST(ValueTest, StorageEqualityDistinguishesKinds) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::String("1"));
  EXPECT_NE(Value::Complex(), Value::Int(0));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Complex().ToString(), "C");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Real(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Real(1.0).Hash());
}

// ------------------------------------------------------------ Timestamp

TEST(TimestampTest, ParsePaperFormat) {
  Timestamp t;
  ASSERT_TRUE(Timestamp::Parse("1Jan97", &t));
  EXPECT_EQ(t, Timestamp::FromDate(1997, 1, 1));
  ASSERT_TRUE(Timestamp::Parse("30Dec96", &t));
  EXPECT_EQ(t, Timestamp::FromDate(1996, 12, 30));
  ASSERT_TRUE(Timestamp::Parse("8jan1997", &t));
  EXPECT_EQ(t, Timestamp::FromDate(1997, 1, 8));
}

TEST(TimestampTest, ParseIsoAndTicks) {
  Timestamp t;
  ASSERT_TRUE(Timestamp::Parse("1997-01-08", &t));
  EXPECT_EQ(t, Timestamp::FromDate(1997, 1, 8));
  ASSERT_TRUE(Timestamp::Parse("  42 ", &t));
  EXPECT_EQ(t.ticks, 42);
  ASSERT_TRUE(Timestamp::Parse("-3", &t));
  EXPECT_EQ(t.ticks, -3);
}

TEST(TimestampTest, ParseRejectsGarbage) {
  Timestamp t;
  EXPECT_FALSE(Timestamp::Parse("", &t));
  EXPECT_FALSE(Timestamp::Parse("Jannuary", &t));
  EXPECT_FALSE(Timestamp::Parse("32Foo97", &t));
  EXPECT_FALSE(Timestamp::Parse("1997-13-01", &t));
}

TEST(TimestampTest, OrderingAndFormatting) {
  EXPECT_LT(Timestamp::FromDate(1997, 1, 1), Timestamp::FromDate(1997, 1, 5));
  EXPECT_LT(Timestamp::NegativeInfinity(), Timestamp::FromDate(1900, 1, 1));
  EXPECT_EQ(Timestamp::FromDate(1997, 1, 8).ToString(), "8Jan1997");
  EXPECT_EQ(Timestamp(12345678).ToString(), "12345678");
  EXPECT_EQ(Timestamp::NegativeInfinity().ToString(), "-inf");
}

TEST(TimestampTest, DateRoundTrip) {
  for (int m = 1; m <= 12; ++m) {
    Timestamp t = Timestamp::FromDate(1996, m, 15);
    Timestamp parsed;
    ASSERT_TRUE(Timestamp::Parse(t.ToString(), &parsed)) << t.ToString();
    EXPECT_EQ(parsed, t);
  }
}

// -------------------------------------------------------------- OemDatabase

TEST(OemDatabaseTest, BuildAndLookup) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId a = db.NewString("hello");
  ASSERT_TRUE(db.AddArc(root, "greeting", a).ok());

  EXPECT_TRUE(db.HasNode(a));
  EXPECT_TRUE(db.HasArc(root, "greeting", a));
  EXPECT_FALSE(db.HasArc(root, "other", a));
  EXPECT_EQ(db.GetValue(a)->AsString(), "hello");
  EXPECT_EQ(db.Child(root, "greeting"), a);
  EXPECT_EQ(db.node_count(), 2u);
  EXPECT_EQ(db.arc_count(), 1u);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(OemDatabaseTest, GuideMatchesFigure2) {
  Guide g = BuildGuide();
  const OemDatabase& db = g.db;
  EXPECT_TRUE(db.Validate().ok());
  EXPECT_EQ(db.Child(db.root(), "guide"), g.guide)
      << "'guide' is the entry name on the anonymous root";

  std::vector<NodeId> restaurants = db.Children(g.guide, "restaurant");
  ASSERT_EQ(restaurants.size(), 2u);

  // Irregularity: integer vs string price.
  EXPECT_EQ(db.GetValue(db.Child(g.bangkok, "price"))->AsInt(), 10);
  EXPECT_EQ(db.GetValue(db.Child(g.janta, "price"))->AsString(), "moderate");

  // Irregularity: string vs complex address.
  EXPECT_TRUE(db.GetValue(db.Child(g.bangkok, "address"))->is_atomic());
  EXPECT_TRUE(db.GetValue(db.Child(g.janta, "address"))->is_complex());

  // Shared node: both restaurants' parking arcs point at n7.
  EXPECT_EQ(db.Child(g.bangkok, "parking"), g.parking);
  EXPECT_EQ(db.Child(g.janta, "parking"), g.parking);

  // Cycle: parking --nearby-eats--> bangkok --parking--> parking.
  EXPECT_EQ(db.Child(g.parking, "nearby-eats"), g.bangkok);
}

TEST(OemDatabaseTest, CreNodeRejectsReusedIds) {
  OemDatabase db;
  ASSERT_TRUE(db.CreNode(10, Value::Int(1)).ok());
  Status s = db.CreNode(10, Value::Int(2));
  EXPECT_EQ(s.code(), StatusCode::kInvalidChange);
  EXPECT_EQ(db.CreNode(0, Value::Int(1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(OemDatabaseTest, UpdNodeRequiresNoSubobjects) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId c = db.NewString("x");
  ASSERT_TRUE(db.AddArc(root, "a", c).ok());

  // Root has a subobject: updating its value must fail.
  EXPECT_EQ(db.UpdNode(root, Value::Int(1)).code(),
            StatusCode::kInvalidChange);
  // Removing the arc first makes the update legal (paper Section 2.1).
  ASSERT_TRUE(db.RemArc(root, "a", c).ok());
  EXPECT_TRUE(db.UpdNode(root, Value::Int(1)).ok());
  EXPECT_EQ(db.UpdNode(999, Value::Int(1)).code(), StatusCode::kNotFound);
}

TEST(OemDatabaseTest, AddArcPreconditions) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId atom = db.NewInt(5);
  ASSERT_TRUE(db.AddArc(root, "n", atom).ok());

  EXPECT_EQ(db.AddArc(root, "n", atom).code(), StatusCode::kInvalidChange)
      << "duplicate arc";
  EXPECT_EQ(db.AddArc(atom, "x", root).code(), StatusCode::kInvalidChange)
      << "atomic parent";
  EXPECT_EQ(db.AddArc(root, "x", 999).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.AddArc(999, "x", atom).code(), StatusCode::kNotFound);
}

TEST(OemDatabaseTest, RemArcPreconditions) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId atom = db.NewInt(5);
  ASSERT_TRUE(db.AddArc(root, "n", atom).ok());

  EXPECT_EQ(db.RemArc(root, "other", atom).code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.RemArc(root, "n", atom).ok());
  EXPECT_EQ(db.RemArc(root, "n", atom).code(), StatusCode::kNotFound);
}

TEST(OemDatabaseTest, SameLabelMultipleChildren) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId a = db.NewInt(1);
  NodeId b = db.NewInt(2);
  ASSERT_TRUE(db.AddArc(root, "x", a).ok());
  ASSERT_TRUE(db.AddArc(root, "x", b).ok());
  EXPECT_EQ(db.Children(root, "x"), (std::vector<NodeId>{a, b}));
}

TEST(OemDatabaseTest, CollectGarbageRemovesUnreachable) {
  Guide g = BuildGuide();
  // Cut Janta loose: guide -restaurant-> janta is its only incoming arc.
  ASSERT_TRUE(g.db.RemArc(g.guide, "restaurant", g.janta).ok());
  size_t before = g.db.node_count();
  std::vector<NodeId> removed = g.db.CollectGarbage();
  // Janta, its name/price, and its address subtree die. The shared
  // parking object n7 survives (still reachable via Bangkok), as does
  // everything under it.
  EXPECT_EQ(removed.size(), 6u);
  EXPECT_TRUE(g.db.HasNode(g.parking));
  EXPECT_FALSE(g.db.HasNode(g.janta));
  EXPECT_EQ(g.db.node_count(), before - 6);
  EXPECT_TRUE(g.db.Validate().ok());
}

TEST(OemDatabaseTest, GarbageCollectedIdsAreNeverReused) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId a = db.NewInt(1);
  ASSERT_TRUE(db.AddArc(root, "x", a).ok());
  ASSERT_TRUE(db.RemArc(root, "x", a).ok());
  db.CollectGarbage();
  EXPECT_FALSE(db.HasNode(a));
  EXPECT_EQ(db.CreNode(a, Value::Int(9)).code(), StatusCode::kInvalidChange);
  EXPECT_NE(db.NewInt(7), a);
}

TEST(OemDatabaseTest, CycleKeepsNodesAliveOnlyViaRoot) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  // Two nodes in a cycle, attached to root.
  NodeId a = db.NewComplex();
  NodeId b = db.NewComplex();
  ASSERT_TRUE(db.AddArc(a, "next", b).ok());
  ASSERT_TRUE(db.AddArc(b, "next", a).ok());
  ASSERT_TRUE(db.AddArc(root, "cycle", a).ok());
  EXPECT_TRUE(db.CollectGarbage().empty());
  // Detach: the cycle keeps a and b pointing at each other, but
  // reachability from the root is what counts.
  ASSERT_TRUE(db.RemArc(root, "cycle", a).ok());
  EXPECT_EQ(db.CollectGarbage().size(), 2u);
}

TEST(OemDatabaseTest, ValidateDetectsUnreachable) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  db.NewInt(1);  // never linked
  EXPECT_FALSE(db.Validate().ok());
}

TEST(OemDatabaseTest, EqualsIsExact) {
  Guide a = BuildGuide();
  Guide b = BuildGuide();
  EXPECT_TRUE(a.db.Equals(b.db));
  ASSERT_TRUE(b.db.UpdNode(b.bangkok_price, Value::Int(11)).ok());
  EXPECT_FALSE(a.db.Equals(b.db));
}

// ------------------------------------------------------------- ChangeOps

TEST(ChangeSetTest, ConflictDetection) {
  EXPECT_TRUE(CheckChangeSetConflicts({}).ok());
  EXPECT_TRUE(CheckChangeSetConflicts(
                  {ChangeOp::CreNode(1, Value::Int(1)),
                   ChangeOp::UpdNode(2, Value::Int(2))})
                  .ok());
  EXPECT_FALSE(CheckChangeSetConflicts({ChangeOp::CreNode(1, Value::Int(1)),
                                        ChangeOp::CreNode(1, Value::Int(2))})
                   .ok());
  EXPECT_FALSE(CheckChangeSetConflicts({ChangeOp::UpdNode(1, Value::Int(1)),
                                        ChangeOp::UpdNode(1, Value::Int(2))})
                   .ok());
  EXPECT_FALSE(CheckChangeSetConflicts({ChangeOp::CreNode(1, Value::Int(1)),
                                        ChangeOp::UpdNode(1, Value::Int(2))})
                   .ok());
  EXPECT_FALSE(CheckChangeSetConflicts({ChangeOp::AddArc(1, "x", 2),
                                        ChangeOp::RemArc(1, "x", 2)})
                   .ok())
      << "Definition 2.2 condition (3)";
  EXPECT_FALSE(CheckChangeSetConflicts({ChangeOp::AddArc(1, "x", 2),
                                        ChangeOp::AddArc(1, "x", 2)})
                   .ok());
}

TEST(ChangeSetTest, CanonicalOrderPhases) {
  ChangeSet ops = {ChangeOp::AddArc(1, "a", 2),
                   ChangeOp::UpdNode(3, Value::Int(1)),
                   ChangeOp::RemArc(4, "b", 5),
                   ChangeOp::CreNode(6, Value::Complex())};
  ChangeSet ordered = CanonicalOrder(ops);
  EXPECT_EQ(ordered[0].kind, ChangeOp::Kind::kCreNode);
  EXPECT_EQ(ordered[1].kind, ChangeOp::Kind::kRemArc);
  EXPECT_EQ(ordered[2].kind, ChangeOp::Kind::kUpdNode);
  EXPECT_EQ(ordered[3].kind, ChangeOp::Kind::kAddArc);
}

TEST(ChangeSetTest, ApplyIsOrderIndependent) {
  // The Example 2.3 U1 set in several presentation orders must produce
  // identical databases (Definition 2.2 condition (2)).
  ChangeSet u1 = {ChangeOp::UpdNode(1, Value::Int(20)),
                  ChangeOp::CreNode(2, Value::Complex()),
                  ChangeOp::CreNode(3, Value::String("Hakata")),
                  ChangeOp::AddArc(4, "restaurant", 2),
                  ChangeOp::AddArc(2, "name", 3)};
  OemDatabase expected;
  {
    Guide g = BuildGuide();
    ASSERT_TRUE(ApplyChangeSet(&g.db, u1).ok());
    expected = g.db;
  }
  ChangeSet shuffled = {u1[4], u1[2], u1[0], u1[3], u1[1]};
  Guide g = BuildGuide();
  ASSERT_TRUE(ApplyChangeSet(&g.db, shuffled).ok());
  EXPECT_TRUE(g.db.Equals(expected));
}

TEST(ChangeSetTest, ComplexToAtomicRequiresArcRemoval) {
  // remArc + updNode in one set: only the rem-before-upd order is valid;
  // ApplyChangeSet must find it.
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId box = db.NewComplex();
  NodeId leaf = db.NewInt(1);
  ASSERT_TRUE(db.AddArc(root, "box", box).ok());
  ASSERT_TRUE(db.AddArc(box, "leaf", leaf).ok());

  ChangeSet u = {ChangeOp::UpdNode(box, Value::String("now atomic")),
                 ChangeOp::RemArc(box, "leaf", leaf)};
  ASSERT_TRUE(ApplyChangeSet(&db, u).ok());
  EXPECT_EQ(db.GetValue(box)->AsString(), "now atomic");
  EXPECT_FALSE(db.HasNode(leaf)) << "leaf became unreachable";
}

TEST(ChangeSetTest, AtomicToComplexAllowsArcAdds) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId atom = db.NewInt(5);
  ASSERT_TRUE(db.AddArc(root, "x", atom).ok());

  ChangeSet u = {ChangeOp::AddArc(atom, "child", root),
                 ChangeOp::UpdNode(atom, Value::Complex())};
  ASSERT_TRUE(ApplyChangeSet(&db, u).ok());
  EXPECT_TRUE(db.GetValue(atom)->is_complex());
  EXPECT_TRUE(db.HasArc(atom, "child", root));
}

TEST(ChangeSetTest, FailureLeavesDatabaseUnchanged) {
  Guide g = BuildGuide();
  OemDatabase before = g.db;
  ChangeSet bad = {ChangeOp::UpdNode(1, Value::Int(20)),
                   ChangeOp::AddArc(999, "x", 1)};
  EXPECT_FALSE(ApplyChangeSet(&g.db, bad).ok());
  EXPECT_TRUE(g.db.Equals(before)) << "transactional application";
}

TEST(ChangeSetTest, CreateWithoutLinkIsDeletedAtBoundary) {
  // A created node left unreachable at the end of the set is considered
  // deleted (Section 2.2).
  Guide g = BuildGuide();
  std::vector<NodeId> deleted;
  ChangeSet u = {ChangeOp::CreNode(100, Value::Int(1))};
  ASSERT_TRUE(ApplyChangeSet(&g.db, u, &deleted).ok());
  EXPECT_EQ(deleted, std::vector<NodeId>{100});
  EXPECT_FALSE(g.db.HasNode(100));
}

TEST(ChangeSetTest, EqualsIsOrderInsensitiveMultiset) {
  ChangeSet a = {ChangeOp::CreNode(1, Value::Int(1)),
                 ChangeOp::AddArc(2, "x", 1)};
  ChangeSet b = {ChangeOp::AddArc(2, "x", 1),
                 ChangeOp::CreNode(1, Value::Int(1))};
  EXPECT_TRUE(ChangeSetEquals(a, b));
  b.push_back(ChangeOp::CreNode(9, Value::Int(1)));
  EXPECT_FALSE(ChangeSetEquals(a, b));
}

// --------------------------------------------------------------- History

TEST(HistoryTest, GuideHistoryProducesFigure3) {
  Guide g = BuildGuide();
  OemHistory h = GuideHistory();
  ASSERT_TRUE(h.ValidateFor(g.db).ok());
  ASSERT_TRUE(h.ApplyTo(&g.db).ok());
  const OemDatabase& db = g.db;

  // Price changed 10 -> 20.
  EXPECT_EQ(db.GetValue(1)->AsInt(), 20);
  // Hakata added with name and comment.
  std::vector<NodeId> restaurants = db.Children(4, "restaurant");
  ASSERT_EQ(restaurants.size(), 3u);
  EXPECT_EQ(db.GetValue(db.Child(2, "name"))->AsString(), "Hakata");
  EXPECT_EQ(db.GetValue(db.Child(2, "comment"))->AsString(), "need info");
  // Janta's parking arc removed; n7 still reachable through Bangkok.
  EXPECT_FALSE(db.HasArc(6, "parking", 7));
  EXPECT_TRUE(db.HasNode(7));
  EXPECT_TRUE(db.Validate().ok());
}

TEST(HistoryTest, TimestampsMustIncrease) {
  OemHistory h;
  ASSERT_TRUE(h.Append(Timestamp(5), {}).ok());
  EXPECT_FALSE(h.Append(Timestamp(5), {}).ok());
  EXPECT_FALSE(h.Append(Timestamp(4), {}).ok());
  EXPECT_TRUE(h.Append(Timestamp(6), {}).ok());
}

TEST(HistoryTest, OperatingOnDeletedNodeIsInvalid) {
  Guide g = BuildGuide();
  OemHistory h;
  // Delete Janta at t1, then try to touch it at t2.
  ASSERT_TRUE(
      h.Append(Timestamp(100), {ChangeOp::RemArc(4, "restaurant", 6)}).ok());
  ASSERT_TRUE(
      h.Append(Timestamp(200),
               {ChangeOp::UpdNode(6, Value::String("zombie"))})
          .ok());
  EXPECT_FALSE(h.ValidateFor(g.db).ok());
}

TEST(HistoryTest, HistoryEquality) {
  EXPECT_TRUE(GuideHistory().Equals(GuideHistory()));
  OemHistory h = GuideHistory();
  OemHistory h2;
  ASSERT_TRUE(h2.Append(Timestamp(1), {}).ok());
  EXPECT_FALSE(h.Equals(h2));
}

// ------------------------------------------------------------ Isomorphism

TEST(IsomorphismTest, GuideIsIsomorphicToRelabeledGuide) {
  Guide a = BuildGuide();
  // Rebuild the same structure with different ids by round-tripping
  // through a fresh database with fresh ids.
  OemDatabase b;
  b.ReserveIdsBelow(1000);
  auto map = CopyReachable(a.db, {a.db.root()}, &b, /*preserve_ids=*/false);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(b.SetRoot(map->at(a.db.root())).ok());

  std::unordered_map<NodeId, NodeId> iso;
  EXPECT_TRUE(FindIsomorphism(a.db, b, &iso));
  EXPECT_EQ(iso.at(a.db.root()), b.root());
  EXPECT_EQ(iso.size(), a.db.node_count());
}

TEST(IsomorphismTest, DetectsValueDifference) {
  Guide a = BuildGuide();
  Guide b = BuildGuide();
  ASSERT_TRUE(b.db.UpdNode(b.bangkok_price, Value::Int(11)).ok());
  EXPECT_FALSE(Isomorphic(a.db, b.db));
}

TEST(IsomorphismTest, DetectsStructureDifference) {
  Guide a = BuildGuide();
  Guide b = BuildGuide();
  ASSERT_TRUE(b.db.RemArc(b.parking, "nearby-eats", b.bangkok).ok());
  EXPECT_FALSE(Isomorphic(a.db, b.db));
  // Same counts, different wiring.
  ASSERT_TRUE(b.db.AddArc(b.parking, "nearby-eats", b.janta).ok());
  EXPECT_FALSE(Isomorphic(a.db, b.db));
}

TEST(IsomorphismTest, SharingVsCopies) {
  // a: two arcs to ONE shared child; b: two arcs to TWO equal children.
  OemDatabase a;
  NodeId ra = a.NewComplex();
  ASSERT_TRUE(a.SetRoot(ra).ok());
  NodeId shared = a.NewInt(7);
  ASSERT_TRUE(a.AddArc(ra, "x", shared).ok());
  ASSERT_TRUE(a.AddArc(ra, "y", shared).ok());

  OemDatabase b;
  NodeId rb = b.NewComplex();
  ASSERT_TRUE(b.SetRoot(rb).ok());
  ASSERT_TRUE(b.AddArc(rb, "x", b.NewInt(7)).ok());
  ASSERT_TRUE(b.AddArc(rb, "y", b.NewInt(7)).ok());

  EXPECT_FALSE(Isomorphic(a, b)) << "node counts differ";
}

// --------------------------------------------------------------- Subgraph

TEST(SubgraphTest, CopyPreservesSharingAndCycles) {
  Guide g = BuildGuide();
  OemDatabase dst;
  dst.ReserveIdsBelow(g.db.PeekNextId());
  NodeId answer = dst.NewComplex();
  ASSERT_TRUE(dst.SetRoot(answer).ok());

  auto map =
      CopyReachable(g.db, {g.bangkok, g.janta}, &dst, /*preserve_ids=*/true);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(dst.AddArc(answer, "restaurant", map->at(g.bangkok)).ok());
  ASSERT_TRUE(dst.AddArc(answer, "restaurant", map->at(g.janta)).ok());

  // Ids preserved; shared parking node copied once; cycle intact.
  EXPECT_EQ(map->at(g.bangkok), g.bangkok);
  EXPECT_EQ(dst.Child(g.bangkok, "parking"), g.parking);
  EXPECT_EQ(dst.Child(g.janta, "parking"), g.parking);
  EXPECT_EQ(dst.Child(g.parking, "nearby-eats"), g.bangkok);
  EXPECT_TRUE(dst.Validate().ok());
  // The guide root itself was not copied.
  EXPECT_FALSE(dst.HasNode(g.guide));
}

TEST(SubgraphTest, PreserveIdsCollisionFails) {
  Guide g = BuildGuide();
  OemDatabase dst;
  NodeId clash = dst.NewComplex();  // id 1 == g.bangkok_price
  ASSERT_EQ(clash, g.bangkok_price);
  auto map =
      CopyReachable(g.db, {g.bangkok}, &dst, /*preserve_ids=*/true);
  EXPECT_FALSE(map.ok());
}

TEST(SubgraphTest, MissingRootFails) {
  Guide g = BuildGuide();
  OemDatabase dst;
  EXPECT_FALSE(CopyReachable(g.db, {9999}, &dst, false).ok());
}

}  // namespace
}  // namespace doem
