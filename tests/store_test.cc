#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "doem/doem.h"
#include "oem/graph_compare.h"
#include "oem/history.h"
#include "oem/history_text.h"
#include "obs/metrics.h"
#include "store/crc32.h"
#include "store/fault_file.h"
#include "store/file.h"
#include "store/format.h"
#include "store/log.h"
#include "store/recovery.h"
#include "store/store.h"
#include "store/time_travel.h"
#include "testing/generators.h"

namespace doem {
namespace store {
namespace {

using ::doem::testing::DatabaseOptions;
using ::doem::testing::HistoryOptions;
using ::doem::testing::RandomDatabase;
using ::doem::testing::RandomHistory;

// A small deterministic DOEM database with a few committed change sets.
DoemDatabase SampleDb(size_t steps = 4) {
  DatabaseOptions dopts;
  dopts.seed = 7;
  dopts.node_count = 20;
  OemDatabase base = RandomDatabase(dopts);
  HistoryOptions hopts;
  hopts.seed = 8;
  hopts.steps = steps;
  hopts.ops_per_step = 3;
  OemHistory h = RandomHistory(base, hopts);
  auto db = DoemDatabase::Build(std::move(base), h);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// ---- CRC32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32(std::string(1, '\0')), 0xD202EF8Du);
}

TEST(Crc32Test, ExtendComposes) {
  std::string data = "the quick brown fox";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t a = Crc32Extend(kCrc32Initial, data.substr(0, split));
    EXPECT_EQ(Crc32Extend(a, data.substr(split)), Crc32(data));
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "payload under test";
  uint32_t good = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(bad), good) << "byte " << i << " bit " << bit;
    }
  }
}

// ---- Record framing --------------------------------------------------------

TEST(FormatTest, RecordRoundTrip) {
  std::string framed = EncodeRecord(RecordType::kDelta, "hello");
  std::string file = EncodeStoreHeader() + framed;
  DecodedRecord rec;
  std::string reason;
  ASSERT_EQ(DecodeRecordAt(file, kStoreHeaderSize, &rec, &reason),
            DecodeOutcome::kOk)
      << reason;
  EXPECT_EQ(rec.type, RecordType::kDelta);
  EXPECT_EQ(rec.payload, "hello");
  EXPECT_EQ(rec.end, file.size());
}

TEST(FormatTest, EveryTruncationIsTorn) {
  std::string framed = EncodeRecord(RecordType::kCheckpoint, "payload bytes");
  for (size_t keep = 0; keep < framed.size(); ++keep) {
    DecodedRecord rec;
    std::string reason;
    EXPECT_EQ(DecodeRecordAt(framed.substr(0, keep), 0, &rec, &reason),
              DecodeOutcome::kTorn)
        << "keep=" << keep;
  }
}

TEST(FormatTest, EveryBitFlipIsCorrupt) {
  std::string framed = EncodeRecord(RecordType::kDelta, "payload bytes");
  for (size_t i = 0; i < framed.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = framed;
      bad[i] ^= static_cast<char>(1 << bit);
      DecodedRecord rec;
      std::string reason;
      DecodeOutcome oc = DecodeRecordAt(bad, 0, &rec, &reason);
      // A flip in the length field may also present as a torn record
      // (larger declared length) — never as a valid one.
      EXPECT_NE(oc, DecodeOutcome::kOk) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(FormatTest, HostileLengthFieldsRejectedWithoutAllocation) {
  // length = 0.
  std::string zero(kRecordHeaderSize, '\0');
  DecodedRecord rec;
  std::string reason;
  EXPECT_EQ(DecodeRecordAt(zero, 0, &rec, &reason), DecodeOutcome::kCorrupt);
  // length = 0xFFFFFFFF: must be rejected by the bound check, not by
  // attempting to read 4 GiB.
  std::string huge("\xFF\xFF\xFF\xFF\x00\x00\x00\x00", 8);
  EXPECT_EQ(DecodeRecordAt(huge, 0, &rec, &reason), DecodeOutcome::kCorrupt);
  EXPECT_NE(reason.find("exceeds"), std::string::npos);
}

TEST(FormatTest, UnknownRecordTypeIsCorrupt) {
  std::string framed = EncodeRecord(RecordType::kDelta, "x");
  framed[kRecordHeaderSize] = 99;  // type byte, now checksum-mismatched
  DecodedRecord rec;
  std::string reason;
  EXPECT_EQ(DecodeRecordAt(framed, 0, &rec, &reason), DecodeOutcome::kCorrupt);
}

// ---- Payload codecs --------------------------------------------------------

TEST(FormatTest, CheckpointPayloadRoundTrip) {
  DoemDatabase db = SampleDb();
  std::vector<Timestamp> times = {Timestamp(100), Timestamp(110),
                                  Timestamp(120), Timestamp(130)};
  auto payload = EncodeCheckpointPayload(db, times);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto decoded = DecodeCheckpointPayload(*payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->db.Equals(db));
  EXPECT_EQ(decoded->times, times);
}

TEST(FormatTest, CheckpointPayloadEmptyTimes) {
  DoemDatabase db = SampleDb(0);
  auto payload = EncodeCheckpointPayload(db, {});
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeCheckpointPayload(*payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->times.empty());
  EXPECT_TRUE(decoded->db.Equals(db));
}

TEST(FormatTest, CheckpointPayloadRejectsGarbage) {
  EXPECT_FALSE(DecodeCheckpointPayload("").ok());
  EXPECT_FALSE(DecodeCheckpointPayload("nonsense\n---\n").ok());
  EXPECT_FALSE(DecodeCheckpointPayload("times 1 2\nmissing separator").ok());
  EXPECT_FALSE(DecodeCheckpointPayload("times 2 1\n---\n").ok());
  EXPECT_FALSE(DecodeCheckpointPayload("times x\n---\n").ok());
}

TEST(FormatTest, DeltaPayloadRoundTrip) {
  ChangeSet ops;
  ops.push_back(ChangeOp::CreNode(NodeId{77}, Value::String("v")));
  ops.push_back(ChangeOp::AddArc(NodeId{1}, "label", NodeId{77}));
  std::string payload = EncodeDeltaPayload(Timestamp(42), ops);
  auto decoded = DecodeDeltaPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->time, Timestamp(42));
  EXPECT_EQ(decoded->ops.size(), 2u);
}

TEST(FormatTest, DeltaPayloadEmptyChangeSet) {
  // A poll that saw no change still commits its time.
  std::string payload = EncodeDeltaPayload(Timestamp(9), {});
  auto decoded = DecodeDeltaPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->time, Timestamp(9));
  EXPECT_TRUE(decoded->ops.empty());
}

TEST(FormatTest, DeltaPayloadRejectsGarbage) {
  EXPECT_FALSE(DecodeDeltaPayload("not a history").ok());
  // Two steps in one delta record is malformed.
  OemHistory h;
  ASSERT_TRUE(h.Append(Timestamp(1), {}).ok());
  ASSERT_TRUE(h.Append(Timestamp(2), {}).ok());
  EXPECT_FALSE(DecodeDeltaPayload(WriteHistoryText(h)).ok());
}

// ---- Files -----------------------------------------------------------------

TEST(MemoryFileTest, AppendReadTruncate) {
  MemoryFile f;
  ASSERT_TRUE(f.Append("abc").ok());
  ASSERT_TRUE(f.Append("def").ok());
  ASSERT_TRUE(f.Sync().ok());
  EXPECT_EQ(f.sync_count(), 1u);
  auto all = f.ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, "abcdef");
  ASSERT_TRUE(f.Truncate(4).ok());
  EXPECT_EQ(f.data(), "abcd");
  auto size = f.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u);
}

TEST(PosixFileTest, AppendReadTruncatePersist) {
  std::string path = ::testing::TempDir() + "/doem_posix_file_test.bin";
  std::remove(path.c_str());
  {
    auto f = PosixFile::Open(path);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_TRUE((*f)->Append("hello ").ok());
    ASSERT_TRUE((*f)->Append("world").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Truncate(5).ok());
  }
  {
    auto f = PosixFile::Open(path);
    ASSERT_TRUE(f.ok());
    auto all = (*f)->ReadAll();
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    EXPECT_EQ(*all, "hello");
    // Append after reopen lands at the (truncated) end.
    ASSERT_TRUE((*f)->Append("!").ok());
    auto again = (*f)->ReadAll();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, "hello!");
  }
  std::remove(path.c_str());
}

// ---- FaultInjectingFile ----------------------------------------------------

TEST(FaultFileTest, CrashAtOffsetLeavesPrefixAndSticks) {
  MemoryFile inner;
  FaultInjectingFile f(&inner);
  f.CrashAtOffset(5);
  ASSERT_TRUE(f.Append("abc").ok());
  Status s = f.Append("defg");  // would end at 7 > 5: crash
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(f.crashed());
  EXPECT_EQ(inner.data(), "abcde");  // prefix up to the crash offset
  EXPECT_FALSE(f.Append("x").ok());  // sticky
  EXPECT_FALSE(f.Sync().ok());
  EXPECT_EQ(f.injected_faults(), 1u);
}

TEST(FaultFileTest, ShortWriteIsOneShot) {
  MemoryFile inner;
  FaultInjectingFile f(&inner);
  f.ShortWriteNext(2);
  EXPECT_FALSE(f.Append("abcdef").ok());
  EXPECT_EQ(inner.data(), "ab");
  // Next append works again (disk recovered, file is torn).
  ASSERT_TRUE(f.Append("XY").ok());
  EXPECT_EQ(inner.data(), "abXY");
}

TEST(FaultFileTest, FailSyncDropsUnsyncedBytes) {
  MemoryFile inner;
  FaultInjectingFile f(&inner);
  ASSERT_TRUE(f.Append("stable").ok());
  ASSERT_TRUE(f.Sync().ok());
  f.FailSync(1, /*drop_unsynced=*/true);
  ASSERT_TRUE(f.Append("doomed").ok());
  EXPECT_FALSE(f.Sync().ok());
  // The unsynced tail never reached the platter.
  EXPECT_EQ(inner.data(), "stable");
}

TEST(FaultFileTest, FlipBitCorruptsReadPathOnly) {
  MemoryFile inner;
  FaultInjectingFile f(&inner);
  ASSERT_TRUE(f.Append("AAAA").ok());
  f.FlipBit(2, 0);
  auto read = f.ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::string("AA") + static_cast<char>('A' ^ 1) + "A");
  EXPECT_EQ(inner.data(), "AAAA");  // the medium itself is untouched
}

// ---- LogWriter / LogReader -------------------------------------------------

TEST(LogTest, WriteThenReadBack) {
  MemoryFile f;
  LogWriter writer(&f, 0, /*sync_each_append=*/true);
  ASSERT_TRUE(writer.WriteHeader().ok());
  ASSERT_TRUE(writer.AppendRecord(RecordType::kCheckpoint, "one").ok());
  ASSERT_TRUE(writer.AppendRecord(RecordType::kDelta, "two").ok());
  EXPECT_EQ(writer.records_written(), 2u);
  EXPECT_EQ(writer.offset(), f.data().size());

  LogReader reader(f.data());
  DecodedRecord rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.type, RecordType::kCheckpoint);
  EXPECT_EQ(rec.payload, "one");
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.type, RecordType::kDelta);
  EXPECT_EQ(rec.payload, "two");
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.status().ok()) << reader.status().ToString();
}

TEST(LogTest, WriterFailureIsSticky) {
  MemoryFile inner;
  FaultInjectingFile f(&inner);
  LogWriter writer(&f, 0, /*sync_each_append=*/true);
  ASSERT_TRUE(writer.WriteHeader().ok());
  f.CrashAtOffset(10);
  EXPECT_FALSE(writer.AppendRecord(RecordType::kDelta, "payload").ok());
  EXPECT_TRUE(writer.broken());
  // Even after the file would accept writes again, the writer refuses:
  // its offset bookkeeping no longer matches the torn file.
  Status s = writer.AppendRecord(RecordType::kDelta, "more");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), writer.broken_status().message());
}

TEST(LogTest, ReaderStopsAtTornTail) {
  MemoryFile f;
  LogWriter writer(&f, 0, true);
  ASSERT_TRUE(writer.WriteHeader().ok());
  ASSERT_TRUE(writer.AppendRecord(RecordType::kDelta, "whole").ok());
  std::string bytes = f.data() + "torn";
  LogReader reader(bytes);
  DecodedRecord rec;
  EXPECT_TRUE(reader.Next(&rec));
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.status().ok());
}

// ---- Store facade ----------------------------------------------------------

StoreOptions TestOptions(size_t interval = 64) {
  StoreOptions o;
  o.checkpoint_interval = interval;
  return o;
}

TEST(StoreTest, FreshFileHasNoState) {
  MemoryFile f;
  auto s = Store::Open(&f, TestOptions());
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_FALSE((*s)->has_state());
  // The magic header is written eagerly.
  EXPECT_EQ(f.data(), kStoreMagic);
  // Append before Start is refused.
  DoemDatabase db = SampleDb(0);
  EXPECT_FALSE((*s)->Append(Timestamp(1), {}, db).ok());
}

TEST(StoreTest, StartAppendReopenRecovers) {
  MemoryFile f;
  DatabaseOptions dopts;
  dopts.seed = 3;
  dopts.node_count = 15;
  OemDatabase base = RandomDatabase(dopts);
  HistoryOptions hopts;
  hopts.seed = 4;
  hopts.steps = 6;
  OemHistory h = RandomHistory(base, hopts);

  auto live = DoemDatabase::FromSnapshot(base);
  ASSERT_TRUE(live.ok());
  {
    auto s = Store::Open(&f, TestOptions());
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->Start(*live).ok());
    for (const auto& step : h.steps()) {
      ASSERT_TRUE(live->ApplyChangeSet(step.time, step.changes).ok());
      ASSERT_TRUE((*s)->Append(step.time, step.changes, *live).ok());
    }
  }  // "crash": the Store object dies, the bytes survive.

  auto reopened = Store::Open(&f, TestOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->has_state());
  EXPECT_FALSE((*reopened)->recovery().truncated);
  std::vector<Timestamp> want_times;
  for (const auto& step : h.steps()) want_times.push_back(step.time);
  EXPECT_EQ((*reopened)->recovered_times(), want_times);
  DoemDatabase recovered = (*reopened)->TakeRecoveredDb();
  EXPECT_TRUE(recovered.Equals(*live));
  // And appending after recovery continues the same history.
  ASSERT_TRUE(live->ApplyChangeSet(Timestamp(10000), {}).ok());
  EXPECT_TRUE((*reopened)->Append(Timestamp(10000), {}, *live).ok());
}

TEST(StoreTest, CheckpointIntervalBoundsReplay) {
  MemoryFile f;
  DoemDatabase live = SampleDb(0);
  auto s = Store::Open(&f, TestOptions(/*interval=*/3));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Start(live).ok());
  for (int i = 1; i <= 7; ++i) {
    ASSERT_TRUE(live.ApplyChangeSet(Timestamp(1000 + i), {}).ok());
    ASSERT_TRUE((*s)->Append(Timestamp(1000 + i), {}, live).ok());
  }
  // 1 initial checkpoint + 7 deltas + 2 periodic checkpoints (after the
  // 3rd and 6th delta).
  LogReader reader(f.data());
  size_t checkpoints = 0, deltas = 0;
  DecodedRecord rec;
  while (reader.Next(&rec)) {
    (rec.type == RecordType::kCheckpoint ? checkpoints : deltas)++;
  }
  EXPECT_EQ(checkpoints, 3u);
  EXPECT_EQ(deltas, 7u);

  auto reopened = Store::Open(&f, TestOptions(3));
  ASSERT_TRUE(reopened.ok());
  // Recovery replays only the deltas after the last checkpoint.
  EXPECT_EQ((*reopened)->recovery().replayed, 1u);
  EXPECT_EQ((*reopened)->recovered_times().size(), 7u);
  EXPECT_TRUE((*reopened)->TakeRecoveredDb().Equals(live));
}

TEST(StoreTest, AppendRejectsNonMonotonicTime) {
  MemoryFile f;
  DoemDatabase live = SampleDb(0);
  auto s = Store::Open(&f, TestOptions());
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Start(live).ok());
  ASSERT_TRUE(live.ApplyChangeSet(Timestamp(100), {}).ok());
  ASSERT_TRUE((*s)->Append(Timestamp(100), {}, live).ok());
  EXPECT_FALSE((*s)->Append(Timestamp(100), {}, live).ok());
  EXPECT_FALSE((*s)->Append(Timestamp(99), {}, live).ok());
  // The store is NOT broken by a rejected argument — only by I/O.
  EXPECT_FALSE((*s)->broken());
}

TEST(StoreTest, WriteFailureIsStickyAndReopenRepairs) {
  MemoryFile inner;
  FaultInjectingFile f(&inner);
  DoemDatabase live = SampleDb(0);
  auto s = Store::Open(&f, TestOptions());
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Start(live).ok());
  uint64_t committed = (*s)->size();

  f.CrashAtOffset(committed + 5);  // tear the next record
  ASSERT_TRUE(live.ApplyChangeSet(Timestamp(50), {}).ok());
  EXPECT_FALSE((*s)->Append(Timestamp(50), {}, live).ok());
  EXPECT_TRUE((*s)->broken());
  ASSERT_TRUE(live.ApplyChangeSet(Timestamp(51), {}).ok());
  EXPECT_FALSE((*s)->Append(Timestamp(51), {}, live).ok());

  // Reopen over the inner file: the torn tail is truncated, the
  // committed prefix survives, appends work again.
  auto reopened = Store::Open(&inner, TestOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->recovery().truncated);
  EXPECT_EQ((*reopened)->size(), committed);
  EXPECT_EQ(inner.data().size(), committed);
  EXPECT_TRUE((*reopened)->has_state());
  EXPECT_TRUE((*reopened)->Append(Timestamp(50), {}, live).ok());
}

TEST(StoreTest, MetricsAreRecorded) {
  obs::MetricsRegistry metrics;
  StoreOptions opts = TestOptions(2);
  opts.metrics = &metrics;
  MemoryFile f;
  DoemDatabase live = SampleDb(0);
  auto s = Store::Open(&f, opts);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Start(live).ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(live.ApplyChangeSet(Timestamp(i), {}).ok());
    ASSERT_TRUE((*s)->Append(Timestamp(i), {}, live).ok());
  }
  // 1 initial + 2 periodic checkpoints, 4 deltas.
  EXPECT_EQ(metrics.CounterValue("store.records_written"), 7u);
  EXPECT_EQ(metrics.CounterValue("store.checkpoints_written"), 3u);
  EXPECT_GT(metrics.CounterValue("store.bytes_written"), 0u);
  EXPECT_EQ(metrics.CounterValue("store.fsyncs"), 7u);
  EXPECT_EQ(metrics.CounterValue("store.append_failures"), 0u);
  EXPECT_EQ(metrics.CounterValue("store.recovery_truncations"), 0u);

  // A truncated reopen bumps the recovery counter.
  *f.mutable_data() += "torn tail";
  auto reopened = Store::Open(&f, opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(metrics.CounterValue("store.recovery_truncations"), 1u);
}

TEST(StoreTest, BadMagicRefusesToOpen) {
  MemoryFile f(std::string("NOTMAGIC") + "rest of file");
  auto s = Store::Open(&f, TestOptions());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kParseError);
  // The file was not modified ("not ours to repair").
  EXPECT_EQ(f.data(), std::string("NOTMAGIC") + "rest of file");
}

// ---- Managers --------------------------------------------------------------

TEST(StoreManagerTest, MemoryManagerSurvivesSimulatedCrash) {
  MemoryStoreManager manager(TestOptions());
  DoemDatabase live = SampleDb(0);
  {
    auto s = manager.OpenStore("group-a");
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->Start(live).ok());
    ASSERT_TRUE(live.ApplyChangeSet(Timestamp(5), {}).ok());
    ASSERT_TRUE((*s)->Append(Timestamp(5), {}, live).ok());
  }
  auto s2 = manager.OpenStore("group-a");
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE((*s2)->has_state());
  EXPECT_TRUE((*s2)->TakeRecoveredDb().Equals(live));
  // Distinct keys are distinct stores.
  auto other = manager.OpenStore("group-b");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE((*other)->has_state());
}

TEST(StoreManagerTest, DirectoryManagerSanitizesKeysAndPersists) {
  std::string dir = ::testing::TempDir() + "/doem_store_mgr_test";
  DirectoryStoreManager manager(dir, TestOptions());
  // QSS group keys embed '\x1f' and query text; both must map to a
  // portable file name, and distinct keys to distinct files.
  std::string key1 = std::string("select X\x1f") + "2";
  std::string key2 = std::string("select X\x1f") + "3";
  EXPECT_NE(manager.PathFor(key1), manager.PathFor(key2));
  EXPECT_EQ(manager.PathFor(key1).find('\x1f'), std::string::npos);
  EXPECT_EQ(manager.PathFor("a/b"), dir + "/a%2Fb.doemstore");

  DoemDatabase live = SampleDb(2);
  {
    auto s = manager.OpenStore(key1);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    ASSERT_TRUE((*s)->Start(live).ok());
  }
  // A brand-new manager instance (fresh process) finds the same file.
  DirectoryStoreManager manager2(dir, TestOptions());
  auto s = manager2.OpenStore(key1);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->has_state());
  EXPECT_TRUE((*s)->TakeRecoveredDb().Equals(live));
  std::remove(manager.PathFor(key1).c_str());
}

// ---- Time travel -----------------------------------------------------------

TEST(TimeTravelTest, AsOfMatchesSnapshotAt) {
  DoemDatabase db = SampleDb(5);
  for (Timestamp t : db.AllTimestamps()) {
    auto past = AsOf(db, t);
    ASSERT_TRUE(past.ok()) << past.status().ToString();
    EXPECT_TRUE(Isomorphic(past->CurrentSnapshot(), db.SnapshotAt(t)));
    // The reconstruction carries no annotations: it is a plain snapshot.
    EXPECT_TRUE(past->AllTimestamps().empty());
  }
}

TEST(TimeTravelTest, BetweenFullRangeIsWholeHistory) {
  DoemDatabase db = SampleDb(5);
  auto whole = Between(db, Timestamp::NegativeInfinity(),
                       Timestamp::PositiveInfinity());
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_TRUE(whole->Equals(db));
}

TEST(TimeTravelTest, BetweenWindowsCarryOnlyWindowAnnotations) {
  DoemDatabase db = SampleDb(6);
  std::vector<Timestamp> times = db.AllTimestamps();
  ASSERT_GE(times.size(), 3u);
  Timestamp t1 = times[1];
  Timestamp t2 = times[times.size() - 2];
  auto window = Between(db, t1, t2);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  // Every annotation in the window database falls in (t1, t2].
  for (Timestamp t : window->AllTimestamps()) {
    EXPECT_LT(t1, t);
    EXPECT_LE(t, t2);
  }
  // Its final state is the t2 snapshot, its base the t1 snapshot.
  EXPECT_TRUE(Isomorphic(window->CurrentSnapshot(), db.SnapshotAt(t2)));
  EXPECT_TRUE(Isomorphic(window->OriginalSnapshot(), db.SnapshotAt(t1)));
}

TEST(TimeTravelTest, BetweenRejectsInvertedInterval) {
  DoemDatabase db = SampleDb(2);
  EXPECT_FALSE(Between(db, Timestamp(10), Timestamp(5)).ok());
}

}  // namespace
}  // namespace store
}  // namespace doem
