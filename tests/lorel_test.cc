#include <gtest/gtest.h>

#include <algorithm>

#include "lorel/coerce.h"
#include "lorel/lexer.h"
#include "lorel/lorel.h"
#include "testing/guide.h"

namespace doem {
namespace lorel {
namespace {

using doem::testing::BuildGuide;
using doem::testing::Guide;

// Convenience: run a query over a database, expecting success.
QueryResult RunOn(const OemDatabase& db, const std::string& text) {
  OemView view(db);
  auto r = RunQuery(text, view);
  EXPECT_TRUE(r.ok()) << text << "\n" << r.status().ToString();
  if (!r.ok()) return QueryResult{};
  return std::move(r).value();
}

std::vector<NodeId> NodeColumn(const QueryResult& r, size_t col = 0) {
  std::vector<NodeId> out;
  for (const auto& row : r.rows) {
    if (col < row.size() && row[col].kind == RtVal::Kind::kNode) {
      out.push_back(row[col].node);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, TokenKinds) {
  auto toks = Lex("select x.y-z, 10 2.5 \"s\" 4Jan97 <= < > >= = != <> # t[-1]");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kIdent, TokenKind::kDot,
                       TokenKind::kIdent, TokenKind::kComma, TokenKind::kInt,
                       TokenKind::kReal, TokenKind::kString, TokenKind::kDate,
                       TokenKind::kLe, TokenKind::kLAngle, TokenKind::kRAngle,
                       TokenKind::kGe, TokenKind::kEq, TokenKind::kNe,
                       TokenKind::kNe, TokenKind::kHash, TokenKind::kIdent,
                       TokenKind::kLBracket, TokenKind::kMinus,
                       TokenKind::kInt, TokenKind::kRBracket,
                       TokenKind::kEnd}));
  EXPECT_EQ((*toks)[3].text, "y-z") << "'-' joins identifiers";
}

TEST(LexerTest, DateLiteral) {
  auto toks = Lex("4Jan97");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].date_value, Timestamp::FromDate(1997, 1, 4));
  EXPECT_FALSE(Lex("4Xyz97").ok());
}

TEST(LexerTest, CommentsAndErrors) {
  auto toks = Lex("select -- a comment\n x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks->size(), 3u);
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a ~ b").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, PaperQueriesParse) {
  const char* queries[] = {
      // Example 4.1.
      "select guide.restaurant where guide.restaurant.price < 20.5",
      // Example 4.2.
      "select guide.<add>restaurant",
      // Example 4.3 (both the sugared and rewritten forms).
      "select guide.<add at T>restaurant where T < 4Jan97",
      "select R from guide.<add at T>restaurant R where T < 4Jan97",
      // Example 4.4.
      "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
      "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
      // Example 4.5.
      "select N from guide.restaurant R, R.name N "
      "where R.<add at T>price = \"moderate\" and T >= 1Jan97",
      // Section 6 polling query body.
      "select guide.restaurant "
      "where guide.restaurant.address.# like \"%Lytton%\"",
      // Section 6 filter query body.
      "select LyttonRestaurants.restaurant<cre at T> where T > t[-1]",
  };
  for (const char* q : queries) {
    auto r = ParseQuery(q);
    EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
  }
}

TEST(ParserTest, RoundTripToString) {
  auto q = ParseQuery(
      "select N, T from guide.restaurant R, R.name N "
      "where (R.<add at T>price = \"moderate\" or not T >= 1Jan97) "
      "and exists C in R.comment : C like \"%full%\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString() << "\n" << q2.status().ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(ParserTest, AnnotationPositionsEnforced) {
  EXPECT_FALSE(ParseQuery("select guide.<cre>restaurant").ok())
      << "cre is a node annotation";
  EXPECT_FALSE(ParseQuery("select guide.restaurant<add>").ok())
      << "add is an arc annotation";
  EXPECT_FALSE(ParseQuery("select guide.<add>#").ok())
      << "no annotations on wildcards";
}

TEST(ParserTest, ComparisonVsAnnotationDisambiguation) {
  // '<' after a path label can be either a node annotation or a
  // comparison; both must parse.
  auto q1 = ParseQuery("select x where x.price < 20");
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseQuery("select x.price<upd at T> where T < 4Jan97");
  ASSERT_TRUE(q2.ok());
  EXPECT_NE(q2->ToString().find("<upd at T>"), std::string::npos);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("from x").ok());
  EXPECT_FALSE(ParseQuery("select").ok());
  EXPECT_FALSE(ParseQuery("select x where").ok());
  EXPECT_FALSE(ParseQuery("select x where x <").ok());
  EXPECT_FALSE(ParseQuery("select x extra").ok());
  EXPECT_FALSE(ParseQuery("select t[1]").ok()) << "t[i] needs i <= 0";
  EXPECT_FALSE(ParseQuery("select x where exists in y : 1 = 1").ok());
}

// ----------------------------------------------------------- Normalization

TEST(NormalizeTest, SharedPrefixesUnify) {
  // Example 4.4: both paths range over the same restaurant.
  auto nq = ParseAndNormalize(
      "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
      "guide.restaurant.name N where T >= 1Jan97 and NV > 15");
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  // Defs: root.guide, guide.restaurant, restaurant.price<upd>,
  // restaurant.name — exactly 4, not 6.
  EXPECT_EQ(nq->defs.size(), 4u) << nq->ToString();
  EXPECT_EQ(nq->defs[2].source_var, nq->defs[3].source_var)
      << "price and name hang off the same restaurant variable";
}

TEST(NormalizeTest, CanonicalizationFillsFreshVariables) {
  auto nq = ParseAndNormalize("select guide.<add>restaurant");
  ASSERT_TRUE(nq.ok());
  const RangeDef& def = nq->defs.back();
  ASSERT_TRUE(def.step.arc_annot.has_value());
  EXPECT_FALSE(def.step.arc_annot->time_var.empty())
      << "canonical form has a time variable, as in Section 4.2.1";
  EXPECT_EQ(nq->var_kinds.at(def.step.arc_annot->time_var),
            VarKind::kValue);
}

TEST(NormalizeTest, PlainWherePathsStayLazyButCorrelate) {
  auto nq = ParseAndNormalize(
      "select guide.restaurant where guide.restaurant.price < 20.5");
  ASSERT_TRUE(nq.ok());
  // Only the select path is hoisted (guide, restaurant); the where path
  // evaluates lazily at the comparison, starting from the shared
  // guide.restaurant variable.
  EXPECT_EQ(nq->defs.size(), 2u) << nq->ToString();
  ASSERT_TRUE(nq->where != nullptr);
  ASSERT_EQ(nq->where->lhs->kind, Expr::Kind::kPath);
  EXPECT_TRUE(nq->where->lhs->path.head_is_var);
  EXPECT_EQ(nq->where->lhs->path.steps[0].label, nq->defs[1].var);
}

TEST(NormalizeTest, WherePathsWithUserVariablesAreHoisted) {
  // Example 4.5: T spans two conjuncts, so the path binding it must be
  // hoisted to whole-where scope.
  auto nq = ParseAndNormalize(
      "select N from guide.restaurant R, R.name N "
      "where R.<add at T>price = \"moderate\" and T >= 1Jan97");
  ASSERT_TRUE(nq.ok());
  // guide, R, N, and the hoisted <add at T>price def.
  EXPECT_EQ(nq->defs.size(), 4u) << nq->ToString();
  EXPECT_EQ(nq->defs.back().step.arc_annot->time_var, "T");
}

TEST(NormalizeTest, DefaultLabels) {
  auto nq = ParseAndNormalize(
      "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
      "guide.restaurant.name N");
  ASSERT_TRUE(nq.ok());
  EXPECT_EQ(nq->labels,
            (std::vector<std::string>{"name", "update-time", "new-value"}));
}

TEST(NormalizeTest, AsLabelOverrides) {
  auto nq = ParseAndNormalize("select guide.restaurant.name as nom");
  ASSERT_TRUE(nq.ok());
  EXPECT_EQ(nq->labels, std::vector<std::string>{"nom"});
}

TEST(NormalizeTest, DuplicateVariableRejected) {
  EXPECT_FALSE(
      ParseAndNormalize("select R from guide.restaurant R, guide.name R")
          .ok());
}

// ----------------------------------------------------------- Coercion

TEST(CoerceTest, NumericCoercion) {
  EXPECT_TRUE(CompareValues(Value::Int(10), BinOp::kLt, Value::Real(20.5)));
  EXPECT_TRUE(CompareValues(Value::Real(1.5), BinOp::kGt, Value::Int(1)));
  EXPECT_TRUE(CompareValues(Value::Int(3), BinOp::kEq, Value::Real(3.0)));
  EXPECT_TRUE(CompareValues(Value::String("7"), BinOp::kLt, Value::Int(8)));
  EXPECT_FALSE(
      CompareValues(Value::String("moderate"), BinOp::kLt, Value::Real(20.5)))
      << "failed coercion returns false, not an error (Example 4.1)";
}

TEST(CoerceTest, StringAndLike) {
  EXPECT_TRUE(
      CompareValues(Value::String("abc"), BinOp::kLt, Value::String("abd")));
  EXPECT_TRUE(CompareValues(Value::String("120 Lytton"), BinOp::kLike,
                            Value::String("%Lytton%")));
  EXPECT_FALSE(CompareValues(Value::String("120 Lytton"), BinOp::kLike,
                             Value::String("Lytton")));
  EXPECT_TRUE(CompareValues(Value::Int(120), BinOp::kLike,
                            Value::String("1_0")));
}

TEST(CoerceTest, TimestampCoercion) {
  Value t = Value::Time(Timestamp::FromDate(1997, 1, 5));
  EXPECT_TRUE(CompareValues(t, BinOp::kGt,
                            Value::Time(Timestamp::FromDate(1997, 1, 1))));
  EXPECT_TRUE(CompareValues(t, BinOp::kEq, Value::String("5Jan97")));
  EXPECT_TRUE(CompareValues(Value::String("1997-01-04"), BinOp::kLt, t));
  EXPECT_FALSE(CompareValues(t, BinOp::kEq, Value::String("not a date")));
}

TEST(CoerceTest, ComplexAndBool) {
  EXPECT_FALSE(CompareValues(Value::Complex(), BinOp::kEq, Value::Complex()));
  EXPECT_TRUE(CompareValues(Value::Bool(true), BinOp::kEq, Value::Bool(true)));
  EXPECT_FALSE(CompareValues(Value::Bool(true), BinOp::kLt, Value::Bool(false)))
      << "booleans are not ordered";
  EXPECT_FALSE(CompareValues(Value::Bool(true), BinOp::kEq, Value::Int(1)));
}

// ----------------------------------------------------------- Evaluation

TEST(EvalTest, Example41PriceBelow20_5) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(
      g.db, "select guide.restaurant where guide.restaurant.price < 20.5");
  // Only Bangkok Cuisine: integer 10 coerces; "moderate" fails; the third
  // restaurant doesn't exist yet (no history applied here) — Figure 2 has
  // two restaurants.
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{g.bangkok});
}

TEST(EvalTest, SelectAllRestaurants) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db, "select guide.restaurant");
  EXPECT_EQ(NodeColumn(r), (std::vector<NodeId>{g.janta, g.bangkok}));
}

TEST(EvalTest, FromClauseAndExplicitVariables) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db,
                      "select N from guide.restaurant R, R.name N "
                      "where R.price = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].kind, RtVal::Kind::kNode);
  EXPECT_EQ(*g.db.GetValue(r.rows[0][0].node), Value::String("Bangkok Cuisine"));
}

TEST(EvalTest, SharedPrefixCorrelation) {
  // price and name correlate through the shared guide.restaurant prefix:
  // no cross-product of Bangkok's price with Janta's name.
  Guide g = BuildGuide();
  QueryResult r =
      RunOn(g.db,
          "select guide.restaurant.name where guide.restaurant.price = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(*g.db.GetValue(r.rows[0][0].node),
            Value::String("Bangkok Cuisine"));
}

TEST(EvalTest, MissingSubobjectMeansFalseNotError) {
  Guide g = BuildGuide();
  // No restaurant has a "rating" subobject.
  QueryResult r = RunOn(
      g.db, "select guide.restaurant where guide.restaurant.rating = 5");
  EXPECT_TRUE(r.rows.empty());
}

TEST(EvalTest, WildcardHash) {
  Guide g = BuildGuide();
  // The Section 6 polling query: '#' matches a path of length >= 0, so it
  // covers both the atomic address "120 Lytton" (length 0) and the street
  // "Lytton" inside Janta's complex address.
  QueryResult r = RunOn(g.db,
                      "select guide.restaurant where "
                      "guide.restaurant.address.# like \"%Lytton%\"");
  EXPECT_EQ(NodeColumn(r), (std::vector<NodeId>{g.janta, g.bangkok}));
}

TEST(EvalTest, WildcardHandlesCycles) {
  Guide g = BuildGuide();
  // guide.# traverses the parking/nearby-eats cycle without diverging.
  QueryResult r = RunOn(g.db, "select guide.#");
  // Every node reachable from the guide object, including itself.
  EXPECT_EQ(r.rows.size(), g.db.node_count() - 1)
      << "all nodes except the anonymous root";
}

TEST(EvalTest, SharedSubobjectReachedTwiceOnce) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db, "select guide.restaurant.parking");
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{g.parking})
      << "n7 selected via both restaurants, deduplicated";
}

TEST(EvalTest, MultiItemSelectPackaging) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db,
                      "select R.name, R.price from guide.restaurant R "
                      "where R.price < 20.5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.labels, (std::vector<std::string>{"name", "price"}));
  // Packaging: root --answer--> tuple --name--> ..., --price--> ...
  const OemDatabase& ans = r.answer;
  std::vector<NodeId> tuples = ans.Children(ans.root(), "answer");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(*ans.GetValue(ans.Child(tuples[0], "name")),
            Value::String("Bangkok Cuisine"));
  EXPECT_EQ(*ans.GetValue(ans.Child(tuples[0], "price")), Value::Int(10));
}

TEST(EvalTest, SingleItemPackagingCopiesSubgraph) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db, "select guide.restaurant where "
                            "guide.restaurant.name = \"Janta\"");
  const OemDatabase& ans = r.answer;
  std::vector<NodeId> rs = ans.Children(ans.root(), "restaurant");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0], g.janta) << "ids preserved";
  // Recursively includes subobjects — the complex address and the shared
  // parking object, with the cycle intact.
  EXPECT_EQ(*ans.GetValue(ans.Child(ans.Child(rs[0], "address"), "street")),
            Value::String("Lytton"));
  NodeId parking = ans.Child(rs[0], "parking");
  ASSERT_EQ(parking, g.parking);
  EXPECT_EQ(ans.Child(parking, "nearby-eats"), g.bangkok);
  EXPECT_TRUE(ans.Validate().ok());
}

TEST(EvalTest, ExplicitExists) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db,
                      "select R from guide.restaurant R where "
                      "exists A in R.address : A.city = \"Palo Alto\"");
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{g.janta});
}

TEST(EvalTest, NotAndOr) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db,
                      "select R from guide.restaurant R where "
                      "R.cuisine = \"Indian\" or R.price = \"moderate\"");
  EXPECT_EQ(NodeColumn(r).size(), 2u);

  QueryResult r2 = RunOn(g.db,
                       "select R from guide.restaurant R, R.name N where "
                       "not N = \"Janta\"");
  EXPECT_EQ(NodeColumn(r2), std::vector<NodeId>{g.bangkok});
}

TEST(EvalTest, ComparingComplexObjectIsFalse) {
  Guide g = BuildGuide();
  // Janta's address is complex: comparing it to a string is false, not an
  // error.
  QueryResult r = RunOn(g.db,
                      "select R from guide.restaurant R where "
                      "R.address = \"120 Lytton\"");
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{g.bangkok});
}

TEST(EvalTest, UnknownEntryNameYieldsEmpty) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db, "select nonexistent.thing");
  EXPECT_TRUE(r.rows.empty());
}

TEST(EvalTest, ChorelOverPlainOemIsUnsupported) {
  Guide g = BuildGuide();
  OemView view(g.db);
  auto r = RunQuery("select guide.<add>restaurant", view);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(EvalTest, TimeRefWithoutPollingTimesFails) {
  Guide g = BuildGuide();
  OemView view(g.db);
  auto r = RunQuery("select guide.restaurant where t[0] > 1Jan97", view);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(EvalTest, TimeRefResolution) {
  Guide g = BuildGuide();
  OemView view(g.db);
  std::vector<Timestamp> times = {Timestamp(10), Timestamp(20)};
  EvalOptions opts;
  opts.polling_times = &times;
  // t[0]=20, t[-1]=10, t[-2]=-inf.
  auto r = RunQuery(
      "select guide.restaurant where t[0] = 20 and t[-1] = 10", view, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  auto r2 = RunQuery("select guide.restaurant where t[-2] < 1Jan1900", view,
                     opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.size(), 2u) << "t[-2] is negative infinity";
}

TEST(EvalTest, MaxRowsGuard) {
  Guide g = BuildGuide();
  OemView view(g.db);
  EvalOptions opts;
  opts.max_rows = 1;
  auto r = RunQuery("select guide.restaurant", view, opts);
  EXPECT_FALSE(r.ok());
}

TEST(EvalTest, SelectLiteral) {
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db, "select 42 as answer-to-everything");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value, Value::Int(42));
  EXPECT_EQ(r.labels[0], "answer-to-everything");
}

TEST(EvalTest, LikeOnPollingQueryShape) {
  // The full Section 6 polling query over the Guide database.
  Guide g = BuildGuide();
  QueryResult r = RunOn(g.db,
                      "select guide.restaurant where "
                      "guide.restaurant.address.# like \"%Lytton%\"");
  EXPECT_EQ(r.rows.size(), 2u);
  QueryResult r2 = RunOn(g.db,
                       "select guide.restaurant where "
                       "guide.restaurant.address.# like \"%Castro%\"");
  EXPECT_TRUE(r2.rows.empty());
}

}  // namespace
}  // namespace lorel
}  // namespace doem
namespace doem {
namespace lorel {
namespace {

TEST(EvalTest, PercentSingleArcWildcard) {
  doem::testing::Guide g = doem::testing::BuildGuide();
  // guide.% : every direct child of the guide object (the restaurants).
  QueryResult r = RunOn(g.db, "select guide.%");
  EXPECT_EQ(r.rows.size(), 2u);
  // guide.restaurant.%.city : only Janta's complex address has a city.
  QueryResult r2 = RunOn(g.db, "select guide.restaurant.%.city");
  ASSERT_EQ(r2.rows.size(), 1u);
  EXPECT_EQ(*g.db.GetValue(r2.rows[0][0].node), Value::String("Palo Alto"));
  // Unlike '#', '%' does not match length-0 paths.
  QueryResult r3 = RunOn(g.db,
                         "select R from guide.restaurant R "
                         "where R.address.% like \"%Lytton%\"");
  EXPECT_EQ(r3.rows.size(), 1u) << "only the complex address has depth 2";
  EXPECT_TRUE(ParseQuery("select guide.<add>%").ok())
      << "annotations on '%' are the Section 7 extension";
  EXPECT_FALSE(ParseQuery("select guide.<add>#").ok())
      << "annotations on '#' stay unsupported";
}

}  // namespace
}  // namespace lorel
}  // namespace doem
namespace doem {
namespace lorel {
namespace {

TEST(EvalTest, FromItemAliasingSharesBindings) {
  // Two from-items with the same textual path: the second variable is an
  // alias of the first (Lorel prefix sharing), so conditions through one
  // constrain the other.
  doem::testing::Guide g = doem::testing::BuildGuide();
  QueryResult r = RunOn(g.db,
                        "select X from guide.restaurant R, "
                        "guide.restaurant X where R.price = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].node, g.bangkok);
}

TEST(EvalTest, ExistsRangeFromRootEntry) {
  doem::testing::Guide g = doem::testing::BuildGuide();
  QueryResult r = RunOn(g.db,
                        "select 1 as yes where "
                        "exists X in guide.restaurant : X.price = 10");
  EXPECT_EQ(r.rows.size(), 1u);
  QueryResult r2 = RunOn(g.db,
                         "select 1 as yes where "
                         "exists X in guide.cinema : X.price = 10");
  EXPECT_TRUE(r2.rows.empty());
}

TEST(EvalTest, NestedExists) {
  doem::testing::Guide g = doem::testing::BuildGuide();
  QueryResult r = RunOn(
      g.db,
      "select R from guide.restaurant R where "
      "exists A in R.address : exists C in A.city : C = \"Palo Alto\"");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].node, g.janta);
}

TEST(EvalTest, ValueRowPackagingUsesAtomNodes) {
  doem::testing::Guide g = doem::testing::BuildGuide();
  QueryResult r = RunOn(g.db,
                        "select P from guide.restaurant.price P "
                        "where P = 10");
  // Single-item node select: packaged under the path's last label.
  ASSERT_EQ(r.labels, std::vector<std::string>{"price"});
  const OemDatabase& ans = r.answer;
  std::vector<NodeId> prices = ans.Children(ans.root(), "price");
  ASSERT_EQ(prices.size(), 1u);
  EXPECT_EQ(*ans.GetValue(prices[0]), Value::Int(10));
}

TEST(EvalTest, SelectSameNodeTwiceInOneRow) {
  doem::testing::Guide g = doem::testing::BuildGuide();
  QueryResult r = RunOn(g.db,
                        "select R, R from guide.restaurant R "
                        "where R.price = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].node, r.rows[0][1].node);
  EXPECT_TRUE(r.answer.Validate().ok());
}

TEST(EvalTest, KeywordsAreCaseInsensitive) {
  doem::testing::Guide g = doem::testing::BuildGuide();
  QueryResult r = RunOn(g.db,
                        "SELECT R FROM guide.restaurant R "
                        "WHERE R.price = 10 AND NOT R.cuisine = \"Thai\"");
  EXPECT_EQ(r.rows.size(), 1u);
}

}  // namespace
}  // namespace lorel
}  // namespace doem
