#include <gtest/gtest.h>

#include "doem/annotation_index.h"
#include "testing/generators.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::GuideHistory;
using testing::GuideT1;
using testing::GuideT2;
using testing::GuideT3;

DoemDatabase GuideDoem() {
  auto d = DoemDatabase::Build(BuildGuide().db, GuideHistory());
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(AnnotationIndexTest, GuideRanges) {
  DoemDatabase d = GuideDoem();
  AnnotationIndex index(d);
  EXPECT_EQ(index.entry_count(), 8u)
      << "3 cre + 1 upd + 3 add + 1 rem (Example 3.1)";

  auto created_t1 = index.CreatedIn(GuideT1(), GuideT1());
  ASSERT_EQ(created_t1.size(), 2u);
  auto created_all =
      index.CreatedIn(Timestamp::NegativeInfinity(),
                      Timestamp::PositiveInfinity());
  EXPECT_EQ(created_all.size(), 3u);

  auto updated = index.UpdatedIn(GuideT1(), GuideT3());
  ASSERT_EQ(updated.size(), 1u);
  EXPECT_EQ(updated[0].node, NodeId{1});

  auto removed = index.RemovedIn(GuideT2(), GuideT3());
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].arc, (Arc{6, "parking", 7}));
  EXPECT_TRUE(index.RemovedIn(GuideT1(), GuideT2()).empty());

  auto added_late = index.AddedIn(GuideT2(), GuideT3());
  ASSERT_EQ(added_late.size(), 1u);
  EXPECT_EQ(added_late[0].arc.label, "comment");
}

TEST(AnnotationIndexTest, EmptyAndDegenerateRanges) {
  DoemDatabase d = GuideDoem();
  AnnotationIndex index(d);
  EXPECT_TRUE(index.CreatedIn(Timestamp(0), Timestamp(0)).empty());
  EXPECT_TRUE(
      index.AddedIn(GuideT3(), GuideT1()).empty());  // inverted range
}

TEST(AnnotationIndexTest, AgreesWithScansOnRandomDatabases) {
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    testing::DatabaseOptions dbo;
    dbo.seed = seed;
    OemDatabase base = testing::RandomDatabase(dbo);
    testing::HistoryOptions ho;
    ho.seed = seed + 100;
    ho.steps = 12;
    auto d = DoemDatabase::Build(base, testing::RandomHistory(base, ho));
    ASSERT_TRUE(d.ok());
    AnnotationIndex index(*d);
    for (auto [lo, hi] : {std::pair<int64_t, int64_t>{100, 150},
                          {120, 220},
                          {0, 1000},
                          {500, 400}}) {
      Timestamp from(lo), to(hi);
      auto a = index.CreatedIn(from, to);
      auto b = ScanCreatedIn(*d, from, to);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
      }
      auto c = index.AddedIn(from, to);
      auto e = ScanAddedIn(*d, from, to);
      ASSERT_EQ(c.size(), e.size());
      for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c[i].time, e[i].time);
        EXPECT_EQ(c[i].arc, e[i].arc);
      }
    }
  }
}

}  // namespace
}  // namespace doem
