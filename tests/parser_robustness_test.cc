// Adversarial-corpus regression tests for the OEM/DOEM text parsers
// (DESIGN.md §6e satellite): the parse chain ParseOemText -> DecodeDoem
// must never crash, hang, or return a malformed database on hostile
// input -- it either succeeds or returns a ParseError/InvalidArgument
// Status. The corpus is three-pronged:
//
//   1. Truncations: every byte prefix of a valid serialized database.
//   2. Mutations: each byte of a valid text replaced with characters
//      chosen to confuse the grammar (quotes, braces, escapes, NULs).
//   3. Hand-crafted nasties: inputs targeting specific parser paths
//      (overflowing ids, bad escapes, deep nesting, cycles, duplicate
//      definitions, undefined references, hostile value literals).
//
// Any input that *does* parse must round-trip: re-serializing and
// re-parsing it reproduces an equal database. Run under ASan/UBSan via
// scripts/check.sh to catch memory errors, not just wrong answers.

#include <string>
#include <vector>

#include "doem/doem.h"
#include "encoding/doem_text.h"
#include "gtest/gtest.h"
#include "oem/graph_compare.h"
#include "oem/oem_text.h"
#include "testing/generators.h"

namespace doem {
namespace {

// Parsing hostile input must produce a Status, never a crash. If it
// succeeds, the result must survive a write -> parse round trip.
void ExpectParseIsTotal(const std::string& text, const std::string& ctx) {
  auto oem = ParseOemText(text);
  if (oem.ok()) {
    std::string rewritten = WriteOemText(*oem);
    auto again = ParseOemText(rewritten);
    ASSERT_TRUE(again.ok()) << ctx << ": reserialized text failed to parse: "
                            << again.status().message();
    EXPECT_TRUE(Isomorphic(*oem, *again)) << ctx;
  }
  auto doem = ParseDoemText(text);
  if (doem.ok()) {
    std::string rewritten = WriteDoemText(*doem);
    auto again = ParseDoemText(rewritten);
    ASSERT_TRUE(again.ok()) << ctx << ": reserialized DOEM failed to parse: "
                            << again.status().message();
    EXPECT_TRUE(doem->Equals(*again)) << ctx;
  }
}

std::string SampleDoemText() {
  // Kept small on purpose: the sweeps below are O(len^2) in this text
  // (every prefix / every byte x intruder set, each reparsed).
  doem::testing::DatabaseOptions dopts;
  dopts.seed = 7;
  dopts.node_count = 24;
  OemDatabase base = doem::testing::RandomDatabase(dopts);
  doem::testing::HistoryOptions hopts;
  hopts.seed = 8;
  hopts.steps = 3;
  OemHistory hist = doem::testing::RandomHistory(base, hopts);
  auto db = DoemDatabase::Build(base, hist);
  EXPECT_TRUE(db.ok()) << db.status().message();
  return WriteDoemText(*db);
}

TEST(ParserRobustnessTest, EveryTruncationOfValidTextIsHandled) {
  std::string text = SampleDoemText();
  ASSERT_FALSE(text.empty());
  for (size_t cut = 0; cut < text.size(); ++cut) {
    ExpectParseIsTotal(text.substr(0, cut),
                       "truncated at byte " + std::to_string(cut));
  }
}

TEST(ParserRobustnessTest, EveryByteMutationOfValidTextIsHandled) {
  std::string text = SampleDoemText();
  ASSERT_FALSE(text.empty());
  // Characters chosen to hit grammar decision points: structure tokens,
  // string/escape machinery, value sigils, NUL, high-bit bytes.
  const std::string intruders = "\"\\{}&:,@#-.0eC \n\x00\xff";
  for (size_t i = 0; i < text.size(); ++i) {
    for (char c : intruders) {
      if (text[i] == c) continue;
      std::string mutated = text;
      mutated[i] = c;
      ExpectParseIsTotal(mutated, "byte " + std::to_string(i) +
                                      " replaced with 0x" +
                                      std::to_string(static_cast<unsigned char>(c)));
    }
  }
}

TEST(ParserRobustnessTest, HandCraftedNastiesNeverCrash) {
  const std::vector<std::string> corpus = {
      "",
      " ",
      "\n\n\n",
      "# only a comment",
      "&",
      "&&",
      "& 1 {}",
      "&0 {}",  // kInvalidNode
      "&18446744073709551615 {}",
      "&99999999999999999999999999 {}",  // id overflow
      "&1",                               // root is a bare reference
      "&1 {",
      "&1 {}",
      "&1 {} trailing",
      "&1 {a}",
      "&1 {a:}",
      "&1 {a: &2 5,}",        // trailing comma
      "&1 {a: &2 5, }",
      "&1 {a: &2 5 b: &3 6}",  // missing comma
      "&1 {a: &2}",            // undefined reference
      "&1 {a: &1}",            // self cycle reference
      "&1 {a: &2 {b: &1}}",    // back reference cycle
      "&1 {a: &2 5, b: &2 6}",  // node defined twice
      "&1 5 &1 6",
      "&1 \"unterminated",
      "&1 \"bad escape \\q\"",
      "&1 \"\\",
      "&1 @",
      "&1 @notatime",
      "&1 @1996-13-45:99:99:99",
      "&1 -",
      "&1 --5",
      "&1 1e999",                           // real overflow
      "&1 99999999999999999999999999",      // int overflow
      "&1 1.2.3.4e+-5",
      "&1 truex",
      "&1 nan",
      "&1 {\"\": &2 {}}",          // empty label
      "&1 {\"a\\nb\": &2 {}}",     // escaped label
      std::string("&1 {a: &2 \"\x00\"}", 14),  // NUL inside string
      std::string("\x00&1 {}", 6),             // NUL before anything
      // Valid OEM, hostile DOEM encodings (decode-layer attacks).
      "&1 {\"&val\": &1}",                   // object with only &val self
      "&1 {\"&val\": &2 {}}",                // &val target complex
      "&1 {\"&val\": &1, \"&val\": &1}",     // duplicate &val
      "&1 {\"&val\": &1, \"&cre\": &2 5}",   // &cre not a timestamp
      "&1 {\"&val\": &1, \"&upd\": &2 {}}",  // &upd missing fields
      "&1 {\"&val\": &1, \"a-history\": &2 {}}",   // history lacks &target
      "&1 {\"&val\": &1, a: &3 {\"&val\": &3}}",   // live arc, no history
      "&1 {\"&val\": &1, \"a-history\": &2 {\"&target\": &3 {\"&val\": &3}}}",
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    ExpectParseIsTotal(corpus[i], "corpus entry " + std::to_string(i));
  }
}

TEST(ParserRobustnessTest, DeepNestingIsRejectedNotStackOverflowed) {
  // 6000 levels exceeds kMaxParseDepth (5000); the parser must report an
  // error instead of recursing off the stack.
  std::string deep;
  for (int i = 0; i < 6000; ++i) {
    deep += "&" + std::to_string(i + 1) + " { a: ";
  }
  deep += "&7000 1";
  for (int i = 0; i < 6000; ++i) deep += " }";
  auto r = ParseOemText(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nesting"), std::string::npos)
      << r.status().message();
}

TEST(ParserRobustnessTest, ValueLiteralParserIsTotal) {
  const std::vector<std::string> corpus = {
      "",     "C",      "Cx",  "C 1",  "5 5",   "\"x",  "@",
      "@@@",  "1e999",  "-",   "&1",   "{",     "true", "true false",
      "#c",   "nanx",   "--1", "\t",   "\"\\u0041\"",
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto v = ParseValueLiteral(corpus[i]);  // must not crash
    (void)v;
  }
  EXPECT_TRUE(ParseValueLiteral("C").ok());
  EXPECT_TRUE(ParseValueLiteral(" 42 ").ok());
  EXPECT_FALSE(ParseValueLiteral("C 1").ok());
}

// A parsed-then-decoded database must satisfy DOEM feasibility: decode
// errors out rather than fabricating histories that violate the model.
TEST(ParserRobustnessTest, SuccessfulDoemParsesAreFeasible) {
  std::string text = SampleDoemText();
  auto db = ParseDoemText(text);
  ASSERT_TRUE(db.ok()) << db.status().message();
  EXPECT_TRUE(db->IsFeasible());
}

}  // namespace
}  // namespace doem
