#include <gtest/gtest.h>

#include "chorel/triggers.h"
#include "testing/guide.h"

namespace doem {
namespace chorel {
namespace {

using doem::testing::BuildGuide;
using doem::testing::GuideHistory;
using doem::testing::GuideT1;
using doem::testing::GuideT3;

TEST(TriggersTest, FiresOnMatchingChanges) {
  auto t = TriggeredDatabase::Create(BuildGuide().db);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::vector<TriggerFiring> firings;
  ASSERT_TRUE(t->AddTrigger("new-restaurants",
                            "select guide.restaurant<cre at T> "
                            "where T > t[-1]",
                            [&](const TriggerFiring& f) {
                              firings.push_back(f);
                            })
                  .ok());
  // Replay the Example 2.3 history through the trigger facility.
  OemHistory h = GuideHistory();
  for (const HistoryStep& step : h.steps()) {
    ASSERT_TRUE(t->ApplyChangeSet(step.time, step.changes).ok());
  }
  // Only the first step creates a restaurant (Hakata).
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0].trigger, "new-restaurants");
  EXPECT_EQ(firings[0].time, GuideT1());
  EXPECT_EQ(firings[0].result.rows.size(), 1u);
}

TEST(TriggersTest, SinceLastEventSemantics) {
  auto t = TriggeredDatabase::Create(BuildGuide().db);
  ASSERT_TRUE(t.ok());
  int fired = 0;
  ASSERT_TRUE(t->AddTrigger("price-watch",
                            "select NV from "
                            "guide.restaurant.price<upd at T to NV> "
                            "where T > t[-1] and NV > 15",
                            [&](const TriggerFiring&) { ++fired; })
                  .ok());
  // First event: price to 20 -> fires.
  ASSERT_TRUE(t->ApplyChangeSet(Timestamp(100),
                                {ChangeOp::UpdNode(1, Value::Int(20))})
                  .ok());
  EXPECT_EQ(fired, 1);
  // Unrelated event: the old update no longer satisfies T > t[-1].
  ASSERT_TRUE(t->ApplyChangeSet(
                   Timestamp(200),
                   {ChangeOp::RemArc(6, "parking", 7)})
                  .ok());
  EXPECT_EQ(fired, 1);
  // Price drops below the threshold: no firing.
  ASSERT_TRUE(t->ApplyChangeSet(Timestamp(300),
                                {ChangeOp::UpdNode(1, Value::Int(12))})
                  .ok());
  EXPECT_EQ(fired, 1);
  // And up again.
  ASSERT_TRUE(t->ApplyChangeSet(Timestamp(400),
                                {ChangeOp::UpdNode(1, Value::Int(30))})
                  .ok());
  EXPECT_EQ(fired, 2);
}

TEST(TriggersTest, MultipleTriggersAndRemoval) {
  auto t = TriggeredDatabase::Create(BuildGuide().db);
  ASSERT_TRUE(t.ok());
  int a = 0, b = 0;
  ASSERT_TRUE(t->AddTrigger("a", "select guide.<add at T>restaurant "
                                 "where T > t[-1]",
                            [&](const TriggerFiring&) { ++a; })
                  .ok());
  ASSERT_TRUE(t->AddTrigger("b",
                            "select R from guide.restaurant R, "
                            "R.<rem at T>parking P where T > t[-1]",
                            [&](const TriggerFiring&) { ++b; })
                  .ok());
  EXPECT_EQ(t->AddTrigger("a", "select x", nullptr).code(),
            StatusCode::kAlreadyExists);

  OemHistory h = GuideHistory();
  for (const HistoryStep& step : h.steps()) {
    ASSERT_TRUE(t->ApplyChangeSet(step.time, step.changes).ok());
  }
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);

  ASSERT_TRUE(t->RemoveTrigger("a").ok());
  EXPECT_EQ(t->RemoveTrigger("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(t->trigger_count(), 1u);
}

TEST(TriggersTest, RejectsBadConditions) {
  auto t = TriggeredDatabase::Create(BuildGuide().db);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->AddTrigger("bad", "not a query", nullptr).ok());
}

TEST(TriggersTest, ChangeRemainsAppliedIfNoTriggerMatches) {
  auto t = TriggeredDatabase::Create(BuildGuide().db);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->ApplyChangeSet(Timestamp(100),
                                {ChangeOp::UpdNode(1, Value::Int(11))})
                  .ok());
  EXPECT_EQ(t->doem().CurrentValue(1), Value::Int(11));
  EXPECT_TRUE(t->doem().IsFeasible());
}

}  // namespace
}  // namespace chorel
}  // namespace doem
