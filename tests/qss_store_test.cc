// QSS + durable store integration: a service that crashes and reopens
// over the same durable medium must resume polling from the persisted
// history and produce byte-identical histories, rows, and notifications
// to an uninterrupted run.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "encoding/doem_text.h"
#include "qss/qss.h"
#include "store/fault_file.h"
#include "store/store.h"
#include "store/time_travel.h"
#include "testing/guide.h"

namespace doem {
namespace qss {
namespace {

using doem::testing::BuildGuide;
using doem::testing::GuideHistory;

Subscription GuideSubscription() {
  Subscription sub;
  sub.name = "Restaurants";
  auto freq = FrequencySpec::Parse("every night at 11:30pm");
  EXPECT_TRUE(freq.ok());
  sub.frequency = *freq;
  sub.polling_query = "select guide.restaurant";
  sub.filter_query =
      "select Restaurants.restaurant<cre at T> where T > t[-1]";
  return sub;
}

/// One notification, serialized for byte-exact comparison.
std::string NotificationText(const Notification& n) {
  return n.subscription + "@" + n.poll_time.ToString() + "#" +
         std::to_string(n.poll_index) + "\n" + n.result.RowsToString();
}

struct RunResult {
  std::vector<std::string> notifications;
  std::string history_text;
  std::vector<Timestamp> polls;
};

/// Drives a fresh service over `manager` from `start` to `end`,
/// appending each notification to `*sink`. Returns the final state.
RunResult RunService(store::StoreManager* manager, Timestamp start,
                     Timestamp end, std::vector<std::string>* sink) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  QssOptions options;
  options.durability.store = manager;
  QuerySubscriptionService qss(&source, start, options);
  RunResult out;
  Status subscribed =
      qss.Subscribe(GuideSubscription(), [&](const Notification& n) {
        sink->push_back(NotificationText(n));
      });
  EXPECT_TRUE(subscribed.ok()) << subscribed.ToString();
  PollReport report;
  EXPECT_TRUE(qss.AdvanceTo(end, &report).ok());
  EXPECT_TRUE(report.errors.empty())
      << report.errors[0].status.ToString();
  const DoemDatabase* d = qss.History("Restaurants");
  EXPECT_NE(d, nullptr);
  out.history_text = WriteDoemText(*d);
  out.polls = qss.PollingTimes("Restaurants");
  out.notifications = *sink;
  return out;
}

Timestamp Day(int n) {  // Dec 30 1996 + n days
  return Timestamp(Timestamp::FromDate(1996, 12, 30).ticks + n);
}

// ---- The crash/reopen differential ----------------------------------------

TEST(QssStoreTest, CrashAndReopenIsByteIdenticalToUninterruptedRun) {
  // Reference: one uninterrupted run over 6 polls.
  store::MemoryStoreManager ref_manager;
  std::vector<std::string> ref_notifications;
  RunResult reference =
      RunService(&ref_manager, Day(0), Day(5), &ref_notifications);
  ASSERT_EQ(reference.polls.size(), 6u);
  ASSERT_FALSE(reference.notifications.empty());

  // Crashed run: advance partway on the same kind of medium, drop the
  // service ("crash"), then resume with a brand-new service + source
  // over the surviving bytes.
  for (int crash_after = 0; crash_after <= 5; ++crash_after) {
    store::MemoryStoreManager manager;
    std::vector<std::string> notifications;
    RunService(&manager, Day(0), Day(crash_after), &notifications);
    RunResult resumed =
        RunService(&manager, Day(crash_after), Day(5), &notifications);

    EXPECT_EQ(resumed.history_text, reference.history_text)
        << "crash_after=" << crash_after;
    EXPECT_EQ(resumed.polls, reference.polls)
        << "crash_after=" << crash_after;
    EXPECT_EQ(resumed.notifications, reference.notifications)
        << "crash_after=" << crash_after;
  }
}

TEST(QssStoreTest, TornLastRecordIsRepolledDeterministically) {
  // Reference run.
  store::MemoryStoreManager ref_manager;
  std::vector<std::string> ref_notifications;
  RunResult reference =
      RunService(&ref_manager, Day(0), Day(5), &ref_notifications);

  // Crash mid-way, then tear the last committed record: the medium now
  // holds one poll fewer than the process delivered before dying.
  store::MemoryStoreManager manager;
  std::vector<std::string> notifications;
  RunService(&manager, Day(0), Day(2), &notifications);
  std::string group_key;
  {
    // The single group's backing file is the manager's only entry; its
    // key is the polling query + interval.
    group_key = std::string("select guide.restaurant\x1f") + "1";
    store::MemoryFile* file = manager.file(group_key);
    ASSERT_FALSE(file->data().empty());
    file->mutable_data()->resize(file->data().size() - 3);
  }

  // Resume. Recovery drops the torn poll; the service re-polls that
  // tick against the scripted source and must rebuild the identical
  // history (at-least-once delivery: the re-polled tick's notification,
  // if any, is delivered again).
  std::vector<std::string> resumed_notifications;
  RunResult resumed =
      RunService(&manager, Day(2), Day(5), &resumed_notifications);
  EXPECT_EQ(resumed.history_text, reference.history_text);
  EXPECT_EQ(resumed.polls, reference.polls);
}

TEST(QssStoreTest, ResumeDoesNotRepollCommittedTicks) {
  store::MemoryStoreManager manager;
  std::vector<std::string> notifications;
  RunService(&manager, Day(0), Day(2), &notifications);  // 3 polls

  // A reopened service that advances only to the crash time must not
  // poll at all: every tick up to Day(2) is already committed.
  ScriptedSource source(BuildGuide().db, GuideHistory());
  QssOptions options;
  options.durability.store = &manager;
  QuerySubscriptionService qss(&source, Day(2), options);
  size_t notified = 0;
  ASSERT_TRUE(qss.Subscribe(GuideSubscription(),
                            [&](const Notification&) { ++notified; })
                  .ok());
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 3u);
  PollReport report;
  ASSERT_TRUE(qss.AdvanceTo(Day(2), &report).ok());
  EXPECT_EQ(report.polls_attempted, 0u);
  EXPECT_EQ(notified, 0u);
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 3u);
  // The next scheduled tick polls exactly once.
  ASSERT_TRUE(qss.AdvanceTo(Day(3), &report).ok());
  EXPECT_EQ(report.polls_attempted, 1u);
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 4u);
}

// ---- Store failures surface without failing the poll -----------------------

/// A manager whose stores run over a fault-injecting file, so tests can
/// crash the durable medium under a live service.
class FaultyStoreManager : public store::StoreManager {
 public:
  Result<std::unique_ptr<store::Store>> OpenStore(
      const std::string& key) override {
    fault_ = std::make_unique<store::FaultInjectingFile>(&inner_);
    return store::Store::Open(fault_.get(), store::StoreOptions{});
  }

  store::MemoryFile* inner() { return &inner_; }
  store::FaultInjectingFile* fault() { return fault_.get(); }

 private:
  store::MemoryFile inner_;
  std::unique_ptr<store::FaultInjectingFile> fault_;
};

TEST(QssStoreTest, StoreFailureSurfacesAsStoreErrorAndPollStands) {
  ScriptedSource source(BuildGuide().db, GuideHistory());
  FaultyStoreManager manager;
  QssOptions options;
  options.durability.store = &manager;
  QuerySubscriptionService qss(&source, Day(0), options);
  size_t notified = 0;
  ASSERT_TRUE(qss.Subscribe(GuideSubscription(),
                            [&](const Notification&) { ++notified; })
                  .ok());

  PollReport report;
  ASSERT_TRUE(qss.AdvanceTo(Day(0), &report).ok());
  ASSERT_TRUE(report.errors.empty());
  EXPECT_EQ(notified, 1u);
  uint64_t committed = manager.inner()->data().size();

  // The disk dies mid-append of the next poll's record.
  manager.fault()->CrashAtOffset(committed + 4);
  ASSERT_TRUE(qss.AdvanceTo(Day(1), &report).ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].kind, PollError::Kind::kStore);
  // Availability over durability: the poll committed in memory.
  EXPECT_EQ(report.polls_ok, 2u);
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 2u);

  // Later polls keep working (and keep reporting the broken store).
  ASSERT_TRUE(qss.AdvanceTo(Day(2), &report).ok());
  EXPECT_EQ(report.errors.size(), 2u);
  EXPECT_EQ(report.errors[1].kind, PollError::Kind::kStore);
  EXPECT_EQ(qss.PollingTimes("Restaurants").size(), 3u);

  // A reopened service recovers the committed prefix (1 poll) and
  // catches up deterministically over the surviving medium.
  store::MemoryStoreManager clean;
  *clean.file("select guide.restaurant\x1f" "1")->mutable_data() =
      manager.inner()->data();
  ScriptedSource source2(BuildGuide().db, GuideHistory());
  QssOptions options2;
  options2.durability.store = &clean;
  QuerySubscriptionService qss2(&source2, Day(2), options2);
  ASSERT_TRUE(qss2.Subscribe(GuideSubscription(),
                             [&](const Notification&) {}).ok());
  EXPECT_EQ(qss2.PollingTimes("Restaurants").size(), 1u);
  PollReport report2;
  ASSERT_TRUE(qss2.AdvanceTo(Day(2), &report2).ok());
  EXPECT_TRUE(report2.errors.empty());
  EXPECT_EQ(qss2.PollingTimes("Restaurants").size(), 3u);
  const DoemDatabase* recovered = qss2.History("Restaurants");
  const DoemDatabase* live = qss.History("Restaurants");
  ASSERT_NE(recovered, nullptr);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(WriteDoemText(*recovered), WriteDoemText(*live));
}

// ---- Time travel over a recovered history ----------------------------------

TEST(QssStoreTest, ChorelQueriesRunAgainstRecoveredPastIntervals) {
  store::MemoryStoreManager manager;
  std::vector<std::string> notifications;
  RunService(&manager, Day(0), Day(5), &notifications);

  // A later process recovers the history straight from the store, with
  // no QSS involved.
  auto s = manager.OpenStore("select guide.restaurant\x1f" "1");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE((*s)->has_state());
  std::vector<Timestamp> polls = (*s)->recovered_times();
  ASSERT_EQ(polls.size(), 6u);
  DoemDatabase db = (*s)->TakeRecoveredDb();

  // As of the first poll, two restaurants exist; Hakata appears later.
  auto at_start = store::AsOf(db, polls[0]);
  ASSERT_TRUE(at_start.ok());
  auto rows = chorel::RunChorel(*at_start, "select Restaurants.restaurant",
                                chorel::Strategy::kDirect);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 2u);

  auto at_end = store::AsOf(db, polls.back());
  ASSERT_TRUE(at_end.ok());
  auto rows_end = chorel::RunChorel(*at_end, "select Restaurants.restaurant",
                                    chorel::Strategy::kDirect);
  ASSERT_TRUE(rows_end.ok());
  EXPECT_EQ(rows_end->rows.size(), 3u);

  // Between(t1, end]: only Hakata's creation falls inside the window, so
  // a windowed cre query returns exactly it (the initial two restaurants
  // were created at t1 relative to the empty R0).
  auto window = store::Between(db, polls[0], polls.back());
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  auto created = chorel::RunChorel(
      *window, "select Restaurants.restaurant<cre at T>",
      chorel::Strategy::kDirect);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->rows.size(), 1u);

  // The full-range window is the whole history.
  auto whole = store::Between(db, Timestamp::NegativeInfinity(),
                              Timestamp::PositiveInfinity());
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->Equals(db));
}

}  // namespace
}  // namespace qss
}  // namespace doem
