// Adversarial cases for the isomorphism checker and refinement hashes —
// the predicate underpinning the structural-diff contract.

#include <gtest/gtest.h>

#include "oem/graph_compare.h"
#include "oem/oem.h"

namespace doem {
namespace {

OemDatabase Chain(int n, int64_t leaf) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  (void)db.SetRoot(root);
  NodeId cur = root;
  for (int i = 0; i < n; ++i) {
    NodeId next = i + 1 < n ? db.NewComplex() : db.NewInt(leaf);
    (void)db.AddArc(cur, "next", next);
    cur = next;
  }
  return db;
}

TEST(GraphCompareTest, ChainsOfDifferentLengths) {
  EXPECT_TRUE(Isomorphic(Chain(5, 1), Chain(5, 1)));
  EXPECT_FALSE(Isomorphic(Chain(5, 1), Chain(6, 1)));
  EXPECT_FALSE(Isomorphic(Chain(5, 1), Chain(5, 2)))
      << "same shape, different leaf value";
}

TEST(GraphCompareTest, SymmetricSiblingsWithEqualSubtrees) {
  // Two structurally identical siblings: any pairing works; the checker
  // must succeed (hash ties with genuinely interchangeable children).
  auto make = [](int x, int y) {
    OemDatabase db;
    NodeId root = db.NewComplex();
    (void)db.SetRoot(root);
    for (int v : {x, y}) {
      NodeId c = db.NewComplex();
      (void)db.AddArc(root, "child", c);
      (void)db.AddArc(c, "v", db.NewInt(v));
    }
    return db;
  };
  EXPECT_TRUE(Isomorphic(make(7, 7), make(7, 7)));
  EXPECT_TRUE(Isomorphic(make(7, 9), make(9, 7)))
      << "sibling order must not matter";
  EXPECT_FALSE(Isomorphic(make(7, 7), make(7, 9)));
}

TEST(GraphCompareTest, CycleLengthsDistinguished) {
  auto ring = [](int n) {
    OemDatabase db;
    NodeId root = db.NewComplex();
    (void)db.SetRoot(root);
    std::vector<NodeId> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(db.NewComplex());
    for (int i = 0; i < n; ++i) {
      (void)db.AddArc(nodes[i], "next", nodes[(i + 1) % n]);
    }
    (void)db.AddArc(root, "entry", nodes[0]);
    return db;
  };
  EXPECT_TRUE(Isomorphic(ring(4), ring(4)));
  EXPECT_FALSE(Isomorphic(ring(4), ring(5)));
}

TEST(GraphCompareTest, SelfLoopVsTwoCycle) {
  OemDatabase a;
  NodeId ra = a.NewComplex();
  (void)a.SetRoot(ra);
  NodeId x = a.NewComplex();
  (void)a.AddArc(ra, "e", x);
  (void)a.AddArc(x, "n", x);  // self loop

  OemDatabase b;
  NodeId rb = b.NewComplex();
  (void)b.SetRoot(rb);
  NodeId y = b.NewComplex();
  NodeId z = b.NewComplex();
  (void)b.AddArc(rb, "e", y);
  (void)b.AddArc(y, "n", z);
  (void)b.AddArc(z, "n", y);  // two-cycle

  EXPECT_FALSE(Isomorphic(a, b)) << "node counts differ";
}

TEST(GraphCompareTest, LabelPermutationDetected) {
  auto make = [](const char* l1, const char* l2) {
    OemDatabase db;
    NodeId root = db.NewComplex();
    (void)db.SetRoot(root);
    (void)db.AddArc(root, l1, db.NewInt(1));
    (void)db.AddArc(root, l2, db.NewInt(2));
    return db;
  };
  EXPECT_TRUE(Isomorphic(make("a", "b"), make("a", "b")));
  EXPECT_FALSE(Isomorphic(make("a", "b"), make("b", "a")))
      << "values travel with their labels";
}

TEST(GraphCompareTest, MappingIsConsistentBijection) {
  OemDatabase a = Chain(4, 9);
  OemDatabase b = Chain(4, 9);
  std::unordered_map<NodeId, NodeId> map;
  ASSERT_TRUE(FindIsomorphism(a, b, &map));
  EXPECT_EQ(map.size(), a.node_count());
  // Injective.
  std::unordered_set<NodeId> targets;
  for (const auto& [from, to] : map) {
    EXPECT_TRUE(targets.insert(to).second);
    EXPECT_EQ(*a.GetValue(from), *b.GetValue(to));
  }
}

TEST(GraphCompareTest, RefinementHashesSeparateDepths) {
  OemDatabase db = Chain(6, 1);
  auto h = RefinementHashes(db, 8);
  // All complex chain nodes end up with distinct hashes (each is a
  // different distance from the leaf).
  std::unordered_set<uint64_t> distinct;
  for (const auto& [n, hash] : h) distinct.insert(hash);
  EXPECT_EQ(distinct.size(), db.node_count());
}

}  // namespace
}  // namespace doem
