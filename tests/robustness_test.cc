// Failure-injection and resource-safety tests: deep nesting, hostile
// inputs, and operations on the boundaries of the supported subset must
// produce clean errors, never crashes or corruption.

#include <gtest/gtest.h>

#include "chorel/chorel.h"
#include "htmldiff/html.h"
#include "lorel/lorel.h"
#include "oem/oem_text.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::GuideHistory;

TEST(RobustnessTest, DeepChainSerializesIteratively) {
  // A 50,000-deep chain: the recursive writer would overflow the stack;
  // the iterative one must not.
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId cur = root;
  for (int i = 0; i < 50000; ++i) {
    NodeId next = i + 1 < 50000 ? db.NewComplex() : db.NewInt(7);
    ASSERT_TRUE(db.AddArc(cur, "next", next).ok());
    cur = next;
  }
  std::string text = WriteOemText(db);
  EXPECT_GT(text.size(), 100000u);
  // Parsing refuses beyond its depth limit with a clean error.
  auto parsed = ParseOemText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("nesting"), std::string::npos);
}

TEST(RobustnessTest, ModeratelyDeepChainRoundTrips) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId cur = root;
  for (int i = 0; i < 2000; ++i) {
    NodeId next = i + 1 < 2000 ? db.NewComplex() : db.NewInt(7);
    ASSERT_TRUE(db.AddArc(cur, "next", next).ok());
    cur = next;
  }
  auto parsed = ParseOemText(WriteOemText(db));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(db));
}

TEST(RobustnessTest, DeeplyNestedHtmlRejected) {
  std::string html;
  for (int i = 0; i < 3000; ++i) html += "<div>";
  html += "x";
  for (int i = 0; i < 3000; ++i) html += "</div>";
  auto r = htmldiff::ParseHtml(html);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(RobustnessTest, HostileQueryStrings) {
  testing::Guide g = BuildGuide();
  lorel::OemView view(g.db);
  const char* hostile[] = {
      "select",
      "select .",
      "select ..",
      "select a..b",
      "select a.<",
      "select a.<add",
      "select a.<add at>",
      "select a where b <",
      "select a where (b = 1",
      "select a where exists x in : 1=1",
      "select a from",
      "select a as",
      "select t[",
      "select t[0",
      "select t[999999999999999999999]",
      "select \"unterminated",
      "select a where a like",
  };
  for (const char* q : hostile) {
    auto r = lorel::RunQuery(q, view);
    EXPECT_FALSE(r.ok()) << q;
    EXPECT_TRUE(r.status().code() == StatusCode::kParseError ||
                r.status().code() == StatusCode::kUnsupported)
        << q << " -> " << r.status().ToString();
  }
}

TEST(RobustnessTest, UnaryMinusLiterals) {
  testing::Guide g = BuildGuide();
  lorel::OemView view(g.db);
  auto r = lorel::RunQuery(
      "select guide.restaurant where guide.restaurant.price > -5", view);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u) << "10 > -5; 'moderate' fails coercion";
  auto r2 = lorel::RunQuery("select -2.5 as v", view);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].value, Value::Real(-2.5));
  EXPECT_FALSE(lorel::RunQuery("select - \"x\"", view).ok());
}

TEST(RobustnessTest, GiantChangeSetStaysTransactional) {
  testing::Guide g = BuildGuide();
  auto d = DoemDatabase::FromSnapshot(g.db);
  ASSERT_TRUE(d.ok());
  DoemDatabase before = *d;
  // 10k creations, then one invalid op at the end.
  ChangeSet ops;
  NodeId base = 1000;
  for (NodeId i = 0; i < 10000; ++i) {
    ops.push_back(ChangeOp::CreNode(base + i, Value::Int(1)));
    ops.push_back(ChangeOp::AddArc(4, "bulk", base + i));
  }
  ops.push_back(ChangeOp::AddArc(999999, "x", base));
  Status s = d->ApplyChangeSet(Timestamp(10), ops);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(d->Equals(before));
}

TEST(RobustnessTest, QssSurvivesSourceErrors) {
  // A source whose polling query is valid Lorel but matches nothing:
  // polls succeed with empty results forever.
  qss::ScriptedSource source(BuildGuide().db, GuideHistory());
  qss::QuerySubscriptionService service(&source,
                                        Timestamp::FromDate(1996, 12, 30));
  qss::Subscription sub;
  sub.name = "Ghost";
  sub.frequency = *qss::FrequencySpec::Parse("every day");
  sub.polling_query = "select nonexistent.entry";
  sub.filter_query = "select Ghost.entry<cre at T> where T > t[-1]";
  int notified = 0;
  ASSERT_TRUE(service
                  .Subscribe(sub, [&](const qss::Notification&) {
                    ++notified;
                  })
                  .ok());
  ASSERT_TRUE(
      service.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  EXPECT_EQ(notified, 0);
  EXPECT_EQ(service.PollingTimes("Ghost").size(), 12u);
}

TEST(RobustnessTest, ChorelExistsWithAnnotatedRange) {
  // Annotated exists ranges work in the direct strategy and are cleanly
  // rejected by the translated one (no linear Lorel form, see
  // translate.h).
  auto d = DoemDatabase::Build(BuildGuide().db, GuideHistory());
  ASSERT_TRUE(d.ok());
  const char* q =
      "select R from guide.restaurant R where "
      "exists C in R.<add>comment : C = \"need info\"";
  auto direct = chorel::RunChorel(*d, q, chorel::Strategy::kDirect);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct->rows.size(), 1u);
  auto translated = chorel::RunChorel(*d, q, chorel::Strategy::kTranslated);
  ASSERT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kUnsupported);
}

TEST(RobustnessTest, EmptySelectResultPackagesCleanly) {
  testing::Guide g = BuildGuide();
  lorel::OemView view(g.db);
  auto r = lorel::RunQuery("select guide.nothing", view);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_TRUE(r->answer.Validate().ok()) << "empty answer is still rooted";
}

TEST(RobustnessTest, ScriptedSourceBadStepIsCleanAndSticky) {
  // A script step whose change set is invalid for the source state must
  // yield a clean error from Poll — identical on every retry — with the
  // source state exactly as of the last good step, never half-applied.
  testing::Guide g = BuildGuide();
  OemHistory script;
  ChangeSet good;
  good.push_back(ChangeOp::CreNode(200, Value::String("fine")));
  good.push_back(ChangeOp::AddArc(g.guide, "note", 200));
  ASSERT_TRUE(script.Append(Timestamp::FromDate(1997, 1, 1), good).ok());
  ChangeSet bad;
  bad.push_back(ChangeOp::CreNode(201, Value::Int(1)));
  bad.push_back(ChangeOp::AddArc(999999, "x", 201));  // no such parent
  ASSERT_TRUE(script.Append(Timestamp::FromDate(1997, 1, 5), bad).ok());

  qss::ScriptedSource source(g.db, script);
  // Before the bad step falls due, everything works.
  auto ok = source.Poll("select guide.restaurant",
                        Timestamp::FromDate(1997, 1, 2));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  OemDatabase after_good = source.db();

  auto r1 = source.Poll("select guide.restaurant",
                        Timestamp::FromDate(1997, 1, 6));
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("script step 1"), std::string::npos)
      << r1.status().ToString();
  EXPECT_TRUE(source.db().Equals(after_good))
      << "the failing set must not partially apply (201 would leak)";
  EXPECT_FALSE(source.db().HasNode(201));

  // Sticky and deterministic across retries.
  auto r2 = source.Poll("select guide.restaurant",
                        Timestamp::FromDate(1997, 1, 7));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), r1.status().code());
  EXPECT_EQ(r2.status().message(), r1.status().message());
  EXPECT_TRUE(source.db().Equals(after_good));
}

TEST(RobustnessTest, ScriptedSourceOutOfOrderScriptRejected) {
  // The OemHistory vector constructor does not enforce monotone times; a
  // scrambled script must be rejected before any step is applied.
  testing::Guide g = BuildGuide();
  ChangeSet c1;
  c1.push_back(ChangeOp::CreNode(300, Value::Int(1)));
  c1.push_back(ChangeOp::AddArc(g.guide, "late", 300));
  ChangeSet c2;
  c2.push_back(ChangeOp::CreNode(301, Value::Int(2)));
  c2.push_back(ChangeOp::AddArc(g.guide, "early", 301));
  OemHistory scrambled(
      {HistoryStep{Timestamp(5), c1}, HistoryStep{Timestamp(2), c2}});

  qss::ScriptedSource source(g.db, scrambled);
  auto r = source.Poll("select guide.restaurant", Timestamp(10));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidChange);
  EXPECT_NE(r.status().message().find("out of order"), std::string::npos);
  EXPECT_TRUE(source.db().Equals(g.db)) << "no step was applied";
  // Polling again (even at an earlier time) reports the same defect.
  auto r2 = source.Poll("select guide.restaurant", Timestamp(1));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().message(), r.status().message());
}

TEST(RobustnessTest, QssGarbageSnapshotIsCleanFailureThenRecovers) {
  // A wrapper that dies mid-transfer delivers a truncated snapshot; QSS
  // must treat it as a failed poll (clean Unavailable), keep the DOEM
  // history intact, and resume on the next healthy poll.
  qss::ScriptedSource inner(BuildGuide().db, GuideHistory());
  qss::FaultInjectingSource source(&inner);
  source.GarbagePolls(/*skip=*/0, /*count=*/1);

  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  std::vector<qss::PollError> errors;
  qss::QssOptions opts;
  opts.fault_tolerance.on_error = [&](const qss::PollError& e) { errors.push_back(e); };
  qss::QuerySubscriptionService service(&source, t0, opts);
  qss::Subscription sub;
  sub.name = "R";
  sub.frequency = *qss::FrequencySpec::Parse("every day");
  sub.polling_query = "select guide.restaurant";
  sub.filter_query = "select R.restaurant<cre at T> where T > t[-1]";
  int notified = 0;
  ASSERT_TRUE(service
                  .Subscribe(sub, [&](const qss::Notification&) {
                    ++notified;
                  })
                  .ok());

  ASSERT_TRUE(service.AdvanceTo(Timestamp::FromDate(1996, 12, 31)).ok());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].status.code(), StatusCode::kUnavailable);
  EXPECT_NE(errors[0].status.message().find("malformed snapshot"),
            std::string::npos);
  EXPECT_EQ(source.injected_garbage(), 1u);
  EXPECT_EQ(notified, 1) << "the day-2 poll recovered and notified";
  const DoemDatabase* d = service.History("R");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsFeasible()) << "garbage never reached the history";
  EXPECT_EQ(service.PollingTimes("R").size(), 1u);
  qss::PollHealth h = service.Health("R");
  EXPECT_EQ(h.polls_failed, 1u);
  EXPECT_EQ(h.polls_succeeded, 1u);
}

TEST(RobustnessTest, QssPersistentOutageDoesNotStarveOtherGroups) {
  // One group's source path is down for good; with quarantine enabled the
  // service stops hammering it, keeps its history intact, and the other
  // group never misses a beat.
  qss::ScriptedSource inner(BuildGuide().db, GuideHistory());
  qss::FaultInjectingSource source(&inner);
  source.FailPolls(/*skip=*/0, /*count=*/0, Status::Unavailable("down"),
                   /*query_contains=*/".name");

  qss::QssOptions opts;
  opts.fault_tolerance.quarantine_after = 2;
  opts.fault_tolerance.quarantine_cooldown_ticks = 5;
  opts.fault_tolerance.on_error = [](const qss::PollError&) {};
  Timestamp t0 = Timestamp::FromDate(1996, 12, 30);
  qss::QuerySubscriptionService service(&source, t0, opts);
  qss::Subscription healthy;
  healthy.name = "R";
  healthy.frequency = *qss::FrequencySpec::Parse("every day");
  healthy.polling_query = "select guide.restaurant";
  healthy.filter_query = "select R.restaurant<cre at T> where T > t[-1]";
  qss::Subscription doomed;
  doomed.name = "N";
  doomed.frequency = *qss::FrequencySpec::Parse("every day");
  doomed.polling_query = "select guide.restaurant.name";
  doomed.filter_query = "select N.name<cre at T> where T > t[-1]";
  int notified = 0;
  ASSERT_TRUE(service
                  .Subscribe(healthy, [&](const qss::Notification&) {
                    ++notified;
                  })
                  .ok());
  ASSERT_TRUE(service.Subscribe(doomed, nullptr).ok());

  ASSERT_TRUE(service.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  EXPECT_EQ(notified, 2) << "initial creations + Hakata on 1Jan";
  EXPECT_EQ(service.PollingTimes("R").size(), 12u);
  qss::PollHealth h = service.Health("N");
  EXPECT_EQ(h.state, qss::CircuitState::kOpen);
  EXPECT_GT(h.missed.size(), 0u) << "quarantine suppressed scheduled polls";
  EXPECT_LT(h.polls_attempted, 12u) << "the breaker stopped the hammering";
  EXPECT_TRUE(service.History("N")->IsFeasible());
}

}  // namespace
}  // namespace doem
