// Failure-injection and resource-safety tests: deep nesting, hostile
// inputs, and operations on the boundaries of the supported subset must
// produce clean errors, never crashes or corruption.

#include <gtest/gtest.h>

#include "chorel/chorel.h"
#include "htmldiff/html.h"
#include "lorel/lorel.h"
#include "oem/oem_text.h"
#include "qss/qss.h"
#include "testing/guide.h"

namespace doem {
namespace {

using testing::BuildGuide;
using testing::GuideHistory;

TEST(RobustnessTest, DeepChainSerializesIteratively) {
  // A 50,000-deep chain: the recursive writer would overflow the stack;
  // the iterative one must not.
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId cur = root;
  for (int i = 0; i < 50000; ++i) {
    NodeId next = i + 1 < 50000 ? db.NewComplex() : db.NewInt(7);
    ASSERT_TRUE(db.AddArc(cur, "next", next).ok());
    cur = next;
  }
  std::string text = WriteOemText(db);
  EXPECT_GT(text.size(), 100000u);
  // Parsing refuses beyond its depth limit with a clean error.
  auto parsed = ParseOemText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("nesting"), std::string::npos);
}

TEST(RobustnessTest, ModeratelyDeepChainRoundTrips) {
  OemDatabase db;
  NodeId root = db.NewComplex();
  ASSERT_TRUE(db.SetRoot(root).ok());
  NodeId cur = root;
  for (int i = 0; i < 2000; ++i) {
    NodeId next = i + 1 < 2000 ? db.NewComplex() : db.NewInt(7);
    ASSERT_TRUE(db.AddArc(cur, "next", next).ok());
    cur = next;
  }
  auto parsed = ParseOemText(WriteOemText(db));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(db));
}

TEST(RobustnessTest, DeeplyNestedHtmlRejected) {
  std::string html;
  for (int i = 0; i < 3000; ++i) html += "<div>";
  html += "x";
  for (int i = 0; i < 3000; ++i) html += "</div>";
  auto r = htmldiff::ParseHtml(html);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(RobustnessTest, HostileQueryStrings) {
  testing::Guide g = BuildGuide();
  lorel::OemView view(g.db);
  const char* hostile[] = {
      "select",
      "select .",
      "select ..",
      "select a..b",
      "select a.<",
      "select a.<add",
      "select a.<add at>",
      "select a where b <",
      "select a where (b = 1",
      "select a where exists x in : 1=1",
      "select a from",
      "select a as",
      "select t[",
      "select t[0",
      "select t[999999999999999999999]",
      "select \"unterminated",
      "select a where a like",
  };
  for (const char* q : hostile) {
    auto r = lorel::RunQuery(q, view);
    EXPECT_FALSE(r.ok()) << q;
    EXPECT_TRUE(r.status().code() == StatusCode::kParseError ||
                r.status().code() == StatusCode::kUnsupported)
        << q << " -> " << r.status().ToString();
  }
}

TEST(RobustnessTest, UnaryMinusLiterals) {
  testing::Guide g = BuildGuide();
  lorel::OemView view(g.db);
  auto r = lorel::RunQuery(
      "select guide.restaurant where guide.restaurant.price > -5", view);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u) << "10 > -5; 'moderate' fails coercion";
  auto r2 = lorel::RunQuery("select -2.5 as v", view);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0].value, Value::Real(-2.5));
  EXPECT_FALSE(lorel::RunQuery("select - \"x\"", view).ok());
}

TEST(RobustnessTest, GiantChangeSetStaysTransactional) {
  testing::Guide g = BuildGuide();
  auto d = DoemDatabase::FromSnapshot(g.db);
  ASSERT_TRUE(d.ok());
  DoemDatabase before = *d;
  // 10k creations, then one invalid op at the end.
  ChangeSet ops;
  NodeId base = 1000;
  for (NodeId i = 0; i < 10000; ++i) {
    ops.push_back(ChangeOp::CreNode(base + i, Value::Int(1)));
    ops.push_back(ChangeOp::AddArc(4, "bulk", base + i));
  }
  ops.push_back(ChangeOp::AddArc(999999, "x", base));
  Status s = d->ApplyChangeSet(Timestamp(10), ops);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(d->Equals(before));
}

TEST(RobustnessTest, QssSurvivesSourceErrors) {
  // A source whose polling query is valid Lorel but matches nothing:
  // polls succeed with empty results forever.
  qss::ScriptedSource source(BuildGuide().db, GuideHistory());
  qss::QuerySubscriptionService service(&source,
                                        Timestamp::FromDate(1996, 12, 30));
  qss::Subscription sub;
  sub.name = "Ghost";
  sub.frequency = *qss::FrequencySpec::Parse("every day");
  sub.polling_query = "select nonexistent.entry";
  sub.filter_query = "select Ghost.entry<cre at T> where T > t[-1]";
  int notified = 0;
  ASSERT_TRUE(service
                  .Subscribe(sub, [&](const qss::Notification&) {
                    ++notified;
                  })
                  .ok());
  ASSERT_TRUE(
      service.AdvanceTo(Timestamp::FromDate(1997, 1, 10)).ok());
  EXPECT_EQ(notified, 0);
  EXPECT_EQ(service.PollingTimes("Ghost").size(), 12u);
}

TEST(RobustnessTest, ChorelExistsWithAnnotatedRange) {
  // Annotated exists ranges work in the direct strategy and are cleanly
  // rejected by the translated one (no linear Lorel form, see
  // translate.h).
  auto d = DoemDatabase::Build(BuildGuide().db, GuideHistory());
  ASSERT_TRUE(d.ok());
  const char* q =
      "select R from guide.restaurant R where "
      "exists C in R.<add>comment : C = \"need info\"";
  auto direct = chorel::RunChorel(*d, q, chorel::Strategy::kDirect);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct->rows.size(), 1u);
  auto translated = chorel::RunChorel(*d, q, chorel::Strategy::kTranslated);
  ASSERT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kUnsupported);
}

TEST(RobustnessTest, EmptySelectResultPackagesCleanly) {
  testing::Guide g = BuildGuide();
  lorel::OemView view(g.db);
  auto r = lorel::RunQuery("select guide.nothing", view);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_TRUE(r->answer.Validate().ok()) << "empty answer is still rooted";
}

}  // namespace
}  // namespace doem
