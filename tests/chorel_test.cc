#include <gtest/gtest.h>

#include <algorithm>

#include "chorel/chorel.h"
#include "chorel/translate.h"
#include "testing/guide.h"

namespace doem {
namespace chorel {
namespace {

using doem::testing::BuildGuide;
using doem::testing::Guide;
using doem::testing::GuideHistory;
using doem::testing::GuideT1;
using doem::testing::GuideT2;
using doem::testing::GuideT3;
using lorel::QueryResult;
using lorel::RtVal;

DoemDatabase GuideDoem() {
  auto d = DoemDatabase::Build(BuildGuide().db, GuideHistory());
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

QueryResult MustRun(const DoemDatabase& d, const std::string& q,
                    Strategy s) {
  auto r = RunChorel(d, q, s);
  EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
  if (!r.ok()) return QueryResult{};
  return std::move(r).value();
}

std::vector<std::string> SortedRowKeys(const QueryResult& r) {
  std::vector<std::string> keys;
  for (const auto& row : r.rows) {
    std::string k;
    for (const RtVal& v : row) k += v.Key() + "|";
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<NodeId> NodeColumn(const QueryResult& r, size_t col = 0) {
  std::vector<NodeId> out;
  for (const auto& row : r.rows) {
    if (col < row.size() && row[col].kind == RtVal::Kind::kNode) {
      out.push_back(row[col].node);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ChorelBothStrategies
    : public ::testing::TestWithParam<Strategy> {};

INSTANTIATE_TEST_SUITE_P(Strategies, ChorelBothStrategies,
                         ::testing::Values(Strategy::kDirect,
                                           Strategy::kTranslated),
                         [](const auto& info) {
                           return info.param == Strategy::kDirect
                                      ? "Direct"
                                      : "Translated";
                         });

// --------------------------------------------------- Paper Example 4.2

TEST_P(ChorelBothStrategies, Example42NewRestaurants) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(d, "select guide.<add>restaurant", GetParam());
  // Only Hakata (n2) was added; the two original restaurants' arcs carry
  // no add annotation.
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{2});
}

// --------------------------------------------------- Paper Example 4.3

TEST_P(ChorelBothStrategies, Example43AddedBeforeJan4) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d, "select guide.<add at T>restaurant where T < 4Jan97", GetParam());
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{2});
  // With the cutoff before t1 nothing matches.
  QueryResult r2 = MustRun(
      d, "select guide.<add at T>restaurant where T < 31Dec96", GetParam());
  EXPECT_TRUE(r2.rows.empty());
}

TEST_P(ChorelBothStrategies, Example43RewrittenForm) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d, "select R from guide.<add at T>restaurant R where T < 4Jan97",
      GetParam());
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{2});
}

// --------------------------------------------------- Paper Example 4.4

TEST_P(ChorelBothStrategies, Example44PriceUpdates) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d,
      "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
      "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
      GetParam());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.labels,
            (std::vector<std::string>{"name", "update-time", "new-value"}));
  // The name object is "Bangkok Cuisine" (an object in both strategies).
  ASSERT_EQ(r.rows[0][0].kind, RtVal::Kind::kNode);
  // T = 1Jan97 and NV = 20 as plain values in both strategies.
  EXPECT_EQ(r.rows[0][1].value, Value::Time(GuideT1()));
  EXPECT_EQ(r.rows[0][2].value, Value::Int(20));
}

TEST(ChorelTest, Example44AnswerPackaging) {
  // The answer object of Example 4.4: a complex object with components
  // name / update-time / new-value.
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d,
      "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
      "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
      Strategy::kDirect);
  const OemDatabase& ans = r.answer;
  std::vector<NodeId> tuples = ans.Children(ans.root(), "answer");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(*ans.GetValue(ans.Child(tuples[0], "name")),
            Value::String("Bangkok Cuisine"));
  EXPECT_EQ(*ans.GetValue(ans.Child(tuples[0], "update-time")),
            Value::Time(GuideT1()));
  EXPECT_EQ(*ans.GetValue(ans.Child(tuples[0], "new-value")), Value::Int(20));
}

// --------------------------------------------------- Paper Example 4.5

TEST_P(ChorelBothStrategies, Example45AddedModeratePrice) {
  DoemDatabase d = GuideDoem();
  // Nothing matches on the original history: Janta's moderate price is
  // original, not added.
  QueryResult r0 = MustRun(
      d,
      "select N from guide.restaurant R, R.name N "
      "where R.<add at T>price = \"moderate\" and T >= 1Jan97",
      GetParam());
  EXPECT_TRUE(r0.rows.empty());

  // Give Hakata a moderate price in 1997; now it matches.
  ASSERT_TRUE(d.ApplyChangeSet(
                   Timestamp::FromDate(1997, 2, 2),
                   {ChangeOp::CreNode(30, Value::String("moderate")),
                    ChangeOp::AddArc(2, "price", 30)})
                  .ok());
  QueryResult r = MustRun(
      d,
      "select N from guide.restaurant R, R.name N "
      "where R.<add at T>price = \"moderate\" and T >= 1Jan97",
      GetParam());
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{3});  // n3 = "Hakata"
}

// --------------------------------------------------- Other annotations

TEST_P(ChorelBothStrategies, RemAnnotation) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d, "select R from guide.restaurant R, R.<rem at T>parking P "
         "where T >= 8Jan97",
      GetParam());
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{6})
      << "Janta's parking arc was removed at t3";
}

TEST_P(ChorelBothStrategies, RemovedArcInvisibleToPlainSteps) {
  DoemDatabase d = GuideDoem();
  // Section 5.2: only current arcs are accessible via their labels.
  QueryResult r = MustRun(d, "select guide.restaurant.parking", GetParam());
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{7})
      << "still reachable via Bangkok only";
  QueryResult r2 = MustRun(
      d,
      "select P from guide.restaurant R, R.parking P, R.name N "
      "where N = \"Janta\"",
      GetParam());
  EXPECT_TRUE(r2.rows.empty());
}

TEST_P(ChorelBothStrategies, CreAnnotationWithFilter) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d,
      "select C from guide.restaurant R, R.comment<cre at T> C "
      "where T > 2Jan97",
      GetParam());
  EXPECT_EQ(NodeColumn(r), std::vector<NodeId>{5}) << "\"need info\" at t2";
}

TEST_P(ChorelBothStrategies, UpdOldValue) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(
      d,
      "select OV, NV from guide.restaurant.price<upd from OV to NV>",
      GetParam());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value, Value::Int(10));
  EXPECT_EQ(r.rows[0][1].value, Value::Int(20));
  EXPECT_EQ(r.labels, (std::vector<std::string>{"old-value", "new-value"}));
}

TEST_P(ChorelBothStrategies, MultipleUpdatesYieldMultipleBindings) {
  DoemDatabase d = GuideDoem();
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp::FromDate(1997, 3, 1),
                               {ChangeOp::UpdNode(1, Value::Int(25))})
                  .ok());
  QueryResult r = MustRun(
      d, "select T, OV, NV from guide.restaurant.price<upd at T from OV to NV>",
      GetParam());
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(SortedRowKeys(r),
            SortedRowKeys(MustRun(
                d,
                "select T, OV, NV from "
                "guide.restaurant.price<upd at T from OV to NV>",
                GetParam() == Strategy::kDirect ? Strategy::kTranslated
                                                : Strategy::kDirect)));
}

TEST_P(ChorelBothStrategies, PlainLorelOverDoemSeesCurrentSnapshot) {
  DoemDatabase d = GuideDoem();
  // Section 4.2.1: a standard Lorel query over a DOEM database has the
  // semantics of the same query over the current snapshot.
  QueryResult r = MustRun(d, "select guide.restaurant", GetParam());
  EXPECT_EQ(NodeColumn(r).size(), 3u);
  QueryResult r2 = MustRun(
      d, "select guide.restaurant where guide.restaurant.price < 15",
      GetParam());
  EXPECT_TRUE(r2.rows.empty()) << "price is 20 now, not 10";
  QueryResult r3 = MustRun(
      d, "select guide.restaurant where guide.restaurant.price < 20.5",
      GetParam());
  EXPECT_EQ(NodeColumn(r3).size(), 1u) << "the updated price 20 still fits";
}

// --------------------------------------------------- Translation details

TEST(TranslateTest, Example51Shape) {
  // The translated form of Example 4.5's query mentions the &-labels of
  // the Section 5.1 encoding.
  auto nq = lorel::ParseAndNormalize(
      "select N from guide.restaurant R, R.name N "
      "where R.<add at T>price = \"moderate\" and T >= 1Jan97");
  ASSERT_TRUE(nq.ok());
  auto t = TranslateToLorel(*nq);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::string s = t->ToString();
  EXPECT_NE(s.find("&price-history"), std::string::npos) << s;
  EXPECT_NE(s.find("&add"), std::string::npos) << s;
  EXPECT_NE(s.find("&target"), std::string::npos) << s;
  EXPECT_NE(s.find("&val"), std::string::npos)
      << "value access rewriting: " << s;
}

TEST(TranslateTest, SelectObjectVariableNotValRewritten) {
  // Section 5.2 end: an object variable in the select clause returns the
  // encoding object (with its history), not its &val.
  auto nq = lorel::ParseAndNormalize("select guide.restaurant.name");
  ASSERT_TRUE(nq.ok());
  auto t = TranslateToLorel(*nq);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->select.size(), 1u);
  EXPECT_EQ(t->select[0].expr->kind, lorel::Expr::Kind::kVar);
}

TEST(TranslateTest, TranslatedAnswerCarriesHistory) {
  DoemDatabase d = GuideDoem();
  QueryResult r = MustRun(d,
                          "select N from guide.restaurant R, R.name N "
                          "where R.<add>name = N or N = N",
                          Strategy::kTranslated);
  // Simpler: just select a name object and check its packaging.
  QueryResult r2 = MustRun(d, "select guide.restaurant.name",
                           Strategy::kTranslated);
  const OemDatabase& ans = r2.answer;
  std::vector<NodeId> names = ans.Children(ans.root(), "name");
  ASSERT_FALSE(names.empty());
  // Each packaged name is an encoding object with a &val child.
  for (NodeId n : names) {
    EXPECT_NE(ans.Child(n, "&val"), kInvalidNode);
  }
}

TEST(TranslateTest, UpdRecordsTranslate) {
  auto nq = lorel::ParseAndNormalize(
      "select T from guide.restaurant.price<upd at T>");
  ASSERT_TRUE(nq.ok());
  auto t = TranslateToLorel(*nq);
  ASSERT_TRUE(t.ok());
  std::string s = t->ToString();
  EXPECT_NE(s.find("&upd"), std::string::npos) << s;
  EXPECT_NE(s.find("&time"), std::string::npos) << s;
  EXPECT_NE(s.find("&ov"), std::string::npos) << s;
  EXPECT_NE(s.find("&nv"), std::string::npos) << s;
}

// --------------------------------------------------- Virtual annotations

TEST(VirtualAnnotationTest, NodeValueAtTime) {
  DoemDatabase d = GuideDoem();
  // Section 4.2.2: guide.restaurant.price<at T> is the price value at T.
  auto r = RunChorel(d,
                     "select R from guide.restaurant R "
                     "where R.price<at 31Dec96> = 10",
                     Strategy::kDirect);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(NodeColumn(*r), std::vector<NodeId>{BuildGuide().bangkok});
  auto r2 = RunChorel(d,
                      "select R from guide.restaurant R "
                      "where R.price<at 2Jan97> = 10",
                      Strategy::kDirect);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->rows.empty()) << "price was 20 by then";
}

TEST(VirtualAnnotationTest, ArcExistenceAtTime) {
  DoemDatabase d = GuideDoem();
  // guide.<at T>restaurant: the restaurant arcs that existed at T.
  auto r = RunChorel(d, "select guide.<at 31Dec96>restaurant",
                     Strategy::kDirect);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(NodeColumn(*r).size(), 2u) << "Hakata not yet added";
  auto r2 = RunChorel(d, "select guide.<at 2Jan97>restaurant",
                      Strategy::kDirect);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(NodeColumn(*r2).size(), 3u);
}

TEST(VirtualAnnotationTest, UnsupportedInTranslation) {
  DoemDatabase d = GuideDoem();
  auto r = RunChorel(d, "select guide.<at 2Jan97>restaurant",
                     Strategy::kTranslated);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

// --------------------------------------------------- Differential checks

TEST(DifferentialTest, StrategiesAgreeOnQuerySuite) {
  DoemDatabase d = GuideDoem();
  // Extend the history to cover re-addition and more updates.
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp::FromDate(1997, 2, 1),
                               {ChangeOp::AddArc(6, "parking", 7)})
                  .ok());
  ASSERT_TRUE(d.ApplyChangeSet(Timestamp::FromDate(1997, 3, 1),
                               {ChangeOp::UpdNode(1, Value::Int(25)),
                                ChangeOp::RemArc(6, "parking", 7)})
                  .ok());
  const char* queries[] = {
      "select guide.restaurant",
      "select guide.<add>restaurant",
      "select guide.<add at T>restaurant where T < 4Jan97",
      "select N, T, NV from guide.restaurant.price<upd at T to NV>, "
      "guide.restaurant.name N where T >= 1Jan97 and NV > 15",
      "select N from guide.restaurant R, R.name N "
      "where R.<add at T>price = \"moderate\" and T >= 1Jan97",
      "select R from guide.restaurant R, R.<rem at T>parking P",
      "select T, P from guide.restaurant R, R.<rem at T>parking P",
      "select T from guide.restaurant.comment<cre at T>",
      "select OV from guide.restaurant.price<upd from OV>",
      "select guide.restaurant where "
      "guide.restaurant.address.# like \"%Lytton%\"",
      "select R from guide.restaurant R where "
      "exists A in R.address : A.city = \"Palo Alto\"",
      "select R from guide.restaurant R, R.name N where not N = \"Janta\"",
      "select guide.#.price",
      "select X from guide.restaurant.parking.nearby-eats X",
  };
  ChorelEngine engine(d);
  for (const char* q : queries) {
    auto direct = engine.Run(q, Strategy::kDirect);
    auto translated = engine.Run(q, Strategy::kTranslated);
    ASSERT_TRUE(direct.ok()) << q << "\n" << direct.status().ToString();
    ASSERT_TRUE(translated.ok()) << q << "\n"
                                 << translated.status().ToString();
    EXPECT_EQ(SortedRowKeys(*direct), SortedRowKeys(*translated)) << q;
  }
}

}  // namespace
}  // namespace chorel
}  // namespace doem
namespace doem {
namespace chorel {
namespace {

TEST(WildcardAnnotationTest, AnnotationsOnPercentWildcard) {
  // Section 7 extension: annotation expressions on the '%' wildcard —
  // "which restaurants gained ANY subobject since Jan 2?"
  auto d = DoemDatabase::Build(doem::testing::BuildGuide().db,
                               doem::testing::GuideHistory());
  ASSERT_TRUE(d.ok());
  auto r = RunChorel(d.value(),
                     "select R from guide.restaurant R, R.<add at T>% X "
                     "where T > 2Jan97",
                     Strategy::kDirect);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u) << "Hakata gained its comment at t2";
  EXPECT_EQ(r->rows[0][0].node, NodeId{2});

  // Node annotations on '%': any freshly created subobject.
  auto r2 = RunChorel(d.value(),
                      "select X from guide.restaurant.%<cre at T> X "
                      "where T > 2Jan97",
                      Strategy::kDirect);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows.size(), 1u) << "the 'need info' comment node";

  // Removal via any label.
  auto r3 = RunChorel(d.value(),
                      "select R from guide.restaurant R, R.<rem>% X",
                      Strategy::kDirect);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(r3->rows.size(), 1u) << "Janta lost its parking";

  // Virtual annotation on '%': arcs live at a past time, any label.
  auto r4 = RunChorel(d.value(),
                      "select X from guide.<at 31Dec96>% X",
                      Strategy::kDirect);
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  EXPECT_EQ(r4->rows.size(), 2u) << "two restaurants existed then";

  // Translated strategy reports a clean Unsupported.
  auto r5 = RunChorel(d.value(),
                      "select R from guide.restaurant R, R.<add>% X",
                      Strategy::kTranslated);
  ASSERT_FALSE(r5.ok());
  EXPECT_EQ(r5.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace chorel
}  // namespace doem
