// Seeded stress test of the parallel poll engine: randomized frequency
// specs and fault schedules (src/testing/generators) drive twin services
// — serial and 8-thread pool — through identical tick sequences, and
// every run must satisfy the scheduling invariants and agree byte for
// byte with its twin.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "encoding/doem_text.h"
#include "qss/executor.h"
#include "qss/fault.h"
#include "qss/qss.h"
#include "testing/generators.h"

namespace doem {
namespace qss {
namespace {

// Distinct polling queries (one poll group each) with the substring that
// pins a FaultSpec to exactly one of them.
struct QueryChoice {
  const char* leaf;
  const char* scope;
};
constexpr QueryChoice kQueryPool[] = {
    {"name", ".name"},
    {"price", ".price"},
    {"address", ".address"},
    {"parking", ".parking"},
};

struct SubSpec {
  std::string name;
  std::string leaf;
  FrequencySpec frequency;
};

struct RunOutcome {
  std::map<std::string, std::string> history_text;
  std::map<std::string, std::vector<Timestamp>> polls;
  std::map<std::string, size_t> missed;
  PollReport report;
  std::vector<std::string> notifications;
};

class QssStressTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(QssStressTest, InvariantsHoldAndTwinRunsAgree) {
  const uint32_t seed = GetParam();
  std::mt19937 rng(seed);

  // Randomized scenario, drawn once and shared by both twin runs.
  const size_t n_subs = 2 + rng() % 3;  // 2..4 groups
  std::vector<SubSpec> subs;
  std::vector<std::string> scopes;
  for (size_t i = 0; i < n_subs; ++i) {
    SubSpec spec;
    spec.leaf = kQueryPool[i].leaf;
    spec.name = "S" + std::to_string(i) + "_" + spec.leaf;
    spec.frequency = testing::RandomFrequencySpec(&rng, 4);
    scopes.push_back(kQueryPool[i].scope);
    subs.push_back(std::move(spec));
  }
  const std::vector<FaultSpec> faults =
      testing::RandomFaultSchedule(scopes, &rng);
  std::vector<int64_t> jumps;
  for (size_t i = 0; i < 6; ++i) {
    jumps.push_back(1 + static_cast<int64_t>(rng() % 5));
  }
  const OemDatabase base = testing::SyntheticGuide(12, /*seed=*/seed + 1);
  const OemHistory script =
      testing::SyntheticGuideHistory(base, 20, 3, /*seed=*/seed + 2);
  const Timestamp start = Timestamp::FromDate(1997, 1, 1);
  const bool preserve_ids = rng() % 2 == 0;

  auto run = [&](Executor* executor) {
    RunOutcome out;
    ScriptedSource inner(base, script, preserve_ids);
    FaultInjectingSource source(&inner);
    for (const FaultSpec& f : faults) source.AddFault(f);

    QssOptions opts;
    opts.executor = executor;
    opts.fault_tolerance.retry.max_attempts = 1 + static_cast<int>(seed % 3);
    opts.fault_tolerance.retry.backoff_base_ticks = 1;
    opts.fault_tolerance.retry.poll_deadline_ticks = 4;  // RandomFaultSchedule slow > 0
    opts.fault_tolerance.quarantine_after = 1 + static_cast<int>(seed % 2);
    opts.fault_tolerance.quarantine_cooldown_ticks = 1 + seed % 3;
    QuerySubscriptionService qss(&source, start, opts);

    for (const SubSpec& spec : subs) {
      Subscription sub;
      sub.name = spec.name;
      sub.frequency = spec.frequency;
      sub.polling_query = "select guide.restaurant." + spec.leaf;
      sub.filter_query = "select " + spec.name + "." + spec.leaf +
                         "<cre at T> where T > t[-1]";
      Status st = qss.Subscribe(sub, [&out, &spec](const Notification& n) {
        out.notifications.push_back(spec.name + "@" +
                                    std::to_string(n.poll_time.ticks) + ":" +
                                    std::to_string(n.result.rows.size()));
      });
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_EQ(qss.GroupCount(), subs.size());

    // Clock monotonicity: every AdvanceTo lands exactly on its target,
    // never behind, fault or no fault.
    for (int64_t jump : jumps) {
      Timestamp before = qss.now();
      Timestamp target(before.ticks + jump);
      Status st = qss.AdvanceTo(target, &out.report);
      EXPECT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(qss.now(), target);
      EXPECT_GE(qss.now().ticks, before.ticks);
    }
    const Timestamp end = qss.now();

    size_t sum_attempted = 0, sum_ok = 0, sum_failed = 0, sum_missed = 0,
           sum_retries = 0;
    for (const SubSpec& spec : subs) {
      PollHealth h = qss.Health(spec.name);
      const std::vector<Timestamp> polls = qss.PollingTimes(spec.name);

      // Poll accounting: attempted = succeeded + failed, and every
      // success produced exactly one polling time.
      EXPECT_EQ(h.polls_attempted, h.polls_succeeded + h.polls_failed)
          << spec.name;
      EXPECT_EQ(polls.size(), h.polls_succeeded) << spec.name;
      for (size_t i = 1; i < polls.size(); ++i) {
        EXPECT_LT(polls[i - 1], polls[i]) << spec.name << ": polling times "
                                             "must be strictly increasing";
      }

      // Schedule accounting: every scheduled tick was attempted or
      // quarantined (none lost, none invented).
      const int64_t interval = spec.frequency.interval_ticks;
      const size_t scheduled =
          static_cast<size_t>((end.ticks - start.ticks) / interval + 1);
      EXPECT_EQ(h.polls_attempted + h.missed.size(), scheduled) << spec.name;
      if (h.state != CircuitState::kOpen) {
        EXPECT_LT(h.consecutive_failures, opts.fault_tolerance.quarantine_after + 1)
            << spec.name;
      }

      // No lost snapshots: every DOEM annotation timestamp is one of the
      // group's polling times.
      const DoemDatabase* d = qss.History(spec.name);
      if (d == nullptr) {
        ADD_FAILURE() << "no history for " << spec.name;
        continue;
      }
      const std::set<Timestamp> poll_set(polls.begin(), polls.end());
      for (Timestamp t : d->AllTimestamps()) {
        EXPECT_TRUE(poll_set.contains(t))
            << spec.name << ": annotation at " << t.ToString()
            << " has no corresponding poll";
      }

      out.history_text[spec.name] = WriteDoemText(*d);
      out.polls[spec.name] = polls;
      out.missed[spec.name] = h.missed.size();
      sum_attempted += h.polls_attempted;
      sum_ok += h.polls_succeeded;
      sum_failed += h.polls_failed;
      sum_missed += h.missed.size();
      sum_retries += h.retries;
    }

    // Quarantine and poll counts aggregate exactly into the report.
    EXPECT_EQ(out.report.polls_attempted, sum_attempted);
    EXPECT_EQ(out.report.polls_ok, sum_ok);
    EXPECT_EQ(out.report.polls_failed, sum_failed);
    EXPECT_EQ(out.report.polls_missed, sum_missed);
    EXPECT_EQ(out.report.retries, sum_retries);
    EXPECT_EQ(out.report.notifications, out.notifications.size());
    return out;
  };

  RunOutcome serial = run(nullptr);
  ThreadPoolExecutor pool(8);
  RunOutcome parallel = run(&pool);

  EXPECT_EQ(serial.history_text, parallel.history_text)
      << "seed " << seed << ": parallel history diverged from serial";
  EXPECT_EQ(serial.polls, parallel.polls);
  EXPECT_EQ(serial.missed, parallel.missed);
  EXPECT_EQ(serial.notifications, parallel.notifications);
  EXPECT_EQ(serial.report.polls_attempted, parallel.report.polls_attempted);
  EXPECT_EQ(serial.report.polls_ok, parallel.report.polls_ok);
  EXPECT_EQ(serial.report.polls_failed, parallel.report.polls_failed);
  EXPECT_EQ(serial.report.polls_missed, parallel.report.polls_missed);
  EXPECT_EQ(serial.report.retries, parallel.report.retries);
  ASSERT_EQ(serial.report.errors.size(), parallel.report.errors.size());
  for (size_t i = 0; i < serial.report.errors.size(); ++i) {
    EXPECT_EQ(serial.report.errors[i].subject,
              parallel.report.errors[i].subject);
    EXPECT_EQ(serial.report.errors[i].time, parallel.report.errors[i].time);
    EXPECT_EQ(serial.report.errors[i].status.ToString(),
              parallel.report.errors[i].status.ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QssStressTest, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace qss
}  // namespace doem
